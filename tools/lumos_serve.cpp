// lumos_serve — long-running streaming characterization daemon.
//
// Tails an SWF event source (growing file, FIFO, or stdin) through
// stream::run_ingest and periodically publishes the bounded-memory
// characterization as a schema-versioned report JSON written atomically,
// so consumers polling the output path never observe a torn document.
// With --checkpoint it is crash-consistent: state + source cursor persist
// periodically, SIGTERM/SIGINT flush a final checkpoint + report, and a
// restart resumes from the cursor, replaying only the gap (DESIGN.md §4g;
// bench/ext_serve_chaos drills SIGKILL at arbitrary points).
// EXPERIMENTS.md ("Streaming ingest walkthrough" and "Kill-and-resume
// walkthrough") shows end-to-end usage.
//
//   lumos_serve --in trace.swf --out report.json [--follow]
//               [--checkpoint PATH] [--checkpoint-every N] [--no-resume]
//               [--every N] [--max-events N] [--epoch-unix T]
//               [--utc-offset H] [--sketch-k K] [--window-s S]
//               [--bad-row-budget N] [--idle-timeout-s S]
//               [--poll-interval-s S] [--stall-warn-s S]
//
// Exit codes follow the unified bench taxonomy (bench/common.hpp): 0 ok
// (including graceful shutdown by signal), 2 usage, 3 runtime error,
// 4 injected fault. SIGPIPE is ignored so a vanished report reader
// surfaces as a write error (code 3), not a silent signal death.
#include <csignal>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "stream/ingest.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace {

// Unified process exit codes — keep in sync with bench/common.hpp
// (kExitOk/kExitUsage/kExitRuntime/kExitFault); tools sit below bench in
// the layer DAG, so the constants are mirrored rather than included.
constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitRuntime = 3;
constexpr int kExitFault = 4;

int usage() {
  std::cerr
      << "usage: lumos_serve --in PATH|- --out PATH|- [--follow]\n"
         "  --in PATH            SWF source; '-' reads stdin (default -)\n"
         "  --out PATH           report JSON destination; '-' for stdout\n"
         "  --follow             keep tailing a growing file after EOF\n"
         "  --checkpoint PATH    persist crash-consistent state here\n"
         "  --checkpoint-every N checkpoint every N events (default 0 =\n"
         "                       only on shutdown/end of stream)\n"
         "  --no-resume          ignore an existing checkpoint on start\n"
         "  --every N            report every N job events (default 10000)\n"
         "  --max-events N       stop after N events (0 = unlimited)\n"
         "  --epoch-unix T       trace epoch for the diurnal profile\n"
         "  --utc-offset H       local-time offset hours for the profile\n"
         "  --sketch-k K         quantile sketch accuracy knob (default 200)\n"
         "  --window-s S         tumbling window seconds (default 86400)\n"
         "  --bad-row-budget N   malformed rows tolerated (default 1000)\n"
         "  --idle-timeout-s S   stop after S seconds without data\n"
         "  --poll-interval-s S  follow/FIFO poll interval (default 0.25)\n"
         "  --stall-warn-s S     warn when no event for S seconds (0 off)\n";
  return kExitUsage;
}

double number_or(const std::map<std::string, std::string>& options,
                 const std::string& key, double fallback) {
  const auto it = options.find(key);
  return it == options.end() ? fallback : std::stod(it->second);
}

}  // namespace

int main(int argc, char** argv) {
  // A disappearing report reader must surface as a write error, not kill
  // the daemon mid-checkpoint.
  std::signal(SIGPIPE, SIG_IGN);

  std::map<std::string, std::string> options;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return usage();
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      options[key] = argv[++i];
    } else {
      options[key] = "1";
    }
  }
  if (options.count("help") != 0) return usage();

  lumos::stream::IngestOptions ingest;
  ingest.input_path = options.count("in") ? options["in"] : "-";
  ingest.output_path = options.count("out") ? options["out"] : "-";
  ingest.follow = options.count("follow") != 0;
  ingest.report_every_events =
      static_cast<std::uint64_t>(number_or(options, "every", 10000));
  ingest.max_events =
      static_cast<std::uint64_t>(number_or(options, "max-events", 0));
  ingest.bad_row_budget =
      static_cast<std::uint64_t>(number_or(options, "bad-row-budget", 1000));
  ingest.idle_timeout_s = number_or(options, "idle-timeout-s", 5.0);
  ingest.poll_interval_s = number_or(options, "poll-interval-s", 0.25);
  ingest.config.epoch_unix =
      static_cast<std::int64_t>(number_or(options, "epoch-unix", 0));
  ingest.config.utc_offset_hours = number_or(options, "utc-offset", 0.0);
  ingest.config.sketch_k =
      static_cast<std::size_t>(number_or(options, "sketch-k", 200));
  ingest.config.window_seconds = number_or(options, "window-s", 86400.0);
  ingest.checkpoint_path =
      options.count("checkpoint") ? options["checkpoint"] : "";
  ingest.checkpoint_every_events = static_cast<std::uint64_t>(
      number_or(options, "checkpoint-every", 0));
  ingest.resume = options.count("no-resume") == 0;
  ingest.stall_warn_s = number_or(options, "stall-warn-s", 0.0);
  ingest.handle_signals = true;

  try {
    const auto result = lumos::stream::run_ingest(ingest);
    std::cerr << "lumos_serve: " << result.events << " events ("
              << result.resumed_events << " resumed, "
              << result.replayed_events << " ingested), "
              << result.reports_written << " report(s), "
              << result.checkpoints_written << " checkpoint(s), "
              << result.bad_rows << " bad row(s), "
              << static_cast<long long>(result.events_per_sec)
              << " events/s";
    if (result.shutdown_signal != 0) {
      std::cerr << "; graceful shutdown on signal "
                << result.shutdown_signal;
    }
    std::cerr << '\n';
    return kExitOk;
  } catch (const lumos::fault::InjectedFault& e) {
    std::cerr << "lumos_serve: " << e.what() << '\n';
    return kExitFault;
  } catch (const lumos::InvalidArgument& e) {
    std::cerr << "lumos_serve: " << e.what() << '\n';
    return kExitUsage;
  } catch (const lumos::Error& e) {
    std::cerr << "lumos_serve: " << e.what() << '\n';
    return kExitRuntime;
  } catch (const std::exception& e) {
    std::cerr << "lumos_serve: " << e.what() << '\n';
    return kExitRuntime;
  }
}
