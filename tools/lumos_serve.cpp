// lumos_serve — long-running streaming characterization driver.
//
// Tails an SWF event source (growing file, FIFO, or stdin) through
// stream::run_ingest and periodically publishes the bounded-memory
// characterization as a schema-versioned report JSON written atomically,
// so consumers polling the output path never observe a torn document.
// EXPERIMENTS.md ("Streaming ingest walkthrough") shows end-to-end
// usage; DESIGN.md "Streaming mode" documents the report schema.
//
//   lumos_serve --in trace.swf --out report.json [--follow]
//               [--every N] [--max-events N] [--epoch-unix T]
//               [--utc-offset H] [--sketch-k K] [--window-s S]
//               [--bad-row-budget N] [--idle-timeout-s S]
//
// Exit codes follow the bench taxonomy: 0 ok, 2 usage, 1 runtime error.
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "stream/ingest.hpp"
#include "util/error.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: lumos_serve --in PATH|- --out PATH|- [--follow]\n"
         "  --in PATH           SWF source; '-' reads stdin (default -)\n"
         "  --out PATH          report JSON destination; '-' for stdout\n"
         "  --follow            keep tailing a growing file after EOF\n"
         "  --every N           report every N job events (default 10000)\n"
         "  --max-events N      stop after N events (0 = unlimited)\n"
         "  --epoch-unix T      trace epoch for the diurnal profile\n"
         "  --utc-offset H      local-time offset hours for the profile\n"
         "  --sketch-k K        quantile sketch accuracy knob (default 200)\n"
         "  --window-s S        tumbling window seconds (default 86400)\n"
         "  --bad-row-budget N  malformed rows tolerated (default 1000)\n"
         "  --idle-timeout-s S  follow mode: stop after S idle seconds\n";
  return 2;
}

double number_or(const std::map<std::string, std::string>& options,
                 const std::string& key, double fallback) {
  const auto it = options.find(key);
  return it == options.end() ? fallback : std::stod(it->second);
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> options;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return usage();
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      options[key] = argv[++i];
    } else {
      options[key] = "1";
    }
  }
  if (options.count("help") != 0) return usage();

  lumos::stream::IngestOptions ingest;
  ingest.input_path = options.count("in") ? options["in"] : "-";
  ingest.output_path = options.count("out") ? options["out"] : "-";
  ingest.follow = options.count("follow") != 0;
  ingest.report_every_events =
      static_cast<std::uint64_t>(number_or(options, "every", 10000));
  ingest.max_events =
      static_cast<std::uint64_t>(number_or(options, "max-events", 0));
  ingest.bad_row_budget =
      static_cast<std::uint64_t>(number_or(options, "bad-row-budget", 1000));
  ingest.idle_timeout_s = number_or(options, "idle-timeout-s", 5.0);
  ingest.config.epoch_unix =
      static_cast<std::int64_t>(number_or(options, "epoch-unix", 0));
  ingest.config.utc_offset_hours = number_or(options, "utc-offset", 0.0);
  ingest.config.sketch_k =
      static_cast<std::size_t>(number_or(options, "sketch-k", 200));
  ingest.config.window_seconds = number_or(options, "window-s", 86400.0);

  try {
    const auto result = lumos::stream::run_ingest(ingest);
    std::cerr << "lumos_serve: " << result.events << " events, "
              << result.reports_written << " report(s), "
              << result.bad_rows << " bad row(s), "
              << static_cast<long long>(result.events_per_sec)
              << " events/s\n";
    return 0;
  } catch (const lumos::Error& e) {
    std::cerr << "lumos_serve: " << e.what() << '\n';
    return 1;
  }
}
