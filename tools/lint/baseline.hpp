// Baseline ratchet for lumos_lint findings.
//
// A new rule landing on an old tree faces a choice: fix every existing
// finding first (blocks the rule), or grandfather them invisibly (loses
// them). The ratchet is the third way: existing findings are *pinned* in
// a committed baseline file and tolerated, while anything not pinned
// fails. The pin is a (file, rule) → count — deliberately not
// line-anchored, so unrelated edits that shift line numbers don't churn
// the baseline; but adding one more finding of a pinned rule to a pinned
// file exceeds its count and fails. Counts can only be ratcheted *down*:
// when the tree has fewer findings than a pin allows, the pin is stale
// and `lumos_lint --write-baseline` shrinks it.
//
// Baseline document (tools/lint/baseline.json, via obs::Json so key
// order is stable and diffs are reviewable):
//
//   { "schema_version": 1,
//     "pinned": [ {"file": "sim/x.cpp", "rule": "hot-alloc", "count": 2} ] }
//
// Workflow:
//   * new finding in CI        → fix it, suppress it with a reason, or —
//                                for a deliberate rule rollout — pin it
//                                via --write-baseline in the same PR.
//   * fixed a pinned finding   → --write-baseline shrinks the pin; the
//                                shrink commits with the fix (the ratchet).
//   * `lumos_lint --ratchet`   → exit 0 iff no finding exceeds its pin.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lint/lint.hpp"

namespace lumos::lint {

/// Pinned finding counts, keyed by (file, rule).
struct Baseline {
  std::map<std::pair<std::string, std::string>, std::int64_t> pinned;
};

/// Collapses diagnostics into a baseline pinning exactly the given
/// findings (what --write-baseline persists).
[[nodiscard]] Baseline baseline_from(const std::vector<Diagnostic>& diags);

/// Stable JSON round-trip. from_json throws lumos::InvalidArgument on a
/// malformed document or unsupported schema_version.
[[nodiscard]] std::string to_json(const Baseline& baseline);
[[nodiscard]] Baseline baseline_from_json(std::string_view text);

/// The verdict of a ratchet run.
struct RatchetResult {
  /// Findings beyond the pinned counts — these fail the run. When a
  /// (file, rule) bucket holds N findings against a pin of K < N, the
  /// *last* N-K by line order are reported fresh (deterministic, and in
  /// practice new code lands below old code more often than not).
  std::vector<Diagnostic> fresh;
  /// Findings absorbed by pins.
  std::vector<Diagnostic> pinned;
  /// Pins whose buckets have shrunk: (file, rule) with surplus capacity.
  /// Not a failure — but --write-baseline tightens them.
  std::vector<std::pair<std::string, std::string>> stale;

  [[nodiscard]] bool clean() const { return fresh.empty(); }
};

/// Splits `diags` against `baseline` per the rules above.
[[nodiscard]] RatchetResult ratchet(const std::vector<Diagnostic>& diags,
                                    const Baseline& baseline);

}  // namespace lumos::lint
