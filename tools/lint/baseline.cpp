#include "lint/baseline.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace lumos::lint {

Baseline baseline_from(const std::vector<Diagnostic>& diags) {
  Baseline baseline;
  for (const Diagnostic& d : diags) {
    ++baseline.pinned[{d.file, d.rule}];
  }
  return baseline;
}

std::string to_json(const Baseline& baseline) {
  obs::Json doc = obs::Json::object();
  doc["schema_version"] = obs::Json(std::int64_t{1});
  obs::Json pinned = obs::Json::array();
  // std::map iteration: (file, rule) sorted — the document is stable.
  for (const auto& [key, count] : baseline.pinned) {
    obs::Json entry = obs::Json::object();
    entry["file"] = obs::Json(key.first);
    entry["rule"] = obs::Json(key.second);
    entry["count"] = obs::Json(count);
    pinned.push_back(std::move(entry));
  }
  doc["pinned"] = std::move(pinned);
  return doc.dump(2);
}

Baseline baseline_from_json(std::string_view text) {
  const obs::Json doc = obs::Json::parse(text);
  const obs::Json* version = doc.find("schema_version");
  if (version == nullptr || !version->is_number() || version->as_int() != 1) {
    throw InvalidArgument(
        "baseline: missing or unsupported schema_version (expected 1)");
  }
  const obs::Json* pinned = doc.find("pinned");
  if (pinned == nullptr) {
    throw InvalidArgument("baseline: missing \"pinned\" array");
  }
  Baseline baseline;
  for (const obs::Json& entry : pinned->items()) {
    const obs::Json* file = entry.find("file");
    const obs::Json* rule = entry.find("rule");
    const obs::Json* count = entry.find("count");
    if (file == nullptr || rule == nullptr || count == nullptr) {
      throw InvalidArgument(
          "baseline: pinned entry needs file, rule, and count");
    }
    const std::int64_t n = count->as_int();
    if (n <= 0) {
      throw InvalidArgument("baseline: pinned count must be positive for " +
                            file->as_string() + " / " + rule->as_string());
    }
    auto key = std::make_pair(file->as_string(), rule->as_string());
    if (!baseline.pinned.emplace(std::move(key), n).second) {
      throw InvalidArgument("baseline: duplicate pin for " +
                            file->as_string() + " / " + rule->as_string());
    }
  }
  return baseline;
}

RatchetResult ratchet(const std::vector<Diagnostic>& diags,
                      const Baseline& baseline) {
  // Bucket findings by (file, rule), preserving line order within each
  // bucket (diags arrive sorted by file/line from the passes).
  std::map<std::pair<std::string, std::string>, std::vector<Diagnostic>>
      buckets;
  for (const Diagnostic& d : diags) {
    buckets[{d.file, d.rule}].push_back(d);
  }

  RatchetResult result;
  for (auto& [key, bucket] : buckets) {
    const auto pin = baseline.pinned.find(key);
    const std::int64_t allowed =
        pin == baseline.pinned.end() ? 0 : pin->second;
    const auto absorbed = std::min<std::int64_t>(
        allowed, static_cast<std::int64_t>(bucket.size()));
    for (std::int64_t i = 0; i < absorbed; ++i) {
      result.pinned.push_back(std::move(bucket[static_cast<std::size_t>(i)]));
    }
    for (auto i = static_cast<std::size_t>(absorbed); i < bucket.size();
         ++i) {
      result.fresh.push_back(std::move(bucket[i]));
    }
  }
  for (const auto& [key, allowed] : baseline.pinned) {
    const auto bucket = buckets.find(key);
    const std::int64_t present =
        bucket == buckets.end()
            ? 0
            : static_cast<std::int64_t>(bucket->second.size());
    if (present < allowed) result.stale.push_back(key);
  }

  const auto by_pos = [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    return a.line < b.line;
  };
  std::stable_sort(result.fresh.begin(), result.fresh.end(), by_pos);
  std::stable_sort(result.pinned.begin(), result.pinned.end(), by_pos);
  return result;
}

}  // namespace lumos::lint
