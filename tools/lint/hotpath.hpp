// Marker-scoped function-body disciplines: hot paths and signal handlers.
//
// PR-6 made the simulator core data-oriented — calendar-queue events, SoA
// job state — precisely so the per-event path does no hidden work. This
// pass keeps it that way mechanically. A function marked with
// `LUMOS_HOT_PATH` (src/util/annotations.hpp; expands to nothing) gets
// its body scanned, and these are findings inside it:
//
//   hot-alloc           new / make_unique / make_shared / malloc family —
//                       per-event heap traffic is the first thing that
//                       shows up in the event-throughput bench.
//   hot-node-container  constructing std::map/set/list/unordered_* —
//                       node-based containers allocate per element; hot
//                       state lives in the SoA vectors.
//   hot-mutex           mutex types and lock/lock_guard/unique_lock — the
//                       engine is single-threaded by design; sharded
//                       sweeps parallelise across engines, never inside.
//   hot-stream          iostream objects (cout/stringstream/fstream...) —
//                       formatting belongs in obs/trace, after the run.
//   hot-throw           `throw` — exceptional exits cost nothing until
//                       thrown, but a throw in the per-event path is a
//                       control-flow bug, not error handling. Genuine
//                       invariant checks carry an inline suppression
//                       with the invariant spelled out.
//   hot-regex           std::regex — never acceptable per event.
//
// The same body scanner powers the async-signal-safety discipline: a
// function marked `LUMOS_SIGNAL_HANDLER` (the handler run_ingest's
// graceful shutdown installs, util/signal_util.cpp) may only do what
// POSIX 2.4.3 allows — store into a lock-free atomic and return. Findings
// inside a marked handler body:
//
//   signal-alloc   new / make_unique / malloc family / free — malloc
//                  takes a lock the interrupted thread may hold.
//   signal-mutex   mutex types and lock guards — same deadlock, spelled
//                  out.
//   signal-stream  stdio/iostream and the LUMOS_* log macros — they
//                  buffer, lock, and allocate; set a flag, log outside.
//   signal-throw   `throw` — unwinding out of a signal handler is UB.
//   signal-handler-misuse  marker on a declaration instead of the
//                  definition.
//
// Mechanics: the scanner works on stripped content (strip_for_scan), finds
// each marker token, skips to the first '{' at parenthesis depth 0
// (the function body — so default arguments and noexcept(...) clauses are
// crossed correctly), and brace-matches to the body's end. Lambdas and
// nested blocks inside the body are part of it and are scanned too. A
// marker followed by ';' before any body is `hot-path-misuse` (marking a
// declaration checks nothing). Markers inside an already-marked body are
// ignored. util/annotations.hpp (the definition site) is exempt.
//
// All diagnostics honour `// lumos-lint: allow(<rule>) <reason>`.
#pragma once

#include <string_view>
#include <vector>

#include "lint/lint.hpp"

namespace lumos::lint {

/// Scans one file for LUMOS_HOT_PATH bodies and returns rule findings,
/// sorted by line. Pure; unit-testable on fixture strings.
[[nodiscard]] std::vector<Diagnostic> check_hot_paths(
    std::string_view rel_path, std::string_view content);

/// check_hot_paths over a loaded tree; suppressions applied, diagnostics
/// sorted by (file, line).
[[nodiscard]] std::vector<Diagnostic> check_hot_paths(
    const std::vector<SourceFile>& files);

/// Scans one file for LUMOS_SIGNAL_HANDLER bodies and returns
/// async-signal-safety findings, sorted by line. Pure; unit-testable.
[[nodiscard]] std::vector<Diagnostic> check_signal_handlers(
    std::string_view rel_path, std::string_view content);

/// check_signal_handlers over a loaded tree.
[[nodiscard]] std::vector<Diagnostic> check_signal_handlers(
    const std::vector<SourceFile>& files);

}  // namespace lumos::lint
