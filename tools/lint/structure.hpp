// Include-graph analysis: the structural half of lumos_lint.
//
// Where lint.hpp's rules look at one file at a time, this pass sees the
// whole tree at once. It parses every `#include "..."` directive, builds
// the file-level include graph and the module-level dependency graph
// (module = first path component: "sim/simulator.cpp" is in `sim`), and
// enforces three rules:
//
//   include-cycle   the file-level include graph must be acyclic. Each
//                   strongly-connected component with a cycle is reported
//                   ONCE, at its lexicographically-smallest member, with
//                   the full cycle path in the message.
//   layer-inversion every module edge (A includes a header of B) must be
//                   declared in the layer DAG (tools/lint/layers.txt,
//                   parsed by parse_layers). The declared graph itself is
//                   validated acyclic at parse time, so conformance of
//                   the code implies an acyclic module graph.
//   include-cpp     #include of a .cpp/.cc file — a translation unit is
//                   compiled, never textually included.
//
// `layers.txt` is the checked-in source of truth: one line per module,
//     <module>: <allowed dep> <allowed dep> ...
// so admitting a new module (or a new edge) is a reviewable one-line
// diff. Unknown modules fail (`layer-unknown-module`) rather than pass
// silently. Angle-bracket includes and quoted includes that are neither
// module-qualified nor present in the scanned file set (system and
// third-party headers) are ignored.
//
// All diagnostics honour the inline suppression syntax from lint.hpp.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lint.hpp"

namespace lumos::lint {

/// The declared module layer DAG. `allowed[m]` is the set of modules m
/// may include from (membership of m itself is implied).
struct LayerSpec {
  std::map<std::string, std::set<std::string>> allowed;

  [[nodiscard]] bool knows(std::string_view module) const {
    return allowed.find(std::string(module)) != allowed.end();
  }
};

/// Parses layers.txt content: `#` comments, blank lines, and one
/// `<module>: <dep> <dep> ...` line per module. Throws
/// lumos::InvalidArgument on malformed lines, deps naming undeclared
/// modules, self-deps, duplicate module lines, or a cyclic declared
/// graph — a broken spec is a configuration error, not a finding.
[[nodiscard]] LayerSpec parse_layers(std::string_view text);

/// Runs the include-graph rules over `files` (typically the
/// concatenation of load_tree("src"), load_tree("bench", "bench/"), so
/// cross-tree edges are visible). Diagnostics come back sorted by
/// (file, line) with inline suppressions already applied.
[[nodiscard]] std::vector<Diagnostic> check_structure(
    const std::vector<SourceFile>& files, const LayerSpec& layers);

}  // namespace lumos::lint
