#include "lint/hotpath.hpp"

#include <algorithm>
#include <array>
#include <regex>
#include <string>

namespace lumos::lint {

namespace {

struct MarkerRule {
  const char* name;
  std::vector<const char*> fast;  // any-of substring screen
  std::regex pattern;
  const char* message;
};

/// A marker-scoped body pass: find `marker`, brace-match the function body
/// that follows, and hold every line of it to `rules`. The hot-path and
/// signal-handler disciplines are the two instances.
struct MarkerPass {
  std::string_view marker;
  const char* misuse_rule;
  const char* misuse_message;
  const std::vector<MarkerRule>* rules;
};

const std::vector<MarkerRule>& hot_rules() {
  static const std::vector<MarkerRule> rules = [] {
    std::vector<MarkerRule> r;
    r.push_back({"hot-alloc",
                 {"new", "alloc", "make_unique", "make_shared"},
                 std::regex(R"(\bnew\b|\b(?:m|c|re)alloc\s*\(|\bmake_unique\b|\bmake_shared\b)"),
                 "heap allocation in a hot path: per-event allocation "
                 "dominates the event-throughput bench — preallocate in "
                 "setup code or use the SoA pools"});
    r.push_back({"hot-node-container",
                 {"map", "set", "list"},
                 std::regex(R"(\bstd\s*::\s*(?:unordered_)?(?:multi)?(?:map|set)\s*<|\bstd\s*::\s*(?:forward_)?list\s*<)"),
                 "node-based container in a hot path: every insert "
                 "allocates a node — hot state belongs in the flat SoA "
                 "vectors (sim/job_soa.hpp)"});
    r.push_back({"hot-mutex",
                 {"lock", "mutex"},
                 std::regex(R"(\bstd\s*::\s*(?:recursive_|shared_|timed_)*mutex\b|\b(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b|\.\s*lock\s*\()"),
                 "lock acquisition in a hot path: the engine is "
                 "single-threaded by design — parallelism shards across "
                 "engines (sim/sweep), never inside the event loop"});
    r.push_back({"hot-stream",
                 {"cout", "cerr", "clog", "stream"},
                 std::regex(R"(\bstd\s*::\s*(?:cout|cerr|clog)\b|\bstd\s*::\s*[io]?(?:string|f)stream\b|\bstd\s*::\s*basic_[io]?stream\b)"),
                 "stream I/O in a hot path: formatting and flushing stall "
                 "the event loop — record into obs counters/histograms and "
                 "render after the run"});
    r.push_back({"hot-throw",
                 {"throw"},
                 std::regex(R"(\bthrow\b)"),
                 "throw in a hot path: if this guards a genuine invariant, "
                 "suppress with the invariant spelled out; otherwise return "
                 "a status the caller can branch on"});
    r.push_back({"hot-regex",
                 {"regex"},
                 std::regex(R"(\bstd\s*::\s*regex\b|\bregex_(?:search|match|replace)\s*\()"),
                 "std::regex in a hot path: compilation and matching are "
                 "orders of magnitude too slow per event — parse in setup "
                 "code"});
    return r;
  }();
  return rules;
}

// Async-signal-safety: a handler body may touch lock-free atomics,
// sig_atomic_t, and the short POSIX async-signal-safe list — nothing that
// allocates, locks, formats, or unwinds. POSIX 2.4.3 is the authority;
// these rules catch the ways C++ code usually violates it.
const std::vector<MarkerRule>& signal_rules() {
  static const std::vector<MarkerRule> rules = [] {
    std::vector<MarkerRule> r;
    r.push_back({"signal-alloc",
                 {"new", "alloc", "make_unique", "make_shared"},
                 std::regex(R"(\bnew\b|\b(?:m|c|re)alloc\s*\(|\bfree\s*\(|\bmake_unique\b|\bmake_shared\b)"),
                 "allocation in a signal handler: malloc takes a lock the "
                 "interrupted thread may already hold — handlers store "
                 "into a pre-existing lock-free atomic and return"});
    r.push_back({"signal-mutex",
                 {"lock", "mutex"},
                 std::regex(R"(\bstd\s*::\s*(?:recursive_|shared_|timed_)*mutex\b|\b(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b|\.\s*lock\s*\()"),
                 "lock in a signal handler: if the interrupted thread "
                 "holds it the process deadlocks — only lock-free atomics "
                 "are async-signal-safe"});
    r.push_back({"signal-stream",
                 {"cout", "cerr", "clog", "stream", "printf", "puts",
                  "LUMOS_INFO", "LUMOS_WARN", "LUMOS_ERROR", "LUMOS_DEBUG"},
                 std::regex(R"(\bstd\s*::\s*(?:cout|cerr|clog)\b|\bstd\s*::\s*[io]?(?:string|f)stream\b|\b(?:f|s|vf|vs)?printf\s*\(|\bputs\s*\(|\bLUMOS_(?:INFO|WARN|ERROR|DEBUG)\b)"),
                 "I/O or logging in a signal handler: stdio and the "
                 "LUMOS_* log macros buffer, lock, and allocate — none of "
                 "which is async-signal-safe; set a flag and log from the "
                 "normal control path"});
    r.push_back({"signal-throw",
                 {"throw"},
                 std::regex(R"(\bthrow\b)"),
                 "throw in a signal handler: unwinding out of a handler "
                 "is undefined behaviour — record the condition in an "
                 "atomic and act on it outside the handler"});
    return r;
  }();
  return rules;
}

const MarkerPass& hot_pass() {
  static const MarkerPass pass{
      "LUMOS_HOT_PATH", "hot-path-misuse",
      "LUMOS_HOT_PATH marks a declaration, not a definition — the marker "
      "checks a function body, so put it on the definition",
      &hot_rules()};
  return pass;
}

const MarkerPass& signal_pass() {
  static const MarkerPass pass{
      "LUMOS_SIGNAL_HANDLER", "signal-handler-misuse",
      "LUMOS_SIGNAL_HANDLER marks a declaration, not a definition — the "
      "marker checks a function body, so put it on the definition",
      &signal_rules()};
  return pass;
}

int line_of(std::string_view text, std::size_t offset) {
  return 1 + static_cast<int>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(offset),
                            '\n'));
}

bool is_ident(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Best-effort function name for messages: the last identifier before the
/// first '(' between the marker and the body.
std::string function_name(std::string_view stripped, std::size_t from,
                          std::size_t to) {
  const std::string_view sig = stripped.substr(from, to - from);
  const std::size_t paren = sig.find('(');
  if (paren == std::string_view::npos) return "(unknown)";
  std::size_t end = paren;
  while (end > 0 && !is_ident(sig[end - 1])) --end;
  std::size_t begin = end;
  while (begin > 0 && is_ident(sig[begin - 1])) --begin;
  if (begin == end) return "(unknown)";
  return std::string(sig.substr(begin, end - begin));
}

struct Body {
  std::size_t open = 0;   // offset of '{' in stripped content
  std::size_t close = 0;  // offset one past the matching '}'
  std::string name;
  bool misuse = false;    // marker on a declaration (hit ';' first)
  std::size_t misuse_at = 0;
};

/// Locates the function body following a marker at `marker_end`. Crosses
/// parenthesised regions (parameter lists, noexcept clauses, default
/// arguments containing braces are inside parens so they don't confuse
/// the depth-0 '{' search).
Body find_body(std::string_view stripped, std::size_t marker_end) {
  Body body;
  int paren = 0;
  std::size_t i = marker_end;
  for (; i < stripped.size(); ++i) {
    const char c = stripped[i];
    if (c == '(') ++paren;
    else if (c == ')') --paren;
    else if (c == ';' && paren == 0) {
      body.misuse = true;
      body.misuse_at = i;
      return body;
    } else if (c == '{' && paren == 0) {
      break;
    }
  }
  if (i >= stripped.size()) {
    body.misuse = true;
    body.misuse_at = marker_end;
    return body;
  }
  body.open = i;
  body.name = function_name(stripped, marker_end, i);
  int depth = 0;
  for (; i < stripped.size(); ++i) {
    if (stripped[i] == '{') ++depth;
    else if (stripped[i] == '}' && --depth == 0) {
      ++i;
      break;
    }
  }
  body.close = i;  // end of content counts as close for unbalanced input
  return body;
}

std::vector<Diagnostic> scan_marked_bodies(const MarkerPass& pass,
                                           std::string_view rel_path,
                                           std::string_view content) {
  std::vector<Diagnostic> out;
  if (rel_path == "util/annotations.hpp") return out;  // definition site

  const std::string stripped = strip_for_scan(content);
  std::size_t scanned_until = 0;  // markers inside a scanned body: skip
  std::size_t pos = 0;
  while ((pos = stripped.find(pass.marker, pos)) != std::string::npos) {
    const std::size_t marker_at = pos;
    pos += pass.marker.size();
    // Token boundary: don't fire on e.g. LUMOS_HOT_PATH_SOMETHING.
    if (pos < stripped.size() && is_ident(stripped[pos])) continue;
    if (marker_at > 0 && is_ident(stripped[marker_at - 1])) continue;
    if (marker_at < scanned_until) continue;  // nested marker, deduped

    const Body body = find_body(stripped, pos);
    if (body.misuse) {
      out.push_back({std::string(rel_path), line_of(stripped, marker_at),
                     pass.misuse_rule, pass.misuse_message});
      continue;
    }
    scanned_until = body.close;

    // Scan the body line by line against the pass's rules.
    std::size_t line_start = body.open;
    int line_no = line_of(stripped, body.open);
    while (line_start < body.close) {
      std::size_t nl = stripped.find('\n', line_start);
      if (nl == std::string::npos || nl > body.close) nl = body.close;
      const std::string_view line =
          std::string_view(stripped).substr(line_start, nl - line_start);
      for (const MarkerRule& rule : *pass.rules) {
        const bool maybe = std::any_of(
            rule.fast.begin(), rule.fast.end(), [&](const char* needle) {
              return line.find(needle) != std::string_view::npos;
            });
        if (!maybe) continue;
        if (std::regex_search(line.begin(), line.end(), rule.pattern)) {
          out.push_back({std::string(rel_path), line_no, rule.name,
                         std::string(rule.message) + " (in " + body.name +
                             ")"});
        }
      }
      line_start = nl + 1;
      ++line_no;
    }
  }

  apply_suppressions(rel_path, content, out);
  std::stable_sort(out.begin(), out.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line < b.line;
                   });
  return out;
}

std::vector<Diagnostic> scan_tree(const MarkerPass& pass,
                                  const std::vector<SourceFile>& files) {
  std::vector<Diagnostic> out;
  for (const SourceFile& file : files) {
    auto diags = scan_marked_bodies(pass, file.rel_path, file.content);
    out.insert(out.end(), std::make_move_iterator(diags.begin()),
               std::make_move_iterator(diags.end()));
  }
  return out;
}

}  // namespace

std::vector<Diagnostic> check_hot_paths(std::string_view rel_path,
                                        std::string_view content) {
  return scan_marked_bodies(hot_pass(), rel_path, content);
}

std::vector<Diagnostic> check_hot_paths(const std::vector<SourceFile>& files) {
  return scan_tree(hot_pass(), files);
}

std::vector<Diagnostic> check_signal_handlers(std::string_view rel_path,
                                              std::string_view content) {
  return scan_marked_bodies(signal_pass(), rel_path, content);
}

std::vector<Diagnostic> check_signal_handlers(
    const std::vector<SourceFile>& files) {
  return scan_tree(signal_pass(), files);
}

}  // namespace lumos::lint
