// lumos-lint: an offline checker for lumos domain invariants.
//
// Reproducibility and determinism are load-bearing for the paper's
// methodology, so a handful of project rules are enforced mechanically
// rather than by review:
//
//   banned-rng      rand()/srand()/std::random_device anywhere outside
//                   util/rng — all stochastic code must draw from the
//                   seeded util::Rng streams.
//   raw-thread      std::thread/std::jthread/std::async/.detach() outside
//                   util/thread_pool — concurrency goes through the pool
//                   so shutdown and exception semantics stay uniform.
//   stdout-io       std::cout/std::cerr/std::clog in library code (src/)
//                   or bench harnesses outside the explicit allowlist
//                   (util/logging, obs/json.cpp's "-" output path, and the
//                   two bench entry-point files) — everything else logs
//                   via LUMOS_* or renders into a caller-supplied stream.
//   float-time      `float` in sim/, trace/, or core/ — simulator time and
//                   core-hour accounting are double-only; float silently
//                   loses whole seconds past ~97 days of simulated time.
//   sim-priority-queue
//                   std::priority_queue in sim/ outside sim/event_queue.hpp
//                   — event ordering must flow through sim::EventQueue so
//                   the documented event_before tie-break (not heap
//                   insertion order) decides same-timestamp ties, and the
//                   calendar/heap backends stay bit-equivalent.
//   naked-catch-all `catch (...)` handlers that neither rethrow nor
//                   convert/capture the exception (throw, typed
//                   lumos::Error, or std::current_exception) — swallowing
//                   an unknown exception reports success on failure. The
//                   ThreadPool boundary is allowlisted.
//   raw-exit        exit()/abort()/quick_exit()/_Exit() in library code:
//                   tearing the process down skips destructors, pending
//                   flushes, and the supervisor's exit-code taxonomy
//                   (bench/common.hpp). Only entry-point TUs — files that
//                   define `int main(` — own their process and may exit.
//                   Async-signal-safe POSIX `_exit(2)` (the post-fork
//                   idiom in supervise/process.cpp) is deliberately not
//                   matched.
//   pragma-once     every header starts (after comments) with #pragma once.
//   include-hygiene no parent-relative ("../") or backslashed include
//                   paths, and no duplicate includes within a file.
//
// Structural passes live alongside this per-file engine:
//   structure.hpp   include-graph analysis — file-level include cycles,
//                   includes of .cpp files, and module layer inversions
//                   against the declared DAG in tools/lint/layers.txt.
//   hotpath.hpp     LUMOS_HOT_PATH function-body discipline — no heap
//                   allocation, node containers, locks, stream I/O,
//                   throw, or std::regex inside marked hot functions.
//   baseline.hpp    (file, rule)-count baseline with --ratchet semantics:
//                   pinned findings pass, new ones fail.
//
// Any rule can be suppressed inline, on the offending line or the line
// directly above it:
//     // lumos-lint: allow(<rule>) <reason>
// The reason is mandatory — a bare allow() is itself a finding
// (`lint-suppression`), so every exception in the tree documents why.
//
// The scanner strips comments and string/char literal contents first
// (including raw strings and `\`-spliced line comments), so mentions in
// documentation or messages do not trip the token rules.
// `lint_source` is the pure, unit-testable core; `lint_tree` walks a
// directory; the `lumos_lint` binary wraps the latter as a ctest case.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace lumos::obs {
class Registry;
}  // namespace lumos::obs

namespace lumos::lint {

struct Diagnostic {
  std::string file;     // path as passed to lint_source / tree-relative
  int line = 0;         // 1-based
  std::string rule;     // stable rule id, e.g. "banned-rng"
  std::string message;  // human-readable explanation
};

/// One source file, loaded for analysis. `rel_path` uses forward slashes
/// and is relative to the source root with the tree prefix applied (the
/// same convention as lint_source) — "sim/simulator.cpp",
/// "bench/common.hpp".
struct SourceFile {
  std::string rel_path;
  std::string content;
};

/// "file:line: [rule] message" — the one true diagnostic format.
[[nodiscard]] std::string format(const Diagnostic& d);

/// Returns `content` with comments and string/char-literal contents
/// blanked (newlines preserved), so token rules see only real code.
/// Handles //, /* */, "..." with escapes, '...', and R"delim(...)delim".
[[nodiscard]] std::string strip_for_scan(std::string_view content);

/// Lints one file's contents. `rel_path` uses forward slashes and is
/// interpreted relative to the source root (e.g. "sim/simulator.cpp",
/// "util/rng.hpp"); it selects which rules apply. Diagnostics come back
/// sorted by line.
[[nodiscard]] std::vector<Diagnostic> lint_source(std::string_view rel_path,
                                                  std::string_view content);

/// Removes diagnostics covered by an inline suppression in `content` —
/// `// lumos-lint: allow(<rule>) <reason>` on the diagnostic's own line
/// or the line immediately above — and appends a `lint-suppression`
/// diagnostic for every suppression that lacks a reason. Called by
/// lint_source and by the structural passes; exposed for tests.
void apply_suppressions(std::string_view rel_path, std::string_view content,
                        std::vector<Diagnostic>& diags);

/// Reads every .hpp/.cpp/.h/.cc under `root` (deterministic path order)
/// with `prefix` prepended to each relative path — the input format the
/// structural passes (structure.hpp, hotpath.hpp) consume, loaded once
/// and shared across passes. Throws lumos::InvalidArgument on IO errors.
[[nodiscard]] std::vector<SourceFile> load_tree(
    const std::filesystem::path& root, std::string_view prefix = "");

/// Lints every .hpp/.cpp under `root` (deterministic path order).
/// Diagnostic paths are relative to `root`, with `prefix` prepended before
/// rule selection — so a tree rooted at bench/ lints its files as
/// "bench/<file>" when called with prefix "bench/". Pass "" for a root
/// whose children are already top-level rule domains (src/).
[[nodiscard]] std::vector<Diagnostic> lint_tree(
    const std::filesystem::path& root, std::string_view prefix = "");

/// As above, but also publishes the scan cost into `registry`:
/// `lint.files` / `lint.findings` counters, a `lint.tree_seconds`
/// histogram sample (obs::ScopedTimer), and a `lint.duration_ms` gauge —
/// so a full-tree lint shows up in the bench-style JSON next to the
/// workloads it gates.
[[nodiscard]] std::vector<Diagnostic> lint_tree(
    const std::filesystem::path& root, std::string_view prefix,
    obs::Registry& registry);

}  // namespace lumos::lint
