// lumos_lint CLI: the project's structural gatekeeper.
//
//   lumos_lint [options] <source-dir>...
//
//   --pass rules|layers|hotpath|signals
//                                 run one pass (repeatable; default: all)
//   --layers <file>               layer DAG spec (default tools/lint/layers.txt)
//   --baseline <file>             baseline file (default tools/lint/baseline.json)
//   --ratchet                     tolerate findings pinned in the baseline;
//                                 only findings beyond a pin fail
//   --write-baseline              persist the current findings as the new
//                                 baseline (the ratchet tightens: counts
//                                 can only shrink) and exit 0
//   --json <path>                 machine-readable report ("-" = stdout)
//
// Passes: `rules` is the per-file engine (lint.hpp), `layers` the
// include-graph analysis against the declared DAG (structure.hpp),
// `hotpath` the LUMOS_HOT_PATH body discipline, and `signals` the
// LUMOS_SIGNAL_HANDLER async-signal-safety discipline (hotpath.hpp,
// which hosts both marker-scoped scanners). Trees are
// loaded once and shared; the structural passes see the concatenation of
// every root, so cross-root edges (bench/ including src/ headers) are
// part of the graph.
//
// Exit status: 0 clean (under --ratchet: nothing beyond the baseline),
// 1 findings, 2 usage/IO/config error. Diagnostics print as
// `<base>/<file>:<line>: [rule] message` — absolute when the roots are
// absolute (ctest), so editors can jump to them — followed by per-rule
// counts and a one-line summary.
#include <algorithm>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint/baseline.hpp"
#include "lint/hotpath.hpp"
#include "lint/lint.hpp"
#include "lint/structure.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "util/error.hpp"

namespace {

struct Options {
  std::vector<std::string> roots;
  bool pass_rules = true;
  bool pass_layers = true;
  bool pass_hotpath = true;
  bool pass_signals = true;
  std::string layers_file = "tools/lint/layers.txt";
  std::string baseline_file = "tools/lint/baseline.json";
  bool ratchet = false;
  bool write_baseline = false;
  std::string json_path;  // empty = no report
};

void usage(std::ostream& out) {
  out << "usage: lumos_lint [options] <source-dir>...\n"
         "  --pass rules|layers|hotpath|signals\n"
         "                               run one pass (repeatable; default "
         "all)\n"
         "  --layers <file>              layer DAG (default "
         "tools/lint/layers.txt)\n"
         "  --baseline <file>            baseline (default "
         "tools/lint/baseline.json)\n"
         "  --ratchet                    only findings beyond the baseline "
         "fail\n"
         "  --write-baseline             pin the current findings and exit\n"
         "  --json <path>                machine-readable report (\"-\" = "
         "stdout)\n";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw lumos::InvalidArgument("lumos_lint: cannot read " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// Per-root display base so findings print as jump-to-able paths: a root
/// ".../src" lints files as "sim/x.cpp" and prints ".../src/sim/x.cpp";
/// a root ".../bench" lints as "bench/x.cpp" and prints ".../bench/x.cpp".
struct RootBase {
  std::string prefix;  // "" or "bench/"
  std::string base;    // directory to prepend for display
};

std::string display_path(const std::vector<RootBase>& bases,
                         const std::string& file) {
  const RootBase* best = nullptr;
  for (const RootBase& rb : bases) {
    if (file.rfind(rb.prefix, 0) != 0) continue;
    if (best == nullptr || rb.prefix.size() > best->prefix.size()) best = &rb;
  }
  if (best == nullptr || best->base.empty()) return file;
  return best->base + "/" + file;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::vector<std::string> passes;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "lumos_lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      usage(std::cout);
      return 0;
    } else if (arg == "--pass") {
      passes.push_back(value("--pass"));
    } else if (arg == "--layers") {
      opt.layers_file = value("--layers");
    } else if (arg == "--baseline") {
      opt.baseline_file = value("--baseline");
    } else if (arg == "--ratchet") {
      opt.ratchet = true;
    } else if (arg == "--write-baseline") {
      opt.write_baseline = true;
    } else if (arg == "--json") {
      opt.json_path = value("--json");
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "lumos_lint: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    } else {
      opt.roots.push_back(arg);
    }
  }
  if (!passes.empty()) {
    opt.pass_rules = opt.pass_layers = opt.pass_hotpath = false;
    opt.pass_signals = false;
    for (const std::string& p : passes) {
      if (p == "rules") opt.pass_rules = true;
      else if (p == "layers") opt.pass_layers = true;
      else if (p == "hotpath") opt.pass_hotpath = true;
      else if (p == "signals") opt.pass_signals = true;
      else {
        std::cerr << "lumos_lint: unknown pass '" << p
                  << "' (rules|layers|hotpath|signals)\n";
        return 2;
      }
    }
  }
  if (opt.roots.empty()) {
    std::cerr << "lumos_lint: no source directory given (try: lumos_lint "
                 "src bench)\n";
    return 2;
  }

  try {
    lumos::obs::Registry registry;
    std::vector<lumos::lint::Diagnostic> findings;
    std::vector<RootBase> bases;
    {
      lumos::obs::ScopedTimer timer(registry.histogram("lint.tree_seconds"));

      // Load every root once; all passes share the same file set.
      std::vector<lumos::lint::SourceFile> files;
      for (const std::string& root : opt.roots) {
        const auto path = std::filesystem::path(root).lexically_normal();
        std::string name = path.filename().string();
        if (name.empty()) name = path.parent_path().filename().string();
        const std::string prefix = name == "src" ? "" : name + "/";
        const std::string base =
            prefix.empty() ? path.string() : path.parent_path().string();
        bases.push_back({prefix, base});
        auto tree = lumos::lint::load_tree(path, prefix);
        files.insert(files.end(), std::make_move_iterator(tree.begin()),
                     std::make_move_iterator(tree.end()));
      }

      if (opt.pass_rules) {
        for (const auto& file : files) {
          auto diags = lumos::lint::lint_source(file.rel_path, file.content);
          findings.insert(findings.end(),
                          std::make_move_iterator(diags.begin()),
                          std::make_move_iterator(diags.end()));
        }
      }
      if (opt.pass_layers) {
        const auto spec =
            lumos::lint::parse_layers(read_file(opt.layers_file));
        auto diags = lumos::lint::check_structure(files, spec);
        findings.insert(findings.end(), std::make_move_iterator(diags.begin()),
                        std::make_move_iterator(diags.end()));
      }
      if (opt.pass_hotpath) {
        auto diags = lumos::lint::check_hot_paths(files);
        findings.insert(findings.end(), std::make_move_iterator(diags.begin()),
                        std::make_move_iterator(diags.end()));
      }
      if (opt.pass_signals) {
        auto diags = lumos::lint::check_signal_handlers(files);
        findings.insert(findings.end(), std::make_move_iterator(diags.begin()),
                        std::make_move_iterator(diags.end()));
      }

      std::stable_sort(findings.begin(), findings.end(),
                       [](const lumos::lint::Diagnostic& a,
                          const lumos::lint::Diagnostic& b) {
                         if (a.file != b.file) return a.file < b.file;
                         return a.line < b.line;
                       });

      registry.counter("lint.files").add(files.size());
      registry.counter("lint.findings").add(findings.size());
      registry.gauge("lint.duration_ms").set(timer.elapsed_seconds() * 1e3);
    }

    if (opt.write_baseline) {
      const auto baseline = lumos::lint::baseline_from(findings);
      std::ofstream out(opt.baseline_file, std::ios::binary);
      if (!out) {
        throw lumos::InvalidArgument("lumos_lint: cannot write " +
                                     opt.baseline_file);
      }
      out << lumos::lint::to_json(baseline) << "\n";
      std::cout << "lumos_lint: pinned " << findings.size() << " finding"
                << (findings.size() == 1 ? "" : "s") << " into "
                << opt.baseline_file << "\n";
      return 0;
    }

    // Under --ratchet, split findings against the baseline; only fresh
    // ones fail. A missing baseline file ratchets against empty.
    std::vector<lumos::lint::Diagnostic> failing = findings;
    std::size_t pinned = 0;
    std::size_t stale = 0;
    if (opt.ratchet) {
      lumos::lint::Baseline baseline;
      if (std::filesystem::exists(opt.baseline_file)) {
        baseline =
            lumos::lint::baseline_from_json(read_file(opt.baseline_file));
      }
      auto result = lumos::lint::ratchet(findings, baseline);
      failing = std::move(result.fresh);
      pinned = result.pinned.size();
      stale = result.stale.size();
    }

    for (const auto& d : failing) {
      lumos::lint::Diagnostic shown = d;
      shown.file = display_path(bases, d.file);
      std::cout << lumos::lint::format(shown) << "\n";
    }

    // Per-rule counts over everything that failed.
    std::map<std::string, std::size_t> by_rule;
    for (const auto& d : failing) ++by_rule[d.rule];
    for (const auto& [rule, count] : by_rule) {
      std::cout << "  " << rule << ": " << count << "\n";
    }

    if (!opt.json_path.empty()) {
      lumos::obs::Json doc = lumos::obs::Json::object();
      doc["schema_version"] = lumos::obs::Json(std::int64_t{1});
      lumos::obs::Json arr = lumos::obs::Json::array();
      for (const auto& d : failing) {
        lumos::obs::Json entry = lumos::obs::Json::object();
        entry["file"] = lumos::obs::Json(d.file);
        entry["line"] = lumos::obs::Json(std::int64_t{d.line});
        entry["rule"] = lumos::obs::Json(d.rule);
        entry["message"] = lumos::obs::Json(d.message);
        arr.push_back(std::move(entry));
      }
      doc["findings"] = std::move(arr);
      doc["ratchet"] = lumos::obs::Json(opt.ratchet);
      doc["pinned"] = lumos::obs::Json(static_cast<std::int64_t>(pinned));
      doc["metrics"] = lumos::obs::to_json(registry.snapshot());
      lumos::obs::write_json(doc, opt.json_path);
    }

    if (failing.empty()) {
      std::cout << "lumos_lint: clean (" << opt.roots.size() << " tree"
                << (opt.roots.size() == 1 ? "" : "s") << " checked";
      if (opt.ratchet && pinned > 0) {
        std::cout << ", " << pinned << " baselined";
      }
      if (opt.ratchet && stale > 0) {
        std::cout << ", " << stale
                  << " stale pin(s) — run --write-baseline to tighten";
      }
      std::cout << ")\n";
      return 0;
    }
    std::cout << "lumos_lint: " << failing.size() << " violation"
              << (failing.size() == 1 ? "" : "s");
    if (opt.ratchet && pinned > 0) std::cout << " (" << pinned << " baselined)";
    std::cout << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "lumos_lint: " << e.what() << "\n";
    return 2;
  }
}
