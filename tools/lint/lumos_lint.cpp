// lumos_lint CLI: walks source trees and reports domain-invariant
// violations (see lint.hpp for the rule catalogue). Exit status 0 means a
// clean tree, 1 means violations were printed, 2 means usage/IO error.
// Registered as a ctest case so `ctest` fails on any violation.
#include <exception>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      std::cout << "usage: lumos_lint <source-dir>...\n"
                   "Checks lumos domain invariants: banned-rng, raw-thread,\n"
                   "stdout-io, float-time, pragma-once, include-hygiene.\n";
      return 0;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "lumos_lint: no source directory given (try: lumos_lint "
                 "src)\n";
    return 2;
  }

  std::size_t total = 0;
  try {
    for (const auto& root : roots) {
      // A root named other than "src" (e.g. bench/) lints its files under
      // that name, so the per-directory rule domains in lint_source apply.
      const auto path = std::filesystem::path(root).lexically_normal();
      std::string name = path.filename().string();
      if (name.empty()) name = path.parent_path().filename().string();
      const std::string prefix = name == "src" ? "" : name + "/";
      const auto diags = lumos::lint::lint_tree(path, prefix);
      const std::string base =
          prefix.empty() ? path.string() : path.parent_path().string();
      for (const auto& d : diags) {
        if (base.empty()) {
          std::cout << lumos::lint::format(d) << '\n';
        } else {
          std::cout << base << '/' << lumos::lint::format(d) << '\n';
        }
      }
      total += diags.size();
    }
  } catch (const std::exception& e) {
    std::cerr << "lumos_lint: " << e.what() << '\n';
    return 2;
  }

  if (total == 0) {
    std::cout << "lumos_lint: clean (" << roots.size() << " tree"
              << (roots.size() == 1 ? "" : "s") << " checked)\n";
    return 0;
  }
  std::cout << "lumos_lint: " << total << " violation"
            << (total == 1 ? "" : "s") << '\n';
  return 1;
}
