#include "lint/structure.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <regex>
#include <sstream>

#include "util/error.hpp"

namespace lumos::lint {

namespace {

std::string_view module_of(std::string_view path) {
  const std::size_t slash = path.find('/');
  return slash == std::string_view::npos ? std::string_view{}
                                         : path.substr(0, slash);
}

bool is_tu_extension(std::string_view path) {
  return (path.size() >= 4 && path.substr(path.size() - 4) == ".cpp") ||
         (path.size() >= 3 && path.substr(path.size() - 3) == ".cc");
}

struct Include {
  std::string target;  // the quoted include path, verbatim
  int line = 0;        // 1-based
};

std::vector<Include> quoted_includes(std::string_view content) {
  static const std::regex include_re(R"re(^\s*#\s*include\s*"([^"]+)")re");
  std::vector<Include> out;
  std::size_t start = 0;
  int line = 0;
  while (start <= content.size()) {
    ++line;
    std::size_t nl = content.find('\n', start);
    if (nl == std::string_view::npos) nl = content.size();
    const std::string_view text = content.substr(start, nl - start);
    std::cmatch m;
    if (std::regex_search(text.begin(), text.end(), m, include_re)) {
      out.push_back({m[1].str(), line});
    }
    start = nl + 1;
  }
  return out;
}

// --------------------------------------------------- cycle detection --

/// Iterative Tarjan SCC over the file-level include graph. Nodes are
/// indices into `files`; adjacency lists hold node indices.
class SccFinder {
 public:
  explicit SccFinder(const std::vector<std::vector<std::uint32_t>>& adj)
      : adj_(adj),
        index_(adj.size(), kUnvisited),
        low_(adj.size(), 0),
        on_stack_(adj.size(), 0) {}

  /// Returns the strongly-connected components containing a cycle (size
  /// > 1, or a single node with a self-loop), in deterministic order.
  std::vector<std::vector<std::uint32_t>> cyclic_components() {
    for (std::uint32_t v = 0; v < adj_.size(); ++v) {
      if (index_[v] == kUnvisited) run(v);
    }
    return std::move(cyclic_);
  }

 private:
  static constexpr std::uint32_t kUnvisited = 0xffffffffu;

  struct Frame {
    std::uint32_t node;
    std::size_t next_edge = 0;
  };

  void run(std::uint32_t root) {
    std::vector<Frame> call;
    call.push_back({root});
    open(root);
    while (!call.empty()) {
      Frame& frame = call.back();
      if (frame.next_edge < adj_[frame.node].size()) {
        const std::uint32_t to = adj_[frame.node][frame.next_edge++];
        if (index_[to] == kUnvisited) {
          open(to);
          call.push_back({to});
        } else if (on_stack_[to] != 0) {
          low_[frame.node] = std::min(low_[frame.node], index_[to]);
        }
        continue;
      }
      // Post-order: pop a complete SCC when this node is its root.
      if (low_[frame.node] == index_[frame.node]) {
        std::vector<std::uint32_t> component;
        std::uint32_t w;
        do {
          w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = 0;
          component.push_back(w);
        } while (w != frame.node);
        const bool self_loop =
            component.size() == 1 &&
            std::find(adj_[w].begin(), adj_[w].end(), w) != adj_[w].end();
        if (component.size() > 1 || self_loop) {
          std::sort(component.begin(), component.end());
          cyclic_.push_back(std::move(component));
        }
      }
      const std::uint32_t done = frame.node;
      call.pop_back();
      if (!call.empty()) {
        low_[call.back().node] = std::min(low_[call.back().node], low_[done]);
      }
    }
  }

  void open(std::uint32_t v) {
    index_[v] = low_[v] = counter_++;
    stack_.push_back(v);
    on_stack_[v] = 1;
  }

  const std::vector<std::vector<std::uint32_t>>& adj_;
  std::vector<std::uint32_t> index_;
  std::vector<std::uint32_t> low_;
  std::vector<std::uint8_t> on_stack_;
  std::vector<std::uint32_t> stack_;
  std::uint32_t counter_ = 0;
  std::vector<std::vector<std::uint32_t>> cyclic_;
};

/// Shortest include path from `from` back to `from` staying inside the
/// component (BFS over the first hop's choices, smallest-index
/// tie-break) — so the diagnostic shows a REAL chain, not just the SCC
/// member list.
std::vector<std::uint32_t> cycle_path(
    std::uint32_t from, const std::vector<std::vector<std::uint32_t>>& adj,
    const std::vector<std::uint8_t>& in_component) {
  std::vector<std::uint32_t> parent(adj.size(), 0xffffffffu);
  std::deque<std::uint32_t> frontier;
  for (const std::uint32_t first : adj[from]) {
    if (in_component[first] == 0 || parent[first] != 0xffffffffu) continue;
    parent[first] = from;
    if (first == from) break;  // self-include
    frontier.push_back(first);
  }
  while (!frontier.empty() && parent[from] == 0xffffffffu) {
    const std::uint32_t v = frontier.front();
    frontier.pop_front();
    for (const std::uint32_t to : adj[v]) {
      if (in_component[to] == 0) continue;
      if (to == from) {
        parent[from] = v;
        break;
      }
      if (parent[to] == 0xffffffffu) {
        parent[to] = v;
        frontier.push_back(to);
      }
    }
  }
  std::vector<std::uint32_t> path{from};
  for (std::uint32_t v = parent[from]; v != from; v = parent[v]) {
    path.push_back(v);
  }
  path.push_back(from);
  std::reverse(path.begin(), path.end());  // from -> ... -> from
  return path;
}

}  // namespace

LayerSpec parse_layers(std::string_view text) {
  LayerSpec spec;
  std::vector<std::pair<std::string, std::vector<std::string>>> lines;
  std::size_t start = 0;
  int lineno = 0;
  while (start <= text.size()) {
    ++lineno;
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = text.substr(start, nl - start);
    start = nl + 1;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string_view::npos) continue;
    const std::size_t last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      throw InvalidArgument("layers.txt:" + std::to_string(lineno) +
                            ": expected '<module>: <deps...>', got \"" +
                            std::string(line) + "\"");
    }
    std::string module(line.substr(0, colon));
    while (!module.empty() && (module.back() == ' ' || module.back() == '\t')) {
      module.pop_back();
    }
    if (module.empty() || module.find_first_of(" \t/") != std::string::npos) {
      throw InvalidArgument("layers.txt:" + std::to_string(lineno) +
                            ": bad module name");
    }
    std::istringstream deps(std::string(line.substr(colon + 1)));
    std::vector<std::string> dep_list;
    std::string dep;
    while (deps >> dep) dep_list.push_back(dep);
    lines.emplace_back(std::move(module), std::move(dep_list));
  }

  for (const auto& [module, deps] : lines) {
    if (!spec.allowed.emplace(module, std::set<std::string>{}).second) {
      throw InvalidArgument("layers.txt: duplicate module line: " + module);
    }
  }
  for (auto& [module, deps] : lines) {
    auto& allowed = spec.allowed[module];
    for (const std::string& dep : deps) {
      if (dep == module) {
        throw InvalidArgument("layers.txt: " + module +
                              " lists itself as a dependency");
      }
      if (spec.allowed.find(dep) == spec.allowed.end()) {
        throw InvalidArgument("layers.txt: " + module +
                              " depends on undeclared module " + dep);
      }
      allowed.insert(dep);
    }
  }

  // The declared graph must itself be a DAG: iteratively strip modules
  // whose deps are all already stripped (Kahn); leftovers form a cycle.
  std::set<std::string> resolved;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const auto& [module, deps] : spec.allowed) {
      if (resolved.count(module) != 0) continue;
      const bool ready =
          std::all_of(deps.begin(), deps.end(), [&](const std::string& d) {
            return resolved.count(d) != 0;
          });
      if (ready) {
        resolved.insert(module);
        progress = true;
      }
    }
  }
  if (resolved.size() != spec.allowed.size()) {
    std::string cycle;
    for (const auto& [module, deps] : spec.allowed) {
      if (resolved.count(module) == 0) {
        cycle += cycle.empty() ? module : (", " + module);
      }
    }
    throw InvalidArgument("layers.txt: declared layer graph has a cycle "
                          "among: " +
                          cycle);
  }
  return spec;
}

std::vector<Diagnostic> check_structure(const std::vector<SourceFile>& files,
                                        const LayerSpec& layers) {
  // Index files by rel_path; extract each file's quoted includes once.
  std::map<std::string_view, std::uint32_t> by_path;
  for (std::uint32_t i = 0; i < files.size(); ++i) {
    by_path.emplace(files[i].rel_path, i);
  }
  std::vector<std::vector<Include>> includes(files.size());
  std::vector<std::vector<std::uint32_t>> adj(files.size());
  std::vector<Diagnostic> out;

  for (std::uint32_t i = 0; i < files.size(); ++i) {
    const SourceFile& file = files[i];
    includes[i] = quoted_includes(file.content);
    const std::string_view mod = module_of(file.rel_path);
    for (const Include& inc : includes[i]) {
      const auto hit = by_path.find(inc.target);
      if (hit != by_path.end()) adj[i].push_back(hit->second);

      if (is_tu_extension(inc.target)) {
        out.push_back({file.rel_path, inc.line, "include-cpp",
                       "#include \"" + inc.target +
                           "\": translation units are compiled, never "
                           "textually included — move shared code into a "
                           "header"});
      }

      const std::string_view target_mod = module_of(inc.target);
      if (target_mod.empty()) continue;  // not module-qualified
      const bool target_known = layers.knows(target_mod);
      if (!target_known && hit == by_path.end()) {
        continue;  // third-party quoted include (e.g. gtest/gtest.h)
      }
      if (mod.empty()) continue;  // top-level file: no module to check
      if (target_mod == mod) continue;
      if (!layers.knows(mod)) {
        out.push_back({file.rel_path, inc.line, "layer-unknown-module",
                       "module '" + std::string(mod) +
                           "' is not declared in layers.txt; add a "
                           "'<module>: <deps...>' line for it"});
        continue;
      }
      if (!target_known) {
        out.push_back({file.rel_path, inc.line, "layer-unknown-module",
                       "include of module '" + std::string(target_mod) +
                           "' which is not declared in layers.txt"});
        continue;
      }
      const auto& allowed = layers.allowed.at(std::string(mod));
      if (allowed.count(std::string(target_mod)) == 0) {
        std::string deps;
        for (const std::string& d : allowed) {
          deps += deps.empty() ? d : (", " + d);
        }
        out.push_back(
            {file.rel_path, inc.line, "layer-inversion",
             "module '" + std::string(mod) + "' may not include '" +
                 std::string(target_mod) + "' (declared deps: " +
                 (deps.empty() ? "none" : deps) +
                 ") — see tools/lint/layers.txt"});
      }
    }
  }

  // File-level include cycles: one diagnostic per cyclic SCC, anchored
  // at the smallest member's include of the next file on a real chain.
  for (const auto& component : SccFinder(adj).cyclic_components()) {
    std::vector<std::uint8_t> in_component(files.size(), 0);
    for (const std::uint32_t v : component) in_component[v] = 1;
    const std::uint32_t anchor = component.front();  // sorted: smallest
    const auto path = cycle_path(anchor, adj, in_component);
    std::string chain;
    for (const std::uint32_t v : path) {
      if (!chain.empty()) chain += " -> ";
      chain += files[v].rel_path;
    }
    int line = 1;
    for (const Include& inc : includes[anchor]) {
      if (path.size() > 1 && inc.target == files[path[1]].rel_path) {
        line = inc.line;
        break;
      }
    }
    out.push_back({files[anchor].rel_path, line, "include-cycle",
                   "include cycle: " + chain});
  }

  // Inline suppressions are per-file; group, filter, and re-merge.
  std::map<std::string, std::vector<Diagnostic>> by_file;
  for (auto& d : out) {
    by_file[d.file].push_back(std::move(d));
  }
  std::vector<Diagnostic> kept;
  for (auto& [path, mine] : by_file) {
    const auto hit = by_path.find(std::string_view(path));
    if (hit != by_path.end()) {
      apply_suppressions(path, files[hit->second].content, mine);
    }
    kept.insert(kept.end(), std::make_move_iterator(mine.begin()),
                std::make_move_iterator(mine.end()));
  }

  std::stable_sort(kept.begin(), kept.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return kept;
}

}  // namespace lumos::lint
