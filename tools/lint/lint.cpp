#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <sstream>
#include <unordered_set>

#include "obs/registry.hpp"
#include "util/error.hpp"

namespace lumos::lint {

namespace {

// ------------------------------------------------------------- stripping --

enum class ScanState { Code, LineComment, BlockComment, String, Char, Raw };

bool is_raw_string_start(std::string_view s, std::size_t i) {
  // `R"` possibly prefixed by u8/u/U/L, and not part of an identifier.
  if (s[i] != 'R' || i + 1 >= s.size() || s[i + 1] != '"') return false;
  std::size_t start = i;
  while (start > 0 &&
         (s[start - 1] == 'u' || s[start - 1] == 'U' || s[start - 1] == 'L' ||
          s[start - 1] == '8')) {
    --start;
  }
  if (start > 0 && (std::isalnum(static_cast<unsigned char>(s[start - 1])) ||
                    s[start - 1] == '_')) {
    return false;
  }
  return true;
}

}  // namespace

std::string strip_for_scan(std::string_view content) {
  std::string out(content);
  ScanState state = ScanState::Code;
  std::string raw_close;  // ")delim\"" for the active raw string
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case ScanState::Code:
        if (c == '/' && next == '/') {
          state = ScanState::LineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = ScanState::BlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (is_raw_string_start(content, i)) {
          // Collect the delimiter between `R"` and `(`.
          std::size_t d = i + 2;
          while (d < content.size() && content[d] != '(') ++d;
          raw_close = ")";
          raw_close.append(content.substr(i + 2, d - (i + 2)));
          raw_close.push_back('"');
          state = ScanState::Raw;
          i = d;  // keep R"...( visible; contents get blanked
        } else if (c == '"') {
          state = ScanState::String;
        } else if (c == '\'') {
          state = ScanState::Char;
        }
        break;
      case ScanState::LineComment:
        if (c == '\n') {
          // Backslash-newline is spliced in translation phase 2, BEFORE
          // comments are recognised — so a `//` comment whose line ends
          // with `\` (optionally followed by a CR) swallows the next
          // physical line too. Treating that line as code used to leak
          // comment text into the token rules.
          std::size_t back = i;
          if (back > 0 && content[back - 1] == '\r') --back;
          if (back == 0 || content[back - 1] != '\\') {
            state = ScanState::Code;
          }
        } else {
          out[i] = ' ';
        }
        break;
      case ScanState::BlockComment:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = ScanState::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case ScanState::String:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = ScanState::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case ScanState::Char:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = ScanState::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case ScanState::Raw:
        if (content.compare(i, raw_close.size(), raw_close) == 0) {
          i += raw_close.size() - 1;
          state = ScanState::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

namespace {

// ---------------------------------------------------------------- helpers --

std::vector<std::string_view> split_lines(std::string_view s) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t nl = s.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string first_component(std::string_view path) {
  const std::size_t slash = path.find('/');
  return std::string(slash == std::string_view::npos ? path
                                                     : path.substr(0, slash));
}

bool ends_with_any(std::string_view path,
                   std::initializer_list<std::string_view> suffixes) {
  return std::any_of(suffixes.begin(), suffixes.end(),
                     [&](std::string_view suffix) {
                       return path.size() >= suffix.size() &&
                              path.substr(path.size() - suffix.size()) ==
                                  suffix;
                     });
}

// True when `path` IS `file` or ends with "/<file>" — so the exemption for
// "util/rng.cpp" covers "src/util/rng.cpp" but not "synth/my_rng.cpp".
bool path_is_any(std::string_view path,
                 std::initializer_list<std::string_view> files) {
  return std::any_of(files.begin(), files.end(), [&](std::string_view file) {
    if (path == file) return true;
    if (path.size() <= file.size()) return false;
    return path[path.size() - file.size() - 1] == '/' &&
           path.substr(path.size() - file.size()) == file;
  });
}

bool blank(std::string_view line) {
  return line.find_first_not_of(" \t\r") == std::string_view::npos;
}

// ------------------------------------------------------------ token rules --

// `fast` holds plain substrings at least one of which must appear in a
// line before the regex is consulted; std::regex_search over every line
// of a ~40k-line tree dominates lint time, and a std::string_view::find
// pre-check rejects the overwhelmingly common no-match lines for cents.
// An empty list means "always run the regex".
struct TokenRule {
  const char* name;
  std::vector<const char*> fast;
  std::regex pattern;
  const char* message;
};

bool fast_path_hits(const TokenRule& rule, std::string_view line) {
  if (rule.fast.empty()) return true;
  return std::any_of(rule.fast.begin(), rule.fast.end(),
                     [&](const char* needle) {
                       return line.find(needle) != std::string_view::npos;
                     });
}

const std::vector<TokenRule>& rng_rules() {
  static const std::vector<TokenRule> rules = [] {
    std::vector<TokenRule> r;
    r.push_back({"banned-rng",
                 {"rand"},
                 std::regex(R"(\b(std\s*::\s*)?s?rand\s*\()"),
                 "rand()/srand() is unseeded global state; draw from a "
                 "seeded util::Rng instead"});
    r.push_back({"banned-rng", {"random_device"},
                 std::regex(R"(std\s*::\s*random_device\b)"),
                 "std::random_device is non-deterministic; seed a util::Rng "
                 "explicitly so runs reproduce bit-for-bit"});
    return r;
  }();
  return rules;
}

const std::vector<TokenRule>& thread_rules() {
  static const std::vector<TokenRule> rules = [] {
    std::vector<TokenRule> r;
    r.push_back({"raw-thread", {"thread"},
                 std::regex(R"(std\s*::\s*j?thread\b)"),
                 "raw std::thread escapes the pool's shutdown and exception "
                 "discipline; use util::ThreadPool"});
    r.push_back({"raw-thread", {"async"},
                 std::regex(R"(std\s*::\s*async\b)"),
                 "std::async has unspecified threading; use "
                 "util::ThreadPool::submit"});
    r.push_back({"raw-thread", {"detach"},
                 std::regex(R"(\.\s*detach\s*\(\s*\))"),
                 "detached threads cannot be joined at shutdown; use "
                 "util::ThreadPool"});
    return r;
  }();
  return rules;
}

const std::vector<TokenRule>& stdout_rules() {
  static const std::vector<TokenRule> rules = [] {
    std::vector<TokenRule> r;
    r.push_back({"stdout-io",
                 {"cout", "cerr", "clog"},
                 std::regex(R"(std\s*::\s*(cout|cerr|clog)\b)"),
                 "library code must log via util::logging (LUMOS_INFO & co), "
                 "not write to process-wide streams"});
    return r;
  }();
  return rules;
}

const std::vector<TokenRule>& exit_rules() {
  static const std::vector<TokenRule> rules = [] {
    std::vector<TokenRule> r;
    const char* message =
        "library code must not tear the process down (skips destructors, "
        "flushes, and the bench exit-code taxonomy); return an error or "
        "throw a typed lumos::Error, and exit only from main()";
    // Four separate patterns: `\bexit` deliberately fails to land inside
    // `quick_exit` or POSIX `_exit` (preceded by `_`, a word character),
    // so the async-signal-safe post-fork `_exit(2)` idiom stays legal.
    r.push_back({"raw-exit", {"exit"},
                 std::regex(R"(\b(std\s*::\s*)?exit\s*\()"), message});
    r.push_back({"raw-exit", {"quick_exit"},
                 std::regex(R"(\b(std\s*::\s*)?quick_exit\s*\()"), message});
    r.push_back({"raw-exit", {"abort"},
                 std::regex(R"(\b(std\s*::\s*)?abort\s*\()"), message});
    r.push_back({"raw-exit", {"_Exit"},
                 std::regex(R"(\b(std\s*::\s*)?_Exit\s*\()"), message});
    return r;
  }();
  return rules;
}

const std::vector<TokenRule>& float_rules() {
  static const std::vector<TokenRule> rules = [] {
    std::vector<TokenRule> r;
    r.push_back({"float-time", {"float"},
                 std::regex(R"(\bfloat\b)"),
                 "simulator time and accounting are double-only; float "
                 "drops whole seconds past ~97 days of simulated time"});
    return r;
  }();
  return rules;
}

const std::vector<TokenRule>& priority_queue_rules() {
  static const std::vector<TokenRule> rules = [] {
    std::vector<TokenRule> r;
    r.push_back({"sim-priority-queue",
                 {"priority_queue"},
                 std::regex(R"(std\s*::\s*priority_queue\b)"),
                 "simulator event ordering must go through sim::EventQueue "
                 "(sim/event_queue.hpp) so the documented event_before "
                 "tie-break — not heap insertion order — decides ties"});
    return r;
  }();
  return rules;
}

void apply_token_rules(const std::vector<TokenRule>& rules,
                       const std::vector<std::string_view>& stripped_lines,
                       std::string_view rel_path,
                       std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
    const auto& line = stripped_lines[i];
    for (const auto& rule : rules) {
      // Cheap any-of substring screen first; the regex only runs on
      // lines that could possibly match. ~10x fewer regex executions
      // on a full-tree scan.
      if (!fast_path_hits(rule, line)) continue;
      if (std::regex_search(line.begin(), line.end(), rule.pattern)) {
        out.push_back({std::string(rel_path), static_cast<int>(i + 1),
                       rule.name, rule.message});
      }
    }
  }
}

// ----------------------------------------------------- structural rules --

void check_pragma_once(const std::vector<std::string_view>& stripped_lines,
                       std::string_view rel_path,
                       std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
    if (blank(stripped_lines[i])) continue;
    const auto line = stripped_lines[i];
    const auto start = line.find_first_not_of(" \t");
    if (line.substr(start).rfind("#pragma once", 0) != 0) {
      out.push_back({std::string(rel_path), static_cast<int>(i + 1),
                     "pragma-once",
                     "headers must open with #pragma once (before any other "
                     "code, including include guards)"});
    }
    return;  // only the first non-comment line matters
  }
  out.push_back({std::string(rel_path), 1, "pragma-once",
                 "header has no #pragma once"});
}

void check_includes(const std::vector<std::string_view>& raw_lines,
                    std::string_view rel_path, std::vector<Diagnostic>& out) {
  static const std::regex include_re(
      R"(^\s*#\s*include\s*([<"])([^>"]*)[>"])");
  std::unordered_set<std::string> seen;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    std::cmatch m;
    if (!std::regex_search(raw_lines[i].begin(), raw_lines[i].end(), m,
                           include_re)) {
      continue;
    }
    const std::string target = m[2].str();
    const int line = static_cast<int>(i + 1);
    if (target.find("..") != std::string::npos) {
      out.push_back({std::string(rel_path), line, "include-hygiene",
                     "parent-relative include \"" + target +
                         "\"; include project headers root-relative "
                         "(e.g. \"util/rng.hpp\")"});
    }
    if (target.find('\\') != std::string::npos) {
      out.push_back({std::string(rel_path), line, "include-hygiene",
                     "backslash in include path \"" + target + "\""});
    }
    if (!seen.insert(target).second) {
      out.push_back({std::string(rel_path), line, "include-hygiene",
                     "duplicate include of \"" + target + "\""});
    }
  }
}

// --------------------------------------------------- naked-catch-all rule --

// `catch (...)` that neither rethrows nor captures the exception erases
// the error entirely — the caller observes success where there was a
// failure. Handlers must rethrow (`throw;`), convert to a typed
// lumos::Error (`throw InternalError(...)`), or capture via
// std::current_exception for deferred rethrow. The ThreadPool boundary is
// allowlisted at the call site in lint_source.
void check_naked_catch_all(std::string_view stripped,
                           std::string_view rel_path,
                           std::vector<Diagnostic>& out) {
  static const std::regex catch_re(R"(\bcatch\s*\(\s*\.\.\.\s*\))");
  const auto end = std::cregex_iterator();
  for (auto it = std::cregex_iterator(
           stripped.data(), stripped.data() + stripped.size(), catch_re);
       it != end; ++it) {
    const auto match_pos = static_cast<std::size_t>(it->position());
    const std::size_t open =
        stripped.find('{', match_pos + static_cast<std::size_t>(it->length()));
    bool clean = false;
    if (open != std::string_view::npos) {
      int depth = 0;
      std::size_t i = open;
      for (; i < stripped.size(); ++i) {
        if (stripped[i] == '{') {
          ++depth;
        } else if (stripped[i] == '}' && --depth == 0) {
          break;
        }
      }
      const std::string_view body = stripped.substr(open, i - open);
      clean = body.find("throw") != std::string_view::npos ||
              body.find("current_exception") != std::string_view::npos;
    }
    if (!clean) {
      const int line = 1 + static_cast<int>(std::count(
                               stripped.begin(),
                               stripped.begin() +
                                   static_cast<std::ptrdiff_t>(match_pos),
                               '\n'));
      out.push_back(
          {std::string(rel_path), line, "naked-catch-all",
           "catch (...) swallows the error; rethrow, convert to a typed "
           "lumos::Error, or capture std::current_exception"});
    }
  }
}

}  // namespace

// ----------------------------------------------------------- public API --

std::string format(const Diagnostic& d) {
  std::ostringstream os;
  os << d.file << ':' << d.line << ": [" << d.rule << "] " << d.message;
  return os.str();
}

std::vector<Diagnostic> lint_source(std::string_view rel_path,
                                    std::string_view content) {
  std::vector<Diagnostic> out;
  const std::string stripped = strip_for_scan(content);
  const auto stripped_lines = split_lines(stripped);
  const auto raw_lines = split_lines(content);
  const std::string top = first_component(rel_path);
  const bool is_header = ends_with_any(rel_path, {".hpp", ".h"});
  // Paths under tools/, examples/, and tests/ are binaries and harnesses:
  // they may print and (in tests) spawn threads deliberately. bench/ is
  // checked like library code — harnesses render through streams handed to
  // them, and only the files on the explicit stdout allowlist below own
  // the process-wide streams.
  const bool checked_code =
      top != "tools" && top != "examples" && top != "tests";

  if (checked_code &&
      !path_is_any(rel_path, {"util/rng.hpp", "util/rng.cpp"})) {
    apply_token_rules(rng_rules(), stripped_lines, rel_path, out);
  }
  if (checked_code && !path_is_any(rel_path, {"util/thread_pool.hpp",
                                              "util/thread_pool.cpp"})) {
    apply_token_rules(thread_rules(), stripped_lines, rel_path, out);
    // Same allowlist: the pool's deferred-rethrow machinery is the one
    // sanctioned catch-all boundary.
    check_naked_catch_all(stripped, rel_path, out);
  }
  // stdout-io allowlist, one entry per legitimate stream owner:
  //  * util/logging      — the logging sink itself;
  //  * obs/json.cpp      — write_json's documented "-" = stdout path;
  //  * bench/common.hpp  — harness_main, the standalone-binary adapter;
  //  * bench/bench_runner.cpp — the runner's progress/usage output.
  if (checked_code &&
      !path_is_any(rel_path,
                   {"util/logging.hpp", "util/logging.cpp", "obs/json.cpp",
                    "bench/common.hpp", "bench/bench_runner.cpp"})) {
    apply_token_rules(stdout_rules(), stripped_lines, rel_path, out);
  }
  // raw-exit: entry-point TUs (anything defining `int main(`) own their
  // process and may exit/abort — e.g. a harness's generated main or the
  // runner's --inject-fault crash hook. Everything else must return or
  // throw so the supervisor sees the documented exit-code taxonomy.
  if (checked_code) {
    static const std::regex main_re(R"(\bint\s+main\s*\()");
    if (!std::regex_search(stripped.begin(), stripped.end(), main_re)) {
      apply_token_rules(exit_rules(), stripped_lines, rel_path, out);
    }
  }
  if (top == "sim" || top == "trace" || top == "core") {
    apply_token_rules(float_rules(), stripped_lines, rel_path, out);
  }
  // sim-priority-queue: the EventQueue heap backend is the ONE sanctioned
  // std::priority_queue in the simulator — every other event collection
  // must use the shared abstraction so the event_before total order (and
  // the calendar/heap bit-equivalence it guarantees) cannot fork.
  if (top == "sim" && !path_is_any(rel_path, {"sim/event_queue.hpp",
                                              "sim/event_queue.cpp"})) {
    apply_token_rules(priority_queue_rules(), stripped_lines, rel_path, out);
  }
  if (is_header) check_pragma_once(stripped_lines, rel_path, out);
  check_includes(raw_lines, rel_path, out);

  apply_suppressions(rel_path, content, out);
  std::stable_sort(out.begin(), out.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line < b.line;
                   });
  return out;
}

void apply_suppressions(std::string_view rel_path, std::string_view content,
                        std::vector<Diagnostic>& diags) {
  // Suppressions are read from the RAW text: the stripper blanks comment
  // interiors, and the whole point of `// lumos-lint: allow(...)` is to
  // live in a comment.
  static const std::regex allow_re(
      R"(//\s*lumos-lint:\s*allow\(([A-Za-z0-9_-]+)\)[ \t]*(\S?))");
  struct Allow {
    std::string rule;
    bool has_reason = false;
  };
  std::vector<Allow> by_line;  // index = 0-based line
  bool any = false;
  {
    const auto raw_lines = split_lines(content);
    by_line.resize(raw_lines.size());
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
      const auto& line = raw_lines[i];
      if (line.find("lumos-lint:") == std::string_view::npos) continue;
      std::cmatch m;
      if (!std::regex_search(line.begin(), line.end(), m, allow_re)) continue;
      by_line[i] = {m[1].str(), m[2].length() > 0};
      any = true;
    }
  }
  if (!any) return;

  std::erase_if(diags, [&](const Diagnostic& d) {
    for (int line : {d.line, d.line - 1}) {  // own line, then line above
      const auto i = static_cast<std::size_t>(line - 1);
      if (line >= 1 && i < by_line.size() && by_line[i].has_reason &&
          by_line[i].rule == d.rule) {
        return true;
      }
    }
    return false;
  });
  for (std::size_t i = 0; i < by_line.size(); ++i) {
    if (!by_line[i].rule.empty() && !by_line[i].has_reason) {
      diags.push_back({std::string(rel_path), static_cast<int>(i + 1),
                       "lint-suppression",
                       "allow(" + by_line[i].rule +
                           ") needs a reason: a suppression that does not "
                           "say why is a finding, not an exemption"});
    }
  }
}

std::vector<SourceFile> load_tree(const std::filesystem::path& root,
                                  std::string_view prefix) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(root)) {
    throw InvalidArgument("lumos_lint: not a directory: " + root.string());
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<SourceFile> out;
  out.reserve(files.size());
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) throw InvalidArgument("lumos_lint: unreadable: " + file.string());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out.push_back(
        {std::string(prefix) + file.lexically_relative(root).generic_string(),
         std::move(buffer).str()});
  }
  return out;
}

std::vector<Diagnostic> lint_tree(const std::filesystem::path& root,
                                  std::string_view prefix) {
  std::vector<Diagnostic> out;
  for (const SourceFile& file : load_tree(root, prefix)) {
    auto diags = lint_source(file.rel_path, file.content);
    out.insert(out.end(), std::make_move_iterator(diags.begin()),
               std::make_move_iterator(diags.end()));
  }
  return out;
}

std::vector<Diagnostic> lint_tree(const std::filesystem::path& root,
                                  std::string_view prefix,
                                  obs::Registry& registry) {
  obs::ScopedTimer timer(registry.histogram("lint.tree_seconds"));
  const auto files = load_tree(root, prefix);
  std::vector<Diagnostic> out;
  for (const SourceFile& file : files) {
    auto diags = lint_source(file.rel_path, file.content);
    out.insert(out.end(), std::make_move_iterator(diags.begin()),
               std::make_move_iterator(diags.end()));
  }
  registry.counter("lint.files").add(files.size());
  registry.counter("lint.findings").add(out.size());
  // Gauge mirror of the histogram sample: a single lint run's wall cost,
  // directly greppable in the emitted JSON.
  registry.gauge("lint.duration_ms").set(timer.elapsed_seconds() * 1e3);
  return out;
}

}  // namespace lumos::lint
