// docs_check — documentation consistency gate (the `docs_check` ctest).
//
// Docs drift silently: a module gets added to tools/lint/layers.txt but
// never to docs/ARCHITECTURE.md, or a FIGURES.md row keeps naming a bench
// binary that was renamed away. This tool pins the two invariants the
// docs overhaul established:
//
//   1. every module declared in tools/lint/layers.txt (and the `bench`
//      pseudo-module) is documented in docs/ARCHITECTURE.md — matched as
//      a backticked `module` mention, the way the module map writes them;
//   2. every bench binary named in a docs/FIGURES.md table row
//      (first-column `| `name` |` cells) exists as bench/<name>.cpp.
//
// Usage: docs_check --repo <repo root>. Prints one line per violation and
// exits non-zero on any, so `ctest -R docs_check` gives file-level
// diagnostics. Registered in tools/CMakeLists.txt; also run by
// tools/check.sh's docs stage.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "docs_check: cannot read " << path << '\n';
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Module names from layers.txt: leading `name:` of non-comment lines.
std::vector<std::string> layer_modules(const std::string& text) {
  std::vector<std::string> modules;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    const auto colon = line.find(':', first);
    if (colon == std::string::npos) continue;
    modules.push_back(line.substr(first, colon - first));
  }
  return modules;
}

/// First-column backticked binary names of FIGURES.md table rows.
std::vector<std::string> figures_binaries(const std::string& text) {
  std::vector<std::string> names;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    // A data row starts "| `name`"; header/separator rows do not.
    const auto tick = line.find("| `");
    if (tick != 0) continue;
    const auto start = tick + 3;
    const auto end = line.find('`', start);
    if (end == std::string::npos) continue;
    names.push_back(line.substr(start, end - start));
  }
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path repo = ".";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::string(argv[i]) == "--repo") repo = argv[i + 1];
  }
  const auto layers = read_file(repo / "tools" / "lint" / "layers.txt");
  const auto architecture =
      read_file(repo / "docs" / "ARCHITECTURE.md");
  const auto figures = read_file(repo / "docs" / "FIGURES.md");
  if (layers.empty() || architecture.empty() || figures.empty()) return 2;

  int violations = 0;

  for (const auto& module : layer_modules(layers)) {
    // The module map writes modules as backticked `name` mentions.
    if (architecture.find("`" + module + "`") == std::string::npos) {
      std::cout << "docs_check: module \"" << module
                << "\" (tools/lint/layers.txt) is not documented in "
                   "docs/ARCHITECTURE.md\n";
      ++violations;
    }
  }

  for (const auto& name : figures_binaries(figures)) {
    const fs::path source = repo / "bench" / (name + ".cpp");
    if (!fs::exists(source)) {
      std::cout << "docs_check: docs/FIGURES.md names binary \"" << name
                << "\" but bench/" << name << ".cpp does not exist\n";
      ++violations;
    }
  }

  if (violations == 0) {
    std::cout << "docs_check: clean (" << layer_modules(layers).size()
              << " modules, " << figures_binaries(figures).size()
              << " bench binaries checked)\n";
    return 0;
  }
  std::cout << "docs_check: " << violations << " violation(s)\n";
  return 1;
}
