// lumos — unified command-line front-end.
//
//   lumos generate  --system Mira --days 7 --out mira.swf [--format swf|csv]
//                   [--dag-workflows N --dag-shape chain|forkjoin|layered]
//                   [--heavy-tail-prob P --heavy-tail-mult M]
//   lumos validate  --swf trace.swf --system Theta
//   lumos characterize [--swf trace.swf --system NAME | --days D --seed S]
//   lumos simulate  --swf trace.swf --system Theta --policy fcfs
//                   --backfill adaptive [--factor 0.1] [--hedge 1.25]
//   lumos fit       --swf trace.swf --system Theta [--regen-days D --out f.swf]
//   lumos predict   --system Philly [--days D] [--max-jobs N]
//   lumos takeaways [--days D --seed S]
//   lumos perf-gate --baseline BENCH_results.json --current new.json
//                   [--max-regression 0.20]
//
// Every subcommand works on synthetic workloads out of the box and accepts
// real traces in SWF (or lumos CSV via --csv).
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "obs/json.hpp"

#include "core/lumos.hpp"
#include "synth/dag.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using lumos::util::format;

struct Cli {
  std::string command;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = options.find(key);
    if (it == options.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] double number(const std::string& key, double fallback) const {
    const auto v = get(key);
    return v ? std::atof(v->c_str()) : fallback;
  }
};

int usage() {
  std::cerr <<
      "usage: lumos <command> [options]\n"
      "commands:\n"
      "  generate     synthesise a calibrated workload to SWF/CSV\n"
      "  validate     run the paper's consistency screening on a trace\n"
      "  characterize full cross-system report (or one real trace)\n"
      "  simulate     schedule a trace with a chosen policy + backfill\n"
      "               (--audit checks event-loop invariants every event)\n"
      "  fit          fit a calibration to a trace (and optionally regen)\n"
      "  predict      runtime-prediction study (use case 1)\n"
      "  takeaways    evaluate the paper's 8 takeaways on a fresh study\n"
      "  perf-gate    fail when a throughput gauge regresses vs a baseline\n"
      "common options: --system NAME --days D --seed S --swf FILE --csv FILE\n"
      "                --dag-workflows N [--dag-shape chain|forkjoin|layered]\n"
      "                --heavy-tail-prob P [--heavy-tail-mult M]\n"
      "                (simulate: --policy cp --hedge T for DAG workloads)\n";
  return 2;
}

lumos::trace::Trace load_or_generate(const Cli& cli) {
  const std::string system = cli.get("system").value_or("Theta");
  auto trace = [&]() -> lumos::trace::Trace {
    if (const auto swf = cli.get("swf")) {
      const auto spec = lumos::trace::find_system_spec(system);
      if (!spec) throw lumos::InvalidArgument("unknown system: " + system);
      return lumos::trace::read_swf_file(*swf, *spec);
    }
    if (const auto csv = cli.get("csv")) {
      const auto spec = lumos::trace::find_system_spec(system);
      if (!spec) throw lumos::InvalidArgument("unknown system: " + system);
      return lumos::trace::read_lumos_csv_file(*csv, *spec);
    }
    if (cli.get("dag-workflows")) {
      lumos::synth::DagWorkloadOptions options;
      options.seed = static_cast<std::uint64_t>(cli.number("seed", 42));
      options.workflows =
          static_cast<std::size_t>(cli.number("dag-workflows", 64));
      if (const auto shape = cli.get("dag-shape")) {
        options.shape = lumos::synth::workflow_shape_from_string(*shape);
      }
      return lumos::synth::generate_dag_workload(options);
    }
    lumos::synth::GeneratorOptions options;
    options.seed = static_cast<std::uint64_t>(cli.number("seed", 42));
    if (cli.get("days")) options.duration_days = cli.number("days", 14.0);
    if (cli.get("max-jobs")) {
      options.max_jobs = static_cast<std::size_t>(cli.number("max-jobs", 0));
    }
    return lumos::synth::generate_system(system, options);
  }();
  if (cli.get("heavy-tail-prob")) {
    lumos::synth::HeavyTailOptions tail;
    tail.seed = static_cast<std::uint64_t>(cli.number("seed", 42)) + 1;
    tail.fraction = cli.number("heavy-tail-prob", tail.fraction);
    tail.max_multiplier = cli.number("heavy-tail-mult", tail.max_multiplier);
    trace = lumos::synth::inject_heavy_tail(trace, tail);
  }
  return trace;
}

int cmd_generate(const Cli& cli) {
  const auto trace = load_or_generate(cli);
  const std::string out = cli.get("out").value_or(
      trace.spec().name + ".swf");
  const std::string fmt = cli.get("format").value_or(
      out.size() > 4 && out.substr(out.size() - 4) == ".csv" ? "csv" : "swf");
  if (fmt == "csv") {
    lumos::trace::write_lumos_csv_file(out, trace);
  } else {
    lumos::trace::write_swf_file(out, trace);
  }
  std::cout << trace.spec().name << ": " << trace.size() << " jobs -> "
            << out << " (" << fmt << ")\n";
  return 0;
}

int cmd_validate(const Cli& cli) {
  const auto trace = load_or_generate(cli);
  const auto report = lumos::trace::validate(trace);
  std::cout << report.to_string();
  return report.consistent() ? 0 : 1;
}

int cmd_characterize(const Cli& cli) {
  if (cli.get("swf") || cli.get("csv")) {
    const auto trace = load_or_generate(cli);
    lumos::core::CrossSystemStudy study(
        std::vector<lumos::trace::Trace>{trace});
    std::cout << study.full_report();
    return 0;
  }
  lumos::core::StudyOptions options;
  options.seed = static_cast<std::uint64_t>(cli.number("seed", 42));
  if (cli.get("days")) options.duration_days = cli.number("days", 14.0);
  if (const auto systems = cli.get("systems")) {
    for (auto part : lumos::util::split(*systems, ',')) {
      options.systems.emplace_back(part);
    }
  }
  const lumos::core::CrossSystemStudy study(options);
  std::cout << study.full_report();
  if (const auto dir = cli.get("export")) {
    study.export_csv(*dir);
    std::cout << "CSV series written to " << *dir << "/" << std::endl;
  }
  return 0;
}

int cmd_simulate(const Cli& cli) {
  const auto trace = load_or_generate(cli);
  lumos::sim::SimConfig config;
  config.policy =
      lumos::sim::policy_from_string(cli.get("policy").value_or("fcfs"));
  config.backfill.kind =
      lumos::sim::backfill_from_string(cli.get("backfill").value_or("easy"));
  config.backfill.relax_factor = cli.number("factor", 0.10);
  config.audit = cli.get("audit").has_value();
  if (cli.get("hedge")) {
    config.hedge.threshold = cli.number("hedge", 1.25);
    config.hedge.min_planned_s = cli.number("hedge-min-planned", 60.0);
  }
  const auto result = lumos::sim::simulate(trace, config);
  const auto metrics = lumos::sim::compute_metrics(trace, result);
  std::cout << trace.spec().name << " x " << to_string(config.policy)
            << " + " << to_string(config.backfill.kind) << ":\n  "
            << metrics.to_string() << "\n";
  if (config.audit) {
    const auto& c = result.counters;
    std::cout << lumos::util::format(
        "  audit: %llu checks, %llu failures (events=%llu passes=%llu "
        "sorts=%llu profile_rebuilds=%llu cache_hits=%llu)\n",
        static_cast<unsigned long long>(c.audits),
        static_cast<unsigned long long>(c.audit_failures),
        static_cast<unsigned long long>(c.events),
        static_cast<unsigned long long>(c.scheduling_passes),
        static_cast<unsigned long long>(c.sort_invocations),
        static_cast<unsigned long long>(c.profile_rebuilds),
        static_cast<unsigned long long>(c.profile_cache_hits));
  }
  if (config.hedge.enabled()) {
    const auto& c = result.counters;
    std::cout << lumos::util::format(
        "  hedges: %llu launched, %llu won, %llu cancelled "
        "(wasted %.1f core-h)\n",
        static_cast<unsigned long long>(c.hedges_launched),
        static_cast<unsigned long long>(c.hedges_won),
        static_cast<unsigned long long>(c.hedges_cancelled),
        c.hedge_wasted_core_hours);
  }
  if (result.used_oracle_runtimes) {
    std::cout << "  (trace lacks walltime requests; planning used oracle "
                 "runtimes)\n";
  }
  return 0;
}

int cmd_fit(const Cli& cli) {
  const auto trace = load_or_generate(cli);
  const auto fit = lumos::synth::fit_calibration(trace);
  const auto& cal = fit.calibration;
  std::cout << "Fitted calibration for " << cal.spec.name << ":\n"
            << format("  users=%d window=%.1fd burst_prob=%.2f "
                      "burst_mean=%.1fs idle_mean=%.1fs\n",
                      cal.num_users, cal.duration_days, cal.burst_prob,
                      cal.burst_mean_s, cal.idle_mean_s)
            << format("  runtime: exp(N(%.2f, %.2f^2)) corr=%.2f\n",
                      cal.log_run_mu, cal.log_run_sigma,
                      cal.size_runtime_corr)
            << format("  kill sigmoid: base=%.2f max=%.2f mid=%.2f "
                      "width=%.2f; fail=%.2f\n",
                      cal.kill_base, cal.kill_max, cal.kill_log_mid,
                      cal.kill_log_width, cal.fail_base)
            << format("  waits: P0=%.2f med=%.0fs sigma=%.2f\n",
                      cal.wait_zero_prob, cal.wait_log_med_s,
                      cal.wait_log_sigma)
            << format("  sizes: %zu distinct requests\n", cal.sizes.size());
  if (const auto out = cli.get("out")) {
    lumos::synth::GeneratorOptions options;
    options.seed = static_cast<std::uint64_t>(cli.number("seed", 42));
    if (cli.get("regen-days")) {
      options.duration_days = cli.number("regen-days", cal.duration_days);
    }
    lumos::synth::WorkloadGenerator generator(cal, options);
    const auto regen = generator.generate();
    lumos::trace::write_swf_file(*out, regen);
    std::cout << "Regenerated " << regen.size() << " jobs -> " << *out
              << "\n";
  }
  return 0;
}

int cmd_predict(const Cli& cli) {
  const auto trace = load_or_generate(cli);
  lumos::predict::StudyConfig config;
  config.max_jobs = static_cast<std::size_t>(cli.number("max-jobs", 8000));
  const auto result = lumos::predict::run_prediction_study(trace, config);
  lumos::util::TextTable t({"model", "elapsed", "underest base",
                            "underest +elapsed", "accuracy base",
                            "accuracy +elapsed"});
  for (auto model : config.models) {
    for (double frac : config.elapsed_fractions) {
      const auto& base = result.row(model, false, frac);
      const auto& with = result.row(model, true, frac);
      t.add_row({lumos::predict::to_string(model),
                 format("avg/%.0f", 1.0 / frac),
                 lumos::util::percent(base.underestimate_rate),
                 lumos::util::percent(with.underestimate_rate),
                 lumos::util::percent(base.accuracy),
                 lumos::util::percent(with.accuracy)});
    }
  }
  std::cout << result.system << " (avg runtime "
            << lumos::util::fixed(result.avg_runtime_s, 0) << " s):\n"
            << t.render();
  return 0;
}

// ------------------------------------------------------------ perf-gate --

lumos::obs::Json load_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw lumos::InvalidArgument("perf-gate: unreadable: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lumos::obs::Json::parse(buffer.str());
}

// Throughput gauges the gate watches, one per engine: the simulator's
// jobs/s and the streaming ingest's events/s.
constexpr std::string_view kThroughputGauges[] = {"sim.jobs_per_sec",
                                                  "stream.events_per_sec"};

// Named throughput gauge for one harness section, or nullopt when absent.
std::optional<double> throughput_gauge(const lumos::obs::Json& harness,
                                       std::string_view key) {
  const auto* gauges = harness.find("gauges");
  if (!gauges) return std::nullopt;
  const auto* gauge = gauges->find(key);
  if (!gauge || !gauge->is_number()) return std::nullopt;
  return gauge->as_double();
}

// Compares the kThroughputGauges per harness between two bench_runner
// JSON documents. Throughput lives in gauges precisely because it is NOT
// deterministic — so the gate tolerates noise (default 20%) and only
// fails on a real collapse, the check tools/check.sh runs as bench:perf.
// Harnesses present only in the baseline, or only in the current run,
// are reported but do not gate: the gate guards regressions of numbers
// both runs measured.
int cmd_perf_gate(const Cli& cli) {
  const auto baseline_path = cli.get("baseline");
  const auto current_path = cli.get("current");
  if (!baseline_path || !current_path) {
    std::cerr << "usage: lumos perf-gate --baseline A.json --current B.json"
                 " [--max-regression 0.20]\n";
    return 2;
  }
  const double max_regression = cli.number("max-regression", 0.20);
  const auto baseline = load_json(*baseline_path);
  const auto current = load_json(*current_path);
  const auto* base_harnesses = baseline.find("harnesses");
  const auto* cur_harnesses = current.find("harnesses");
  if (!base_harnesses || !cur_harnesses) {
    std::cerr << "perf-gate: missing top-level \"harnesses\" object\n";
    return 2;
  }
  int gated = 0;
  int failures = 0;
  for (const auto& [name, harness] : base_harnesses->entries()) {
    for (const auto key : kThroughputGauges) {
      const auto base = throughput_gauge(harness, key);
      if (!base || *base <= 0.0) continue;
      const auto* cur_harness = cur_harnesses->find(name);
      if (!cur_harness) {
        std::cout << "perf-gate: " << name
                  << ": not in current run (skipped)\n";
        continue;
      }
      const auto cur = throughput_gauge(*cur_harness, key);
      if (!cur) {
        std::cout << "perf-gate: " << name << ": " << key
                  << " missing in current run (skipped)\n";
        continue;
      }
      ++gated;
      const double floor = *base * (1.0 - max_regression);
      const bool ok = *cur >= floor;
      failures += !ok;
      std::cout << "perf-gate: " << name << ": " << key << " baseline "
                << lumos::util::fixed(*base, 0) << "/s, current "
                << lumos::util::fixed(*cur, 0) << "/s ("
                << lumos::util::percent(*cur / *base - 1.0) << ") "
                << (ok ? "ok" : "REGRESSION") << "\n";
    }
  }
  std::cout << "perf-gate: " << gated << " gauge(s) gated, " << failures
            << " regression(s) beyond "
            << lumos::util::percent(max_regression) << "\n";
  return failures == 0 ? 0 : 1;
}

int cmd_takeaways(const Cli& cli) {
  lumos::core::StudyOptions options;
  options.seed = static_cast<std::uint64_t>(cli.number("seed", 42));
  if (cli.get("days")) options.duration_days = cli.number("days", 10.0);
  const lumos::core::CrossSystemStudy study(options);
  const auto checks = lumos::core::check_takeaways(study);
  std::cout << lumos::core::render_takeaways(checks);
  int held = 0;
  for (const auto& c : checks) held += c.holds;
  std::cout << held << "/8 takeaways reproduced\n";
  return held == 8 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Cli cli;
  cli.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return usage();
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      cli.options[key] = argv[++i];
    } else {
      cli.options[key] = "1";
    }
  }
  try {
    if (cli.command == "generate") return cmd_generate(cli);
    if (cli.command == "validate") return cmd_validate(cli);
    if (cli.command == "characterize") return cmd_characterize(cli);
    if (cli.command == "simulate") return cmd_simulate(cli);
    if (cli.command == "fit") return cmd_fit(cli);
    if (cli.command == "predict") return cmd_predict(cli);
    if (cli.command == "takeaways") return cmd_takeaways(cli);
    if (cli.command == "perf-gate") return cmd_perf_gate(cli);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
