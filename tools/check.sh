#!/usr/bin/env bash
# One-command static-analysis + test gate.
#
# Runs, in sequence:
#   release   configure + build + full ctest (includes the lumos_lint and
#             bench_smoke cases)
#   sanitize  ASan+UBSan build + `ctest -L sanitize` invariant suite
#   tsan      ThreadSanitizer build + `ctest -L tsan` concurrency suite
#   failpoints Debug build with -DLUMOS_FAILPOINTS=ON + `ctest -L
#             failpoints` fault-injection suite (typed-error propagation)
#   lint      the lumos_lint ctest cases (lumos_lint token rules,
#             lint_layers include-graph/layer DAG, lint_hotpath
#             LUMOS_HOT_PATH discipline, lint_signals LUMOS_SIGNAL_HANDLER
#             async-signal-safety) with --output-on-failure so a
#             break prints file:line diagnostics, plus a direct --ratchet
#             run that prints per-rule finding counts
#             (clang-tidy additionally gates compiles when configured with
#              -DLUMOS_LINT=ON and a clang-tidy binary is on PATH)
#   docs      the docs_check ctest: every tools/lint/layers.txt module
#             must appear in docs/ARCHITECTURE.md and every bench binary
#             documented in docs/FIGURES.md must exist in bench/
#   bench     bench_runner --smoke --verify: every harness on capped
#             workloads, JSON self-check + same-seed determinism
#   bench:supervised  the bench_supervised_smoke ctest: fault drill of the
#             crash-isolated fleet (injected crash/hang/garbage, journal
#             resume, in-process-vs-supervised metric equivalence)
#   serve:chaos  the ext_serve_chaos drill standalone: lumos_serve killed
#             (SIGKILL) at seeded points mid-stream and SIGTERM'd once,
#             restarted, and required to replay only the gap since its
#             last checkpoint and reproduce the uninterrupted report
#             bit-identically (same-seed determinism via --verify is
#             covered by the bench:smoke stage, which runs it in-process)
#   bench:perf  `lumos perf-gate` compares the smoke run's throughput
#             gauges (sim.jobs_per_sec, stream.events_per_sec) against
#             the committed BENCH_results.json and fails on a >20%
#             regression
#
# Continues past failures and prints a single PASS/FAIL summary; exit
# status is non-zero if any stage failed. Run from the repo root:
#   ./tools/check.sh [--quick]
# --quick skips the sanitizer presets (release + lint only).
set -u

cd "$(dirname "$0")/.." || exit 2

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "usage: tools/check.sh [--quick]" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"
declare -a STAGES RESULTS
overall=0

run_stage() {
  local name="$1"; shift
  local log
  log="$(mktemp -t lumos-check-"$name".XXXXXX.log)"
  echo "==> $name"
  if "$@" >"$log" 2>&1; then
    STAGES+=("$name"); RESULTS+=("PASS")
  else
    STAGES+=("$name"); RESULTS+=("FAIL ($log)")
    overall=1
    tail -n 20 "$log" | sed 's/^/    /'
  fi
}

preset_stage() {
  local preset="$1" label="$2"
  run_stage "$preset:configure" cmake --preset "$preset"
  run_stage "$preset:build" cmake --build --preset "$preset" -j "$JOBS"
  if [ -n "$label" ]; then
    run_stage "$preset:test" ctest --preset "$preset" -j "$JOBS" \
      --output-on-failure
  else
    run_stage "$preset:test" ctest --test-dir build -j "$JOBS" \
      --output-on-failure
  fi
}

preset_stage release ""
if [ "$QUICK" -eq 0 ]; then
  preset_stage sanitize sanitize
  preset_stage tsan tsan
  preset_stage failpoints failpoints
fi
# Structural lint: the three registered ctest cases fail with file:line
# diagnostics; the direct run prints per-rule counts and exercises the
# committed baseline exactly as CI does.
run_stage "lint:ctest" ctest --test-dir build \
  -R '^(lumos_lint|lint_layers|lint_hotpath|lint_signals)$' \
  --output-on-failure
run_stage "lint:ratchet" ./build/tools/lumos_lint --ratchet \
  --layers tools/lint/layers.txt --baseline tools/lint/baseline.json \
  src bench
# Docs-rot gate: layers.txt modules ↔ ARCHITECTURE.md, FIGURES.md
# binaries ↔ bench/ sources (tools/docs_check.cpp).
run_stage "docs:check" ctest --test-dir build \
  -R '^docs_check$' --output-on-failure
run_stage "bench:smoke" ./build/bench/bench_runner --smoke --verify \
  --out build/BENCH_check.json
run_stage "bench:supervised" ctest --test-dir build \
  -R '^bench_supervised_smoke$' --output-on-failure
# Crash-consistency drill: kill -9 the serve daemon at seeded points,
# restart, and require gap-only replay plus a bit-identical final report
# (DESIGN.md §4g; the harness throws on any divergence).
run_stage "serve:chaos" ./build/bench/ext_serve_chaos --smoke
# Throughput gate: the bench:smoke stage above refreshed
# build/BENCH_check.json; gate its throughput gauges (sim.jobs_per_sec,
# stream.events_per_sec) against the committed baseline. 20% tolerance
# absorbs machine noise — the gate exists to catch order-of-magnitude
# collapses, not jitter.
run_stage "bench:perf" ./build/tools/lumos perf-gate \
  --baseline BENCH_results.json --current build/BENCH_check.json \
  --max-regression 0.20

echo
echo "================ check.sh summary ================"
for i in "${!STAGES[@]}"; do
  printf '  %-22s %s\n' "${STAGES[$i]}" "${RESULTS[$i]}"
done
if [ "$overall" -eq 0 ]; then
  echo "ALL STAGES PASSED"
else
  echo "SOME STAGES FAILED"
fi
exit "$overall"
