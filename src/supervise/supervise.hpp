// lumos::supervise — bounded-retry supervision of one child command.
//
// run_supervised() layers a deterministic retry policy over
// process.hpp's run_child(): each attempt is classified into the status
// taxonomy the bench journal records —
//
//   ok              exited 0 and (if a validator is installed) the
//                   output validated
//   failed          nonzero exit, or exit 0 with invalid output
//   timeout         killed by the supervisor for overrunning its deadline
//   crashed:SIGxxx  died on a signal of its own making
//
// Retry is for *transient* failures: crashes always retry, plain
// failures retry unless the exit code is the conventional usage error
// (2 — rerunning a malformed command line cannot help), timeouts retry
// only when opted in (a hung harness usually hangs again, and each retry
// costs a full deadline). Backoff before retry k is
// base * 2^(k-1), capped — computed by backoff_delay_seconds so tests
// can assert the schedule without sleeping (inject `sleep` to observe).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "supervise/process.hpp"

namespace lumos::supervise {

enum class Status { Ok, Failed, Timeout, Crashed };

struct Attempt {
  ChildResult child;
  Status status = Status::Failed;
  /// Human-readable cause for non-ok statuses ("exit code 3",
  /// "unparsable report: ...", ...).
  std::string detail;
};

/// "ok" / "failed" / "timeout" / "crashed:SIGSEGV".
[[nodiscard]] std::string status_string(const Attempt& attempt);

struct Options {
  ChildSpec spec;
  /// Total attempts (1 = no retry). Must be >= 1.
  std::size_t max_attempts = 1;
  double backoff_base_seconds = 0.5;
  double backoff_cap_seconds = 30.0;
  bool retry_timeouts = false;
  /// Output validator for exit-0 attempts: return "" to accept, or a
  /// message to classify the attempt as failed (e.g. garbage JSON on
  /// stdout). Unset = exit 0 is enough.
  std::function<std::string(const ChildResult&)> validate;
  /// Observes every attempt as it completes (journal append hook).
  /// `attempt_index` is 1-based.
  std::function<void(const Attempt&, std::size_t attempt_index)> on_attempt;
  /// Backoff sleeper; unset = real sleep. Tests inject a recorder.
  std::function<void(double seconds)> sleep;
};

struct SuperviseResult {
  std::vector<Attempt> attempts;
  bool ok = false;
  /// The attempt that settled the run (the last one).
  [[nodiscard]] const Attempt& final_attempt() const;
};

/// Delay before retry `retry_index` (1-based): base * 2^(retry-1), capped.
[[nodiscard]] double backoff_delay_seconds(const Options& options,
                                           std::size_t retry_index);

/// Whether the policy retries after `attempt` (ignoring attempt budget).
[[nodiscard]] bool retryable(const Attempt& attempt, const Options& options);

/// Runs the child under the policy. Throws lumos::InvalidArgument on a
/// malformed policy and lumos::InternalError when spawning itself fails;
/// every child misbehaviour lands in the result instead.
[[nodiscard]] SuperviseResult run_supervised(const Options& options);

}  // namespace lumos::supervise
