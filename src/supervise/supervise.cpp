#include "supervise/supervise.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/backoff.hpp"
#include "util/error.hpp"

namespace lumos::supervise {

namespace {

/// The conventional "usage error" exit code (bench/common.hpp kExitUsage):
/// rerunning a malformed command line is never transient.
constexpr int kUsageExitCode = 2;

Attempt classify(ChildResult child,
                 const std::function<std::string(const ChildResult&)>&
                     validate) {
  Attempt attempt;
  switch (child.outcome) {
    case ChildOutcome::Timeout:
      attempt.status = Status::Timeout;
      attempt.detail =
          child.escalated_to_kill
              ? "deadline exceeded; SIGTERM ignored, escalated to SIGKILL"
              : "deadline exceeded; stopped by SIGTERM";
      break;
    case ChildOutcome::Signaled:
      attempt.status = Status::Crashed;
      attempt.detail = "terminated by " + signal_name(child.term_signal);
      break;
    case ChildOutcome::Exited:
      if (child.exit_code != 0) {
        attempt.status = Status::Failed;
        attempt.detail = "exit code " + std::to_string(child.exit_code);
        if (child.exit_code == 127) attempt.detail += " (exec failure)";
      } else {
        std::string error = validate ? validate(child) : std::string();
        if (error.empty()) {
          attempt.status = Status::Ok;
        } else {
          attempt.status = Status::Failed;
          attempt.detail = std::move(error);
        }
      }
      break;
  }
  attempt.child = std::move(child);
  return attempt;
}

}  // namespace

std::string status_string(const Attempt& attempt) {
  switch (attempt.status) {
    case Status::Ok: return "ok";
    case Status::Failed: return "failed";
    case Status::Timeout: return "timeout";
    case Status::Crashed:
      return "crashed:" + signal_name(attempt.child.term_signal);
  }
  return "failed";
}

const Attempt& SuperviseResult::final_attempt() const {
  LUMOS_REQUIRE(!attempts.empty(), "supervise: no attempts recorded");
  return attempts.back();
}

double backoff_delay_seconds(const Options& options,
                             std::size_t retry_index) {
  // Shared schedule: stream::EventSource retries pace identically.
  return util::backoff_delay_seconds(options.backoff_base_seconds,
                                     options.backoff_cap_seconds,
                                     retry_index);
}

bool retryable(const Attempt& attempt, const Options& options) {
  switch (attempt.status) {
    case Status::Ok: return false;
    case Status::Crashed: return true;
    case Status::Timeout: return options.retry_timeouts;
    case Status::Failed:
      return attempt.child.exit_code != kUsageExitCode;
  }
  return false;
}

SuperviseResult run_supervised(const Options& options) {
  LUMOS_REQUIRE(options.max_attempts >= 1,
                "supervise: max_attempts must be >= 1");
  LUMOS_REQUIRE(options.backoff_base_seconds >= 0.0 &&
                    options.backoff_cap_seconds >= 0.0,
                "supervise: backoff must be non-negative");
  SuperviseResult result;
  for (std::size_t attempt_index = 1; attempt_index <= options.max_attempts;
       ++attempt_index) {
    if (attempt_index > 1) {
      const double delay = backoff_delay_seconds(options, attempt_index - 1);
      if (delay > 0.0) {
        if (options.sleep) {
          options.sleep(delay);
        } else {
          std::this_thread::sleep_for(std::chrono::duration<double>(delay));
        }
      }
    }
    Attempt attempt = classify(run_child(options.spec), options.validate);
    if (options.on_attempt) options.on_attempt(attempt, attempt_index);
    const bool ok = attempt.status == Status::Ok;
    const bool retry = !ok && retryable(attempt, options);
    result.attempts.push_back(std::move(attempt));
    if (ok) {
      result.ok = true;
      break;
    }
    if (!retry) break;
  }
  return result;
}

}  // namespace lumos::supervise
