// lumos::supervise process layer — crash-isolated execution of one child.
//
// run_child() fork/execs `spec.argv`, captures stdout in full (up to a
// cap) and stderr into a bounded ring-buffer *tail*, enforces a
// wall-clock deadline with SIGTERM -> grace -> SIGKILL escalation, and
// reaps the child with wait4(2) so peak RSS and CPU time come back with
// the exit status. The child can end three ways, and the supervisor must
// distinguish them (the journal status taxonomy depends on it):
//
//   Exited    the child called exit(); `exit_code` holds the status.
//             A failed exec surfaces as exit code 127 plus a message on
//             the stderr tail, exactly like a shell.
//   Signaled  the child died on a signal it raised itself (SIGSEGV,
//             SIGABRT, ...); `term_signal` holds it.
//   Timeout   *we* killed it for overrunning `deadline_seconds`;
//             `escalated_to_kill` records whether SIGTERM sufficed or
//             the grace period expired and SIGKILL was needed.
//
// Everything here is synchronous and single-threaded: the parent polls
// the two pipes and the child's state in one loop, so no helper threads
// (and no raw-thread lint exceptions) are involved.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lumos::supervise {

struct ChildSpec {
  /// argv[0] is the executable path (execv semantics: no PATH search).
  std::vector<std::string> argv;
  /// Wall-clock budget in seconds; 0 disables the deadline.
  double deadline_seconds = 0.0;
  /// Seconds between SIGTERM and SIGKILL once the deadline passes.
  double grace_seconds = 2.0;
  /// Captured-stdout cap; beyond it the capture stops (stdout_truncated).
  std::size_t stdout_limit_bytes = 64u << 20u;
  /// Ring-buffer size for the stderr tail (the *last* N bytes survive).
  std::size_t stderr_tail_bytes = 4096;
};

enum class ChildOutcome { Exited, Signaled, Timeout };

struct ChildResult {
  ChildOutcome outcome = ChildOutcome::Exited;
  /// Exit status; valid when outcome == Exited (127 = exec failure).
  int exit_code = -1;
  /// Terminating signal; valid when Signaled, and when Timeout records
  /// which of SIGTERM/SIGKILL actually brought the child down.
  int term_signal = 0;
  /// Timeout only: SIGTERM was ignored and SIGKILL was required.
  bool escalated_to_kill = false;
  std::string stdout_text;
  bool stdout_truncated = false;
  /// Last stderr_tail_bytes of stderr (total volume in stderr_bytes).
  std::string stderr_tail;
  std::uint64_t stderr_bytes = 0;
  double wall_seconds = 0.0;
  double user_cpu_seconds = 0.0;
  double system_cpu_seconds = 0.0;
  /// Peak resident set size (ru_maxrss, kilobytes on Linux).
  std::int64_t max_rss_kb = 0;
};

/// Runs one child to completion (or deadline). Throws
/// lumos::InternalError when the *supervisor* cannot do its job (pipe or
/// fork failure); child misbehaviour is reported in the result, never
/// thrown.
[[nodiscard]] ChildResult run_child(const ChildSpec& spec);

/// "SIGSEGV" for SIGSEGV and friends; "SIG<n>" for exotic numbers.
[[nodiscard]] std::string signal_name(int sig);

}  // namespace lumos::supervise
