#include "supervise/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace lumos::supervise {

namespace {

constexpr std::string_view kKindKey = "kind";
constexpr std::string_view kHeaderKind = "header";
constexpr std::string_view kAttemptKind = "attempt";

double number_or(const obs::Json& json, std::string_view key,
                 double fallback) {
  const obs::Json* value = json.find(key);
  return value != nullptr && value->is_number() ? value->as_double()
                                                : fallback;
}

std::string string_or(const obs::Json& json, std::string_view key) {
  const obs::Json* value = json.find(key);
  return value != nullptr && value->kind() == obs::Json::Kind::String
             ? value->as_string()
             : std::string();
}

}  // namespace

obs::Json JournalRecord::to_json() const {
  obs::Json json = obs::Json::object();
  json[std::string(kKindKey)] = std::string(kAttemptKind);
  json["harness"] = harness;
  json["attempt"] = static_cast<std::int64_t>(attempt);
  json["status"] = status;
  if (!detail.empty()) json["detail"] = detail;
  json["exit_code"] = exit_code;
  json["signal"] = term_signal;
  json["wall_seconds"] = wall_seconds;
  json["user_cpu_seconds"] = user_cpu_seconds;
  json["system_cpu_seconds"] = system_cpu_seconds;
  json["max_rss_kb"] = max_rss_kb;
  if (!stderr_tail.empty()) json["stderr_tail"] = stderr_tail;
  if (report.kind() == obs::Json::Kind::Object) json["report"] = report;
  return json;
}

JournalRecord JournalRecord::from_json(const obs::Json& json) {
  JournalRecord record;
  record.harness = string_or(json, "harness");
  record.attempt =
      static_cast<std::uint64_t>(number_or(json, "attempt", 1.0));
  record.status = string_or(json, "status");
  record.detail = string_or(json, "detail");
  record.exit_code = static_cast<int>(number_or(json, "exit_code", -1.0));
  record.term_signal = static_cast<int>(number_or(json, "signal", 0.0));
  record.wall_seconds = number_or(json, "wall_seconds", 0.0);
  record.user_cpu_seconds = number_or(json, "user_cpu_seconds", 0.0);
  record.system_cpu_seconds = number_or(json, "system_cpu_seconds", 0.0);
  record.max_rss_kb =
      static_cast<std::int64_t>(number_or(json, "max_rss_kb", 0.0));
  record.stderr_tail = string_or(json, "stderr_tail");
  if (const obs::Json* rep = json.find("report")) record.report = *rep;
  return record;
}

std::map<std::string, obs::Json> Journal::Contents::completed() const {
  std::map<std::string, obs::Json> done;
  for (const auto& record : records) {
    if (record.status == "ok" &&
        record.report.kind() == obs::Json::Kind::Object) {
      done[record.harness] = record.report;
    }
  }
  return done;
}

Journal::Contents Journal::read(const std::string& path) {
  Contents contents;
  std::ifstream in(path, std::ios::binary);
  if (!in) return contents;  // missing journal = nothing to resume
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    obs::Json json;
    try {
      json = obs::Json::parse(line);
    } catch (const Error&) {
      // A torn line: tolerated at the tail (the expected crash artefact);
      // anything after it is untrustworthy either way, so stop here.
      contents.torn_tail = true;
      break;
    }
    const std::string kind = string_or(json, kKindKey);
    if (first) {
      first = false;
      if (kind == kHeaderKind) {
        contents.header = std::move(json);
        continue;
      }
      // Headerless journal (foreign or pre-schema file): no resume.
      break;
    }
    if (kind == kAttemptKind) {
      contents.records.push_back(JournalRecord::from_json(json));
    }
  }
  return contents;
}

Journal::Journal(std::string path, bool truncate) : path_(std::move(path)) {
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw InvalidArgument("journal: cannot open for append: " + path_ +
                          ": " + std::strerror(errno));
  }
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

void Journal::write_header(const obs::Json& header) {
  obs::Json line = header;  // callers pass an object; add the kind tag
  line[std::string(kKindKey)] = std::string(kHeaderKind);
  append_line(line);
}

void Journal::append(const JournalRecord& record) {
  append_line(record.to_json());
}

void Journal::append_line(const obs::Json& json) {
  const std::string text = json.dump(-1) + "\n";
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd_, text.data() + off, text.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw InvalidArgument("journal: append failed: " + path_ + ": " +
                            std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    throw InvalidArgument("journal: fsync failed: " + path_);
  }
}

}  // namespace lumos::supervise
