// Resumable run journal: append-only JSONL, one record per harness
// attempt, fsync'd per line.
//
// File layout (`BENCH_journal.jsonl`):
//   line 1   header record — the run configuration fingerprint (seed,
//            smoke, days, git_rev, schema). A journal only resumes a run
//            with an *identical* header; anything else would stitch
//            together metrics from different configurations or code.
//   line 2+  attempt records — status, exit/signal, rusage, stderr tail,
//            and (for "ok") the harness's full report JSON, so resuming
//            never re-executes completed work.
//
// Durability contract: append() writes one complete line with a single
// write(2) sequence and fsyncs before returning, so a crash between
// harnesses loses at most the line being written. read() tolerates
// exactly that: a torn final line is ignored (torn_tail flags it); a
// torn line *mid-file* conservatively ends the readable prefix.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace lumos::supervise {

struct JournalRecord {
  std::string harness;
  std::uint64_t attempt = 1;  ///< 1-based attempt index within its run
  std::string status;         ///< ok / failed / timeout / crashed:SIGxxx
  std::string detail;         ///< cause for non-ok statuses
  int exit_code = -1;         ///< -1 = did not exit normally
  int term_signal = 0;        ///< 0 = not signal-terminated
  double wall_seconds = 0.0;
  double user_cpu_seconds = 0.0;
  double system_cpu_seconds = 0.0;
  std::int64_t max_rss_kb = 0;
  std::string stderr_tail;
  /// Full per-harness report JSON for "ok" records; null otherwise.
  obs::Json report;

  [[nodiscard]] obs::Json to_json() const;
  [[nodiscard]] static JournalRecord from_json(const obs::Json& json);
};

class Journal {
 public:
  struct Contents {
    /// The header fingerprint; null when the file is missing or its
    /// first line is unreadable.
    obs::Json header;
    std::vector<JournalRecord> records;
    /// A trailing (or mid-file) torn line was ignored.
    bool torn_tail = false;

    /// harness -> report for every "ok" record (last one wins): the set
    /// of work a resumed run skips.
    [[nodiscard]] std::map<std::string, obs::Json> completed() const;
  };

  /// Reads a journal; a missing file yields empty Contents.
  [[nodiscard]] static Contents read(const std::string& path);

  /// Opens for appending; `truncate` starts the file over (new run).
  /// Throws lumos::InvalidArgument when the file cannot be opened.
  Journal(std::string path, bool truncate);
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Writes the run-fingerprint header (call once, on fresh journals).
  void write_header(const obs::Json& header);
  /// Appends one attempt record; durable (fsync) before returning.
  void append(const JournalRecord& record);

 private:
  void append_line(const obs::Json& json);

  std::string path_;
  int fd_ = -1;
};

}  // namespace lumos::supervise
