// wait4(2) (rusage with the exit status) is guarded by _DEFAULT_SOURCE,
// which -std=c++20 (strict ANSI) suppresses; ask for it before any
// header can pull in <features.h>.
#ifndef _GNU_SOURCE
#define _GNU_SOURCE 1
#endif

#include "supervise/process.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <map>

#include "util/error.hpp"

namespace lumos::supervise {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Close-on-destruction pair of pipe fds; -1 marks an already-closed end.
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() {
    if (::pipe(fds) != 0) {
      throw InternalError(std::string("supervise: pipe: ") +
                          std::strerror(errno));
    }
  }
  ~Pipe() {
    close_read();
    close_write();
  }
  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;
  [[nodiscard]] int read_fd() const { return fds[0]; }
  [[nodiscard]] int write_fd() const { return fds[1]; }
  void close_read() {
    if (fds[0] >= 0) ::close(fds[0]);
    fds[0] = -1;
  }
  void close_write() {
    if (fds[1] >= 0) ::close(fds[1]);
    fds[1] = -1;
  }
};

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Async-signal-safe "message + int + newline" writer for the post-fork,
/// pre-exec window where snprintf and strerror are off-limits.
void write_exec_failure(int fd, const char* path, int err) {
  const auto emit = [fd](const char* s, std::size_t n) {
    std::size_t off = 0;
    while (off < n) {
      const ssize_t w = ::write(fd, s + off, n - off);
      if (w <= 0) return;  // best-effort: the parent sees 127 regardless
      off += static_cast<std::size_t>(w);
    }
  };
  const char* prefix = "supervise: exec failed: ";
  emit(prefix, std::strlen(prefix));
  emit(path, std::strlen(path));
  char digits[16];
  int n = 0;
  if (err == 0) digits[n++] = '0';
  while (err > 0 && n < 15) {
    digits[n++] = static_cast<char>('0' + err % 10);
    err /= 10;
  }
  const char* sep = " (errno ";
  emit(sep, std::strlen(sep));
  while (n > 0) emit(&digits[--n], 1);
  emit(")\n", 2);
}

/// Appends `data` keeping only the last `limit` bytes.
void append_tail(std::string& tail, std::string_view data,
                 std::size_t limit) {
  if (data.size() >= limit) {
    tail.assign(data.substr(data.size() - limit));
    return;
  }
  tail.append(data);
  if (tail.size() > limit) tail.erase(0, tail.size() - limit);
}

}  // namespace

std::string signal_name(int sig) {
  static const std::map<int, const char*> names = {
      {SIGHUP, "SIGHUP"},   {SIGINT, "SIGINT"},   {SIGQUIT, "SIGQUIT"},
      {SIGILL, "SIGILL"},   {SIGABRT, "SIGABRT"}, {SIGBUS, "SIGBUS"},
      {SIGFPE, "SIGFPE"},   {SIGKILL, "SIGKILL"}, {SIGSEGV, "SIGSEGV"},
      {SIGPIPE, "SIGPIPE"}, {SIGALRM, "SIGALRM"}, {SIGTERM, "SIGTERM"},
      {SIGXCPU, "SIGXCPU"}, {SIGXFSZ, "SIGXFSZ"}};
  const auto it = names.find(sig);
  if (it != names.end()) return it->second;
  return "SIG" + std::to_string(sig);
}

ChildResult run_child(const ChildSpec& spec) {
  LUMOS_REQUIRE(!spec.argv.empty(), "supervise: child argv must be non-empty");
  LUMOS_REQUIRE(spec.deadline_seconds >= 0.0 && spec.grace_seconds >= 0.0,
                "supervise: deadline and grace must be non-negative");

  // execv wants char* const[]; build it before fork so the child performs
  // no allocation between fork and exec.
  std::vector<char*> argv;
  argv.reserve(spec.argv.size() + 1);
  for (const auto& arg : spec.argv) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  Pipe out_pipe;
  Pipe err_pipe;
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw InternalError(std::string("supervise: fork: ") +
                        std::strerror(errno));
  }
  if (pid == 0) {
    // Child: wire the pipes to stdout/stderr and become the target.
    // Only async-signal-safe calls from here to execv/_exit.
    ::dup2(out_pipe.write_fd(), STDOUT_FILENO);
    ::dup2(err_pipe.write_fd(), STDERR_FILENO);
    ::close(out_pipe.read_fd());
    ::close(out_pipe.write_fd());
    ::close(err_pipe.read_fd());
    ::close(err_pipe.write_fd());
    ::execv(argv[0], argv.data());
    write_exec_failure(STDERR_FILENO, argv[0], errno);
    ::_exit(127);
  }

  // Parent.
  out_pipe.close_write();
  err_pipe.close_write();
  set_nonblocking(out_pipe.read_fd());
  set_nonblocking(err_pipe.read_fd());

  ChildResult result;
  const auto start = Clock::now();
  bool out_open = true;
  bool err_open = true;
  bool term_sent = false;
  bool kill_sent = false;
  bool timed_out = false;
  bool reaped = false;
  int status = 0;
  struct rusage usage {};
  char buf[8192];

  while (!reaped || out_open || err_open) {
    const double elapsed = seconds_since(start);
    if (spec.deadline_seconds > 0.0 && !reaped) {
      if (!term_sent && elapsed >= spec.deadline_seconds) {
        timed_out = true;
        term_sent = true;
        ::kill(pid, SIGTERM);
      } else if (term_sent && !kill_sent &&
                 elapsed >= spec.deadline_seconds + spec.grace_seconds) {
        kill_sent = true;
        ::kill(pid, SIGKILL);
      }
    }

    struct pollfd fds[2];
    nfds_t nfds = 0;
    if (out_open) fds[nfds++] = {out_pipe.read_fd(), POLLIN, 0};
    if (err_open) fds[nfds++] = {err_pipe.read_fd(), POLLIN, 0};
    if (nfds > 0) {
      // Short slices keep the deadline/escalation checks responsive.
      const int rc = ::poll(fds, nfds, 50);
      if (rc < 0 && errno != EINTR) {
        throw InternalError(std::string("supervise: poll: ") +
                            std::strerror(errno));
      }
    } else {
      // Pipes closed but the child lives on (it closed its fds and kept
      // running); keep ticking so the deadline can still fire.
      struct timespec ts = {0, 10 * 1000 * 1000};
      ::nanosleep(&ts, nullptr);
    }

    const auto drain = [&](Pipe& pipe, bool& open, bool to_stdout) {
      if (!open) return;
      for (;;) {
        const ssize_t n = ::read(pipe.read_fd(), buf, sizeof(buf));
        if (n > 0) {
          const std::string_view data(buf, static_cast<std::size_t>(n));
          if (to_stdout) {
            if (result.stdout_text.size() < spec.stdout_limit_bytes) {
              const std::size_t room =
                  spec.stdout_limit_bytes - result.stdout_text.size();
              result.stdout_text.append(data.substr(0, room));
              if (data.size() > room) result.stdout_truncated = true;
            } else {
              result.stdout_truncated = true;
            }
          } else {
            result.stderr_bytes += static_cast<std::uint64_t>(n);
            append_tail(result.stderr_tail, data, spec.stderr_tail_bytes);
          }
          continue;
        }
        if (n == 0) {
          open = false;
          pipe.close_read();
        } else if (errno == EINTR) {
          continue;
        }
        // n < 0 with EAGAIN: drained for now.
        break;
      }
    };
    drain(out_pipe, out_open, /*to_stdout=*/true);
    drain(err_pipe, err_open, /*to_stdout=*/false);

    if (!reaped) {
      const pid_t r = ::wait4(pid, &status, WNOHANG, &usage);
      if (r == pid) reaped = true;
    }
  }

  result.wall_seconds = seconds_since(start);
  result.user_cpu_seconds =
      static_cast<double>(usage.ru_utime.tv_sec) +
      static_cast<double>(usage.ru_utime.tv_usec) * 1e-6;
  result.system_cpu_seconds =
      static_cast<double>(usage.ru_stime.tv_sec) +
      static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;
  result.max_rss_kb = static_cast<std::int64_t>(usage.ru_maxrss);

  if (timed_out) {
    result.outcome = ChildOutcome::Timeout;
    result.term_signal = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
    result.escalated_to_kill = kill_sent;
  } else if (WIFSIGNALED(status)) {
    result.outcome = ChildOutcome::Signaled;
    result.term_signal = WTERMSIG(status);
  } else {
    result.outcome = ChildOutcome::Exited;
    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return result;
}

}  // namespace lumos::supervise
