// Programmatic checks of the paper's eight takeaways against a study.
//
// Each check reads the relevant figure analyses and decides whether the
// qualitative claim the paper derives holds on the (synthetic or real)
// traces at hand — the repository's built-in "did the shape reproduce?"
// verdicts.
#pragma once

#include <string>
#include <vector>

#include "core/study.hpp"

namespace lumos::core {

struct TakeawayCheck {
  int number = 0;          ///< 1..8 as in the paper
  std::string claim;       ///< short restatement
  bool holds = false;
  std::string evidence;    ///< numbers backing the verdict
};

/// Evaluates all eight takeaways. The study must contain the five paper
/// systems (checks referencing a missing system are reported as not held
/// with an explanatory note).
[[nodiscard]] std::vector<TakeawayCheck> check_takeaways(
    const CrossSystemStudy& study);

[[nodiscard]] std::string render_takeaways(
    const std::vector<TakeawayCheck>& checks);

}  // namespace lumos::core
