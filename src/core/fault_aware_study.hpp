// Extension: fault-aware job management (Takeaway 7 made operational).
//
// The paper finds killed jobs consume outsized core-hours on every system
// and concludes fault-aware schedulers "should be revisited in the new
// hybrid workload setting". This study quantifies the opportunity: a
// doomed-job monitor (predict::StatusPredictor) inspects every running job
// at periodic checkpoints and terminates those whose predicted
// doom-probability exceeds a threshold.
//
// Accounting per threshold:
//  * saved core-hours      — resources a truly doomed (Failed/Killed) job
//    would have burned after the checkpoint that stopped it;
//  * collateral core-hours — useful work destroyed when a job that would
//    have Passed is stopped (its entire consumption becomes waste);
//  * precision/recall of the doomed classification at the acting
//    checkpoints.
//
// Sweeping the threshold exposes the operating curve a production system
// would choose from.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace lumos::core {

struct FaultAwareConfig {
  /// Doom-probability thresholds to sweep.
  std::vector<double> thresholds{0.6, 0.75, 0.9};
  /// Checkpoints as fractions of the average runtime.
  std::vector<double> checkpoint_fractions{0.25, 0.5, 1.0, 2.0};
  double train_fraction = 0.5;
  std::size_t max_jobs = 20000;
};

struct FaultAwareRow {
  double threshold = 0.0;
  std::size_t stopped_doomed = 0;    ///< true positives (jobs)
  std::size_t stopped_passed = 0;    ///< false positives (jobs)
  double saved_core_hours = 0.0;
  double collateral_core_hours = 0.0;
  double precision = 0.0;
  /// Fraction of all doomed core-hour waste recovered.
  double waste_recall = 0.0;
};

struct FaultAwareResult {
  std::string system;
  double total_doomed_core_hours = 0.0;  ///< waste without intervention
  double total_core_hours = 0.0;
  std::vector<FaultAwareRow> rows;
};

[[nodiscard]] FaultAwareResult run_fault_aware_study(
    const trace::Trace& trace, const FaultAwareConfig& config = {});

[[nodiscard]] std::string render_fault_aware_study(
    const FaultAwareResult& result);

}  // namespace lumos::core
