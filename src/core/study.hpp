// CrossSystemStudy — the paper's whole §III-§V pipeline behind one façade.
//
// Owns the five system traces (synthesised by default, or supplied from
// parsed real traces) and lazily runs every figure analysis across them.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/arrival.hpp"
#include "analysis/domination.hpp"
#include "analysis/failure.hpp"
#include "analysis/geometry.hpp"
#include "analysis/user_behavior.hpp"
#include "analysis/utilization.hpp"
#include "analysis/waiting.hpp"
#include "synth/generator.hpp"
#include "trace/trace.hpp"

namespace lumos::core {

struct StudyOptions {
  std::uint64_t seed = 42;
  /// Overrides every system's synthesis window (days). Unset = per-system
  /// calibrated default (120 d HPC, 14 d Helios).
  std::optional<double> duration_days;
  /// Restrict to these systems (empty = all five).
  std::vector<std::string> systems;
};

class CrossSystemStudy {
 public:
  /// Synthesises the workloads per StudyOptions.
  explicit CrossSystemStudy(StudyOptions options = {});

  /// Builds a study over caller-provided traces (e.g. parsed real data).
  explicit CrossSystemStudy(std::vector<trace::Trace> traces);

  [[nodiscard]] const std::vector<trace::Trace>& traces() const noexcept {
    return traces_;
  }
  [[nodiscard]] const trace::Trace& trace(std::string_view system) const;

  // One vector entry per system, in construction order.
  [[nodiscard]] std::vector<analysis::GeometryResult> geometries() const;
  [[nodiscard]] std::vector<analysis::ArrivalResult> arrivals() const;
  [[nodiscard]] std::vector<analysis::DominationResult> dominations() const;
  [[nodiscard]] std::vector<analysis::UtilizationResult> utilizations() const;
  [[nodiscard]] std::vector<analysis::WaitingResult> waitings() const;
  [[nodiscard]] std::vector<analysis::FailureResult> failures() const;
  [[nodiscard]] std::vector<analysis::RepetitionResult> repetitions() const;
  [[nodiscard]] std::vector<analysis::QueueBehaviorResult> queue_behaviors()
      const;
  [[nodiscard]] std::vector<analysis::UserStatusResult> user_statuses() const;

  /// Renders every figure's comparison table into one report.
  [[nodiscard]] std::string full_report() const;

  /// Writes every figure's data series as CSV files into `dir`
  /// (analysis/export.hpp documents the file set).
  void export_csv(const std::string& dir) const;

 private:
  std::vector<trace::Trace> traces_;
};

}  // namespace lumos::core
