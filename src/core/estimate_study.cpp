#include "core/estimate_study.hpp"

#include <algorithm>
#include <sstream>

#include "ml/gbrt.hpp"
#include "ml/metrics.hpp"
#include "predict/features.hpp"
#include "predict/last2.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace lumos::core {

std::string to_string(EstimateSource s) {
  switch (s) {
    case EstimateSource::UserRequest: return "user-request";
    case EstimateSource::Oracle: return "oracle";
    case EstimateSource::Last2: return "last2";
    case EstimateSource::Model: return "gbrt";
  }
  return "?";
}

namespace {

/// Applies estimates to a copy of the trace: planning walltime becomes the
/// estimate, and jobs overrunning it are killed at the estimate.
trace::Trace with_estimates(const trace::Trace& original,
                            std::span<const double> estimates,
                            std::size_t* killed,
                            double* wasted_core_hours) {
  trace::Trace out(original.spec());
  out.reserve(original.size());
  *killed = 0;
  *wasted_core_hours = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    trace::Job j = original[i];
    j.requested_time = std::max(estimates[i], 1.0);
    if (j.run_time > j.requested_time) {
      // The scheduler terminates the job at its estimate; everything it
      // computed is lost.
      *killed += 1;
      *wasted_core_hours +=
          static_cast<double>(j.cores) * j.requested_time / 3600.0;
      j.run_time = j.requested_time;
      j.status = trace::JobStatus::Killed;
    }
    out.add(j);
  }
  // Copying preserves submit order.
  return out;
}

}  // namespace

EstimateStudyResult run_estimate_study(const trace::Trace& trace,
                                       const EstimateStudyConfig& config) {
  LUMOS_REQUIRE(trace.size() >= 50, "estimate study needs >= 50 jobs");
  EstimateStudyResult result;
  result.system = trace.spec().name;

  // Work on a bounded chronological prefix.
  trace::Trace working(trace.spec());
  const std::size_t n = config.max_jobs > 0
                            ? std::min(trace.size(), config.max_jobs)
                            : trace.size();
  working.reserve(n);
  for (std::size_t i = 0; i < n; ++i) working.add(trace[i]);

  const auto feats = predict::extract_features(working);
  std::vector<double> actual(n);
  for (std::size_t i = 0; i < n; ++i) actual[i] = feats[i].run_time;

  // --- estimate sources ---------------------------------------------------
  std::vector<std::pair<EstimateSource, std::vector<double>>> sources;

  if (working.spec().has_walltime_estimates) {
    std::vector<double> est(n);
    for (std::size_t i = 0; i < n; ++i) {
      est[i] = working[i].has_requested_time() ? working[i].requested_time
                                               : config.min_estimate_s;
    }
    sources.emplace_back(EstimateSource::UserRequest, std::move(est));
  }
  {
    std::vector<double> est(n);
    for (std::size_t i = 0; i < n; ++i) {
      est[i] = std::max(actual[i], 1.0);
    }
    sources.emplace_back(EstimateSource::Oracle, std::move(est));
  }
  {
    predict::Last2 last2;
    std::vector<double> est(n);
    for (std::size_t i = 0; i < n; ++i) {
      est[i] = std::max(last2.predict(feats[i]) * config.padding,
                        config.min_estimate_s);
    }
    sources.emplace_back(EstimateSource::Last2, std::move(est));
  }
  {
    const auto n_train = std::max<std::size_t>(
        25, static_cast<std::size_t>(config.train_fraction *
                                     static_cast<double>(n)));
    const std::span<const predict::JobFeatures> train(feats.data(),
                                                      std::min(n_train, n));
    const auto train_data = predict::build_dataset(train, {});
    ml::GbrtOptions options;
    options.n_trees = 50;
    ml::GradientBoosting model(options);
    model.fit(train_data);
    std::vector<double> est(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double pred =
          predict::runtime_of_target(model.predict(feats[i].values));
      est[i] = std::max(pred * config.padding, config.min_estimate_s);
    }
    sources.emplace_back(EstimateSource::Model, std::move(est));
  }

  // --- simulate each source ------------------------------------------------
  for (auto& [source, estimates] : sources) {
    EstimateStudyRow row;
    row.source = source;
    row.estimate_accuracy = ml::prediction_accuracy(actual, estimates);
    row.underestimate_rate = ml::underestimate_rate(actual, estimates);

    const trace::Trace scheduled = with_estimates(
        working, estimates, &row.killed_by_underestimate,
        &row.wasted_core_hours);
    sim::SimConfig sim_config;
    sim_config.policy = config.policy;
    sim_config.backfill.kind = config.backfill;
    const auto sim_result = sim::simulate(scheduled, sim_config);
    row.metrics = sim::compute_metrics(scheduled, sim_result);
    result.rows.push_back(std::move(row));
  }
  return result;
}

std::string render_estimate_study(const EstimateStudyResult& result) {
  util::TextTable t({"source", "est accuracy", "underest", "avg wait (s)",
                     "bsld", "util", "killed@est", "wasted CH"});
  for (const auto& row : result.rows) {
    t.add_row({to_string(row.source),
               util::percent(row.estimate_accuracy),
               util::percent(row.underestimate_rate),
               util::fixed(row.metrics.avg_wait, 1),
               util::fixed(row.metrics.avg_bounded_slowdown, 2),
               util::fixed(row.metrics.utilization, 4),
               std::to_string(row.killed_by_underestimate),
               util::fixed(row.wasted_core_hours, 0)});
  }
  std::ostringstream os;
  os << "System " << result.system << ":\n" << t.render();
  return os.str();
}

}  // namespace lumos::core
