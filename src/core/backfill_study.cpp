#include "core/backfill_study.hpp"

#include <sstream>

#include "obs/registry.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace lumos::core {

namespace {

double relative_improvement(double baseline, double candidate) {
  if (baseline == 0.0) return 0.0;
  return (baseline - candidate) / baseline;
}

}  // namespace

BackfillComparison compare_backfill(const trace::Trace& trace,
                                    const BackfillStudyConfig& config) {
  BackfillComparison out;
  out.system = trace.spec().name;

  sim::SimConfig relaxed_cfg;
  relaxed_cfg.policy = config.policy;
  relaxed_cfg.bsld_bound = config.bsld_bound;
  relaxed_cfg.backfill.kind = sim::BackfillKind::Relaxed;
  relaxed_cfg.backfill.relax_factor = config.relax_factor;

  sim::SimConfig adaptive_cfg = relaxed_cfg;
  adaptive_cfg.backfill.kind = sim::BackfillKind::AdaptiveRelaxed;
  adaptive_cfg.backfill.adaptive_shape = config.adaptive_shape;

  const auto relaxed_result = sim::simulate(trace, relaxed_cfg);
  out.relaxed = sim::compute_metrics(trace, relaxed_result, config.bsld_bound);
  const auto adaptive_result = sim::simulate(trace, adaptive_cfg);
  out.adaptive =
      sim::compute_metrics(trace, adaptive_result, config.bsld_bound);

  out.wait_improvement =
      relative_improvement(out.relaxed.avg_wait, out.adaptive.avg_wait);
  out.bsld_improvement = relative_improvement(
      out.relaxed.avg_bounded_slowdown, out.adaptive.avg_bounded_slowdown);
  // Utilization: higher is better, so flip the sign convention.
  out.util_improvement =
      -relative_improvement(out.relaxed.utilization, out.adaptive.utilization);
  // The paper reports the reduction on the displayed (mean) violation.
  out.violation_reduction =
      relative_improvement(out.relaxed.violation, out.adaptive.violation);
  return out;
}

std::vector<BackfillComparison> run_backfill_study(
    const std::vector<trace::Trace>& traces,
    const BackfillStudyConfig& config) {
  std::vector<const trace::Trace*> eligible;
  for (const auto& t : traces) {
    if (!t.spec().has_walltime_estimates) {
      LUMOS_INFO << "backfill study skips " << t.spec().name
                 << " (no walltime requests, as in the paper)";
      continue;
    }
    eligible.push_back(&t);
  }
  // Each trace's pair of simulations is independent and deterministic, so
  // fanning them out and assembling rows by index yields the same study
  // for any pool size.
  std::vector<BackfillComparison> rows(eligible.size());
  util::ThreadPool pool(config.threads);
  pool.parallel_for(0, eligible.size(), [&](std::size_t i) {
    rows[i] = compare_backfill(*eligible[i], config);
  });
  // Publish pool usage: tasks_run is deterministic (chunk count), the
  // queue high-water mark is scheduling-dependent, hence a gauge.
  const util::ThreadPool::Stats stats = pool.stats();
  auto& registry = obs::Registry::global();
  registry.counter("threadpool.tasks_run").add(stats.tasks_run);
  registry.gauge("threadpool.threads").set(static_cast<double>(stats.threads));
  registry.gauge("threadpool.max_queue_depth")
      .set_max(static_cast<double>(stats.max_queue_depth));
  return rows;
}

std::string render_backfill_study(
    const std::vector<BackfillComparison>& rows) {
  util::TextTable t({"Traces", "Metrics", "Relaxed", "Adaptive", "Improved"});
  for (const auto& r : rows) {
    t.add_row({r.system, "wait", util::fixed(r.relaxed.avg_wait, 2),
               util::fixed(r.adaptive.avg_wait, 2),
               util::percent(r.wait_improvement, 1)});
    t.add_row({"", "bsld", util::fixed(r.relaxed.avg_bounded_slowdown, 2),
               util::fixed(r.adaptive.avg_bounded_slowdown, 2),
               util::percent(r.bsld_improvement, 1)});
    t.add_row({"", "util", util::fixed(r.relaxed.utilization, 4),
               util::fixed(r.adaptive.utilization, 4),
               util::percent(r.util_improvement, 1)});
    t.add_row({"", "violation", util::fixed(r.relaxed.violation, 2),
               util::fixed(r.adaptive.violation, 2),
               util::percent(r.violation_reduction, 1)});
  }
  return t.render();
}

}  // namespace lumos::core
