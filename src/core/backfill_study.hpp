// Use case 2 (Table II): fixed relaxed backfilling vs the paper's adaptive
// relaxed backfilling, simulated on the walltime-bearing systems
// (Blue Waters, Mira, Theta — DL traces carry no walltime requests).
#pragma once

#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace lumos::core {

struct BackfillStudyConfig {
  sim::PolicyKind policy = sim::PolicyKind::Fcfs;
  double relax_factor = 0.10;  ///< the paper's 10% base factor
  sim::AdaptiveShape adaptive_shape = sim::AdaptiveShape::Linear;
  double bsld_bound = 10.0;
  /// Worker threads for the per-trace simulations (0 = hardware
  /// concurrency). Results are identical for every thread count.
  std::size_t threads = 0;
};

struct BackfillComparison {
  std::string system;
  sim::SimMetrics relaxed;    ///< fixed-factor relaxed backfilling
  sim::SimMetrics adaptive;   ///< adaptive relaxed backfilling (Eq. 1)
  /// Positive = adaptive better. "Improved" columns of Table II.
  double wait_improvement = 0.0;
  double bsld_improvement = 0.0;
  double util_improvement = 0.0;
  double violation_reduction = 0.0;  ///< on total violation delay
};

/// Runs both configurations on one trace.
[[nodiscard]] BackfillComparison compare_backfill(
    const trace::Trace& trace, const BackfillStudyConfig& config = {});

/// Runs the study over several traces (skips traces without walltime
/// requests, mirroring the paper's exclusion of Philly/Helios).
[[nodiscard]] std::vector<BackfillComparison> run_backfill_study(
    const std::vector<trace::Trace>& traces,
    const BackfillStudyConfig& config = {});

[[nodiscard]] std::string render_backfill_study(
    const std::vector<BackfillComparison>& rows);

}  // namespace lumos::core
