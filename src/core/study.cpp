#include "core/study.hpp"

#include <sstream>

#include "analysis/export.hpp"
#include "analysis/report.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace lumos::core {

CrossSystemStudy::CrossSystemStudy(StudyOptions options) {
  std::vector<synth::SystemCalibration> cals;
  if (options.systems.empty()) {
    cals = synth::all_calibrations();
  } else {
    for (const auto& name : options.systems) {
      cals.push_back(synth::calibration_for(name));
    }
  }
  traces_.reserve(cals.size());
  for (auto& cal : cals) {
    synth::GeneratorOptions gen_options;
    gen_options.seed = options.seed;
    gen_options.duration_days = options.duration_days;
    synth::WorkloadGenerator generator(std::move(cal), gen_options);
    traces_.push_back(generator.generate());
  }
}

CrossSystemStudy::CrossSystemStudy(std::vector<trace::Trace> traces)
    : traces_(std::move(traces)) {
  LUMOS_REQUIRE(!traces_.empty(), "study needs at least one trace");
}

const trace::Trace& CrossSystemStudy::trace(std::string_view system) const {
  const std::string key = util::to_lower(system);
  for (const auto& t : traces_) {
    if (util::to_lower(t.spec().name) == key) return t;
  }
  throw InvalidArgument("study has no trace for system: " +
                        std::string(system));
}

namespace {
template <typename R, typename F>
std::vector<R> map_traces(const std::vector<trace::Trace>& traces, F&& f) {
  std::vector<R> out;
  out.reserve(traces.size());
  for (const auto& t : traces) out.push_back(f(t));
  return out;
}
}  // namespace

std::vector<analysis::GeometryResult> CrossSystemStudy::geometries() const {
  return map_traces<analysis::GeometryResult>(traces_,
                                              analysis::analyze_geometry);
}
std::vector<analysis::ArrivalResult> CrossSystemStudy::arrivals() const {
  return map_traces<analysis::ArrivalResult>(traces_,
                                             analysis::analyze_arrivals);
}
std::vector<analysis::DominationResult> CrossSystemStudy::dominations() const {
  return map_traces<analysis::DominationResult>(traces_,
                                                analysis::analyze_domination);
}
std::vector<analysis::UtilizationResult> CrossSystemStudy::utilizations()
    const {
  return map_traces<analysis::UtilizationResult>(
      traces_, [](const trace::Trace& t) {
        return analysis::analyze_utilization(t);
      });
}
std::vector<analysis::WaitingResult> CrossSystemStudy::waitings() const {
  return map_traces<analysis::WaitingResult>(traces_,
                                             analysis::analyze_waiting);
}
std::vector<analysis::FailureResult> CrossSystemStudy::failures() const {
  return map_traces<analysis::FailureResult>(traces_,
                                             analysis::analyze_failures);
}
std::vector<analysis::RepetitionResult> CrossSystemStudy::repetitions() const {
  return map_traces<analysis::RepetitionResult>(
      traces_, [](const trace::Trace& t) {
        return analysis::analyze_repetition(t);
      });
}
std::vector<analysis::QueueBehaviorResult> CrossSystemStudy::queue_behaviors()
    const {
  return map_traces<analysis::QueueBehaviorResult>(
      traces_, analysis::analyze_queue_behavior);
}
std::vector<analysis::UserStatusResult> CrossSystemStudy::user_statuses()
    const {
  return map_traces<analysis::UserStatusResult>(
      traces_, [](const trace::Trace& t) {
        return analysis::analyze_user_status(t);
      });
}

std::string CrossSystemStudy::full_report() const {
  std::ostringstream os;
  os << "=== Fig 1(a/c): job geometries ===\n"
     << analysis::render_geometry(geometries()) << '\n';
  os << "=== Fig 1(a): runtime CDF ===\n"
     << analysis::render_runtime_cdf(geometries()) << '\n';
  os << "=== Fig 1(b): arrival patterns ===\n"
     << analysis::render_arrivals(arrivals()) << '\n';
  os << "=== Fig 2: core-hour domination ===\n"
     << analysis::render_domination(dominations()) << '\n';
  os << "=== Fig 3: system utilization ===\n"
     << analysis::render_utilization(utilizations()) << '\n';
  os << "=== Fig 4: waiting / turnaround ===\n"
     << analysis::render_waiting(waitings()) << '\n';
  os << "=== Fig 5: wait vs geometry ===\n"
     << analysis::render_wait_by_geometry(waitings()) << '\n';
  os << "=== Fig 6: status distribution ===\n"
     << analysis::render_status_distribution(failures()) << '\n';
  os << "=== Fig 7: failure vs geometry ===\n"
     << analysis::render_failure_by_geometry(failures()) << '\n';
  os << "=== Fig 8: user repetition ===\n"
     << analysis::render_repetition(repetitions()) << '\n';
  os << "=== Fig 9: queue length vs requested size ===\n"
     << analysis::render_queue_behavior_size(queue_behaviors()) << '\n';
  os << "=== Fig 10: queue length vs runtime ===\n"
     << analysis::render_queue_behavior_runtime(queue_behaviors()) << '\n';
  os << "=== Fig 11: per-user runtime by status ===\n"
     << analysis::render_user_status(user_statuses()) << '\n';
  return os.str();
}

void CrossSystemStudy::export_csv(const std::string& dir) const {
  analysis::export_runtime_cdf(dir, geometries());
  analysis::export_cores_cdf(dir, geometries());
  analysis::export_hourly(dir, arrivals());
  analysis::export_domination(dir, dominations());
  analysis::export_utilization(dir, utilizations());
  analysis::export_wait_cdf(dir, waitings());
  analysis::export_status(dir, failures());
  analysis::export_repetition(dir, repetitions());
  analysis::export_queue_mix(dir, queue_behaviors());
}

}  // namespace lumos::core
