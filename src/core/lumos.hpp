// Umbrella header: the full lumos public API.
//
//   #include "core/lumos.hpp"
//
//   lumos::core::CrossSystemStudy study;          // five synthetic systems
//   std::cout << study.full_report();             // every figure, as text
//   auto checks = lumos::core::check_takeaways(study);
//
// Layering (each header is usable on its own):
//   util    — rng, csv, tables, thread pool
//   stats   — ecdf, histograms, kde/violin, correlation
//   trace   — Job/Trace model, SWF + CSV parsers, system specs, validation
//   synth   — calibrated per-system workload generators
//   sim     — discrete-event scheduling simulator (policies + backfilling)
//   ml      — regression models (OLS, Tobit, GBRT, MLP)
//   predict — runtime-prediction study (use case 1)
//   analysis— per-figure characterization analyses
//   core    — cross-system study façade, takeaway checks, backfill study
#pragma once

#include "analysis/export.hpp"
#include "analysis/report.hpp"
#include "core/backfill_study.hpp"
#include "core/estimate_study.hpp"
#include "core/fault_aware_study.hpp"
#include "core/study.hpp"
#include "core/takeaways.hpp"
#include "predict/harness.hpp"
#include "predict/status_predictor.hpp"
#include "sim/metrics.hpp"
#include "sim/node_cluster.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "synth/fit.hpp"
#include "synth/lublin.hpp"
#include "synth/generator.hpp"
#include "trace/csv_formats.hpp"
#include "trace/swf.hpp"
#include "trace/transform.hpp"
#include "trace/validate.hpp"
