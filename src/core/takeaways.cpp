#include "core/takeaways.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/string_util.hpp"

namespace lumos::core {

namespace {

using util::format;

template <typename T>
const T* find_system(const std::vector<T>& results, std::string_view name) {
  for (const auto& r : results) {
    if (r.system == name) return &r;
  }
  return nullptr;
}

}  // namespace

std::vector<TakeawayCheck> check_takeaways(const CrossSystemStudy& study) {
  std::vector<TakeawayCheck> checks;
  const auto geo = study.geometries();
  const auto arr = study.arrivals();
  const auto dom = study.dominations();
  const auto util_r = study.utilizations();
  const auto wait = study.waitings();
  const auto fail = study.failures();
  const auto rep = study.repetitions();
  const auto queue = study.queue_behaviors();

  const auto* g_bw = find_system(geo, "BlueWaters");
  const auto* g_mira = find_system(geo, "Mira");
  const auto* g_philly = find_system(geo, "Philly");
  const auto* g_helios = find_system(geo, "Helios");

  // T1: DL runtimes are shorter and more diverse.
  {
    TakeawayCheck c{1,
                    "DL job runtimes are shorter and more diverse than HPC",
                    false, ""};
    if (g_bw && g_mira && g_philly && g_helios) {
      const double hpc_med =
          std::min(g_bw->runtime_summary.median, g_mira->runtime_summary.median);
      const double dl_med = std::max(g_philly->runtime_summary.median,
                                     g_helios->runtime_summary.median);
      // Diversity: p99/p50 ratio as a tail-spread proxy.
      auto spread = [](const analysis::GeometryResult& g) {
        return g.runtime_summary.median > 0.0
                   ? g.runtime_summary.p99 / g.runtime_summary.median
                   : 0.0;
      };
      const double dl_spread = std::min(spread(*g_philly), spread(*g_helios));
      const double hpc_spread = std::max(spread(*g_mira), spread(*g_bw));
      c.holds = dl_med < hpc_med && dl_spread > hpc_spread;
      c.evidence = format(
          "median run DL<=%.0fs vs HPC>=%.0fs; p99/p50 DL>=%.0fx vs "
          "HPC<=%.0fx",
          dl_med, hpc_med, dl_spread, hpc_spread);
    } else {
      c.evidence = "missing systems";
    }
    checks.push_back(c);
  }

  // T2: periodic (peak-hours) patterns exist but are not universal.
  {
    TakeawayCheck c{2, "diurnal peaks exist but are system-specific", false,
                    ""};
    const auto* a_helios = find_system(arr, "Helios");
    const auto* a_philly = find_system(arr, "Philly");
    const auto* a_bw = find_system(arr, "BlueWaters");
    if (a_helios && a_philly && a_bw) {
      c.holds = a_helios->peak_ratio > 2.0 * a_philly->peak_ratio &&
                a_bw->business_hours_share > 0.45 &&
                a_philly->business_hours_share < 0.45;
      c.evidence = format(
          "peak ratio Helios %.1fx vs Philly %.1fx; 8am-5pm share BW %.0f%% "
          "vs Philly %.0f%%",
          a_helios->peak_ratio, a_philly->peak_ratio,
          100 * a_bw->business_hours_share,
          100 * a_philly->business_hours_share);
    } else {
      c.evidence = "missing systems";
    }
    checks.push_back(c);
  }

  // T3: DL workloads are dominated by small (1-GPU) requests.
  {
    TakeawayCheck c{3, "DL jobs request far fewer cores (mostly 1 GPU)",
                    false, ""};
    if (g_philly && g_helios && g_mira) {
      c.holds = g_philly->frac_single_core > 0.6 &&
                g_helios->frac_single_core > 0.6 &&
                g_mira->frac_over_1000 > 0.5;
      c.evidence = format(
          "1-core share Philly %.0f%%, Helios %.0f%%; Mira >1000 cores "
          "%.0f%%",
          100 * g_philly->frac_single_core, 100 * g_helios->frac_single_core,
          100 * g_mira->frac_over_1000);
    } else {
      c.evidence = "missing systems";
    }
    checks.push_back(c);
  }

  // T4: dominating core-hour groups exist everywhere but shift.
  {
    TakeawayCheck c{4, "dominant core-hour groups exist but shift across "
                       "systems", false, ""};
    const auto* d_bw = find_system(dom, "BlueWaters");
    const auto* d_mira = find_system(dom, "Mira");
    const auto* d_philly = find_system(dom, "Philly");
    if (d_bw && d_mira && d_philly) {
      const bool bw_small =
          d_bw->by_size.core_hour_fraction(trace::SizeCategory::Small) > 0.6;
      const bool hpc_middle =
          d_mira->dominant_length == trace::LengthCategory::Middle;
      const bool dl_long =
          d_philly->dominant_length == trace::LengthCategory::Long;
      c.holds = bw_small && hpc_middle && dl_long;
      c.evidence = format(
          "BW small-size CH %.0f%%; Mira dominant length %s; Philly "
          "dominant length %s",
          100 * d_bw->by_size.core_hour_fraction(trace::SizeCategory::Small),
          std::string(to_string(d_mira->dominant_length)).c_str(),
          std::string(to_string(d_philly->dominant_length)).c_str());
    } else {
      c.evidence = "missing systems";
    }
    checks.push_back(c);
  }

  // T5: DL clusters run at lower utilization.
  {
    TakeawayCheck c{5, "DL clusters exhibit lower utilization than HPC",
                    false, ""};
    const auto* u_philly = find_system(util_r, "Philly");
    const auto* u_helios = find_system(util_r, "Helios");
    const auto* u_mira = find_system(util_r, "Mira");
    const auto* u_theta = find_system(util_r, "Theta");
    if (u_philly && u_helios && u_mira && u_theta) {
      const double hpc_min = std::min(u_mira->average, u_theta->average);
      c.holds = u_philly->average < u_helios->average &&
                u_helios->average < hpc_min;
      c.evidence = format(
          "avg util Philly %.0f%% < Helios %.0f%% < HPC min %.0f%%",
          100 * u_philly->average, 100 * u_helios->average, 100 * hpc_min);
    } else {
      c.evidence = "missing systems";
    }
    checks.push_back(c);
  }

  // T6: waiting-time regimes differ sharply (Helios minimal, Philly long,
  // BW longest median).
  {
    TakeawayCheck c{6, "waiting time regimes differ (Helios tiny, Philly "
                       "long, BW longest)", false, ""};
    const auto* w_helios = find_system(wait, "Helios");
    const auto* w_philly = find_system(wait, "Philly");
    const auto* w_bw = find_system(wait, "BlueWaters");
    const auto* w_mira = find_system(wait, "Mira");
    if (w_helios && w_philly && w_bw && w_mira) {
      c.holds = w_helios->frac_wait_under_10s > 0.6 &&
                w_philly->frac_wait_over_10min > 0.4 &&
                w_bw->wait_summary.median > w_mira->wait_summary.median;
      c.evidence = format(
          "Helios <10s: %.0f%%; Philly >10min: %.0f%%; median wait BW %.0fs "
          "vs Mira %.0fs",
          100 * w_helios->frac_wait_under_10s,
          100 * w_philly->frac_wait_over_10min, w_bw->wait_summary.median,
          w_mira->wait_summary.median);
    } else {
      c.evidence = "missing systems";
    }
    checks.push_back(c);
  }

  // T7: failures are common everywhere and killed jobs waste outsized
  // resources.
  {
    TakeawayCheck c{7, "high failure rates everywhere; killed jobs consume "
                       "disproportionate core-hours", false, ""};
    bool all_below = !fail.empty();
    bool killed_outsized = !fail.empty();
    std::ostringstream ev;
    for (const auto& f : fail) {
      const double passed = f.overall.job_fraction(trace::JobStatus::Passed);
      const double killed_jobs =
          f.overall.job_fraction(trace::JobStatus::Killed);
      const double killed_ch =
          f.overall.core_hour_fraction(trace::JobStatus::Killed);
      all_below = all_below && passed < 0.80;
      killed_outsized = killed_outsized && killed_ch > killed_jobs;
      ev << f.system << " passed " << format("%.0f%%", 100 * passed) << "; ";
    }
    c.holds = all_below && killed_outsized;
    c.evidence = ev.str();
    checks.push_back(c);
  }

  // T8: per-user patterns are consistent and exploitable (repetition +
  // queue-aware submissions).
  {
    TakeawayCheck c{8, "strong per-user repetition; users shrink requests "
                       "under queue pressure", false, ""};
    bool top10_high = !rep.empty();
    for (const auto& r : rep) {
      top10_high = top10_high && r.cumulative_share[9] > 0.75;
    }
    // Queue pressure: the Large+Middle size share should drop from the
    // Short to the Long queue bucket in at least 4 of 5 systems.
    int shrinking = 0;
    for (const auto& q : queue) {
      const double big_short = q.size_mix[0][2] + q.size_mix[0][3];
      const double big_long = q.size_mix[2][2] + q.size_mix[2][3];
      if (big_long < big_short) ++shrinking;
    }
    c.holds = top10_high && shrinking * 5 >= static_cast<int>(queue.size()) * 4;
    c.evidence = format(
        "top-10 group coverage >75%% on all systems: %s; %d/%zu systems "
        "submit smaller jobs under long queues",
        top10_high ? "yes" : "no", shrinking, queue.size());
    checks.push_back(c);
  }

  return checks;
}

std::string render_takeaways(const std::vector<TakeawayCheck>& checks) {
  std::ostringstream os;
  for (const auto& c : checks) {
    os << "Takeaway " << c.number << " ["
       << (c.holds ? "REPRODUCED" : "NOT REPRODUCED") << "] " << c.claim
       << "\n    evidence: " << c.evidence << '\n';
  }
  return os.str();
}

}  // namespace lumos::core
