#include "core/fault_aware_study.hpp"

#include <algorithm>
#include <sstream>

#include "predict/status_predictor.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace lumos::core {

FaultAwareResult run_fault_aware_study(const trace::Trace& trace,
                                       const FaultAwareConfig& config) {
  LUMOS_REQUIRE(trace.size() >= 100, "fault-aware study needs >= 100 jobs");
  FaultAwareResult result;
  result.system = trace.spec().name;

  auto feats = predict::extract_features(trace);
  if (config.max_jobs > 0 && feats.size() > config.max_jobs) {
    feats.resize(config.max_jobs);
  }
  double avg = 0.0;
  for (const auto& f : feats) avg += f.run_time;
  avg /= static_cast<double>(feats.size());

  // Monitor trained on the chronological prefix; evaluated on the rest.
  const predict::StatusPredictor monitor(trace, config.train_fraction,
                                         config.max_jobs);
  const auto n_train = static_cast<std::size_t>(
      config.train_fraction * static_cast<double>(feats.size()));

  std::vector<double> checkpoints;
  for (double f : config.checkpoint_fractions) checkpoints.push_back(f * avg);
  std::sort(checkpoints.begin(), checkpoints.end());

  // Baseline waste over the evaluation slice.
  const auto jobs = trace.jobs();
  for (std::size_t i = n_train; i < feats.size(); ++i) {
    const double ch =
        static_cast<double>(jobs[i].cores) * feats[i].run_time / 3600.0;
    result.total_core_hours += ch;
    if (feats[i].status != trace::JobStatus::Passed) {
      result.total_doomed_core_hours += ch;
    }
  }

  for (double threshold : config.thresholds) {
    FaultAwareRow row;
    row.threshold = threshold;
    for (std::size_t i = n_train; i < feats.size(); ++i) {
      const auto& f = feats[i];
      // First checkpoint (within the job's lifetime) where the monitor
      // would pull the plug.
      double stop_at = -1.0;
      for (double cp : checkpoints) {
        if (cp >= f.run_time) break;  // job ended before this checkpoint
        if (monitor.doom_probability(f, cp) >= threshold) {
          stop_at = cp;
          break;
        }
      }
      if (stop_at < 0.0) continue;
      const double cores = static_cast<double>(jobs[i].cores);
      if (f.status != trace::JobStatus::Passed) {
        ++row.stopped_doomed;
        row.saved_core_hours += cores * (f.run_time - stop_at) / 3600.0;
      } else {
        ++row.stopped_passed;
        // Everything the passed job consumed (up to the stop) is wasted,
        // and its useful result is lost — charge its full core-hours.
        row.collateral_core_hours += cores * f.run_time / 3600.0;
      }
    }
    const auto acted = row.stopped_doomed + row.stopped_passed;
    row.precision = acted > 0 ? static_cast<double>(row.stopped_doomed) /
                                    static_cast<double>(acted)
                              : 0.0;
    row.waste_recall = result.total_doomed_core_hours > 0.0
                           ? row.saved_core_hours /
                                 result.total_doomed_core_hours
                           : 0.0;
    result.rows.push_back(row);
  }
  return result;
}

std::string render_fault_aware_study(const FaultAwareResult& result) {
  util::TextTable t({"threshold", "stopped doomed", "stopped passed",
                     "precision", "saved CH", "collateral CH",
                     "waste recalled"});
  for (const auto& row : result.rows) {
    t.add_row({util::fixed(row.threshold, 2),
               std::to_string(row.stopped_doomed),
               std::to_string(row.stopped_passed),
               util::percent(row.precision),
               util::fixed(row.saved_core_hours, 0),
               util::fixed(row.collateral_core_hours, 0),
               util::percent(row.waste_recall)});
  }
  std::ostringstream os;
  os << "System " << result.system << " (doomed jobs burn "
     << util::fixed(result.total_doomed_core_hours, 0) << " of "
     << util::fixed(result.total_core_hours, 0) << " core-hours):\n"
     << t.render();
  return os.str();
}

}  // namespace lumos::core
