// Extension: backfilling on system-generated runtime estimates.
//
// The paper's use case 1 improves runtime prediction and argues it is
// "helpful in making effective scheduling decisions"; Tsafrir et al.
// (TPDS'07) showed system predictions can replace user walltime requests
// inside backfilling. This study closes the loop with lumos's own
// components: schedule one trace under EASY backfilling with walltime
// estimates drawn from different sources and compare scheduling quality.
//
// Underestimates are modelled honestly: a job whose actual runtime exceeds
// its (padded) estimate is killed at the estimate — the cost the paper
// warns about when motivating the Underestimation Rate metric.
#pragma once

#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "trace/trace.hpp"

namespace lumos::core {

enum class EstimateSource {
  UserRequest,  ///< the trace's walltime requests (skipped when absent)
  Oracle,       ///< exact runtimes (upper bound on estimate quality)
  Last2,        ///< mean of the user's last two runtimes, padded
  Model,        ///< gradient-boosted regression on job features, padded
};

[[nodiscard]] std::string to_string(EstimateSource s);

struct EstimateStudyConfig {
  sim::PolicyKind policy = sim::PolicyKind::Fcfs;
  sim::BackfillKind backfill = sim::BackfillKind::Easy;
  /// Safety padding multiplier applied to predicted runtimes.
  double padding = 1.5;
  /// Minimum estimate (seconds) — schedulers round tiny requests up.
  double min_estimate_s = 600.0;
  /// Chronological fraction used to train the Model source (in-sample for
  /// the prefix, documented limitation).
  double train_fraction = 0.4;
  std::size_t max_jobs = 30000;
};

struct EstimateStudyRow {
  EstimateSource source;
  sim::SimMetrics metrics;
  /// Paper's prediction metrics for the estimates themselves.
  double estimate_accuracy = 0.0;      ///< mean min/max ratio
  double underestimate_rate = 0.0;
  /// Jobs killed because their estimate undershot the actual runtime.
  std::size_t killed_by_underestimate = 0;
  /// Core-hours lost to those premature kills.
  double wasted_core_hours = 0.0;
};

struct EstimateStudyResult {
  std::string system;
  std::vector<EstimateStudyRow> rows;
};

[[nodiscard]] EstimateStudyResult run_estimate_study(
    const trace::Trace& trace, const EstimateStudyConfig& config = {});

[[nodiscard]] std::string render_estimate_study(
    const EstimateStudyResult& result);

}  // namespace lumos::core
