// Backfilling strategies, including the paper's contribution.
//
//  * None          — queue head blocks everything behind it.
//  * Easy          — EASY backfilling (Lifka'95 / Mu'alem-Feitelson'01): a
//                    later job may jump the queue iff it cannot delay the
//                    head job's reservation.
//  * Conservative  — every queued job holds a reservation; a job may start
//                    early iff it delays none of them.
//  * Relaxed       — Ward et al. (JSSPP'02): a backfill may delay the head
//                    job's reservation by up to `factor` × its expected
//                    wait.
//  * AdaptiveRelaxed — the paper's Eq. (1): the allowance factor is scaled
//                    by current_queue_length / max_queue_length, enabling
//                    aggressive relaxation exactly when users are submitting
//                    the small/short jobs that backfill well (Takeaway 8).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace lumos::sim {

enum class BackfillKind : std::uint8_t {
  None,
  Easy,
  Conservative,
  Relaxed,
  AdaptiveRelaxed,
};

[[nodiscard]] std::string_view to_string(BackfillKind b) noexcept;
[[nodiscard]] BackfillKind backfill_from_string(std::string_view name);

/// How the adaptive factor responds to queue pressure (ablation, DESIGN §4).
enum class AdaptiveShape : std::uint8_t {
  Linear,     ///< factor * q/Q           — the paper's Eq. (1)
  Quadratic,  ///< factor * (q/Q)^2       — more conservative at low load
  Sqrt,       ///< factor * sqrt(q/Q)     — more aggressive at low load
};

[[nodiscard]] std::string_view to_string(AdaptiveShape s) noexcept;

struct BackfillConfig {
  BackfillKind kind = BackfillKind::Easy;
  /// Base relaxation factor (the paper discusses 10%/20%; default 10%).
  double relax_factor = 0.10;
  AdaptiveShape adaptive_shape = AdaptiveShape::Linear;
  /// Cap on how many queued jobs one scheduling pass scans for backfill
  /// candidates (guards O(n^2) blowup on pathological backlogs).
  std::size_t scan_limit = 2000;
};

/// The effective relaxation allowance factor for the current queue state.
[[nodiscard]] double effective_relax_factor(const BackfillConfig& config,
                                            std::size_t queue_length,
                                            std::size_t max_queue_length)
    noexcept;

}  // namespace lumos::sim
