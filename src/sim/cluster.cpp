#include "sim/cluster.hpp"

#include <cassert>
#include <numeric>

#include "util/error.hpp"

namespace lumos::sim {

Cluster::Cluster(std::uint64_t capacity)
    : Cluster(std::vector<std::uint64_t>{capacity}) {}

Cluster::Cluster(std::vector<std::uint64_t> capacities)
    : capacity_(std::move(capacities)),
      free_(capacity_),
      offline_(capacity_.size(), 0) {
  LUMOS_REQUIRE(!capacity_.empty(), "cluster needs at least one partition");
  for (auto c : capacity_) {
    LUMOS_REQUIRE(c > 0, "cluster partitions must have positive capacity");
  }
  total_capacity_ =
      std::accumulate(capacity_.begin(), capacity_.end(), std::uint64_t{0});
}

Cluster Cluster::from_spec(const trace::SystemSpec& spec) {
  const std::uint64_t capacity = spec.primary_capacity();
  LUMOS_REQUIRE(capacity > 0, "system spec has zero primary capacity");
  const int vcs = spec.virtual_clusters;
  if (vcs <= 1) return Cluster(capacity);
  std::vector<std::uint64_t> parts(static_cast<std::size_t>(vcs));
  const std::uint64_t base = capacity / static_cast<std::uint64_t>(vcs);
  std::uint64_t rem = capacity % static_cast<std::uint64_t>(vcs);
  for (auto& p : parts) {
    p = base + (rem > 0 ? 1 : 0);
    if (rem > 0) --rem;
  }
  return Cluster(std::move(parts));
}

std::uint64_t Cluster::total_free() const noexcept {
  return std::accumulate(free_.begin(), free_.end(), std::uint64_t{0});
}

bool Cluster::allocate(std::uint64_t cores, std::size_t p) noexcept {
  if (p >= free_.size() || cores > free_[p]) return false;
  free_[p] -= cores;
  return true;
}

void Cluster::release(std::uint64_t cores, std::size_t p) noexcept {
  if (p >= free_.size()) return;
  assert(free_[p] + cores + offline_[p] <= capacity_[p] &&
         "release exceeds capacity");
  free_[p] += cores;
  if (free_[p] + offline_[p] > capacity_[p]) {
    free_[p] = capacity_[p] - offline_[p];
  }
}

void Cluster::fail(std::uint64_t cores, std::size_t p) {
  LUMOS_REQUIRE(p < free_.size(), "fail: partition out of range");
  LUMOS_REQUIRE(cores <= free_[p],
                "fail: failed cores must be freed (interrupted) first");
  free_[p] -= cores;
  offline_[p] += cores;
}

void Cluster::recover(std::uint64_t cores, std::size_t p) {
  LUMOS_REQUIRE(p < free_.size(), "recover: partition out of range");
  LUMOS_REQUIRE(cores <= offline_[p],
                "recover: more cores than are offline");
  offline_[p] -= cores;
  free_[p] += cores;
}

std::size_t Cluster::partition_for(std::int32_t vc) const noexcept {
  if (vc < 0 || partitions() == 1) return 0;
  return static_cast<std::size_t>(vc) % partitions();
}

}  // namespace lumos::sim
