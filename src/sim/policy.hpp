// Queue-ordering policies.
//
// The scheduler sorts its waiting queue by a policy score and serves the
// head. FCFS and SJF are the classics the paper names (§II-C); WFP3 and
// UNICEP are the hand-tuned priority functions used as baselines in the
// SchedGym line of work (RLScheduler, SchedInspector) that this simulator
// reimplements.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace lumos::sim {

enum class PolicyKind : std::uint8_t {
  Fcfs,    ///< first come, first served (by submit time)
  Sjf,     ///< shortest (requested) job first
  Wfp3,    ///< -(wait/request)^3 * cores — favours long-waiting small jobs
  Unicep,  ///< wait / (log2(cores) * request) — UNICEP/F4-style
  Saf,     ///< smallest area (cores * request) first
  /// Longest downstream critical path first (DAG workloads): the job
  /// whose completion unblocks the longest chain of planned work runs
  /// earliest. For edge-free traces the downstream path is the job
  /// itself, so this degrades to longest-job-first. The simulator scores
  /// it from the precomputed JobSoA critical-path lane; the fallback
  /// below sees only the job's own planned runtime.
  CriticalPath,
};

[[nodiscard]] std::string_view to_string(PolicyKind p) noexcept;
/// Parses "fcfs"/"sjf"/"wfp3"/"unicep"/"saf"/"cp" (case-insensitive);
/// throws InvalidArgument on anything else.
[[nodiscard]] PolicyKind policy_from_string(std::string_view name);

/// A waiting job as a policy sees it.
struct PolicyJobView {
  double submit_time = 0.0;
  double wait_time = 0.0;       ///< now - submit
  double expected_run = 0.0;    ///< requested walltime (or oracle runtime)
  std::uint64_t cores = 1;
};

/// Priority score — *lower is served earlier* (so FCFS returns submit time).
[[nodiscard]] double policy_score(PolicyKind policy,
                                  const PolicyJobView& job) noexcept;

}  // namespace lumos::sim
