// Node-level GPU placement and fragmentation.
//
// The aggregate-pool cluster model (sim/cluster.hpp) is exact for rigid
// CPU jobs, but DL clusters schedule *GPUs on nodes*: a job of up to one
// node's worth of GPUs must be placed on a single node, and a multi-node
// job needs whole idle nodes. Small jobs therefore strand GPUs ("beware of
// fragmentation", the paper's ref [46]) — one of the mechanisms behind
// Takeaway 5's low DL utilization. This module models that placement and
// quantifies the fragmentation penalty against the pool model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace lumos::sim {

enum class PackingPolicy : std::uint8_t {
  FirstFit,  ///< first node with enough free GPUs
  BestFit,   ///< node with the least (but sufficient) free GPUs
  WorstFit,  ///< node with the most free GPUs (spreads load)
};

[[nodiscard]] std::string_view to_string(PackingPolicy p) noexcept;

/// A cluster of identical nodes with `gpus_per_node` GPUs each.
class NodeCluster {
 public:
  NodeCluster(std::uint32_t nodes, std::uint32_t gpus_per_node,
              PackingPolicy policy = PackingPolicy::BestFit);

  [[nodiscard]] std::uint32_t nodes() const noexcept {
    return static_cast<std::uint32_t>(free_.size());
  }
  [[nodiscard]] std::uint32_t gpus_per_node() const noexcept {
    return gpus_per_node_;
  }
  [[nodiscard]] std::uint64_t total_gpus() const noexcept {
    return static_cast<std::uint64_t>(free_.size()) * gpus_per_node_;
  }
  [[nodiscard]] std::uint64_t free_gpus() const noexcept {
    return free_total_;
  }
  [[nodiscard]] std::uint32_t offline_nodes() const noexcept {
    return offline_count_;
  }
  /// Degraded capacity: GPUs on offline nodes, neither free nor placed.
  [[nodiscard]] std::uint64_t offline_gpus() const noexcept {
    return static_cast<std::uint64_t>(offline_count_) * gpus_per_node_;
  }

  /// Takes an idle node offline (failed/drained): its GPUs leave the free
  /// pool and the node is skipped by placement until restored. Requires
  /// the node to be fully idle — callers interrupt or drain work first.
  void set_node_offline(std::uint32_t node);

  /// Brings an offline node back; its GPUs rejoin the free pool.
  void restore_node(std::uint32_t node);

  /// Whether a job of `gpus` can be placed under gang-placement rules:
  /// <= gpus_per_node -> one node; otherwise ceil(g / gpn) nodes, all but
  /// possibly the last fully idle.
  [[nodiscard]] bool can_place(std::uint64_t gpus) const noexcept;

  /// Places the job; returns the allocation (node, gpus) pairs, empty when
  /// it does not fit (no partial placement).
  struct Slice {
    std::uint32_t node;
    std::uint32_t gpus;
  };
  [[nodiscard]] std::vector<Slice> place(std::uint64_t gpus);

  /// Returns a previous placement's GPUs.
  void release(const std::vector<Slice>& slices);

  /// Stranded capacity right now for a hypothetical job of `gpus`: free
  /// GPUs that cannot serve it because of placement constraints
  /// (free_gpus() - gpus when it fits, free_gpus() when it does not).
  [[nodiscard]] std::uint64_t stranded_for(std::uint64_t gpus) const noexcept;

 private:
  std::vector<std::uint32_t> free_;  ///< free GPUs per node (0 if offline)
  std::vector<std::uint8_t> offline_;
  std::uint32_t gpus_per_node_;
  std::uint64_t free_total_;
  std::uint32_t offline_count_ = 0;
  PackingPolicy policy_;

  [[nodiscard]] std::int64_t pick_node(std::uint32_t gpus) const noexcept;
};

/// FCFS packing simulation (no backfilling): replays a GPU trace onto a
/// NodeCluster and reports the fragmentation cost relative to the
/// aggregate-pool model.
struct PackingConfig {
  std::uint32_t gpus_per_node = 8;  ///< typical DL node
  PackingPolicy policy = PackingPolicy::BestFit;
  /// When true, jobs run on an idealised pooled cluster instead (placement
  /// constraints off) — the comparison baseline.
  bool pooled = false;
};

struct PackingMetrics {
  std::size_t jobs = 0;
  double avg_wait = 0.0;
  double utilization = 0.0;
  double makespan = 0.0;
  /// Mean free-GPU count observed at moments the queue head was blocked —
  /// capacity visible but unusable (fragmentation evidence).
  double mean_blocked_free_gpus = 0.0;
  std::size_t blocked_events = 0;
};

[[nodiscard]] PackingMetrics simulate_packing(const trace::Trace& trace,
                                              const PackingConfig& config);

}  // namespace lumos::sim
