// Cluster resource model.
//
// Like SchedGym, lumos schedules against an aggregate pool of cores per
// partition: rigid jobs request `cores` and hold them for their runtime.
// Partitions model Philly-style isolated virtual clusters (§III-B) — a job
// bound to VC k can only draw from partition k's capacity. Systems without
// VCs use a single partition.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/system_spec.hpp"

namespace lumos::sim {

class Cluster {
 public:
  /// Single-partition cluster with `capacity` cores.
  explicit Cluster(std::uint64_t capacity);

  /// Multi-partition cluster; partition i has capacities[i] cores.
  explicit Cluster(std::vector<std::uint64_t> capacities);

  /// Builds from a system spec: primary capacity split evenly across the
  /// spec's virtual clusters (1 partition when the spec has none).
  static Cluster from_spec(const trace::SystemSpec& spec);

  [[nodiscard]] std::size_t partitions() const noexcept {
    return free_.size();
  }
  [[nodiscard]] std::uint64_t capacity(std::size_t p = 0) const noexcept {
    return capacity_[p];
  }
  [[nodiscard]] std::uint64_t total_capacity() const noexcept {
    return total_capacity_;
  }
  [[nodiscard]] std::uint64_t free(std::size_t p = 0) const noexcept {
    return free_[p];
  }
  [[nodiscard]] std::uint64_t total_free() const noexcept;
  /// Cores on failed nodes: neither free nor allocated.
  [[nodiscard]] std::uint64_t offline(std::size_t p = 0) const noexcept {
    return offline_[p];
  }
  /// Cores currently held by running jobs.
  [[nodiscard]] std::uint64_t allocated(std::size_t p = 0) const noexcept {
    return capacity_[p] - free_[p] - offline_[p];
  }

  /// True when partition p currently has `cores` free.
  [[nodiscard]] bool fits(std::uint64_t cores, std::size_t p = 0) const
      noexcept {
    return cores <= free_[p];
  }

  /// Claims cores from partition p; returns false (no change) if they do
  /// not fit.
  [[nodiscard]] bool allocate(std::uint64_t cores, std::size_t p = 0) noexcept;

  /// Returns cores to partition p. Over-release is clamped (and indicates a
  /// caller bug; debug builds assert).
  void release(std::uint64_t cores, std::size_t p = 0) noexcept;

  /// Takes `cores` of partition p offline (node failure). The cores must
  /// currently be free: the simulator interrupts affected running jobs
  /// first, so the failed node's capacity is reclaimable by construction.
  void fail(std::uint64_t cores, std::size_t p = 0);

  /// Brings `cores` of partition p back online (node recovery).
  void recover(std::uint64_t cores, std::size_t p = 0);

  /// Maps a job's virtual-cluster id to a partition index (clamped).
  [[nodiscard]] std::size_t partition_for(std::int32_t vc) const noexcept;

 private:
  std::vector<std::uint64_t> capacity_;
  std::vector<std::uint64_t> free_;
  std::vector<std::uint64_t> offline_;  ///< degraded capacity per partition
  std::uint64_t total_capacity_ = 0;
};

}  // namespace lumos::sim
