// Cluster resource model.
//
// Like SchedGym, lumos schedules against an aggregate pool of cores per
// partition: rigid jobs request `cores` and hold them for their runtime.
// Partitions model Philly-style isolated virtual clusters (§III-B) — a job
// bound to VC k can only draw from partition k's capacity. Systems without
// VCs use a single partition.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/system_spec.hpp"

namespace lumos::sim {

class Cluster {
 public:
  /// Single-partition cluster with `capacity` cores.
  explicit Cluster(std::uint64_t capacity);

  /// Multi-partition cluster; partition i has capacities[i] cores.
  explicit Cluster(std::vector<std::uint64_t> capacities);

  /// Builds from a system spec: primary capacity split evenly across the
  /// spec's virtual clusters (1 partition when the spec has none).
  static Cluster from_spec(const trace::SystemSpec& spec);

  [[nodiscard]] std::size_t partitions() const noexcept {
    return free_.size();
  }
  [[nodiscard]] std::uint64_t capacity(std::size_t p = 0) const noexcept {
    return capacity_[p];
  }
  [[nodiscard]] std::uint64_t total_capacity() const noexcept {
    return total_capacity_;
  }
  [[nodiscard]] std::uint64_t free(std::size_t p = 0) const noexcept {
    return free_[p];
  }
  [[nodiscard]] std::uint64_t total_free() const noexcept;

  /// True when partition p currently has `cores` free.
  [[nodiscard]] bool fits(std::uint64_t cores, std::size_t p = 0) const
      noexcept {
    return cores <= free_[p];
  }

  /// Claims cores from partition p; returns false (no change) if they do
  /// not fit.
  [[nodiscard]] bool allocate(std::uint64_t cores, std::size_t p = 0) noexcept;

  /// Returns cores to partition p. Over-release is clamped (and indicates a
  /// caller bug; debug builds assert).
  void release(std::uint64_t cores, std::size_t p = 0) noexcept;

  /// Maps a job's virtual-cluster id to a partition index (clamped).
  [[nodiscard]] std::size_t partition_for(std::int32_t vc) const noexcept;

 private:
  std::vector<std::uint64_t> capacity_;
  std::vector<std::uint64_t> free_;
  std::uint64_t total_capacity_ = 0;
};

}  // namespace lumos::sim
