#include "sim/backfill.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace lumos::sim {

std::string_view to_string(BackfillKind b) noexcept {
  switch (b) {
    case BackfillKind::None: return "none";
    case BackfillKind::Easy: return "easy";
    case BackfillKind::Conservative: return "conservative";
    case BackfillKind::Relaxed: return "relaxed";
    case BackfillKind::AdaptiveRelaxed: return "adaptive-relaxed";
  }
  return "?";
}

BackfillKind backfill_from_string(std::string_view name) {
  const std::string n = util::to_lower(name);
  if (n == "none") return BackfillKind::None;
  if (n == "easy") return BackfillKind::Easy;
  if (n == "conservative") return BackfillKind::Conservative;
  if (n == "relaxed") return BackfillKind::Relaxed;
  if (n == "adaptive" || n == "adaptive-relaxed") {
    return BackfillKind::AdaptiveRelaxed;
  }
  throw InvalidArgument("unknown backfill strategy: " + std::string(name));
}

std::string_view to_string(AdaptiveShape s) noexcept {
  switch (s) {
    case AdaptiveShape::Linear: return "linear";
    case AdaptiveShape::Quadratic: return "quadratic";
    case AdaptiveShape::Sqrt: return "sqrt";
  }
  return "?";
}

double effective_relax_factor(const BackfillConfig& config,
                              std::size_t queue_length,
                              std::size_t max_queue_length) noexcept {
  if (config.kind == BackfillKind::Relaxed) return config.relax_factor;
  if (config.kind != BackfillKind::AdaptiveRelaxed) return 0.0;
  if (max_queue_length == 0) return 0.0;
  const double ratio =
      std::clamp(static_cast<double>(queue_length) /
                     static_cast<double>(max_queue_length),
                 0.0, 1.0);
  switch (config.adaptive_shape) {
    case AdaptiveShape::Linear: return config.relax_factor * ratio;
    case AdaptiveShape::Quadratic: return config.relax_factor * ratio * ratio;
    case AdaptiveShape::Sqrt: return config.relax_factor * std::sqrt(ratio);
  }
  return config.relax_factor * ratio;
}

}  // namespace lumos::sim
