#include "sim/policy.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace lumos::sim {

std::string_view to_string(PolicyKind p) noexcept {
  switch (p) {
    case PolicyKind::Fcfs: return "FCFS";
    case PolicyKind::Sjf: return "SJF";
    case PolicyKind::Wfp3: return "WFP3";
    case PolicyKind::Unicep: return "UNICEP";
    case PolicyKind::Saf: return "SAF";
    case PolicyKind::CriticalPath: return "CP";
  }
  return "?";
}

PolicyKind policy_from_string(std::string_view name) {
  const std::string n = util::to_lower(name);
  if (n == "fcfs") return PolicyKind::Fcfs;
  if (n == "sjf") return PolicyKind::Sjf;
  if (n == "wfp3") return PolicyKind::Wfp3;
  if (n == "unicep") return PolicyKind::Unicep;
  if (n == "saf") return PolicyKind::Saf;
  if (n == "cp" || n == "critical_path") return PolicyKind::CriticalPath;
  throw InvalidArgument("unknown scheduling policy: " + std::string(name));
}

double policy_score(PolicyKind policy, const PolicyJobView& job) noexcept {
  const double request = job.expected_run > 0.0 ? job.expected_run : 1.0;
  const double cores = static_cast<double>(job.cores > 0 ? job.cores : 1);
  switch (policy) {
    case PolicyKind::Fcfs:
      return job.submit_time;
    case PolicyKind::Sjf:
      return request;
    case PolicyKind::Wfp3: {
      // Original WFP3 maximises (wait/request)^3 * cores; negate for
      // lower-is-better.
      const double w = job.wait_time / request;
      return -(w * w * w) * cores;
    }
    case PolicyKind::Unicep: {
      // Maximise wait / (log2(cores) * request).
      const double denom = std::max(1.0, std::log2(cores + 1.0)) * request;
      return -(job.wait_time / denom);
    }
    case PolicyKind::Saf:
      return cores * request;
    case PolicyKind::CriticalPath:
      // Edge-free fallback: the downstream critical path of an
      // independent job is the job itself. The simulator substitutes the
      // full DAG critical-path length when dependency lanes are built.
      return -request;
  }
  return job.submit_time;
}

}  // namespace lumos::sim
