// Event ordering for the simulator hot path.
//
// All future events in the event loop — completions, retries, node
// faults — are ordered by ONE documented comparator, `event_before`:
//
//   1. time      ascending (simulated seconds)
//   2. kind      Finish < Arrive < Fail < Hedge — at the same instant, a
//                finishing job frees cores before a new arrival is
//                considered, faults land after both, and hedge-check
//                timers fire last (they inspect post-event state),
//                matching the drain order of the event loop
//                (DESIGN.md §4b/§4f/§4h)
//   3. id       ascending job/node index — stable across runs
//   4. seq      ascending disambiguator (2*epoch + hedge-copy flag for
//                completions, so a job's primary and hedged duplicate
//                coexist under distinct keys; a push sequence number
//                otherwise)
//
// Historically ties at (2)-(4) fell to std::priority_queue insertion
// order: deterministic for a fixed binary, but silently pinned to one
// heap implementation and impossible to reproduce in an alternative
// backend. Making the order total and explicit is what lets the
// calendar queue below be bit-equivalent to the heap.
//
// `EventQueue<Entry>` offers two backends behind one interface:
//
//   Heap      std::priority_queue over `event_before` — the reference
//             implementation and fallback (the ONLY place in src/sim/
//             allowed to name std::priority_queue; lumos_lint enforces
//             this).
//   Calendar  power-of-two bucket calendar queue (Brown 1988 flavour):
//             bucket width is tuned from the observed event-time spread
//             at each resize, lookup scans the current "year" with a
//             direct-search fallback, and bucket lanes live in a
//             util::Arena so steady-state operation performs no heap
//             allocation. O(1) amortised push/pop vs O(log n).
//
// Entries must expose `EventKey key() const` and be trivially copyable
// (lanes are memcpy'd when they grow). Keys of live entries must be
// distinct — (kind, id, seq) uniqueness is the caller's contract — so
// both backends pop the unique `event_before`-minimum and produce
// identical sequences.
//
// Cancellation is tombstone-based lazy deletion: `cancel(key)` marks a
// live entry dead without locating it; the entry is physically dropped
// (and its tombstone retired) when it would surface at the head. Both
// backends share the identical tombstone path, so cancellation preserves
// heap/calendar bit-identity. The caller contract: each cancelled key
// must currently be live and not already cancelled — the simulator
// cancels only events it recorded when pushing (a hedged loser's Finish,
// a finished job's pending hedge check).
#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"

namespace lumos::sim {

enum class EventKind : std::uint8_t {
  Finish = 0,
  Arrive = 1,
  Fail = 2,
  Hedge = 3,  ///< straggler-hedge check timer (fires after same-time events)
};

struct EventKey {
  double time = 0.0;
  EventKind kind = EventKind::Finish;
  std::uint32_t id = 0;
  std::uint32_t seq = 0;
  /// Exact (bitwise on time) equality — tombstone matching; cancelled
  /// keys are rebuilt from the same stored fields that were pushed.
  [[nodiscard]] bool operator==(const EventKey&) const = default;
};

/// The one total order on simulator events; see the file comment.
[[nodiscard]] constexpr bool event_before(const EventKey& a,
                                          const EventKey& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.id != b.id) return a.id < b.id;
  return a.seq < b.seq;
}

enum class EventQueueKind : std::uint8_t {
  Heap,      ///< binary heap reference backend
  Calendar,  ///< bucketed calendar queue (default)
};

[[nodiscard]] constexpr std::string_view to_string(EventQueueKind kind) {
  return kind == EventQueueKind::Heap ? "heap" : "calendar";
}

namespace detail {

/// Lane slot: the entry plus its virtual bucket index, precomputed at
/// push time. The year scan accepts a slot by exact integer comparison
/// (`vindex == scanned index`) — the same function that filed the entry
/// decides its window, so floating-point rounding at bucket boundaries
/// can never file an entry where the scan refuses to see it.
template <typename Entry>
struct LaneSlot {
  Entry entry;
  std::uint64_t vindex;
};

/// Growable lane of trivially-copyable slots backed by a util::Arena.
/// No destructor: storage is reclaimed wholesale by Arena::reset().
template <typename Entry>
class ArenaLane {
 public:
  using Slot = LaneSlot<Entry>;

  void push_back(util::Arena& arena, const Slot& slot) {
    if (size_ == capacity_) grow(arena);
    data_[size_++] = slot;
  }
  /// Removes slot i by swapping the last entry in (order-free storage).
  void swap_remove(std::uint32_t i) { data_[i] = data_[--size_]; }
  void clear() { size_ = 0; }
  [[nodiscard]] std::uint32_t size() const { return size_; }
  [[nodiscard]] const Slot& operator[](std::uint32_t i) const {
    return data_[i];
  }

 private:
  void grow(util::Arena& arena) {
    const std::uint32_t next = capacity_ == 0 ? 4 : capacity_ * 2;
    Slot* data = arena.allocate<Slot>(next);
    for (std::uint32_t i = 0; i < size_; ++i) data[i] = data_[i];
    data_ = data;
    capacity_ = next;
  }

  Slot* data_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = 0;
};

}  // namespace detail

template <typename Entry>
class EventQueue {
 public:
  explicit EventQueue(EventQueueKind kind = EventQueueKind::Calendar)
      : kind_(kind) {
    if (kind_ == EventQueueKind::Calendar) rebuild(kInitialBuckets, 1.0);
  }

  [[nodiscard]] EventQueueKind kind() const { return kind_; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  /// Live entries: physical population minus pending tombstones.
  [[nodiscard]] std::size_t size() const {
    return (kind_ == EventQueueKind::Heap ? heap_.size() : count_) -
           tombs_.size();
  }

  /// Marks the live entry with this exact key as cancelled (lazy delete;
  /// the entry is dropped when it would reach the head). Contract: the
  /// key IS currently live and has not been cancelled before — see the
  /// file comment. O(1); pending tombstones cost O(|tombs|) per head
  /// inspection, so cancellations should be retired promptly (the
  /// simulator's are: a loser's Finish surfaces at its end time).
  LUMOS_HOT_PATH void cancel(const EventKey& key) {
    tombs_.push_back(key);
    ++cancelled_total_;
  }

  /// Total cancel() calls over the queue's lifetime (the
  /// `sim.events_cancelled` accounting hook).
  [[nodiscard]] std::uint64_t cancelled_total() const {
    return cancelled_total_;
  }

  LUMOS_HOT_PATH void push(const Entry& entry) {
    if (kind_ == EventQueueKind::Heap) {
      heap_.push(entry);
      return;
    }
    if (count_ + 1 > lanes_.size() * kGrowLoad) retune(lanes_.size() * 2);
    const EventKey key = entry.key();
    const std::uint64_t index = virtual_bucket(key.time);
    lanes_[index & mask_].push_back(arena_, {entry, index});
    ++count_;
    // A push behind the cursor (or before the cached minimum) must be
    // visible to the next pop: rewind / refresh the cache.
    if (index < cursor_) cursor_ = index;
    if (min_valid_ && event_before(key, min_key_)) min_valid_ = false;
  }

  [[nodiscard]] LUMOS_HOT_PATH const Entry& top() {
    drain_cancelled();
    if (kind_ == EventQueueKind::Heap) return heap_.top();
    find_min();
    return lanes_[min_bucket_][min_slot_].entry;
  }

  LUMOS_HOT_PATH void pop() {
    drain_cancelled();
    if (kind_ == EventQueueKind::Heap) {
      heap_.pop();
      return;
    }
    find_min();
    lanes_[min_bucket_].swap_remove(min_slot_);
    --count_;
    min_valid_ = false;
    if (lanes_.size() > kInitialBuckets && count_ * kShrinkLoad < lanes_.size()) {
      retune(lanes_.size() / 2);
    }
  }

 private:
  // Load-factor thresholds: grow past 2 entries/bucket, shrink below 1/2.
  static constexpr std::size_t kInitialBuckets = 16;
  static constexpr std::size_t kGrowLoad = 2;
  static constexpr std::size_t kShrinkLoad = 2;
  static constexpr double kMinWidth = 1e-9;

  struct HeapCompare {
    bool operator()(const Entry& a, const Entry& b) const {
      return event_before(b.key(), a.key());  // min-queue
    }
  };

  /// If `key` has a pending tombstone, retires it and returns true. The
  /// tombstone list stays flat (no node containers on the hot path) and
  /// is empty whenever no cancellation is in flight.
  LUMOS_HOT_PATH bool retire_tombstone(const EventKey& key) {
    for (std::size_t i = 0; i < tombs_.size(); ++i) {
      if (tombs_[i] == key) {
        tombs_[i] = tombs_.back();
        tombs_.pop_back();
        return true;
      }
    }
    return false;
  }

  /// Physically drops cancelled entries that have reached the head, so
  /// top()/pop() only ever see live minimums. Identical logic over both
  /// backends: the head is located through the backend's own minimum
  /// search, then removed if tombstoned.
  LUMOS_HOT_PATH void drain_cancelled() {
    while (!tombs_.empty()) {
      if (kind_ == EventQueueKind::Heap) {
        if (heap_.empty() || !retire_tombstone(heap_.top().key())) return;
        heap_.pop();
      } else {
        if (count_ == 0) return;
        find_min();
        if (!retire_tombstone(min_key_)) return;
        lanes_[min_bucket_].swap_remove(min_slot_);
        --count_;
        min_valid_ = false;
      }
    }
  }

  // Monotone non-decreasing time -> virtual index map. Monotonicity is
  // the only correctness requirement (t1 < t2 implies vindex(t1) <=
  // vindex(t2), so scanning buckets in index order visits times in
  // order); which side of a bucket boundary a time rounds to is a pure
  // performance detail, which is what lets us use the cheaper multiply.
  [[nodiscard]] std::uint64_t virtual_bucket(double time) const {
    const double scaled = time * inv_width_;
    // Events never carry negative times; clamp defensively anyway.
    if (scaled <= 0.0) return 0;
    if (scaled >= static_cast<double>(std::numeric_limits<std::int64_t>::max()))
      return std::numeric_limits<std::uint64_t>::max() / 2;
    return static_cast<std::uint64_t>(scaled);
  }

  void rebuild(std::size_t buckets, double width) {
    arena_.reset();
    lanes_.assign(buckets, {});
    mask_ = buckets - 1;
    width_ = width;
    inv_width_ = 1.0 / width;
    cursor_ = 0;
    min_valid_ = false;
  }

  /// Resize to `buckets` (power of two), re-deriving the bucket width
  /// from the observed spread of the live entries, and reinsert them.
  /// O(n), amortised against the pushes/pops that triggered it.
  void retune(std::size_t buckets) {
    scratch_.clear();
    scratch_.reserve(count_);
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const auto& lane : lanes_) {
      for (std::uint32_t i = 0; i < lane.size(); ++i) {
        const Entry& entry = lane[i].entry;
        scratch_.push_back(entry);
        const double t = entry.key().time;
        lo = lo < t ? lo : t;
        hi = hi > t ? hi : t;
      }
    }
    // Width = spread / buckets spreads the current population one
    // deep on average; degenerate spreads (empty, or all ties) keep
    // the previous width so behaviour stays defined.
    double width = width_;
    if (!scratch_.empty() && hi - lo > 0.0) {
      width = (hi - lo) / static_cast<double>(buckets);
      if (width < kMinWidth) width = kMinWidth;
    }
    rebuild(buckets, width);
    std::uint64_t min_index = std::numeric_limits<std::uint64_t>::max();
    for (const Entry& entry : scratch_) {
      const std::uint64_t index = virtual_bucket(entry.key().time);
      lanes_[index & mask_].push_back(arena_, {entry, index});
      if (index < min_index) min_index = index;
    }
    count_ = scratch_.size();
    // Cursor invariant: no live entry sits in a virtual bucket before it.
    cursor_ = scratch_.empty() ? 0 : min_index;
  }

  /// Locates the event_before-minimum entry, caching (bucket, slot).
  /// Scans the cursor's "year": a slot belongs to the scanned virtual
  /// bucket iff its precomputed vindex matches exactly (later wraps of
  /// the same lane have larger vindexes), so the first bucket with a
  /// matching slot ends the search. A full fruitless wrap falls back to
  /// direct search over every lane (sparse-queue escape hatch).
  LUMOS_HOT_PATH void find_min() {
    if (min_valid_) return;
    // lumos-lint: allow(hot-throw) empty-queue top() is a caller bug, never hit on the event loop's happy path
    if (count_ == 0) throw InternalError("EventQueue::top on empty queue");
    const std::size_t buckets = lanes_.size();
    std::uint64_t index = cursor_;
    for (std::size_t step = 0; step < buckets; ++step, ++index) {
      const auto& lane = lanes_[index & mask_];
      bool found = false;
      for (std::uint32_t i = 0; i < lane.size(); ++i) {
        if (lane[i].vindex != index) continue;  // other wrap of this lane
        const EventKey key = lane[i].entry.key();
        if (!found || event_before(key, min_key_)) {
          found = true;
          min_key_ = key;
          min_bucket_ = index & mask_;
          min_slot_ = i;
        }
      }
      if (found) {
        cursor_ = index;
        min_valid_ = true;
        return;
      }
    }
    // Direct search: population too sparse for the current year. The
    // minimum vindex over all slots is the new cursor (smaller vindex
    // means earlier time — virtual_bucket is monotone), and the
    // event_before-minimum lives among the slots holding it.
    std::uint64_t min_index = std::numeric_limits<std::uint64_t>::max();
    bool found = false;
    for (std::size_t b = 0; b < buckets; ++b) {
      const auto& lane = lanes_[b];
      for (std::uint32_t i = 0; i < lane.size(); ++i) {
        if (lane[i].vindex > min_index) continue;
        const EventKey key = lane[i].entry.key();
        if (lane[i].vindex < min_index || !found ||
            event_before(key, min_key_)) {
          found = true;
          min_index = lane[i].vindex;
          min_key_ = key;
          min_bucket_ = b;
          min_slot_ = i;
        }
      }
    }
    cursor_ = min_index;
    min_valid_ = true;
  }

  EventQueueKind kind_;

  // Heap backend.
  std::priority_queue<Entry, std::vector<Entry>, HeapCompare> heap_;

  // Calendar backend.
  util::Arena arena_;
  std::vector<detail::ArenaLane<Entry>> lanes_;
  std::vector<Entry> scratch_;  ///< retune staging (lanes live in arena_)
  std::size_t mask_ = 0;
  std::size_t count_ = 0;
  double width_ = 1.0;
  double inv_width_ = 1.0;  ///< cached 1/width_: push divides nothing
  std::uint64_t cursor_ = 0;  ///< virtual bucket index search resumes from

  // Cached location of the current minimum (valid between pushes/pops
  // that cannot displace it).
  bool min_valid_ = false;
  EventKey min_key_{};
  std::uint32_t min_bucket_ = 0;
  std::uint32_t min_slot_ = 0;

  // Cancellation tombstones (shared by both backends) and the lifetime
  // cancel() count surfaced as `sim.events_cancelled`.
  std::vector<EventKey> tombs_;
  std::uint64_t cancelled_total_ = 0;
};

}  // namespace lumos::sim
