// Structure-of-arrays job state for the simulator event loop.
//
// The loop touches a handful of per-job fields millions of times per
// simulated day: submit/planned times for policy scores, cores for
// fitting, and the location/run-slot handles for O(1) queue membership.
// Laying each field out in its own contiguous array keeps the policy
// sort and the queue compaction streaming over dense doubles instead of
// striding through an array-of-structs, and keeps cold fault-recovery
// state (remaining runtime, attempt counts, epochs) out of the
// fault-free cache footprint entirely — those lanes are only allocated
// when fault injection is enabled.
//
// This is plumbing behind the public API: trace::Job remains the
// user-facing record, and SimResult/JobOutcome are unchanged. All
// arrays are index-aligned with the input trace.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/cluster.hpp"
#include "trace/trace.hpp"
#include "util/annotations.hpp"

namespace lumos::sim {

/// Where a job currently lives in the event loop. Acts as the per-job
/// queue handle: O(1) membership checks replace linear scans.
enum class JobLocation : std::uint8_t {
  NotArrived,
  Queued,
  Running,
  Finished,
  Dropped,    ///< oversized for its partition, removed from the queue
  Retrying,   ///< interrupted; waiting out its resubmission backoff
  Abandoned,  ///< interrupted and out of retry budget: left as Failed
};

class JobSoA {
 public:
  /// Populates the hot lanes from the trace. Returns true when planning
  /// fell back to oracle runtimes (trace lacked walltime requests).
  bool build(const trace::Trace& trace, const Cluster& cluster) {
    const auto jobs = trace.jobs();
    n_ = jobs.size();
    submit_.resize(n_);
    run_.resize(n_);
    planned_.resize(n_);
    cores_.resize(n_);
    partition_.resize(n_);
    location_.assign(n_, JobLocation::NotArrived);
    run_slot_.assign(n_, 0);
    bool used_oracle = false;
    for (std::size_t i = 0; i < n_; ++i) {
      const auto& j = jobs[i];
      submit_[i] = j.submit_time;
      run_[i] = std::max(0.0, j.run_time);
      cores_[i] = j.cores > 0 ? j.cores : 1;
      partition_[i] = cluster.partition_for(j.virtual_cluster);
      if (j.has_requested_time()) {
        planned_[i] = std::max(j.requested_time, 1.0);
      } else {
        planned_[i] = std::max(run_[i], 1.0);
        used_oracle = true;
      }
    }
    return used_oracle;
  }

  /// Allocates the fault-recovery lanes (fault-free runs never pay for
  /// them). Remaining runtimes start at the full runtime.
  void enable_fault_state() {
    remaining_run_ = run_;
    run_start_.assign(n_, 0.0);
    attempts_.assign(n_, 0);
    epoch_.assign(n_, 0);
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  // Hot lanes (immutable after build).
  [[nodiscard]] double submit(std::size_t i) const noexcept { return submit_[i]; }
  [[nodiscard]] double run(std::size_t i) const noexcept { return run_[i]; }
  [[nodiscard]] double planned(std::size_t i) const noexcept { return planned_[i]; }
  [[nodiscard]] std::uint64_t cores(std::size_t i) const noexcept { return cores_[i]; }
  [[nodiscard]] std::size_t partition(std::size_t i) const noexcept { return partition_[i]; }

  // Event-loop handles.
  [[nodiscard]] JobLocation location(std::size_t i) const noexcept { return location_[i]; }
  LUMOS_HOT_PATH void set_location(std::size_t i, JobLocation l) noexcept { location_[i] = l; }
  [[nodiscard]] std::uint32_t run_slot(std::size_t i) const noexcept { return run_slot_[i]; }
  LUMOS_HOT_PATH void set_run_slot(std::size_t i, std::uint32_t s) noexcept { run_slot_[i] = s; }

  // Fault lanes (valid only after enable_fault_state()).
  [[nodiscard]] double& remaining_run(std::size_t i) noexcept { return remaining_run_[i]; }
  [[nodiscard]] double& run_start(std::size_t i) noexcept { return run_start_[i]; }
  [[nodiscard]] std::uint32_t& attempts(std::size_t i) noexcept { return attempts_[i]; }
  [[nodiscard]] std::uint32_t& epoch(std::size_t i) noexcept { return epoch_[i]; }
  [[nodiscard]] std::uint32_t epoch(std::size_t i) const noexcept { return epoch_[i]; }

 private:
  std::size_t n_ = 0;
  std::vector<double> submit_;
  std::vector<double> run_;
  std::vector<double> planned_;         ///< walltime request or oracle
  std::vector<std::uint64_t> cores_;
  std::vector<std::size_t> partition_;
  std::vector<JobLocation> location_;
  std::vector<std::uint32_t> run_slot_;
  // Cold fault lanes.
  std::vector<double> remaining_run_;   ///< runtime still owed
  std::vector<double> run_start_;       ///< start of the current attempt
  std::vector<std::uint32_t> attempts_; ///< interruptions suffered so far
  std::vector<std::uint32_t> epoch_;    ///< current interruption generation
};

}  // namespace lumos::sim
