// Structure-of-arrays job state for the simulator event loop.
//
// The loop touches a handful of per-job fields millions of times per
// simulated day: submit/planned times for policy scores, cores for
// fitting, and the location/run-slot handles for O(1) queue membership.
// Laying each field out in its own contiguous array keeps the policy
// sort and the queue compaction streaming over dense doubles instead of
// striding through an array-of-structs, and keeps cold fault-recovery
// state (remaining runtime, attempt counts, epochs) out of the
// fault-free cache footprint entirely — those lanes are only allocated
// when fault injection is enabled.
//
// This is plumbing behind the public API: trace::Job remains the
// user-facing record, and SimResult/JobOutcome are unchanged. All
// arrays are index-aligned with the input trace.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/cluster.hpp"
#include "trace/dag.hpp"
#include "trace/trace.hpp"
#include "util/annotations.hpp"

namespace lumos::sim {

/// Where a job currently lives in the event loop. Acts as the per-job
/// queue handle: O(1) membership checks replace linear scans.
enum class JobLocation : std::uint8_t {
  NotArrived,
  Queued,
  Running,
  Finished,
  Dropped,    ///< oversized for its partition, removed from the queue
  Retrying,   ///< interrupted; waiting out its resubmission backoff
  Abandoned,  ///< interrupted and out of retry budget: left as Failed
  Blocked,    ///< arrived but waiting on unfinished DAG parents
};

class JobSoA {
 public:
  /// Populates the hot lanes from the trace. Returns true when planning
  /// fell back to oracle runtimes (trace lacked walltime requests).
  bool build(const trace::Trace& trace, const Cluster& cluster) {
    const auto jobs = trace.jobs();
    n_ = jobs.size();
    submit_.resize(n_);
    run_.resize(n_);
    planned_.resize(n_);
    cores_.resize(n_);
    partition_.resize(n_);
    location_.assign(n_, JobLocation::NotArrived);
    run_slot_.assign(n_, 0);
    bool used_oracle = false;
    for (std::size_t i = 0; i < n_; ++i) {
      const auto& j = jobs[i];
      submit_[i] = j.submit_time;
      run_[i] = std::max(0.0, j.run_time);
      cores_[i] = j.cores > 0 ? j.cores : 1;
      partition_[i] = cluster.partition_for(j.virtual_cluster);
      if (j.has_requested_time()) {
        planned_[i] = std::max(j.requested_time, 1.0);
      } else {
        planned_[i] = std::max(run_[i], 1.0);
        used_oracle = true;
      }
    }
    return used_oracle;
  }

  /// Allocates the fault-recovery lanes (fault-free runs never pay for
  /// them). Remaining runtimes start at the full runtime.
  void enable_fault_state() {
    remaining_run_ = run_;
    run_start_.assign(n_, 0.0);
    attempts_.assign(n_, 0);
    epoch_.assign(n_, 0);
  }

  /// Allocates the precedence lanes from the trace's validated DAG edges
  /// (call after build; traces without edges never pay for them). The
  /// critical-path lane is weighted by planned runtimes — the same
  /// quantity every policy scores against.
  void enable_dag_state(const trace::Trace& trace) {
    trace::DagIndex index = trace::build_dag_index(trace, planned_);
    unmet_parents_ = std::move(index.parent_count);
    child_offset_ = std::move(index.child_offset);
    children_ = std::move(index.children);
    cp_length_ = std::move(index.critical_path);
  }

  /// Allocates the straggler-hedging lanes. The duplicate's runtime is
  /// the trace's straggler-free estimate when present, else the job's own
  /// runtime (a duplicate of a non-straggler gains nothing). run_start_
  /// doubles as the primary copy's start for wasted-work accounting, so
  /// it is allocated here too when faults are off.
  void enable_hedge_state(const trace::Trace& trace) {
    if (run_start_.empty()) run_start_.assign(n_, 0.0);
    hedge_run_.resize(n_);
    const auto jobs = trace.jobs();
    for (std::size_t i = 0; i < n_; ++i) {
      const double h = jobs[i].hedge_run_time;
      hedge_run_[i] = h > 0.0 ? h : run_[i];
    }
    hedge_active_.assign(n_, 0);
    hedge_slot_.assign(n_, 0);
    hedge_start_.assign(n_, 0.0);
    hedge_check_time_.assign(n_, -1.0);
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  // Hot lanes (immutable after build).
  [[nodiscard]] double submit(std::size_t i) const noexcept { return submit_[i]; }
  [[nodiscard]] double run(std::size_t i) const noexcept { return run_[i]; }
  [[nodiscard]] double planned(std::size_t i) const noexcept { return planned_[i]; }
  [[nodiscard]] std::uint64_t cores(std::size_t i) const noexcept { return cores_[i]; }
  [[nodiscard]] std::size_t partition(std::size_t i) const noexcept { return partition_[i]; }

  // Event-loop handles.
  [[nodiscard]] JobLocation location(std::size_t i) const noexcept { return location_[i]; }
  LUMOS_HOT_PATH void set_location(std::size_t i, JobLocation l) noexcept { location_[i] = l; }
  [[nodiscard]] std::uint32_t run_slot(std::size_t i) const noexcept { return run_slot_[i]; }
  LUMOS_HOT_PATH void set_run_slot(std::size_t i, std::uint32_t s) noexcept { run_slot_[i] = s; }

  // Fault lanes (valid only after enable_fault_state()).
  [[nodiscard]] double& remaining_run(std::size_t i) noexcept { return remaining_run_[i]; }
  [[nodiscard]] double& run_start(std::size_t i) noexcept { return run_start_[i]; }
  [[nodiscard]] std::uint32_t& attempts(std::size_t i) noexcept { return attempts_[i]; }
  [[nodiscard]] std::uint32_t& epoch(std::size_t i) noexcept { return epoch_[i]; }
  [[nodiscard]] std::uint32_t epoch(std::size_t i) const noexcept { return epoch_[i]; }

  // DAG lanes (valid only after enable_dag_state()).
  [[nodiscard]] bool dag_enabled() const noexcept { return !child_offset_.empty(); }
  [[nodiscard]] std::uint32_t& unmet_parents(std::size_t i) noexcept { return unmet_parents_[i]; }
  [[nodiscard]] std::uint32_t unmet_parents(std::size_t i) const noexcept { return unmet_parents_[i]; }
  /// Children of job i as a contiguous [begin, end) index range.
  [[nodiscard]] const std::uint32_t* children_begin(std::size_t i) const noexcept {
    return children_.data() + child_offset_[i];
  }
  [[nodiscard]] const std::uint32_t* children_end(std::size_t i) const noexcept {
    return children_.data() + child_offset_[i + 1];
  }
  /// Downstream critical-path length (planned seconds, inclusive of i).
  [[nodiscard]] double cp_length(std::size_t i) const noexcept { return cp_length_[i]; }

  // Hedge lanes (valid only after enable_hedge_state()).
  [[nodiscard]] bool hedge_enabled() const noexcept { return !hedge_run_.empty(); }
  [[nodiscard]] double hedge_run(std::size_t i) const noexcept { return hedge_run_[i]; }
  [[nodiscard]] bool hedge_active(std::size_t i) const noexcept { return hedge_active_[i] != 0; }
  LUMOS_HOT_PATH void set_hedge_active(std::size_t i, bool on) noexcept { hedge_active_[i] = on ? 1 : 0; }
  [[nodiscard]] std::uint32_t hedge_slot(std::size_t i) const noexcept { return hedge_slot_[i]; }
  LUMOS_HOT_PATH void set_hedge_slot(std::size_t i, std::uint32_t s) noexcept { hedge_slot_[i] = s; }
  [[nodiscard]] double& hedge_start(std::size_t i) noexcept { return hedge_start_[i]; }
  /// Pending hedge-check event time for the current attempt (-1 = none);
  /// recorded so a finished/interrupted job can cancel its timer.
  [[nodiscard]] double& hedge_check_time(std::size_t i) noexcept { return hedge_check_time_[i]; }

 private:
  std::size_t n_ = 0;
  std::vector<double> submit_;
  std::vector<double> run_;
  std::vector<double> planned_;         ///< walltime request or oracle
  std::vector<std::uint64_t> cores_;
  std::vector<std::size_t> partition_;
  std::vector<JobLocation> location_;
  std::vector<std::uint32_t> run_slot_;
  // Cold fault lanes.
  std::vector<double> remaining_run_;   ///< runtime still owed
  std::vector<double> run_start_;       ///< start of the current attempt
  std::vector<std::uint32_t> attempts_; ///< interruptions suffered so far
  std::vector<std::uint32_t> epoch_;    ///< current interruption generation
  // Cold DAG lanes (CSR children over job indices).
  std::vector<std::uint32_t> unmet_parents_;
  std::vector<std::uint32_t> child_offset_;
  std::vector<std::uint32_t> children_;
  std::vector<double> cp_length_;
  // Cold hedge lanes.
  std::vector<double> hedge_run_;       ///< duplicate's (fresh) runtime
  std::vector<std::uint8_t> hedge_active_;
  std::vector<std::uint32_t> hedge_slot_;
  std::vector<double> hedge_start_;
  std::vector<double> hedge_check_time_;
};

}  // namespace lumos::sim
