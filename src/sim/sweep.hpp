// Sharded simulation sweeps.
//
// A sweep is a list of independent (trace, config) points — the
// (seed, system, policy) grids behind Figs. 9-12 and Table 2 — fanned
// out over lumos::util::ThreadPool. Each shard runs with a PRIVATE
// obs::Registry, so no shard ever observes another's instruments, and
// the per-point results land in a vector indexed like the input.
//
// Determinism contract (DESIGN.md §4f):
//  * Every point's SimResult/SimMetrics is bit-identical to running that
//    point serially — shards share nothing mutable, so thread count and
//    completion order cannot leak into results.
//  * The combined observability snapshot is produced by merging the
//    shard registries IN SHARD-INDEX ORDER (never completion order):
//    counters add, gauges take the last-merged value, histograms
//    accumulate. Same points in, same merged snapshot out.
//  * Failures propagate deterministically: the exception surfaced is the
//    one from the lowest-indexed failing point (ThreadPool::parallel_for
//    rethrows by chunk index, and point validation happens up front).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace lumos::sim {

/// One independent sweep point: a trace (by index into the caller's
/// trace list, so N policies over one system share one trace) plus the
/// full simulator config to run it under.
struct SweepPoint {
  std::size_t trace_index = 0;
  SimConfig config;
  std::string label;  ///< stable identifier for reports ("theta.sjf.easy")
};

struct SweepOptions {
  /// Worker threads; 0 uses the hardware concurrency. 1 is the serial
  /// reference the bit-identity tests compare against.
  std::size_t threads = 1;
  /// Times each point is simulated (timing amplification for benchmarks;
  /// results and metrics come from the last repeat, which — determinism —
  /// equals every other repeat).
  std::size_t repeats = 1;
};

/// Result of one shard, index-aligned with the input points.
struct ShardOutcome {
  SimResult result;
  SimMetrics metrics;
  obs::Snapshot observability;  ///< the shard's private registry
};

struct SweepOutcome {
  std::vector<ShardOutcome> shards;  ///< one per point, input order
  obs::Snapshot merged;              ///< shard snapshots merged by index
};

/// Runs every point; see the determinism contract above. Throws
/// InvalidArgument if a point references a missing trace or
/// `options.repeats == 0`.
[[nodiscard]] SweepOutcome sweep_shards(std::span<const trace::Trace> traces,
                                        std::span<const SweepPoint> points,
                                        const SweepOptions& options = {});

}  // namespace lumos::sim
