#include "sim/node_cluster.hpp"

#include <algorithm>
#include <deque>

#include "sim/event_queue.hpp"
#include "util/error.hpp"

namespace lumos::sim {

std::string_view to_string(PackingPolicy p) noexcept {
  switch (p) {
    case PackingPolicy::FirstFit: return "first-fit";
    case PackingPolicy::BestFit: return "best-fit";
    case PackingPolicy::WorstFit: return "worst-fit";
  }
  return "?";
}

NodeCluster::NodeCluster(std::uint32_t nodes, std::uint32_t gpus_per_node,
                         PackingPolicy policy)
    : free_(nodes, gpus_per_node),
      offline_(nodes, 0),
      gpus_per_node_(gpus_per_node),
      free_total_(static_cast<std::uint64_t>(nodes) * gpus_per_node),
      policy_(policy) {
  LUMOS_REQUIRE(nodes > 0 && gpus_per_node > 0,
                "NodeCluster needs positive dimensions");
}

void NodeCluster::set_node_offline(std::uint32_t node) {
  LUMOS_REQUIRE(node < free_.size(), "offline: node out of range");
  LUMOS_REQUIRE(offline_[node] == 0, "offline: node is already offline");
  LUMOS_REQUIRE(free_[node] == gpus_per_node_,
                "offline: node must be idle (drain or interrupt first)");
  offline_[node] = 1;
  ++offline_count_;
  free_[node] = 0;  // unplaceable until restored
  free_total_ -= gpus_per_node_;
}

void NodeCluster::restore_node(std::uint32_t node) {
  LUMOS_REQUIRE(node < free_.size(), "restore: node out of range");
  LUMOS_REQUIRE(offline_[node] != 0, "restore: node is not offline");
  offline_[node] = 0;
  --offline_count_;
  free_[node] = gpus_per_node_;
  free_total_ += gpus_per_node_;
}

std::int64_t NodeCluster::pick_node(std::uint32_t gpus) const noexcept {
  std::int64_t best = -1;
  for (std::size_t n = 0; n < free_.size(); ++n) {
    if (free_[n] < gpus) continue;
    if (policy_ == PackingPolicy::FirstFit) return static_cast<std::int64_t>(n);
    if (best < 0) {
      best = static_cast<std::int64_t>(n);
      continue;
    }
    const auto b = static_cast<std::size_t>(best);
    if (policy_ == PackingPolicy::BestFit ? free_[n] < free_[b]
                                          : free_[n] > free_[b]) {
      best = static_cast<std::int64_t>(n);
    }
  }
  return best;
}

bool NodeCluster::can_place(std::uint64_t gpus) const noexcept {
  if (gpus == 0 || gpus > total_gpus()) return false;
  if (gpus <= gpus_per_node_) {
    return pick_node(static_cast<std::uint32_t>(gpus)) >= 0;
  }
  // Gang placement: full nodes plus (optionally) a remainder slice.
  const std::uint64_t full = gpus / gpus_per_node_;
  const auto rem = static_cast<std::uint32_t>(gpus % gpus_per_node_);
  std::uint64_t idle = 0;
  bool rem_ok = rem == 0;
  for (const auto f : free_) {
    if (f == gpus_per_node_) {
      ++idle;
    } else if (!rem_ok && f >= rem) {
      rem_ok = true;
    }
  }
  if (rem > 0 && !rem_ok && idle > full) rem_ok = true;  // spare idle node
  return idle >= full && rem_ok;
}

std::vector<NodeCluster::Slice> NodeCluster::place(std::uint64_t gpus) {
  std::vector<Slice> slices;
  if (!can_place(gpus)) return slices;
  if (gpus <= gpus_per_node_) {
    const auto n = pick_node(static_cast<std::uint32_t>(gpus));
    slices.push_back({static_cast<std::uint32_t>(n),
                      static_cast<std::uint32_t>(gpus)});
  } else {
    std::uint64_t full = gpus / gpus_per_node_;
    auto rem = static_cast<std::uint32_t>(gpus % gpus_per_node_);
    for (std::size_t n = 0; n < free_.size() && full > 0; ++n) {
      if (free_[n] == gpus_per_node_) {
        slices.push_back({static_cast<std::uint32_t>(n), gpus_per_node_});
        --full;
      }
    }
    if (rem > 0) {
      // Prefer a partially used node for the remainder; fall back to an
      // idle one not already taken.
      std::int64_t rem_node = -1;
      for (std::size_t n = 0; n < free_.size(); ++n) {
        const bool taken =
            std::any_of(slices.begin(), slices.end(),
                        [&](const Slice& s) { return s.node == n; });
        if (taken || free_[n] < rem) continue;
        if (free_[n] < gpus_per_node_) {
          rem_node = static_cast<std::int64_t>(n);
          break;
        }
        if (rem_node < 0) rem_node = static_cast<std::int64_t>(n);
      }
      slices.push_back({static_cast<std::uint32_t>(rem_node), rem});
    }
  }
  for (const auto& s : slices) {
    free_[s.node] -= s.gpus;
    free_total_ -= s.gpus;
  }
  return slices;
}

void NodeCluster::release(const std::vector<Slice>& slices) {
  for (const auto& s : slices) {
    free_[s.node] = std::min<std::uint32_t>(gpus_per_node_,
                                            free_[s.node] + s.gpus);
    free_total_ = std::min(free_total_ + s.gpus, total_gpus());
  }
}

std::uint64_t NodeCluster::stranded_for(std::uint64_t gpus) const noexcept {
  if (!can_place(gpus)) return free_total_;
  return free_total_ >= gpus ? free_total_ - gpus : 0;
}

PackingMetrics simulate_packing(const trace::Trace& trace,
                                const PackingConfig& config) {
  LUMOS_REQUIRE(trace.is_sorted_by_submit(),
                "packing simulation needs a submit-sorted trace");
  PackingMetrics m;
  if (trace.empty()) return m;

  const std::uint64_t total =
      std::max<std::uint64_t>(1, trace.spec().primary_capacity());
  const std::uint32_t node_count = static_cast<std::uint32_t>(
      (total + config.gpus_per_node - 1) / config.gpus_per_node);
  NodeCluster cluster(node_count, config.gpus_per_node, config.policy);

  // POD queue entry — slices live out-of-line in `slices_of`, keyed by
  // job index, so the entry rides the calendar lanes (trivially
  // copyable) and same-instant completions release in job order, not
  // heap insertion order.
  struct Running {
    double end;
    std::uint64_t gpus;
    std::uint32_t index;
    [[nodiscard]] EventKey key() const noexcept {
      return {end, EventKind::Finish, index, 0};
    }
  };
  EventQueue<Running> running;
  std::vector<std::vector<NodeCluster::Slice>> slices_of(
      config.pooled ? 0 : trace.size());
  std::deque<std::size_t> queue;
  std::uint64_t pooled_free = cluster.total_gpus();

  const auto jobs = trace.jobs();
  std::size_t next = 0;
  double now = 0.0;
  double wait_sum = 0.0;
  double busy = 0.0;
  double blocked_free_sum = 0.0;

  auto try_start = [&]() {
    while (!queue.empty()) {
      const std::size_t job_index = queue.front();
      const auto& j = jobs[job_index];
      const std::uint64_t gpus =
          std::min<std::uint64_t>(std::max<std::uint32_t>(j.cores, 1),
                                  cluster.total_gpus());
      if (config.pooled) {
        if (gpus > pooled_free) break;
        pooled_free -= gpus;
        running.push({now + j.run_time, gpus,
                      static_cast<std::uint32_t>(job_index)});
      } else {
        if (!cluster.can_place(gpus)) {
          // Head blocked: record visible-but-unusable capacity.
          blocked_free_sum += static_cast<double>(cluster.free_gpus());
          ++m.blocked_events;
          break;
        }
        slices_of[job_index] = cluster.place(gpus);
        running.push({now + j.run_time, gpus,
                      static_cast<std::uint32_t>(job_index)});
      }
      wait_sum += now - j.submit_time;
      busy += static_cast<double>(gpus) * j.run_time;
      ++m.jobs;
      queue.pop_front();
    }
  };

  while (next < jobs.size() || !running.empty()) {
    double t;
    if (next < jobs.size() && !running.empty()) {
      t = std::min(jobs[next].submit_time, running.top().end);
    } else if (next < jobs.size()) {
      t = jobs[next].submit_time;
    } else {
      t = running.top().end;
    }
    now = std::max(now, t);
    while (!running.empty() && running.top().end <= now + 1e-9) {
      const auto r = running.top();
      running.pop();
      if (config.pooled) {
        pooled_free += r.gpus;
      } else {
        cluster.release(slices_of[r.index]);
        slices_of[r.index].clear();
      }
      m.makespan = std::max(m.makespan, r.end);
    }
    while (next < jobs.size() && jobs[next].submit_time <= now + 1e-9) {
      queue.push_back(next++);
    }
    try_start();
  }
  if (m.jobs > 0) m.avg_wait = wait_sum / static_cast<double>(m.jobs);
  if (m.makespan > 0.0) {
    m.utilization =
        busy / (static_cast<double>(cluster.total_gpus()) * m.makespan);
  }
  if (m.blocked_events > 0) {
    m.mean_blocked_free_gpus =
        blocked_free_sum / static_cast<double>(m.blocked_events);
  }
  return m;
}

}  // namespace lumos::sim
