// Future resource-availability profile.
//
// A step function over time giving the number of free cores in one
// partition, built from the expected end times of running jobs and from
// reservations already granted to queued jobs. Conservative backfilling and
// EASY shadow-time computation are both queries against this structure.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace lumos::sim {

/// Far-future sentinel for "never".
inline constexpr double kTimeInfinity = std::numeric_limits<double>::max() / 4;

class ResourceProfile {
 public:
  /// Starts with `capacity` cores free from `now` to infinity.
  ResourceProfile(double now, std::uint64_t capacity);

  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }

  /// Subtracts `cores` over [start, end). Clamps at zero free (callers
  /// should only commit feasible reservations).
  void reserve(double start, double end, std::uint64_t cores);

  /// Rebuilds this profile in place as `capacity` cores free from `now`,
  /// minus one reservation [now, end) per (end, cores) entry. `ends`
  /// must be sorted ascending by end time. Equivalent to constructing
  /// ResourceProfile(now, capacity) and calling reserve(now, end, cores)
  /// for each entry — exactly, including `operator==` (reserves starting
  /// at a common origin commute, and the clamp `max(0, cap - Σcores)`
  /// composes identically either way) — but O(R) after the sort instead
  /// of O(R²), and reusing this profile's storage.
  void assign_reservations(
      double now, std::uint64_t capacity,
      const std::vector<std::pair<double, std::uint64_t>>& ends);

  /// Earliest time >= `earliest` at which `cores` are continuously free for
  /// `duration` seconds. Returns kTimeInfinity when cores > capacity.
  [[nodiscard]] double earliest_start(double earliest, double duration,
                                      std::uint64_t cores) const noexcept;

  /// Free cores at time t.
  [[nodiscard]] std::uint64_t free_at(double t) const noexcept;

  /// Number of internal steps (for tests).
  [[nodiscard]] std::size_t steps() const noexcept { return times_.size(); }

  /// Exact structural equality (same step boundaries and free counts).
  /// Reserves commute — `max(0, x - c)` composes order-independently and
  /// `split_at` inserts the same boundary set in any order — so a profile
  /// built incrementally equals one rebuilt from scratch from the same
  /// reservations; the SimAuditor relies on this being exact.
  [[nodiscard]] bool operator==(const ResourceProfile&) const = default;

 private:
  // times_[i] is the start of step i; free_[i] holds until times_[i+1]
  // (the final step extends to infinity). times_ is strictly increasing.
  std::vector<double> times_;
  std::vector<std::uint64_t> free_;
  std::uint64_t capacity_;

  /// Index of the step containing time t (t must be >= times_.front()).
  [[nodiscard]] std::size_t step_index(double t) const noexcept;
  /// Ensures a step boundary exists exactly at t; returns its index.
  std::size_t split_at(double t);
};

}  // namespace lumos::sim
