#include "sim/metrics.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace lumos::sim {

SimMetrics compute_metrics(const trace::Trace& trace, const SimResult& result,
                           double bsld_bound) {
  LUMOS_REQUIRE(result.outcomes.size() == trace.size(),
                "result does not match trace");
  SimMetrics m;
  m.makespan = result.makespan;
  m.backfilled_jobs = result.backfilled_jobs;
  m.goodput_core_hours = result.goodput_core_hours;
  m.wasted_core_hours = result.wasted_core_hours;
  m.interrupted_jobs = result.interrupted_jobs;
  m.abandoned_jobs = result.abandoned_jobs;
  m.hedged_jobs = result.hedged_jobs;
  m.counters = result.counters;

  double wait_sum = 0.0;
  double bsld_sum = 0.0;
  double busy_core_seconds = 0.0;
  const auto jobs = trace.jobs();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& outcome = result.outcomes[i];
    if (!outcome.started()) continue;
    const auto& j = jobs[i];
    ++m.jobs;
    const double wait = outcome.start_time - j.submit_time;
    wait_sum += wait;
    const double denom = std::max(j.run_time, bsld_bound);
    bsld_sum += std::max(1.0, (wait + j.run_time) / denom);
    busy_core_seconds += static_cast<double>(j.cores) * j.run_time;
    const double delay = outcome.reservation_delay();
    if (delay > 0.0) {
      ++m.violated_jobs;
      m.total_violation += delay;
    }
  }
  if (m.jobs > 0) {
    m.avg_wait = wait_sum / static_cast<double>(m.jobs);
    m.avg_bounded_slowdown = bsld_sum / static_cast<double>(m.jobs);
  }
  if (m.violated_jobs > 0) {
    m.violation = m.total_violation / static_cast<double>(m.violated_jobs);
  }
  const double capacity =
      static_cast<double>(trace.spec().primary_capacity());
  if (capacity > 0.0 && m.makespan > 0.0) {
    m.utilization = busy_core_seconds / (capacity * m.makespan);
  }
  return m;
}

std::string SimMetrics::to_string() const {
  return util::format(
      "jobs=%zu wait=%.2fs bsld=%.2f util=%.4f violation=%.2fs "
      "(violated=%zu, backfilled=%zu, makespan=%.0fs)",
      jobs, avg_wait, avg_bounded_slowdown, utilization, violation,
      violated_jobs, backfilled_jobs, makespan);
}

}  // namespace lumos::sim
