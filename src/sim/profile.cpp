#include "sim/profile.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lumos::sim {

ResourceProfile::ResourceProfile(double now, std::uint64_t capacity)
    : times_{now}, free_{capacity}, capacity_(capacity) {
  LUMOS_REQUIRE(capacity > 0, "profile capacity must be positive");
}

std::size_t ResourceProfile::step_index(double t) const noexcept {
  // Last step whose start is <= t.
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  if (it == times_.begin()) return 0;
  return static_cast<std::size_t>(it - times_.begin()) - 1;
}

std::size_t ResourceProfile::split_at(double t) {
  if (t <= times_.front()) return 0;
  const std::size_t i = step_index(t);
  if (times_[i] == t) return i;
  times_.insert(times_.begin() + static_cast<std::ptrdiff_t>(i) + 1, t);
  free_.insert(free_.begin() + static_cast<std::ptrdiff_t>(i) + 1, free_[i]);
  return i + 1;
}

void ResourceProfile::reserve(double start, double end, std::uint64_t cores) {
  if (end <= start || cores == 0) return;
  start = std::max(start, times_.front());
  const std::size_t s = split_at(start);
  const std::size_t e = end >= kTimeInfinity ? times_.size() : split_at(end);
  for (std::size_t i = s; i < e; ++i) {
    free_[i] = cores >= free_[i] ? 0 : free_[i] - cores;
  }
}

std::uint64_t ResourceProfile::free_at(double t) const noexcept {
  if (t < times_.front()) return free_.front();
  return free_[step_index(t)];
}

double ResourceProfile::earliest_start(double earliest, double duration,
                                       std::uint64_t cores) const noexcept {
  if (cores > capacity_) return kTimeInfinity;
  const double t0 = std::max(earliest, times_.front());
  if (cores == 0) return t0;
  std::size_t i = step_index(t0);
  while (i < times_.size()) {
    if (free_[i] < cores) {
      ++i;
      continue;
    }
    const double candidate = std::max(t0, times_[i]);
    const double end = candidate + duration;
    // Every step overlapping [candidate, end) must have >= cores free.
    bool ok = true;
    std::size_t j = i;
    for (; j < times_.size() && times_[j] < end; ++j) {
      if (free_[j] < cores) {
        ok = false;
        break;
      }
    }
    if (ok) return candidate;
    i = j + 1;  // resume after the blocking step
  }
  return kTimeInfinity;
}

}  // namespace lumos::sim
