#include "sim/profile.hpp"

#include <algorithm>

#include "util/annotations.hpp"
#include "util/error.hpp"

namespace lumos::sim {

ResourceProfile::ResourceProfile(double now, std::uint64_t capacity)
    : times_{now}, free_{capacity}, capacity_(capacity) {
  LUMOS_REQUIRE(capacity > 0, "profile capacity must be positive");
}

std::size_t ResourceProfile::step_index(double t) const noexcept {
  // Last step whose start is <= t.
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  if (it == times_.begin()) return 0;
  return static_cast<std::size_t>(it - times_.begin()) - 1;
}

std::size_t ResourceProfile::split_at(double t) {
  if (t <= times_.front()) return 0;
  const std::size_t i = step_index(t);
  if (times_[i] == t) return i;
  times_.insert(times_.begin() + static_cast<std::ptrdiff_t>(i) + 1, t);
  free_.insert(free_.begin() + static_cast<std::ptrdiff_t>(i) + 1, free_[i]);
  return i + 1;
}

void ResourceProfile::reserve(double start, double end, std::uint64_t cores) {
  if (end <= start || cores == 0) return;
  start = std::max(start, times_.front());
  const std::size_t s = split_at(start);
  const std::size_t e = end >= kTimeInfinity ? times_.size() : split_at(end);
  for (std::size_t i = s; i < e; ++i) {
    free_[i] = cores >= free_[i] ? 0 : free_[i] - cores;
  }
}

LUMOS_HOT_PATH void ResourceProfile::assign_reservations(
    double now, std::uint64_t capacity,
    const std::vector<std::pair<double, std::uint64_t>>& ends) {
  LUMOS_REQUIRE(capacity > 0, "profile capacity must be positive");
  capacity_ = capacity;
  times_.clear();
  free_.clear();
  // Entries with end <= now or zero cores reserve nothing (matching
  // reserve()'s no-op guard); everything else holds cores from `now`
  // until its end, so free at any step is capacity minus the cores of
  // reservations ending strictly later.
  std::uint64_t active = 0;
  for (const auto& [end, cores] : ends) {
    if (end > now) active += cores;
  }
  times_.push_back(now);
  free_.push_back(active >= capacity ? 0 : capacity - active);
  std::size_t i = 0;
  const std::size_t n = ends.size();
  while (i < n) {
    const double end = ends[i].first;
    std::uint64_t releasing = 0;
    for (; i < n && ends[i].first == end; ++i) releasing += ends[i].second;
    if (end <= now) continue;   // skipped above; releases nothing
    if (releasing == 0) continue;  // zero-core reserves create no boundary
    active -= releasing;
    times_.push_back(end);
    free_.push_back(active >= capacity ? 0 : capacity - active);
  }
}

std::uint64_t ResourceProfile::free_at(double t) const noexcept {
  if (t < times_.front()) return free_.front();
  return free_[step_index(t)];
}

LUMOS_HOT_PATH double ResourceProfile::earliest_start(
    double earliest, double duration, std::uint64_t cores) const noexcept {
  if (cores > capacity_) return kTimeInfinity;
  const double t0 = std::max(earliest, times_.front());
  if (cores == 0) return t0;
  std::size_t i = step_index(t0);
  while (i < times_.size()) {
    if (free_[i] < cores) {
      ++i;
      continue;
    }
    const double candidate = std::max(t0, times_[i]);
    const double end = candidate + duration;
    // Every step overlapping [candidate, end) must have >= cores free.
    bool ok = true;
    std::size_t j = i;
    for (; j < times_.size() && times_[j] < end; ++j) {
      if (free_[j] < cores) {
        ok = false;
        break;
      }
    }
    if (ok) return candidate;
    i = j + 1;  // resume after the blocking step
  }
  return kTimeInfinity;
}

}  // namespace lumos::sim
