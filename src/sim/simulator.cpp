#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.hpp"
#include "sim/auditor.hpp"
#include "sim/event_queue.hpp"
#include "sim/job_soa.hpp"
#include "sim/profile.hpp"
#include "trace/dag.hpp"
#include "util/annotations.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace lumos::sim {

namespace {

constexpr double kEps = 1e-6;

/// Policies whose score depends on the current waiting time. Their queue
/// order can change as time advances even without arrivals, so the
/// incremental sort must also refresh when `now` moves.
bool policy_is_time_dependent(PolicyKind p) noexcept {
  return p == PolicyKind::Wfp3 || p == PolicyKind::Unicep;
}

/// A pending resubmission after an interruption. Ordered as an Arrive
/// event — (time, Arrive, job index) — matching the historical
/// (re-arrival time, job index) order exactly.
struct RetryEvent {
  double time = 0.0;
  std::uint32_t index = 0;
  [[nodiscard]] EventKey key() const noexcept {
    return {time, EventKind::Arrive, index, 0};
  }
};

/// A straggler-hedge check timer: fires `threshold * planned` after a job
/// starts; if the job is still running, a duplicate copy is launched.
/// At most one check is live per job (finish/interrupt cancels the
/// pending timer), so seq 0 keeps keys unique.
struct HedgeEvent {
  double time = 0.0;
  std::uint32_t index = 0;
  [[nodiscard]] EventKey key() const noexcept {
    return {time, EventKind::Hedge, index, 0};
  }
};

/// The event-loop engine: all per-run state lives here, laid out
/// data-oriented (see job_soa.hpp / event_queue.hpp), with every scratch
/// buffer hoisted to a member so the steady-state loop allocates nothing.
///
/// Batching rule (DESIGN.md §4f): each outer iteration advances `now` to
/// the next event timestamp and drains EVERY event at that instant —
/// completions, then node faults, then elapsed retries, then arrivals —
/// before running one scheduling round over all partitions. N same-time
/// events therefore cost one policy sort per dirty partition and one
/// availability-profile rebuild per (partition, timestamp), not N.
class SimEngine {
 public:
  SimEngine(const trace::Trace& trace, const SimConfig& config)
      : trace_(trace),
        config_(config),
        cluster_(Cluster::from_spec(trace.spec())),
        running_(config.event_queue),
        retries_(config.event_queue),
        hedge_checks_(config.event_queue) {}

  [[nodiscard]] SimResult run();

 private:
  struct ProfileCache {
    ResourceProfile profile{0.0, 1};
    double time = -1.0;
    bool valid = false;
  };

  void audit() {
    if (auditor_) {
      auditor_->check(cluster_, queues_, running_by_part_, total_queued_,
                      &jobs_);
    }
  }

  // Swap-erases slot `slot` out of a partition's running vector, patching
  // the moved entry's run-slot or hedge-slot handle per its copy kind.
  LUMOS_HOT_PATH void remove_running_slot(std::vector<RunningJob>& vec,
                                          std::uint32_t slot) {
    vec[slot] = vec.back();
    const RunningJob& moved = vec[slot];
    if (moved.hedge != 0) {
      jobs_.set_hedge_slot(moved.index, slot);
    } else {
      jobs_.set_run_slot(moved.index, slot);
    }
    vec.pop_back();
  }

  // Cancels the pending hedge-check timer for `idx`, if any. Finishing or
  // interrupting a job before its check fires must retire the timer, or a
  // later attempt's state would be probed by a stale event.
  void cancel_hedge_check(std::uint32_t idx) {
    if (!hedging_on_) return;
    double& t = jobs_.hedge_check_time(idx);
    if (t >= 0.0) {
      hedge_checks_.cancel(EventKey{t, EventKind::Hedge, idx, 0});
      t = -1.0;
    }
  }

  // First finish of a hedged pair wins: tears down the losing copy when
  // `winner` completes. The loser's cores are freed here — exactly once,
  // because its Finish entry is tombstoned and can never drain as a
  // completion — and its burned core-hours are charged to waste.
  void cancel_hedge_loser(const RunningJob& winner) {
    auto& vec = running_by_part_[winner.partition];
    const std::uint32_t lslot = winner.hedge != 0
                                    ? jobs_.run_slot(winner.index)
                                    : jobs_.hedge_slot(winner.index);
    if (lslot >= vec.size() || vec[lslot].index != winner.index ||
        vec[lslot].hedge == winner.hedge) {
      throw InternalError("hedge pair out of sync with running slots");
    }
    const RunningJob loser = vec[lslot];
    remove_running_slot(vec, lslot);
    cluster_.release(loser.cores, loser.partition);
    running_.cancel(loser.key());
    jobs_.set_hedge_active(winner.index, false);
    const double lstart = loser.hedge != 0 ? jobs_.hedge_start(winner.index)
                                           : jobs_.run_start(winner.index);
    const double burned = std::max(0.0, winner.end - lstart) *
                          static_cast<double>(loser.cores) / 3600.0;
    result_.wasted_core_hours += burned;
    counters_->hedge_wasted_core_hours += burned;
    ++counters_->hedges_cancelled;
    invalidate_profile(winner.partition);
  }

  // Launches a duplicate copy of a still-running straggler if its
  // partition has the spare cores; a full partition forfeits the hedge
  // (the next event is the primary's own finish). The duplicate runs the
  // trace's straggler-free runtime from scratch — no checkpoint handoff.
  LUMOS_HOT_PATH void try_launch_hedge(std::uint32_t idx) {
    if (jobs_.location(idx) != JobLocation::Running ||
        jobs_.hedge_active(idx)) {
      return;
    }
    const std::size_t part = jobs_.partition(idx);
    const std::uint64_t cores = jobs_.cores(idx);
    if (!cluster_.fits(cores, part)) return;
    const bool ok = cluster_.allocate(cores, part);
    // lumos-lint: allow(hot-throw) guard: fits() was checked on the line above
    if (!ok) throw InternalError("hedge launch without free cores");
    RunningJob h;
    h.end = now_ + jobs_.hedge_run(idx);
    h.planned_end = now_ + jobs_.planned(idx);
    h.cores = cores;
    h.partition = part;
    h.index = idx;
    h.epoch = faults_on_ ? jobs_.epoch(idx) : 0;
    h.hedge = 1;
    running_.push(h);
    auto& vec = running_by_part_[part];
    jobs_.set_hedge_slot(idx, static_cast<std::uint32_t>(vec.size()));
    vec.push_back(h);
    jobs_.set_hedge_active(idx, true);
    jobs_.hedge_start(idx) = now_;
    ++counters_->hedges_launched;
    auto& outcome = result_.outcomes[idx];
    if (!outcome.hedged) {
      outcome.hedged = true;
      ++result_.hedged_jobs;
    }
    // The duplicate reserves planned capacity like any other start.
    ProfileCache& cache = profiles_[part];
    if (cache.valid && cache.time == now_) {
      cache.profile.reserve(now_, h.planned_end, h.cores);
    }
  }

  // Marks every unstarted descendant of a dead job Abandoned: with an
  // ancestor abandoned or dropped, the child's parent set can never
  // complete, and leaving it Blocked would strand the workflow silently.
  void abandon_descendants(std::uint32_t idx) {
    cascade_.assign(1, idx);
    while (!cascade_.empty()) {
      const std::uint32_t parent = cascade_.back();
      cascade_.pop_back();
      for (const std::uint32_t* c = jobs_.children_begin(parent);
           c != jobs_.children_end(parent); ++c) {
        const JobLocation loc = jobs_.location(*c);
        if (loc != JobLocation::NotArrived && loc != JobLocation::Blocked) {
          continue;  // already released (other parents done) or abandoned
        }
        jobs_.set_location(*c, JobLocation::Abandoned);
        result_.outcomes[*c].abandoned = true;
        ++result_.abandoned_jobs;
        ++counters_->dag_abandoned;
        cascade_.push_back(*c);
      }
    }
  }

  // Releases the blocked children whose last parent finished this batch.
  // Completions drain in event_before order on both backends, but sorting
  // the released set by job index makes the FCFS queue order independent
  // of even that — release order matches arrival-order semantics and is
  // bit-identical across heap and calendar queues.
  LUMOS_HOT_PATH void release_ready_children() {
    std::sort(released_.begin(), released_.end());
    for (const std::uint32_t idx : released_) {
      const std::size_t part = jobs_.partition(idx);
      queues_[part].push_back(idx);
      jobs_.set_location(idx, JobLocation::Queued);
      sort_dirty_[part] = 1;
      ++total_queued_;
      ++counters_->dag_releases;
    }
    released_.clear();
    audit();
  }

  // Planned-availability profile for one partition from its running jobs,
  // rebuilt in place into `out` (O(R log R) via sorted ends; exactly
  // equal to sequentially reserving each job — see assign_reservations).
  // Planned ends already in the past (jobs overrunning their estimate)
  // are treated as ending shortly after `now`.
  LUMOS_HOT_PATH void rebuild_profile(std::size_t part, ResourceProfile& out) {
    ends_.clear();
    for (const RunningJob& r : running_by_part_[part]) {
      const double planned_end =
          r.planned_end > now_ + kEps ? r.planned_end : now_ + 60.0;
      ends_.emplace_back(planned_end, r.cores);
    }
    // Offline (failed-node) cores are unavailable for planning until they
    // recover; the MTTR is the scheduler's repair-time estimate, keeping
    // reservations finite while a node is down.
    if (faults_on_ && cluster_.offline(part) > 0) {
      ends_.emplace_back(now_ + config_.fault.node_mttr_s,
                         cluster_.offline(part));
    }
    std::sort(ends_.begin(), ends_.end());
    out.assign_reservations(now_, cluster_.capacity(part), ends_);
  }

  // Returns the partition's availability profile, serving from the
  // incremental cache when it is still anchored at `now`. Callers that
  // mutate the profile must copy it into a scratch member first.
  LUMOS_HOT_PATH const ResourceProfile& ensure_profile(std::size_t part) {
    ProfileCache& cache = profiles_[part];
    if (!cache.valid || cache.time != now_) {
      rebuild_profile(part, cache.profile);
      cache.valid = true;
      cache.time = now_;
      ++counters_->profile_rebuilds;
    } else {
      ++counters_->profile_cache_hits;
      if (auditor_) {
        rebuild_profile(part, audit_profile_);
        auditor_->check_profile(cache.profile, audit_profile_);
      }
    }
    return cache.profile;
  }

  void invalidate_profile(std::size_t part) {
    ProfileCache& cache = profiles_[part];
    if (cache.valid) ++counters_->profile_invalidations;
    cache.valid = false;
  }

  LUMOS_HOT_PATH void start_job(std::uint32_t idx, bool as_backfill) {
    if (jobs_.location(idx) != JobLocation::Queued) {
      // lumos-lint: allow(hot-throw) scheduler-invariant guard: callers only pass Queued jobs
      throw InternalError("start_job on a job that is not queued");
    }
    const std::size_t part = jobs_.partition(idx);
    const std::uint64_t cores = jobs_.cores(idx);
    const bool ok = cluster_.allocate(cores, part);
    // lumos-lint: allow(hot-throw) scheduler-invariant guard: fit was checked before the call
    if (!ok) throw InternalError("start_job without free cores");
    auto& outcome = result_.outcomes[idx];
    // A restart after an interruption keeps the job's original outcome:
    // start_time/backfilled describe the first attempt only, so the
    // paper's wait/bsld metrics keep their fault-free meaning.
    const bool first_start = !outcome.started();
    if (first_start) {
      outcome.start_time = now_;
      outcome.backfilled = as_backfill;
      if (as_backfill) ++result_.backfilled_jobs;
    }
    if (as_backfill) ++counters_->backfill_successes;
    RunningJob r;
    r.end = now_ + (faults_on_ ? jobs_.remaining_run(idx) : jobs_.run(idx));
    r.planned_end = now_ + jobs_.planned(idx);
    r.cores = cores;
    r.partition = part;
    r.index = idx;
    if (faults_on_) {
      r.epoch = jobs_.epoch(idx);
      jobs_.run_start(idx) = now_;
    }
    if (hedging_on_) {
      jobs_.run_start(idx) = now_;
      const double planned = jobs_.planned(idx);
      if (planned >= config_.hedge.min_planned_s) {
        const double check_at = now_ + config_.hedge.threshold * planned;
        hedge_checks_.push(HedgeEvent{check_at, idx});
        jobs_.hedge_check_time(idx) = check_at;
      }
    }
    running_.push(r);
    jobs_.set_location(idx, JobLocation::Running);
    jobs_.set_run_slot(idx,
                       static_cast<std::uint32_t>(running_by_part_[part].size()));
    running_by_part_[part].push_back(r);
    // Keep the cached profile current: a job starting at the cache's
    // anchor time reserves exactly what a rebuild would reserve for it
    // (its planned end is strictly in the future, so no overrun clamp).
    ProfileCache& cache = profiles_[part];
    if (cache.valid && cache.time == now_) {
      cache.profile.reserve(now_, r.planned_end, r.cores);
    }
    const double wait = now_ - jobs_.submit(idx);
    ema_wait_ = ema_init_ ? (1.0 - config_.wait_ema_alpha) * ema_wait_ +
                                config_.wait_ema_alpha * wait
                          : wait;
    ema_init_ = true;
  }

  // Batch-compacts every job no longer Queued out of `queue` in one
  // order-preserving pass. Throws InternalError when the queue does not
  // contain exactly the jobs the caller just started.
  void remove_started(std::vector<std::uint32_t>& queue, std::size_t expected) {
    std::size_t w = 0;
    std::size_t removed = 0;
    for (std::size_t r = 0; r < queue.size(); ++r) {
      if (jobs_.location(queue[r]) == JobLocation::Queued) {
        queue[w++] = queue[r];
      } else {
        ++removed;
      }
    }
    if (removed != expected) {
      throw InternalError(
          "erase_from_queue: started job missing from its partition queue");
    }
    queue.resize(w);
    total_queued_ -= removed;
  }

  // One scheduling pass over partition `part`; returns jobs started.
  LUMOS_HOT_PATH std::size_t schedule_partition(std::size_t part) {
    auto& queue = queues_[part];
    if (queue.empty()) return 0;
    ++counters_->scheduling_passes;

    // Drop jobs that can never fit this partition (Supercloud-style
    // inputs); they would wedge the head of the queue forever.
    {
      std::size_t w = 0;
      for (std::size_t r = 0; r < queue.size(); ++r) {
        if (jobs_.cores(queue[r]) > cluster_.capacity(part)) {
          jobs_.set_location(queue[r], JobLocation::Dropped);
          ++result_.skipped_oversized;
          --total_queued_;
          // A dropped parent can never finish; its descendants can never
          // release.
          if (dag_on_) abandon_descendants(queue[r]);
        } else {
          queue[w++] = queue[r];
        }
      }
      queue.resize(w);
    }
    if (queue.empty()) return 0;

    // Order the queue by the policy (lower score first, FCFS tiebreak).
    // Arrivals are pushed in submit order, so FCFS needs no sort. Scores
    // are precomputed per job — one policy_score call each instead of
    // two per comparison.
    if (config_.policy != PolicyKind::Fcfs &&
        (sort_dirty_[part] != 0 ||
         (time_dependent_ && sorted_at_[part] != now_))) {
      ++counters_->sort_invocations;
      if (cp_scored_) {
        // Critical-path-first: negate so the longest downstream chain of
        // planned work sorts to the head (lower score serves earlier).
        for (const std::uint32_t idx : queue) {
          score_[idx] = -jobs_.cp_length(idx);
        }
      } else {
        for (const std::uint32_t idx : queue) {
          const PolicyJobView view{jobs_.submit(idx), now_ - jobs_.submit(idx),
                                   jobs_.planned(idx), jobs_.cores(idx)};
          score_[idx] = policy_score(config_.policy, view);
        }
      }
      std::stable_sort(queue.begin(), queue.end(),
                       [this](std::uint32_t a, std::uint32_t b) {
                         if (score_[a] != score_[b]) return score_[a] < score_[b];
                         return jobs_.submit(a) < jobs_.submit(b);
                       });
      sort_dirty_[part] = 0;
      sorted_at_[part] = now_;
    }

    std::size_t started = 0;

    if (config_.backfill.kind == BackfillKind::Conservative) {
      // Reservation for every queued job; start those whose earliest
      // start is now.
      work_profile_ = ensure_profile(part);
      to_start_.clear();
      const std::size_t scan =
          std::min(queue.size(), config_.backfill.scan_limit);
      for (std::size_t qi = 0; qi < scan; ++qi) {
        if (qi > 0) ++counters_->backfill_attempts;
        const std::uint32_t idx = queue[qi];
        const double planned = jobs_.planned(idx);
        const std::uint64_t cores = jobs_.cores(idx);
        const double est = work_profile_.earliest_start(now_, planned, cores);
        work_profile_.reserve(est, est + planned, cores);
        auto& outcome = result_.outcomes[idx];
        if (outcome.first_reservation < 0.0 && est > now_ + kEps) {
          outcome.first_reservation = est;
        }
        if (est <= now_ + kEps) to_start_.push_back(idx);
      }
      if (!to_start_.empty()) {
        // A job is a backfill when it is not the head of the queue as
        // this pass begins; the head must be captured before any start
        // mutates the queue front.
        const std::uint32_t pass_head = queue.front();
        for (std::uint32_t idx : to_start_) {
          start_job(idx, /*as_backfill=*/idx != pass_head);
          ++started;
        }
        remove_started(queue, to_start_.size());
      }
      return started;
    }

    // Head service with optional EASY/relaxed backfilling. Pops are
    // deferred: started heads are skipped over and compacted off in one
    // batch below.
    std::size_t head_pos = 0;
    while (head_pos < queue.size()) {
      const std::uint32_t h = queue[head_pos];
      if (!cluster_.fits(jobs_.cores(h), part)) break;
      start_job(h, /*as_backfill=*/false);
      ++head_pos;
      ++started;
    }
    if (head_pos > 0) {
      queue.erase(queue.begin(),
                  queue.begin() + static_cast<std::ptrdiff_t>(head_pos));
      total_queued_ -= head_pos;
    }
    if (queue.empty() || config_.backfill.kind == BackfillKind::None) {
      return started;
    }

    // Head is blocked: compute its EASY reservation (shadow time).
    const std::uint32_t head = queue.front();
    const double head_planned = jobs_.planned(head);
    const std::uint64_t head_cores = jobs_.cores(head);
    work_profile_ = ensure_profile(part);
    double shadow = work_profile_.earliest_start(now_, head_planned, head_cores);
    auto& head_outcome = result_.outcomes[head];
    if (head_outcome.first_reservation < 0.0) {
      head_outcome.first_reservation = shadow;
    }
    // Cores free at the shadow time beyond what the head needs; a
    // backfill running past the shadow is harmless if it fits within them.
    auto extra_at = [&](double t) -> std::uint64_t {
      const std::uint64_t f = work_profile_.free_at(t);
      return f > head_cores ? f - head_cores : 0;
    };
    std::uint64_t extra = extra_at(shadow);

    // Relaxation allowance: how far past its *first* promise the head may
    // be pushed. Reference is the EMA of realized waits ("expected job
    // waiting time"), floored by the head's own wait so far.
    const double eff_factor = effective_relax_factor(
        config_.backfill, total_queued_, result_.max_queue_length);
    const double reference_wait =
        std::max(ema_wait_, now_ - jobs_.submit(head));
    const double deadline =
        head_outcome.first_reservation + eff_factor * reference_wait;

    const std::size_t scan =
        std::min(queue.size(), config_.backfill.scan_limit);
    to_start_.clear();
    std::uint64_t committed = 0;  // cores promised to accepted backfills
    for (std::size_t qi = 1; qi < scan; ++qi) {
      ++counters_->backfill_attempts;
      const std::uint32_t cand = queue[qi];
      const std::uint64_t cand_cores = jobs_.cores(cand);
      if (cand_cores + committed > cluster_.free(part)) continue;
      const double cand_end = now_ + jobs_.planned(cand);
      bool accept = false;
      if (cand_end <= shadow + kEps) {
        accept = true;  // finishes before the head needs the machine
      } else if (cand_cores <= extra) {
        accept = true;  // runs on cores the head will not need
      } else if (eff_factor > 0.0 && shadow < deadline) {
        // Relaxed path: admit the candidate if the head's recomputed
        // earliest start stays within the allowance.
        cand_profile_ = work_profile_;
        cand_profile_.reserve(now_, cand_end, cand_cores);
        const double pushed =
            cand_profile_.earliest_start(now_, head_planned, head_cores);
        accept = pushed <= deadline + kEps;
      }
      if (accept) {
        to_start_.push_back(cand);
        committed += cand_cores;
        // Keep the planning state consistent for later candidates.
        work_profile_.reserve(now_, cand_end, cand_cores);
        shadow = work_profile_.earliest_start(now_, head_planned, head_cores);
        extra = extra_at(shadow);
      }
    }
    if (!to_start_.empty()) {
      for (std::uint32_t idx : to_start_) {
        start_job(idx, /*as_backfill=*/true);
        ++started;
      }
      remove_started(queue, to_start_.size());
    }
    return started;
  }

  void schedule_all() {
    for (;;) {
      std::size_t started = 0;
      for (std::size_t part = 0; part < queues_.size(); ++part) {
        started += schedule_partition(part);
      }
      if (started == 0) break;
    }
    result_.max_queue_length =
        std::max(result_.max_queue_length, total_queued_);
    if (config_.record_queue_series) {
      result_.queue_series.push_back(
          {now_, static_cast<std::uint32_t>(total_queued_)});
    }
    audit();
  }

  // Tears one running job down after a node failure: frees its cores,
  // bumps its epoch (invalidating the completion-queue entry, so the job
  // leaves the running set exactly once), rolls its progress back to the
  // last checkpoint, and routes it through the retry policy.
  void interrupt(std::uint32_t idx) {
    const std::size_t part = jobs_.partition(idx);
    auto& vec = running_by_part_[part];
    // A node failure tears down the whole hedged pair: the duplicate is
    // cancelled first (cores freed, Finish entry tombstoned) so the
    // primary teardown below sees ordinary single-copy state, and the
    // retried attempt starts un-hedged with a fresh check timer.
    if (hedging_on_ && jobs_.hedge_active(idx)) {
      const std::uint32_t hslot = jobs_.hedge_slot(idx);
      if (hslot >= vec.size() || vec[hslot].index != idx ||
          vec[hslot].hedge == 0) {
        throw InternalError("interrupt: hedge-slot handle out of sync");
      }
      const RunningJob dup = vec[hslot];
      remove_running_slot(vec, hslot);
      cluster_.release(dup.cores, dup.partition);
      running_.cancel(dup.key());
      jobs_.set_hedge_active(idx, false);
      const double burned = std::max(0.0, now_ - jobs_.hedge_start(idx)) *
                            static_cast<double>(dup.cores) / 3600.0;
      result_.wasted_core_hours += burned;
      counters_->hedge_wasted_core_hours += burned;
      ++counters_->hedges_cancelled;
    }
    cancel_hedge_check(idx);
    const std::uint32_t slot = jobs_.run_slot(idx);
    if (jobs_.location(idx) != JobLocation::Running || slot >= vec.size() ||
        vec[slot].index != idx || vec[slot].hedge != 0) {
      throw InternalError("interrupt: running-slot handle out of sync");
    }
    const RunningJob r = vec[slot];
    remove_running_slot(vec, slot);
    cluster_.release(r.cores, r.partition);
    ++jobs_.epoch(idx);

    auto& outcome = result_.outcomes[idx];
    const double elapsed = std::max(0.0, now_ - jobs_.run_start(idx));
    const double interval = config_.fault.checkpoint_interval_s;
    const double preserved =
        interval > 0.0 ? std::floor(elapsed / interval) * interval : 0.0;
    jobs_.remaining_run(idx) =
        std::max(0.0, jobs_.remaining_run(idx) - preserved);
    const double lost_ch =
        (elapsed - preserved) * static_cast<double>(jobs_.cores(idx)) / 3600.0;
    result_.wasted_core_hours += lost_ch;
    counters_->work_lost_core_hours += lost_ch;
    ++counters_->jobs_interrupted;
    if (outcome.interruptions == 0) ++result_.interrupted_jobs;
    ++outcome.interruptions;
    ++jobs_.attempts(idx);

    if (config_.fault.retry == fault::RetryPolicy::Abandon ||
        jobs_.attempts(idx) > config_.fault.max_retries) {
      jobs_.set_location(idx, JobLocation::Abandoned);
      outcome.abandoned = true;
      ++result_.abandoned_jobs;
      ++counters_->jobs_abandoned;
      // Checkpointed progress the job banked is sunk work now too.
      const double sunk_ch = (jobs_.run(idx) - jobs_.remaining_run(idx)) *
                             static_cast<double>(jobs_.cores(idx)) / 3600.0;
      result_.wasted_core_hours += sunk_ch;
      counters_->work_lost_core_hours += sunk_ch;
      if (dag_on_) abandon_descendants(idx);
      return;
    }
    ++counters_->retries;
    if (config_.fault.retry == fault::RetryPolicy::RequeueFront) {
      auto& queue = queues_[part];
      queue.insert(queue.begin(), idx);
      jobs_.set_location(idx, JobLocation::Queued);
      sort_dirty_[part] = 1;
      ++total_queued_;
    } else {  // Resubmit with exponential backoff
      const double backoff =
          config_.fault.retry_backoff_s *
          std::pow(2.0, static_cast<double>(jobs_.attempts(idx) - 1));
      retries_.push(RetryEvent{now_ + backoff, idx});
      jobs_.set_location(idx, JobLocation::Retrying);
    }
  }

  // One node state transition. On failure: interrupt running jobs in the
  // partition (youngest-first, a deterministic order) until the failed
  // cores are free, then take them offline. On recovery: return them.
  void handle_node_event(const fault::NodeEvent& ev) {
    const auto part = static_cast<std::size_t>(ev.partition);
    if (ev.failure) {
      if (cluster_.free(part) < ev.cores) {
        victims_.clear();
        victims_.reserve(running_by_part_[part].size());
        for (const RunningJob& r : running_by_part_[part]) {
          victims_.push_back(r.index);
        }
        std::sort(victims_.begin(), victims_.end(),
                  std::greater<std::uint32_t>());
        for (std::uint32_t idx : victims_) {
          if (cluster_.free(part) >= ev.cores) break;
          // A hedged pair appears twice in the running vector; its first
          // interruption tears both copies down, so the second sighting
          // (and any job another interrupt requeued) is skipped.
          if (jobs_.location(idx) != JobLocation::Running) continue;
          interrupt(idx);
        }
      }
      // Up-node cores are free ∪ allocated, so interrupting enough jobs
      // always reclaims the failed node's share.
      if (cluster_.free(part) < ev.cores) {
        throw InternalError("node failure exceeds reclaimable capacity");
      }
      cluster_.fail(ev.cores, part);
      ++counters_->node_failures;
    } else {
      cluster_.recover(ev.cores, part);
      ++counters_->node_recoveries;
    }
    // Offline capacity changed; the cached planning profile is stale.
    invalidate_profile(part);
    audit();
  }

  const trace::Trace& trace_;
  const SimConfig& config_;
  SimResult result_;
  SimCounters* counters_ = nullptr;
  Cluster cluster_;
  JobSoA jobs_;

  // Per-partition waiting queues (job indices), policy-ordered.
  std::vector<std::vector<std::uint32_t>> queues_;
  EventQueue<RunningJob> running_;
  // Per-partition running jobs for profile building; unordered, erased by
  // swap-with-back via the run_slot handle.
  std::vector<std::vector<RunningJob>> running_by_part_;

  // Incremental policy order: a queue is re-sorted only when its
  // membership grew (arrival) or, for wait-sensitive policies, when time
  // advanced since the last sort. Removals preserve relative order, and
  // a stable sort of an already-ordered queue is the identity, so
  // skipping the redundant sorts is outcome-identical to sorting every
  // pass.
  std::vector<std::uint8_t> sort_dirty_;
  std::vector<double> sorted_at_;
  bool time_dependent_ = false;

  // Incrementally maintained planned-availability profiles, one per
  // partition: rebuilt in place when stale (time advanced or a job
  // completed), extended in place when a job starts at the cached
  // timestamp. The scratch profiles below reuse their step storage
  // across passes, so steady-state scheduling does not allocate.
  std::vector<ProfileCache> profiles_;
  ResourceProfile work_profile_{0.0, 1};   ///< mutable pass-local copy
  ResourceProfile cand_profile_{0.0, 1};   ///< relaxed-candidate trial
  ResourceProfile audit_profile_{0.0, 1};  ///< auditor cross-check rebuild
  std::vector<std::pair<double, std::uint64_t>> ends_;

  std::vector<double> score_;          ///< per-job policy score at sort time
  std::vector<std::uint32_t> to_start_;
  std::vector<std::uint32_t> victims_;

  std::size_t next_arrival_ = 0;
  double now_ = 0.0;
  double ema_wait_ = 0.0;
  bool ema_init_ = false;
  std::size_t total_queued_ = 0;

  // Fault injection. All fault state is allocated only when the config
  // enables faults; the disabled path must stay bit-identical to the
  // fault-free simulator.
  bool faults_on_ = false;
  std::optional<fault::FaultProcess> faults_;
  EventQueue<RetryEvent> retries_;

  // DAG precedence + straggler hedging. Like faults, both are opt-in and
  // their disabled paths stay bit-identical to the pre-DAG simulator.
  bool dag_on_ = false;
  bool cp_scored_ = false;              ///< CriticalPath policy with DAG lanes
  std::vector<std::uint32_t> released_; ///< children unblocked this batch
  std::vector<std::uint32_t> cascade_;  ///< abandon-descendants DFS stack
  bool hedging_on_ = false;
  EventQueue<HedgeEvent> hedge_checks_;

  std::optional<SimAuditor> auditor_;
};

LUMOS_HOT_PATH SimResult SimEngine::run() {
  const auto jobs = trace_.jobs();
  result_.outcomes.assign(jobs.size(), JobOutcome{});
  counters_ = &result_.counters;
  if (jobs.empty()) return result_;

  result_.used_oracle_runtimes = jobs_.build(trace_, cluster_);

  const std::size_t nparts = cluster_.partitions();
  queues_.resize(nparts);
  running_by_part_.resize(nparts);
  sort_dirty_.assign(nparts, 1);
  sorted_at_.assign(nparts, -1.0);
  time_dependent_ = policy_is_time_dependent(config_.policy);
  profiles_.resize(nparts);
  score_.resize(jobs.size());

  faults_on_ = config_.fault.enabled();
  if (faults_on_) {
    std::vector<std::uint64_t> caps(nparts);
    for (std::size_t p = 0; p < nparts; ++p) caps[p] = cluster_.capacity(p);
    faults_.emplace(config_.fault, caps);
    jobs_.enable_fault_state();
  }

  // Precedence lanes only when the trace actually carries edges (and the
  // edges must validate — cycles, self-edges, and unknown parents throw).
  dag_on_ = trace::has_dependencies(trace_);
  if (dag_on_) jobs_.enable_dag_state(trace_);
  cp_scored_ = config_.policy == PolicyKind::CriticalPath && dag_on_;
  hedging_on_ = config_.hedge.enabled();
  if (hedging_on_) jobs_.enable_hedge_state(trace_);

  if (config_.audit) {
    auditor_.emplace(*counters_, jobs.size(), config_.audit_fatal);
  }

  // Main event loop. With faults on, the queue can be non-empty while
  // nothing runs (all cores offline, retries pending), so the loop also
  // keys on retries and queued work; the fault stream itself is infinite
  // and never keeps the loop alive.
  while (next_arrival_ < jobs_.size() || !running_.empty() ||
         !retries_.empty() || (faults_on_ && total_queued_ > 0)) {
    double next_time = std::numeric_limits<double>::infinity();
    if (next_arrival_ < jobs_.size()) {
      next_time = std::min(next_time, jobs_.submit(next_arrival_));
    }
    if (!running_.empty()) next_time = std::min(next_time, running_.top().end);
    if (!retries_.empty()) {
      next_time = std::min(next_time, retries_.top().time);
    }
    if (hedging_on_ && !hedge_checks_.empty()) {
      next_time = std::min(next_time, hedge_checks_.top().time);
    }
    if (faults_on_) next_time = std::min(next_time, faults_->peek()->time);
    now_ = std::max(now_, next_time);
    ++counters_->event_batches;

    // Process all completions at or before `now`, in event_before order.
    while (!running_.empty() && running_.top().end <= now_ + kEps) {
      const RunningJob r = running_.top();
      running_.pop();
      // An entry whose epoch is stale describes an execution attempt a
      // node failure already tore down; the teardown in interrupt() was
      // this job's single departure from the running set.
      if (faults_on_ && jobs_.epoch(r.index) != r.epoch) continue;
      // First finish of a hedged pair wins: tear the loser down before
      // touching the winner's slot (the teardown may move it). A pair
      // ending at the same instant drains the primary first (its key's
      // seq is even), which then tombstones the duplicate's entry — a
      // hedged job leaves the running set exactly once.
      if (hedging_on_ && jobs_.hedge_active(r.index)) cancel_hedge_loser(r);
      cancel_hedge_check(r.index);
      cluster_.release(r.cores, r.partition);
      // Swap-erase the running slot; patch the moved job's handle.
      auto& vec = running_by_part_[r.partition];
      const std::uint32_t slot =
          r.hedge != 0 ? jobs_.hedge_slot(r.index) : jobs_.run_slot(r.index);
      if (slot >= vec.size() || vec[slot].index != r.index ||
          vec[slot].hedge != r.hedge) {
        // lumos-lint: allow(hot-throw) corrupted run_slot handle means the swap-erase patching broke; fail loudly
        throw InternalError("running-slot handle out of sync");
      }
      remove_running_slot(vec, slot);
      jobs_.set_location(r.index, JobLocation::Finished);
      // A release frees planned capacity the cached profile still holds
      // reserved; it must be rebuilt on next use.
      invalidate_profile(r.partition);
      result_.makespan = std::max(result_.makespan, r.end);
      auto& outcome = result_.outcomes[r.index];
      outcome.finish_time = r.end;
      if (r.hedge != 0) {
        outcome.hedge_won = true;
        ++counters_->hedges_won;
      }
      ++counters_->completions;
      if (faults_on_ || hedging_on_) {
        const double useful =
            r.hedge != 0 ? jobs_.hedge_run(r.index) : jobs_.run(r.index);
        result_.goodput_core_hours +=
            useful * static_cast<double>(r.cores) / 3600.0;
      }
      if (dag_on_) {
        // The winner's completion satisfies one parent edge per child;
        // children whose last parent this was are released below, after
        // the batch drains (sorted, so release order is backend-agnostic).
        for (const std::uint32_t* c = jobs_.children_begin(r.index);
             c != jobs_.children_end(r.index); ++c) {
          if (--jobs_.unmet_parents(*c) == 0 &&
              jobs_.location(*c) == JobLocation::Blocked) {
            released_.push_back(*c);
          }
        }
      }
      audit();
    }
    if (dag_on_ && !released_.empty()) release_ready_children();
    // Node failures/recoveries at or before `now` (after completions: a
    // job ending exactly when its node dies is considered done).
    if (faults_on_) {
      while (faults_->peek()->time <= now_ + kEps) {
        handle_node_event(faults_->pop());
      }
    }
    // Interrupted jobs whose resubmission backoff has elapsed re-enter
    // their queue like fresh arrivals (but keep their original submit
    // time for policy scores and metrics).
    while (!retries_.empty() && retries_.top().time <= now_ + kEps) {
      const RetryEvent rt = retries_.top();
      retries_.pop();
      const std::size_t part = jobs_.partition(rt.index);
      queues_[part].push_back(rt.index);
      jobs_.set_location(rt.index, JobLocation::Queued);
      sort_dirty_[part] = 1;
      ++total_queued_;
      audit();
    }
    // Enqueue all arrivals at or before `now`.
    while (next_arrival_ < jobs_.size() &&
           jobs_.submit(next_arrival_) <= now_ + kEps) {
      const auto idx = static_cast<std::uint32_t>(next_arrival_);
      ++next_arrival_;
      if (dag_on_) {
        // Descendants of dead parents were cascade-abandoned before they
        // arrived; jobs with unfinished parents park in Blocked until
        // their last parent's completion releases them.
        if (jobs_.location(idx) == JobLocation::Abandoned) continue;
        if (jobs_.unmet_parents(idx) > 0) {
          jobs_.set_location(idx, JobLocation::Blocked);
          ++counters_->arrivals;
          audit();
          continue;
        }
      }
      const std::size_t part = jobs_.partition(idx);
      queues_[part].push_back(idx);
      jobs_.set_location(idx, JobLocation::Queued);
      sort_dirty_[part] = 1;
      ++total_queued_;
      ++counters_->arrivals;
      audit();
    }
    // Hedge-check timers at or before `now`: still-running stragglers get
    // a duplicate if the cores are free. Checked before the scheduling
    // round, so a launched duplicate is planned around immediately; at
    // equal instants hedges therefore outrank queued work for spare cores
    // (the straggler is already holding up its workflow's critical path).
    if (hedging_on_) {
      while (!hedge_checks_.empty() &&
             hedge_checks_.top().time <= now_ + kEps) {
        const HedgeEvent hv = hedge_checks_.top();
        hedge_checks_.pop();
        jobs_.hedge_check_time(hv.index) = -1.0;
        try_launch_hedge(hv.index);
        audit();
      }
    }
    result_.max_queue_length =
        std::max(result_.max_queue_length, total_queued_);
    schedule_all();
  }

  counters_->events = counters_->completions + counters_->arrivals;
  counters_->events_cancelled =
      running_.cancelled_total() + hedge_checks_.cancelled_total();
  return result_;
}

}  // namespace

Simulator::Simulator(const trace::Trace& trace, SimConfig config)
    : trace_(trace), config_(config) {
  LUMOS_REQUIRE(trace.is_sorted_by_submit(),
                "Simulator requires a submit-sorted trace");
}

SimResult Simulator::run() {
  SimEngine engine(trace_, config_);
  return engine.run();
}

SimResult simulate(const trace::Trace& trace, const SimConfig& config,
                   obs::Registry& registry) {
  obs::ScopedTimer timer(registry.histogram(
      "sim.loop_seconds." + std::string(to_string(config.policy))));
  Simulator sim(trace, config);
  SimResult result = sim.run();
  // Publish the event-loop counters; deterministic for deterministic input.
  const SimCounters& c = result.counters;
  registry.counter("sim.events").add(c.events);
  registry.counter("sim.event_batches").add(c.event_batches);
  registry.counter("sim.scheduling_passes").add(c.scheduling_passes);
  registry.counter("sim.backfill_attempts").add(c.backfill_attempts);
  registry.counter("sim.backfill_successes").add(c.backfill_successes);
  registry.counter("sim.profile_cache_hits").add(c.profile_cache_hits);
  registry.counter("sim.profile_rebuilds").add(c.profile_rebuilds);
  registry.counter("sim.profile_invalidations").add(c.profile_invalidations);
  if (config.fault.enabled()) {
    // Published only for fault-injected runs so fault-free snapshots stay
    // identical to the pre-fault observability surface.
    registry.counter("sim.node_failures").add(c.node_failures);
    registry.counter("sim.node_recoveries").add(c.node_recoveries);
    registry.counter("sim.jobs_interrupted").add(c.jobs_interrupted);
    registry.counter("sim.retries").add(c.retries);
    registry.counter("sim.jobs_abandoned").add(c.jobs_abandoned);
    registry.gauge("sim.work_lost_core_hours").set(c.work_lost_core_hours);
  }
  if (trace::has_dependencies(trace) || config.hedge.enabled()) {
    // Published only when precedence or hedging is in play, so plain
    // replay snapshots stay identical to the pre-DAG observability
    // surface (same gating discipline as the fault counters above).
    registry.counter("sim.dag_releases").add(c.dag_releases);
    registry.counter("sim.dag_abandoned").add(c.dag_abandoned);
    registry.counter("sim.events_cancelled").add(c.events_cancelled);
    registry.counter("sim.hedges_launched").add(c.hedges_launched);
    registry.counter("sim.hedges_won").add(c.hedges_won);
    registry.counter("sim.hedges_cancelled").add(c.hedges_cancelled);
    registry.gauge("sim.hedge_wasted_core_hours")
        .set(c.hedge_wasted_core_hours);
  }
  return result;
}

SimResult simulate(const trace::Trace& trace, const SimConfig& config) {
  return simulate(trace, config, obs::Registry::global());
}

}  // namespace lumos::sim
