#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "sim/profile.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace lumos::sim {

namespace {

constexpr double kEps = 1e-6;

/// A job currently executing.
struct RunningJob {
  double end = 0.0;          ///< actual completion time
  double planned_end = 0.0;  ///< scheduler-visible completion time
  std::uint64_t cores = 0;
  std::size_t partition = 0;
  std::uint32_t index = 0;
  bool operator>(const RunningJob& o) const noexcept { return end > o.end; }
};

}  // namespace

Simulator::Simulator(const trace::Trace& trace, SimConfig config)
    : trace_(trace), config_(config) {
  LUMOS_REQUIRE(trace.is_sorted_by_submit(),
                "Simulator requires a submit-sorted trace");
}

SimResult Simulator::run() {
  SimResult result;
  const auto jobs = trace_.jobs();
  result.outcomes.assign(jobs.size(), JobOutcome{});
  if (jobs.empty()) return result;

  Cluster cluster = Cluster::from_spec(trace_.spec());

  // Build pending-job descriptors; detect whether planning falls back to
  // oracle runtimes (DL traces without walltime requests).
  std::vector<PendingJob> pending(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& j = jobs[i];
    PendingJob p;
    p.index = static_cast<std::uint32_t>(i);
    p.cores = j.cores > 0 ? j.cores : 1;
    p.partition = cluster.partition_for(j.virtual_cluster);
    p.submit = j.submit_time;
    p.run = std::max(0.0, j.run_time);
    if (j.has_requested_time()) {
      p.planned = std::max(j.requested_time, 1.0);
    } else {
      p.planned = std::max(p.run, 1.0);
      result.used_oracle_runtimes = true;
    }
    pending[i] = p;
  }

  // Per-partition waiting queues (indices into `pending`).
  std::vector<std::deque<std::uint32_t>> queues(cluster.partitions());
  std::priority_queue<RunningJob, std::vector<RunningJob>,
                      std::greater<RunningJob>>
      running;
  // Per-partition running jobs for profile building.
  std::vector<std::vector<RunningJob>> running_by_part(cluster.partitions());

  std::size_t next_arrival = 0;
  double now = 0.0;
  double ema_wait = 0.0;
  bool ema_init = false;
  std::size_t total_queued = 0;

  auto start_job = [&](std::uint32_t idx, bool as_backfill) {
    const PendingJob& p = pending[idx];
    const bool ok = cluster.allocate(p.cores, p.partition);
    if (!ok) throw InternalError("start_job without free cores");
    auto& outcome = result.outcomes[idx];
    outcome.start_time = now;
    outcome.backfilled = as_backfill;
    if (as_backfill) ++result.backfilled_jobs;
    RunningJob r;
    r.end = now + p.run;
    r.planned_end = now + p.planned;
    r.cores = p.cores;
    r.partition = p.partition;
    r.index = idx;
    running.push(r);
    running_by_part[p.partition].push_back(r);
    const double wait = now - p.submit;
    ema_wait = ema_init
                   ? (1.0 - config_.wait_ema_alpha) * ema_wait +
                         config_.wait_ema_alpha * wait
                   : wait;
    ema_init = true;
  };

  // Planned-availability profile for one partition from its running jobs.
  // Planned ends already in the past (jobs overrunning their estimate) are
  // treated as ending shortly after `now`.
  auto build_profile = [&](std::size_t part) {
    ResourceProfile profile(now, cluster.capacity(part));
    for (const RunningJob& r : running_by_part[part]) {
      const double planned_end =
          r.planned_end > now + kEps ? r.planned_end : now + 60.0;
      profile.reserve(now, planned_end, r.cores);
    }
    return profile;
  };

  auto erase_from_queue = [&](std::deque<std::uint32_t>& queue,
                              std::uint32_t idx) {
    queue.erase(std::find(queue.begin(), queue.end(), idx));
    --total_queued;
  };

  // One scheduling pass over partition `part`; returns jobs started.
  auto schedule_partition = [&](std::size_t part) -> std::size_t {
    auto& queue = queues[part];
    if (queue.empty()) return 0;

    // Drop jobs that can never fit this partition (Supercloud-style
    // inputs); they would wedge the head of the queue forever.
    for (auto it = queue.begin(); it != queue.end();) {
      if (pending[*it].cores > cluster.capacity(part)) {
        ++result.skipped_oversized;
        it = queue.erase(it);
        --total_queued;
      } else {
        ++it;
      }
    }
    if (queue.empty()) return 0;

    // Order the queue by the policy (lower score first, FCFS tiebreak).
    // Arrivals are pushed in submit order, so FCFS needs no sort.
    if (config_.policy != PolicyKind::Fcfs) {
      std::stable_sort(
          queue.begin(), queue.end(),
          [&](std::uint32_t a, std::uint32_t b) {
            PolicyJobView va{pending[a].submit, now - pending[a].submit,
                             pending[a].planned, pending[a].cores};
            PolicyJobView vb{pending[b].submit, now - pending[b].submit,
                             pending[b].planned, pending[b].cores};
            const double sa = policy_score(config_.policy, va);
            const double sb = policy_score(config_.policy, vb);
            if (sa != sb) return sa < sb;
            return pending[a].submit < pending[b].submit;
          });
    }

    std::size_t started = 0;

    if (config_.backfill.kind == BackfillKind::Conservative) {
      // Reservation for every queued job; start those whose earliest start
      // is now.
      ResourceProfile profile = build_profile(part);
      std::vector<std::uint32_t> to_start;
      const std::size_t scan =
          std::min(queue.size(), config_.backfill.scan_limit);
      for (std::size_t qi = 0; qi < scan; ++qi) {
        const PendingJob& p = pending[queue[qi]];
        const double est = profile.earliest_start(now, p.planned, p.cores);
        profile.reserve(est, est + p.planned, p.cores);
        auto& outcome = result.outcomes[queue[qi]];
        if (outcome.first_reservation < 0.0 && est > now + kEps) {
          outcome.first_reservation = est;
        }
        if (est <= now + kEps) to_start.push_back(queue[qi]);
      }
      for (std::uint32_t idx : to_start) {
        start_job(idx, /*as_backfill=*/idx != queue.front());
        erase_from_queue(queue, idx);
        ++started;
      }
      return started;
    }

    // Head service with optional EASY/relaxed backfilling.
    while (!queue.empty()) {
      const std::uint32_t head = queue.front();
      if (!cluster.fits(pending[head].cores, part)) break;
      start_job(head, /*as_backfill=*/false);
      queue.pop_front();
      --total_queued;
      ++started;
    }
    if (queue.empty() || config_.backfill.kind == BackfillKind::None) {
      return started;
    }

    // Head is blocked: compute its EASY reservation (shadow time).
    const std::uint32_t head = queue.front();
    const PendingJob& hp = pending[head];
    ResourceProfile profile = build_profile(part);
    double shadow = profile.earliest_start(now, hp.planned, hp.cores);
    auto& head_outcome = result.outcomes[head];
    if (head_outcome.first_reservation < 0.0) {
      head_outcome.first_reservation = shadow;
    }
    // Cores free at the shadow time beyond what the head needs; a backfill
    // running past the shadow is harmless if it fits within them.
    auto extra_at = [&](double t) -> std::uint64_t {
      const std::uint64_t f = profile.free_at(t);
      return f > hp.cores ? f - hp.cores : 0;
    };
    std::uint64_t extra = extra_at(shadow);

    // Relaxation allowance: how far past its *first* promise the head may
    // be pushed. Reference is the EMA of realized waits ("expected job
    // waiting time"), floored by the head's own wait so far.
    const double eff_factor = effective_relax_factor(
        config_.backfill, total_queued, result.max_queue_length);
    const double reference_wait = std::max(ema_wait, now - hp.submit);
    const double deadline =
        head_outcome.first_reservation + eff_factor * reference_wait;

    const std::size_t scan =
        std::min(queue.size(), config_.backfill.scan_limit);
    std::vector<std::uint32_t> to_start;
    std::uint64_t committed = 0;  // cores promised to accepted backfills
    for (std::size_t qi = 1; qi < scan; ++qi) {
      const std::uint32_t cand = queue[qi];
      const PendingJob& cp = pending[cand];
      if (cp.cores + committed > cluster.free(part)) continue;
      const double cand_end = now + cp.planned;
      bool accept = false;
      if (cand_end <= shadow + kEps) {
        accept = true;  // finishes before the head needs the machine
      } else if (cp.cores <= extra) {
        accept = true;  // runs on cores the head will not need
      } else if (eff_factor > 0.0 && shadow < deadline) {
        // Relaxed path: admit the candidate if the head's recomputed
        // earliest start stays within the allowance.
        ResourceProfile with_cand = profile;
        with_cand.reserve(now, cand_end, cp.cores);
        const double pushed =
            with_cand.earliest_start(now, hp.planned, hp.cores);
        accept = pushed <= deadline + kEps;
      }
      if (accept) {
        to_start.push_back(cand);
        committed += cp.cores;
        // Keep the planning state consistent for later candidates.
        profile.reserve(now, cand_end, cp.cores);
        shadow = profile.earliest_start(now, hp.planned, hp.cores);
        extra = extra_at(shadow);
      }
    }
    for (std::uint32_t idx : to_start) {
      start_job(idx, /*as_backfill=*/true);
      erase_from_queue(queue, idx);
      ++started;
    }
    return started;
  };

  auto schedule_all = [&]() {
    for (;;) {
      std::size_t started = 0;
      for (std::size_t part = 0; part < cluster.partitions(); ++part) {
        started += schedule_partition(part);
      }
      if (started == 0) break;
    }
    result.max_queue_length = std::max(result.max_queue_length, total_queued);
    if (config_.record_queue_series) {
      result.queue_series.push_back(
          {now, static_cast<std::uint32_t>(total_queued)});
    }
  };

  // Main event loop.
  while (next_arrival < pending.size() || !running.empty()) {
    double next_time;
    if (next_arrival < pending.size() && !running.empty()) {
      next_time = std::min(pending[next_arrival].submit, running.top().end);
    } else if (next_arrival < pending.size()) {
      next_time = pending[next_arrival].submit;
    } else {
      next_time = running.top().end;
    }
    now = std::max(now, next_time);

    // Process all completions at or before `now`.
    while (!running.empty() && running.top().end <= now + kEps) {
      const RunningJob r = running.top();
      running.pop();
      cluster.release(r.cores, r.partition);
      auto& vec = running_by_part[r.partition];
      const auto it =
          std::find_if(vec.begin(), vec.end(), [&](const RunningJob& x) {
            return x.index == r.index;
          });
      if (it != vec.end()) vec.erase(it);
      result.makespan = std::max(result.makespan, r.end);
    }
    // Enqueue all arrivals at or before `now`.
    while (next_arrival < pending.size() &&
           pending[next_arrival].submit <= now + kEps) {
      const PendingJob& p = pending[next_arrival];
      queues[p.partition].push_back(p.index);
      ++total_queued;
      ++next_arrival;
    }
    result.max_queue_length = std::max(result.max_queue_length, total_queued);
    schedule_all();
  }

  return result;
}

SimResult simulate(const trace::Trace& trace, const SimConfig& config) {
  Simulator sim(trace, config);
  return sim.run();
}

}  // namespace lumos::sim
