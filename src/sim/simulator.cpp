#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "obs/registry.hpp"
#include "sim/auditor.hpp"
#include "sim/profile.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace lumos::sim {

namespace {

constexpr double kEps = 1e-6;

/// Where a job currently lives in the event loop. Acts as the per-job
/// queue handle: O(1) membership checks replace the old linear scans.
enum class JobLocation : std::uint8_t {
  NotArrived,
  Queued,
  Running,
  Finished,
  Dropped,    ///< oversized for its partition, removed from the queue
  Retrying,   ///< interrupted; waiting out its resubmission backoff
  Abandoned,  ///< interrupted and out of retry budget: left as Failed
};

/// Policies whose score depends on the current waiting time. Their queue
/// order can change as time advances even without arrivals, so the
/// incremental sort must also refresh when `now` moves.
bool policy_is_time_dependent(PolicyKind p) noexcept {
  return p == PolicyKind::Wfp3 || p == PolicyKind::Unicep;
}

}  // namespace

Simulator::Simulator(const trace::Trace& trace, SimConfig config)
    : trace_(trace), config_(config) {
  LUMOS_REQUIRE(trace.is_sorted_by_submit(),
                "Simulator requires a submit-sorted trace");
}

SimResult Simulator::run() {
  SimResult result;
  const auto jobs = trace_.jobs();
  result.outcomes.assign(jobs.size(), JobOutcome{});
  if (jobs.empty()) return result;

  Cluster cluster = Cluster::from_spec(trace_.spec());
  SimCounters& counters = result.counters;

  // Build pending-job descriptors; detect whether planning falls back to
  // oracle runtimes (DL traces without walltime requests).
  std::vector<PendingJob> pending(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& j = jobs[i];
    PendingJob p;
    p.index = static_cast<std::uint32_t>(i);
    p.cores = j.cores > 0 ? j.cores : 1;
    p.partition = cluster.partition_for(j.virtual_cluster);
    p.submit = j.submit_time;
    p.run = std::max(0.0, j.run_time);
    if (j.has_requested_time()) {
      p.planned = std::max(j.requested_time, 1.0);
    } else {
      p.planned = std::max(p.run, 1.0);
      result.used_oracle_runtimes = true;
    }
    pending[i] = p;
  }

  const std::size_t nparts = cluster.partitions();
  // Per-partition waiting queues (indices into `pending`), policy-ordered.
  std::vector<std::vector<std::uint32_t>> queues(nparts);
  std::priority_queue<RunningJob, std::vector<RunningJob>,
                      std::greater<RunningJob>>
      running;
  // Per-partition running jobs for profile building; unordered, erased by
  // swap-with-back via `run_slot`.
  std::vector<std::vector<RunningJob>> running_by_part(nparts);

  // Per-job event-loop handles.
  std::vector<JobLocation> location(jobs.size(), JobLocation::NotArrived);
  std::vector<std::uint32_t> run_slot(jobs.size(), 0);

  // Incremental policy order: a queue is re-sorted only when its
  // membership grew (arrival) or, for wait-sensitive policies, when time
  // advanced since the last sort. Removals preserve relative order, and a
  // stable sort of an already-ordered queue is the identity, so skipping
  // the redundant sorts is outcome-identical to sorting every pass.
  std::vector<std::uint8_t> sort_dirty(nparts, 1);
  std::vector<double> sorted_at(nparts, -1.0);
  const bool time_dependent = policy_is_time_dependent(config_.policy);

  // Incrementally maintained planned-availability profiles, one per
  // partition: rebuilt when stale (time advanced or a job completed),
  // extended in place when a job starts at the cached timestamp.
  struct ProfileCache {
    std::optional<ResourceProfile> profile;
    double time = -1.0;
  };
  std::vector<ProfileCache> profiles(nparts);

  std::size_t next_arrival = 0;
  double now = 0.0;
  double ema_wait = 0.0;
  bool ema_init = false;
  std::size_t total_queued = 0;

  // ------------------------------------------------------ fault injection --
  // All fault state is allocated only when the config enables faults; the
  // disabled path must stay bit-identical to the fault-free simulator.
  const bool faults_on = config_.fault.enabled();
  std::optional<fault::FaultProcess> faults;
  // Per-job execution state across interruptions.
  std::vector<double> remaining_run;   ///< runtime still owed
  std::vector<double> run_start;       ///< start of the current attempt
  std::vector<std::uint32_t> attempts; ///< interruptions suffered so far
  std::vector<std::uint32_t> epoch;    ///< current interruption generation
  // Pending resubmissions, ordered by (re-arrival time, job index).
  struct Retry {
    double time;
    std::uint32_t index;
    bool operator>(const Retry& o) const noexcept {
      if (time != o.time) return time > o.time;
      return index > o.index;
    }
  };
  std::priority_queue<Retry, std::vector<Retry>, std::greater<Retry>> retries;
  if (faults_on) {
    std::vector<std::uint64_t> caps(nparts);
    for (std::size_t p = 0; p < nparts; ++p) caps[p] = cluster.capacity(p);
    faults.emplace(config_.fault, caps);
    remaining_run.resize(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      remaining_run[i] = pending[i].run;
    }
    run_start.assign(jobs.size(), 0.0);
    attempts.assign(jobs.size(), 0);
    epoch.assign(jobs.size(), 0);
  }

  std::optional<SimAuditor> auditor;
  if (config_.audit) {
    auditor.emplace(counters, jobs.size(), config_.audit_fatal);
  }
  auto audit = [&] {
    if (auditor) {
      auditor->check(cluster, queues, running_by_part, total_queued);
    }
  };

  // Planned-availability profile for one partition from its running jobs.
  // Planned ends already in the past (jobs overrunning their estimate) are
  // treated as ending shortly after `now`.
  auto rebuild_profile = [&](std::size_t part) {
    ResourceProfile profile(now, cluster.capacity(part));
    for (const RunningJob& r : running_by_part[part]) {
      const double planned_end =
          r.planned_end > now + kEps ? r.planned_end : now + 60.0;
      profile.reserve(now, planned_end, r.cores);
    }
    // Offline (failed-node) cores are unavailable for planning until they
    // recover; the MTTR is the scheduler's repair-time estimate, keeping
    // reservations finite while a node is down.
    if (faults_on && cluster.offline(part) > 0) {
      profile.reserve(now, now + config_.fault.node_mttr_s,
                      cluster.offline(part));
    }
    return profile;
  };

  // Returns (a copy of) the partition's availability profile, serving from
  // the incremental cache when it is still anchored at `now`.
  auto base_profile = [&](std::size_t part) -> ResourceProfile {
    ProfileCache& cache = profiles[part];
    if (!cache.profile || cache.time != now) {
      cache.profile = rebuild_profile(part);
      cache.time = now;
      ++counters.profile_rebuilds;
    } else {
      ++counters.profile_cache_hits;
      if (auditor) auditor->check_profile(*cache.profile, rebuild_profile(part));
    }
    return *cache.profile;
  };

  auto start_job = [&](std::uint32_t idx, bool as_backfill) {
    if (location[idx] != JobLocation::Queued) {
      throw InternalError("start_job on a job that is not queued");
    }
    const PendingJob& p = pending[idx];
    const bool ok = cluster.allocate(p.cores, p.partition);
    if (!ok) throw InternalError("start_job without free cores");
    auto& outcome = result.outcomes[idx];
    // A restart after an interruption keeps the job's original outcome:
    // start_time/backfilled describe the first attempt only, so the
    // paper's wait/bsld metrics keep their fault-free meaning.
    const bool first_start = !outcome.started();
    if (first_start) {
      outcome.start_time = now;
      outcome.backfilled = as_backfill;
      if (as_backfill) ++result.backfilled_jobs;
    }
    if (as_backfill) ++counters.backfill_successes;
    RunningJob r;
    r.end = now + (faults_on ? remaining_run[idx] : p.run);
    r.planned_end = now + p.planned;
    r.cores = p.cores;
    r.partition = p.partition;
    r.index = idx;
    if (faults_on) {
      r.epoch = epoch[idx];
      run_start[idx] = now;
    }
    running.push(r);
    location[idx] = JobLocation::Running;
    run_slot[idx] = static_cast<std::uint32_t>(running_by_part[p.partition].size());
    running_by_part[p.partition].push_back(r);
    // Keep the cached profile current: a job starting at the cache's
    // anchor time reserves exactly what a rebuild would reserve for it
    // (its planned end is strictly in the future, so no overrun clamp).
    ProfileCache& cache = profiles[p.partition];
    if (cache.profile && cache.time == now) {
      cache.profile->reserve(now, r.planned_end, r.cores);
    }
    const double wait = now - p.submit;
    ema_wait = ema_init
                   ? (1.0 - config_.wait_ema_alpha) * ema_wait +
                         config_.wait_ema_alpha * wait
                   : wait;
    ema_init = true;
  };

  // Batch-compacts every job no longer Queued out of `queue` in one
  // order-preserving pass — the indexed replacement for the old per-job
  // unchecked find+erase. Throws InternalError when the queue does not
  // contain exactly the jobs the caller just started.
  auto remove_started = [&](std::vector<std::uint32_t>& queue,
                            std::size_t expected) {
    std::size_t w = 0;
    std::size_t removed = 0;
    for (std::size_t r = 0; r < queue.size(); ++r) {
      if (location[queue[r]] == JobLocation::Queued) {
        queue[w++] = queue[r];
      } else {
        ++removed;
      }
    }
    if (removed != expected) {
      throw InternalError("erase_from_queue: started job missing from its "
                          "partition queue");
    }
    queue.resize(w);
    total_queued -= removed;
  };

  // One scheduling pass over partition `part`; returns jobs started.
  auto schedule_partition = [&](std::size_t part) -> std::size_t {
    auto& queue = queues[part];
    if (queue.empty()) return 0;
    ++counters.scheduling_passes;

    // Drop jobs that can never fit this partition (Supercloud-style
    // inputs); they would wedge the head of the queue forever.
    {
      std::size_t w = 0;
      for (std::size_t r = 0; r < queue.size(); ++r) {
        if (pending[queue[r]].cores > cluster.capacity(part)) {
          location[queue[r]] = JobLocation::Dropped;
          ++result.skipped_oversized;
          --total_queued;
        } else {
          queue[w++] = queue[r];
        }
      }
      queue.resize(w);
    }
    if (queue.empty()) return 0;

    // Order the queue by the policy (lower score first, FCFS tiebreak).
    // Arrivals are pushed in submit order, so FCFS needs no sort.
    if (config_.policy != PolicyKind::Fcfs &&
        (sort_dirty[part] != 0 || (time_dependent && sorted_at[part] != now))) {
      ++counters.sort_invocations;
      std::stable_sort(
          queue.begin(), queue.end(),
          [&](std::uint32_t a, std::uint32_t b) {
            PolicyJobView va{pending[a].submit, now - pending[a].submit,
                             pending[a].planned, pending[a].cores};
            PolicyJobView vb{pending[b].submit, now - pending[b].submit,
                             pending[b].planned, pending[b].cores};
            const double sa = policy_score(config_.policy, va);
            const double sb = policy_score(config_.policy, vb);
            if (sa != sb) return sa < sb;
            return pending[a].submit < pending[b].submit;
          });
      sort_dirty[part] = 0;
      sorted_at[part] = now;
    }

    std::size_t started = 0;

    if (config_.backfill.kind == BackfillKind::Conservative) {
      // Reservation for every queued job; start those whose earliest start
      // is now.
      ResourceProfile profile = base_profile(part);
      std::vector<std::uint32_t> to_start;
      const std::size_t scan =
          std::min(queue.size(), config_.backfill.scan_limit);
      for (std::size_t qi = 0; qi < scan; ++qi) {
        if (qi > 0) ++counters.backfill_attempts;
        const PendingJob& p = pending[queue[qi]];
        const double est = profile.earliest_start(now, p.planned, p.cores);
        profile.reserve(est, est + p.planned, p.cores);
        auto& outcome = result.outcomes[queue[qi]];
        if (outcome.first_reservation < 0.0 && est > now + kEps) {
          outcome.first_reservation = est;
        }
        if (est <= now + kEps) to_start.push_back(queue[qi]);
      }
      if (!to_start.empty()) {
        // A job is a backfill when it is not the head of the queue as this
        // pass begins; the head must be captured before any start mutates
        // the queue front.
        const std::uint32_t pass_head = queue.front();
        for (std::uint32_t idx : to_start) {
          start_job(idx, /*as_backfill=*/idx != pass_head);
          ++started;
        }
        remove_started(queue, to_start.size());
      }
      return started;
    }

    // Head service with optional EASY/relaxed backfilling. Pops are
    // deferred: started heads are skipped over and compacted off in one
    // batch below.
    std::size_t head_pos = 0;
    while (head_pos < queue.size()) {
      const std::uint32_t h = queue[head_pos];
      if (!cluster.fits(pending[h].cores, part)) break;
      start_job(h, /*as_backfill=*/false);
      ++head_pos;
      ++started;
    }
    if (head_pos > 0) {
      queue.erase(queue.begin(),
                  queue.begin() + static_cast<std::ptrdiff_t>(head_pos));
      total_queued -= head_pos;
    }
    if (queue.empty() || config_.backfill.kind == BackfillKind::None) {
      return started;
    }

    // Head is blocked: compute its EASY reservation (shadow time).
    const std::uint32_t head = queue.front();
    const PendingJob& hp = pending[head];
    ResourceProfile profile = base_profile(part);
    double shadow = profile.earliest_start(now, hp.planned, hp.cores);
    auto& head_outcome = result.outcomes[head];
    if (head_outcome.first_reservation < 0.0) {
      head_outcome.first_reservation = shadow;
    }
    // Cores free at the shadow time beyond what the head needs; a backfill
    // running past the shadow is harmless if it fits within them.
    auto extra_at = [&](double t) -> std::uint64_t {
      const std::uint64_t f = profile.free_at(t);
      return f > hp.cores ? f - hp.cores : 0;
    };
    std::uint64_t extra = extra_at(shadow);

    // Relaxation allowance: how far past its *first* promise the head may
    // be pushed. Reference is the EMA of realized waits ("expected job
    // waiting time"), floored by the head's own wait so far.
    const double eff_factor = effective_relax_factor(
        config_.backfill, total_queued, result.max_queue_length);
    const double reference_wait = std::max(ema_wait, now - hp.submit);
    const double deadline =
        head_outcome.first_reservation + eff_factor * reference_wait;

    const std::size_t scan =
        std::min(queue.size(), config_.backfill.scan_limit);
    std::vector<std::uint32_t> to_start;
    std::uint64_t committed = 0;  // cores promised to accepted backfills
    for (std::size_t qi = 1; qi < scan; ++qi) {
      ++counters.backfill_attempts;
      const std::uint32_t cand = queue[qi];
      const PendingJob& cp = pending[cand];
      if (cp.cores + committed > cluster.free(part)) continue;
      const double cand_end = now + cp.planned;
      bool accept = false;
      if (cand_end <= shadow + kEps) {
        accept = true;  // finishes before the head needs the machine
      } else if (cp.cores <= extra) {
        accept = true;  // runs on cores the head will not need
      } else if (eff_factor > 0.0 && shadow < deadline) {
        // Relaxed path: admit the candidate if the head's recomputed
        // earliest start stays within the allowance.
        ResourceProfile with_cand = profile;
        with_cand.reserve(now, cand_end, cp.cores);
        const double pushed =
            with_cand.earliest_start(now, hp.planned, hp.cores);
        accept = pushed <= deadline + kEps;
      }
      if (accept) {
        to_start.push_back(cand);
        committed += cp.cores;
        // Keep the planning state consistent for later candidates.
        profile.reserve(now, cand_end, cp.cores);
        shadow = profile.earliest_start(now, hp.planned, hp.cores);
        extra = extra_at(shadow);
      }
    }
    if (!to_start.empty()) {
      for (std::uint32_t idx : to_start) {
        start_job(idx, /*as_backfill=*/true);
        ++started;
      }
      remove_started(queue, to_start.size());
    }
    return started;
  };

  auto schedule_all = [&]() {
    for (;;) {
      std::size_t started = 0;
      for (std::size_t part = 0; part < nparts; ++part) {
        started += schedule_partition(part);
      }
      if (started == 0) break;
    }
    result.max_queue_length = std::max(result.max_queue_length, total_queued);
    if (config_.record_queue_series) {
      result.queue_series.push_back(
          {now, static_cast<std::uint32_t>(total_queued)});
    }
    audit();
  };

  // Tears one running job down after a node failure: frees its cores,
  // bumps its epoch (invalidating the completion-heap entry, so the job
  // leaves the running set exactly once), rolls its progress back to the
  // last checkpoint, and routes it through the retry policy.
  auto interrupt = [&](std::uint32_t idx) {
    auto& vec = running_by_part[pending[idx].partition];
    const std::uint32_t slot = run_slot[idx];
    if (location[idx] != JobLocation::Running || slot >= vec.size() ||
        vec[slot].index != idx) {
      throw InternalError("interrupt: running-slot handle out of sync");
    }
    const RunningJob r = vec[slot];
    vec[slot] = vec.back();
    run_slot[vec[slot].index] = slot;
    vec.pop_back();
    cluster.release(r.cores, r.partition);
    ++epoch[idx];

    const PendingJob& p = pending[idx];
    auto& outcome = result.outcomes[idx];
    const double elapsed = std::max(0.0, now - run_start[idx]);
    const double interval = config_.fault.checkpoint_interval_s;
    const double preserved =
        interval > 0.0 ? std::floor(elapsed / interval) * interval : 0.0;
    remaining_run[idx] = std::max(0.0, remaining_run[idx] - preserved);
    const double lost_ch =
        (elapsed - preserved) * static_cast<double>(p.cores) / 3600.0;
    result.wasted_core_hours += lost_ch;
    counters.work_lost_core_hours += lost_ch;
    ++counters.jobs_interrupted;
    if (outcome.interruptions == 0) ++result.interrupted_jobs;
    ++outcome.interruptions;
    ++attempts[idx];

    if (config_.fault.retry == fault::RetryPolicy::Abandon ||
        attempts[idx] > config_.fault.max_retries) {
      location[idx] = JobLocation::Abandoned;
      outcome.abandoned = true;
      ++result.abandoned_jobs;
      ++counters.jobs_abandoned;
      // Checkpointed progress the job banked is sunk work now too.
      const double sunk_ch = (p.run - remaining_run[idx]) *
                             static_cast<double>(p.cores) / 3600.0;
      result.wasted_core_hours += sunk_ch;
      counters.work_lost_core_hours += sunk_ch;
      return;
    }
    ++counters.retries;
    if (config_.fault.retry == fault::RetryPolicy::RequeueFront) {
      auto& queue = queues[p.partition];
      queue.insert(queue.begin(), idx);
      location[idx] = JobLocation::Queued;
      sort_dirty[p.partition] = 1;
      ++total_queued;
    } else {  // Resubmit with exponential backoff
      const double backoff =
          config_.fault.retry_backoff_s *
          std::pow(2.0, static_cast<double>(attempts[idx] - 1));
      retries.push(Retry{now + backoff, idx});
      location[idx] = JobLocation::Retrying;
    }
  };

  // One node state transition. On failure: interrupt running jobs in the
  // partition (youngest-first, a deterministic order) until the failed
  // cores are free, then take them offline. On recovery: return them.
  auto handle_node_event = [&](const fault::NodeEvent& ev) {
    const auto part = static_cast<std::size_t>(ev.partition);
    if (ev.failure) {
      if (cluster.free(part) < ev.cores) {
        std::vector<std::uint32_t> victims;
        victims.reserve(running_by_part[part].size());
        for (const RunningJob& r : running_by_part[part]) {
          victims.push_back(r.index);
        }
        std::sort(victims.begin(), victims.end(),
                  std::greater<std::uint32_t>());
        for (std::uint32_t idx : victims) {
          if (cluster.free(part) >= ev.cores) break;
          interrupt(idx);
        }
      }
      // Up-node cores are free ∪ allocated, so interrupting enough jobs
      // always reclaims the failed node's share.
      if (cluster.free(part) < ev.cores) {
        throw InternalError("node failure exceeds reclaimable capacity");
      }
      cluster.fail(ev.cores, part);
      ++counters.node_failures;
    } else {
      cluster.recover(ev.cores, part);
      ++counters.node_recoveries;
    }
    // Offline capacity changed; the cached planning profile is stale.
    if (profiles[part].profile) ++counters.profile_invalidations;
    profiles[part].profile.reset();
    audit();
  };

  // Main event loop. With faults on, the queue can be non-empty while
  // nothing runs (all cores offline, retries pending), so the loop also
  // keys on retries and queued work; the fault stream itself is infinite
  // and never keeps the loop alive.
  while (next_arrival < pending.size() || !running.empty() ||
         !retries.empty() || (faults_on && total_queued > 0)) {
    double next_time = std::numeric_limits<double>::infinity();
    if (next_arrival < pending.size()) {
      next_time = std::min(next_time, pending[next_arrival].submit);
    }
    if (!running.empty()) next_time = std::min(next_time, running.top().end);
    if (!retries.empty()) next_time = std::min(next_time, retries.top().time);
    if (faults_on) next_time = std::min(next_time, faults->peek()->time);
    now = std::max(now, next_time);

    // Process all completions at or before `now`.
    while (!running.empty() && running.top().end <= now + kEps) {
      const RunningJob r = running.top();
      running.pop();
      // An entry whose epoch is stale describes an execution attempt a
      // node failure already tore down; the teardown in interrupt() was
      // this job's single departure from the running set.
      if (faults_on && epoch[r.index] != r.epoch) continue;
      cluster.release(r.cores, r.partition);
      // Swap-erase the running slot; patch the moved job's handle.
      auto& vec = running_by_part[r.partition];
      const std::uint32_t slot = run_slot[r.index];
      if (slot >= vec.size() || vec[slot].index != r.index) {
        throw InternalError("running-slot handle out of sync");
      }
      vec[slot] = vec.back();
      run_slot[vec[slot].index] = slot;
      vec.pop_back();
      location[r.index] = JobLocation::Finished;
      // A release frees planned capacity the cached profile still holds
      // reserved; it must be rebuilt on next use.
      if (profiles[r.partition].profile) ++counters.profile_invalidations;
      profiles[r.partition].profile.reset();
      result.makespan = std::max(result.makespan, r.end);
      ++counters.completions;
      if (faults_on) {
        result.goodput_core_hours += pending[r.index].run *
                                     static_cast<double>(r.cores) / 3600.0;
      }
      audit();
    }
    // Node failures/recoveries at or before `now` (after completions: a
    // job ending exactly when its node dies is considered done).
    if (faults_on) {
      while (faults->peek()->time <= now + kEps) {
        handle_node_event(faults->pop());
      }
    }
    // Interrupted jobs whose resubmission backoff has elapsed re-enter
    // their queue like fresh arrivals (but keep their original submit
    // time for policy scores and metrics).
    while (!retries.empty() && retries.top().time <= now + kEps) {
      const Retry rt = retries.top();
      retries.pop();
      const PendingJob& p = pending[rt.index];
      queues[p.partition].push_back(rt.index);
      location[rt.index] = JobLocation::Queued;
      sort_dirty[p.partition] = 1;
      ++total_queued;
      audit();
    }
    // Enqueue all arrivals at or before `now`.
    while (next_arrival < pending.size() &&
           pending[next_arrival].submit <= now + kEps) {
      const PendingJob& p = pending[next_arrival];
      queues[p.partition].push_back(p.index);
      location[p.index] = JobLocation::Queued;
      sort_dirty[p.partition] = 1;
      ++total_queued;
      ++next_arrival;
      ++counters.arrivals;
      audit();
    }
    result.max_queue_length = std::max(result.max_queue_length, total_queued);
    schedule_all();
  }

  counters.events = counters.completions + counters.arrivals;
  return result;
}

SimResult simulate(const trace::Trace& trace, const SimConfig& config) {
  auto& registry = obs::Registry::global();
  obs::ScopedTimer timer(registry.histogram(
      "sim.loop_seconds." + std::string(to_string(config.policy))));
  Simulator sim(trace, config);
  SimResult result = sim.run();
  // Publish the event-loop counters; deterministic for deterministic input.
  const SimCounters& c = result.counters;
  registry.counter("sim.events").add(c.events);
  registry.counter("sim.scheduling_passes").add(c.scheduling_passes);
  registry.counter("sim.backfill_attempts").add(c.backfill_attempts);
  registry.counter("sim.backfill_successes").add(c.backfill_successes);
  registry.counter("sim.profile_cache_hits").add(c.profile_cache_hits);
  registry.counter("sim.profile_rebuilds").add(c.profile_rebuilds);
  registry.counter("sim.profile_invalidations").add(c.profile_invalidations);
  if (config.fault.enabled()) {
    // Published only for fault-injected runs so fault-free snapshots stay
    // identical to the pre-fault observability surface.
    registry.counter("sim.node_failures").add(c.node_failures);
    registry.counter("sim.node_recoveries").add(c.node_recoveries);
    registry.counter("sim.jobs_interrupted").add(c.jobs_interrupted);
    registry.counter("sim.retries").add(c.retries);
    registry.counter("sim.jobs_abandoned").add(c.jobs_abandoned);
    registry.gauge("sim.work_lost_core_hours").set(c.work_lost_core_hours);
  }
  return result;
}

}  // namespace lumos::sim
