#include "sim/auditor.hpp"

#include "util/error.hpp"

namespace lumos::sim {

SimAuditor::SimAuditor(SimCounters& counters, std::size_t jobs, bool fatal)
    : counters_(&counters), seen_(jobs, 0), fatal_(fatal) {}

void SimAuditor::fail(const char* what) {
  ++counters_->audit_failures;
  if (fatal_) throw InternalError(std::string("SimAuditor: ") + what);
}

void SimAuditor::check(
    const Cluster& cluster,
    const std::vector<std::vector<std::uint32_t>>& queues,
    const std::vector<std::vector<RunningJob>>& running_by_part,
    std::size_t total_queued) {
  ++counters_->audits;
  std::fill(seen_.begin(), seen_.end(), 0);

  // 1. Core accounting, per partition.
  if (running_by_part.size() != cluster.partitions()) {
    fail("running-set partition count does not match the cluster");
    return;
  }
  for (std::size_t p = 0; p < running_by_part.size(); ++p) {
    std::uint64_t running_cores = 0;
    for (const RunningJob& r : running_by_part[p]) {
      running_cores += r.cores;
      if (r.index >= seen_.size() || seen_[r.index] != 0) {
        fail("job appears in two running sets");
        return;
      }
      seen_[r.index] = 2;
    }
    // Degraded capacity: cores on failed nodes are neither free nor
    // allocated, and the three pools partition the capacity exactly.
    if (cluster.free(p) + cluster.offline(p) > cluster.capacity(p)) {
      fail("free + offline cores exceed partition capacity");
      return;
    }
    if (running_cores != cluster.allocated(p)) {
      fail("allocated cores do not match the sum of running-job cores");
      return;
    }
  }

  // 2 + 3. Queue accounting and queued/running disjointness.
  std::size_t queued = 0;
  for (const auto& queue : queues) {
    queued += queue.size();
    for (std::uint32_t idx : queue) {
      if (idx >= seen_.size()) {
        fail("queued job index out of range");
        return;
      }
      if (seen_[idx] == 2) {
        fail("job is both queued and running");
        return;
      }
      if (seen_[idx] == 1) {
        fail("job is queued twice");
        return;
      }
      seen_[idx] = 1;
    }
  }
  if (queued != total_queued) {
    fail("total_queued does not match the sum of queue sizes");
    return;
  }
}

void SimAuditor::check_profile(const ResourceProfile& cached,
                               const ResourceProfile& rebuilt) {
  ++counters_->audits;
  if (!(cached == rebuilt)) {
    fail("incremental profile diverged from a from-scratch rebuild");
  }
}

}  // namespace lumos::sim
