#include "sim/auditor.hpp"

#include "util/error.hpp"

namespace lumos::sim {

SimAuditor::SimAuditor(SimCounters& counters, std::size_t jobs, bool fatal)
    : counters_(&counters), seen_(jobs, 0), fatal_(fatal) {}

void SimAuditor::fail(const char* what) {
  ++counters_->audit_failures;
  if (fatal_) throw InternalError(std::string("SimAuditor: ") + what);
}

void SimAuditor::check(
    const Cluster& cluster,
    const std::vector<std::vector<std::uint32_t>>& queues,
    const std::vector<std::vector<RunningJob>>& running_by_part,
    std::size_t total_queued, const JobSoA* jobs) {
  ++counters_->audits;
  std::fill(seen_.begin(), seen_.end(), 0);
  const bool hedges = jobs != nullptr && jobs->hedge_enabled();

  // 1. Core accounting, per partition.
  if (running_by_part.size() != cluster.partitions()) {
    fail("running-set partition count does not match the cluster");
    return;
  }
  for (std::size_t p = 0; p < running_by_part.size(); ++p) {
    std::uint64_t running_cores = 0;
    for (const RunningJob& r : running_by_part[p]) {
      running_cores += r.cores;
      if (r.index >= seen_.size()) {
        fail("running job index out of range");
        return;
      }
      if (r.hedge != 0) {
        // 4. A duplicate only exists for a hedge-active job, once.
        if (!hedges || !jobs->hedge_active(r.index)) {
          fail("hedge copy running without hedge-active state");
          return;
        }
        if ((seen_[r.index] & 4) != 0) {
          fail("job has two hedge copies running");
          return;
        }
        seen_[r.index] |= 4;
      } else {
        if ((seen_[r.index] & 2) != 0) {
          fail("job appears in two running sets");
          return;
        }
        seen_[r.index] |= 2;
      }
    }
    // Degraded capacity: cores on failed nodes are neither free nor
    // allocated, and the three pools partition the capacity exactly.
    if (cluster.free(p) + cluster.offline(p) > cluster.capacity(p)) {
      fail("free + offline cores exceed partition capacity");
      return;
    }
    if (running_cores != cluster.allocated(p)) {
      fail("allocated cores do not match the sum of running-job cores");
      return;
    }
  }

  // 2 + 3. Queue accounting and queued/running disjointness.
  std::size_t queued = 0;
  for (const auto& queue : queues) {
    queued += queue.size();
    for (std::uint32_t idx : queue) {
      if (idx >= seen_.size()) {
        fail("queued job index out of range");
        return;
      }
      if ((seen_[idx] & (2 | 4)) != 0) {
        fail("job is both queued and running");
        return;
      }
      if ((seen_[idx] & 1) != 0) {
        fail("job is queued twice");
        return;
      }
      seen_[idx] |= 1;
    }
  }
  if (queued != total_queued) {
    fail("total_queued does not match the sum of queue sizes");
    return;
  }

  // 4. Hedge pairing: both copies of a pair run together — a duplicate
  // without its primary (or a hedge-active job missing either copy) means
  // a cancellation path dropped one side only.
  if (hedges) {
    for (std::size_t i = 0; i < seen_.size(); ++i) {
      if ((seen_[i] & 4) != 0 && (seen_[i] & 2) == 0) {
        fail("hedge copy running without its primary");
        return;
      }
      if (jobs->hedge_active(i) && (seen_[i] & (2 | 4)) != (2 | 4)) {
        fail("hedge-active job missing a running copy");
        return;
      }
    }
  }

  // 5. DAG release: a child never enters the queue (or beyond) while any
  // parent is unfinished, and nothing released still counts unmet parents.
  if (jobs != nullptr && jobs->dag_enabled()) {
    for (std::size_t i = 0; i < seen_.size(); ++i) {
      const JobLocation loc = jobs->location(i);
      const bool past_release =
          loc != JobLocation::NotArrived && loc != JobLocation::Blocked &&
          loc != JobLocation::Abandoned;
      if (past_release && jobs->unmet_parents(i) != 0) {
        fail("released job still counts unmet parents");
        return;
      }
      if (loc == JobLocation::Finished) continue;
      for (const std::uint32_t* c = jobs->children_begin(i);
           c != jobs->children_end(i); ++c) {
        const JobLocation cloc = jobs->location(*c);
        if (cloc != JobLocation::NotArrived && cloc != JobLocation::Blocked &&
            cloc != JobLocation::Abandoned) {
          fail("child started before all parents finished");
          return;
        }
      }
    }
  }
}

void SimAuditor::check_profile(const ResourceProfile& cached,
                               const ResourceProfile& rebuilt) {
  ++counters_->audits;
  if (!(cached == rebuilt)) {
    fail("incremental profile diverged from a from-scratch rebuild");
  }
}

}  // namespace lumos::sim
