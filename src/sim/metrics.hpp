// Scheduling-quality metrics — the paper's Table II columns.
#pragma once

#include <string>

#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace lumos::sim {

struct SimMetrics {
  std::size_t jobs = 0;             ///< jobs that started
  double avg_wait = 0.0;            ///< "wait" (seconds)
  double avg_bounded_slowdown = 0.0;///< "bsld"
  double utilization = 0.0;         ///< "util" in [0,1]
  double violation = 0.0;           ///< mean reservation delay (s) over
                                    ///< jobs whose promise was pushed
  std::size_t violated_jobs = 0;    ///< how many promises were pushed
  double total_violation = 0.0;     ///< summed delay (s)
  double makespan = 0.0;
  std::size_t backfilled_jobs = 0;
  // Fault accounting, copied from the SimResult (all zero fault-free).
  double goodput_core_hours = 0.0;
  double wasted_core_hours = 0.0;
  std::size_t interrupted_jobs = 0;
  std::size_t abandoned_jobs = 0;
  std::size_t hedged_jobs = 0;      ///< distinct jobs that got a duplicate
  SimCounters counters;             ///< event-loop instrumentation,
                                    ///< copied from the SimResult

  [[nodiscard]] std::string to_string() const;
  /// Field-for-field (bit-exact doubles) — used by the sharded-sweep
  /// golden bit-identity tests.
  [[nodiscard]] bool operator==(const SimMetrics&) const = default;
};

/// Computes metrics for a finished simulation of `trace`.
/// `bsld_bound` must match the config used for the run (default 10 s).
[[nodiscard]] SimMetrics compute_metrics(const trace::Trace& trace,
                                         const SimResult& result,
                                         double bsld_bound = 10.0);

}  // namespace lumos::sim
