// Event-loop invariant auditor.
//
// In audit mode the simulator calls `check` after every event (completion,
// arrival, scheduling round) to assert the core-accounting invariants the
// indexed event loop must preserve:
//
//  1. Core accounting: for every partition, the cores the Cluster reports
//     allocated equal the sum of cores of the jobs recorded as running
//     there. Under fault injection, `allocated` excludes offline cores —
//     cores on failed nodes are neither free nor allocated, and
//     free + offline never exceeds capacity.
//  2. Queue accounting: the loop's `total_queued` tally equals the sum of
//     the per-partition queue sizes, with no job queued twice.
//  3. Disjointness: no job index appears both in a waiting queue and in a
//     running set (or in two running sets). Together with the running-slot
//     handle check in the event loop (and the interruption-epoch staleness
//     check on the completion heap) this enforces that an interrupted job
//     leaves the running set exactly once.
//  4. Hedge pairing (when hedge lanes are built): a duplicate copy runs
//     only while its primary runs and its job's hedge-active flag is set,
//     at most one duplicate per job, and every hedge-active job has both
//     copies in the running set — a pair is never counted as two jobs.
//  5. DAG release (when precedence lanes are built): no child is queued,
//     running, or finished while any of its parents is unfinished, and
//     every released job's unmet-parent count is zero.
//
// `check_profile` additionally asserts that an incrementally maintained
// availability profile is identical to a from-scratch rebuild — the proof
// obligation for the profile cache.
//
// Violations increment `SimCounters::audit_failures`; in fatal mode
// (default) the first violation throws InternalError.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/job_soa.hpp"
#include "sim/profile.hpp"
#include "sim/simulator.hpp"

namespace lumos::sim {

class SimAuditor {
 public:
  /// `jobs` bounds the job-index space; `fatal` selects throw-on-failure.
  SimAuditor(SimCounters& counters, std::size_t jobs, bool fatal = true);

  /// Asserts invariants 1–3 over the current event-loop state; with a
  /// JobSoA whose hedge/DAG lanes are built, also invariants 4–5.
  void check(const Cluster& cluster,
             const std::vector<std::vector<std::uint32_t>>& queues,
             const std::vector<std::vector<RunningJob>>& running_by_part,
             std::size_t total_queued, const JobSoA* jobs = nullptr);

  /// Asserts that the cached profile matches a from-scratch rebuild.
  void check_profile(const ResourceProfile& cached,
                     const ResourceProfile& rebuilt);

 private:
  void fail(const char* what);

  SimCounters* counters_;
  /// Scratch bitmask per job: 1 = queued, 2 = primary running, 4 =
  /// duplicate (hedge copy) running.
  std::vector<std::uint8_t> seen_;
  bool fatal_;
};

}  // namespace lumos::sim
