#include "sim/sweep.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace lumos::sim {

SweepOutcome sweep_shards(std::span<const trace::Trace> traces,
                          std::span<const SweepPoint> points,
                          const SweepOptions& options) {
  LUMOS_REQUIRE(options.repeats > 0, "sweep_shards requires repeats >= 1");
  // Validate every point before any work is fanned out: a bad point
  // fails identically no matter how many threads run the good ones.
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].trace_index >= traces.size()) {
      throw InvalidArgument("sweep point '" + points[i].label +
                            "' references trace index " +
                            std::to_string(points[i].trace_index) +
                            " but only " + std::to_string(traces.size()) +
                            " traces were provided");
    }
  }

  SweepOutcome outcome;
  outcome.shards.resize(points.size());
  if (!points.empty()) {
    util::ThreadPool pool(options.threads);
    pool.parallel_for(0, points.size(), [&](std::size_t i) {
      const SweepPoint& point = points[i];
      const trace::Trace& trace = traces[point.trace_index];
      // Private registry per shard: the sim's counter publication goes
      // here and nowhere else, so shards cannot race on instruments and
      // the counters in this shard's snapshot are exactly this run's.
      obs::Registry registry;
      ShardOutcome& shard = outcome.shards[i];
      for (std::size_t rep = 0; rep < options.repeats; ++rep) {
        shard.result = simulate(trace, point.config, registry);
      }
      shard.metrics =
          compute_metrics(trace, shard.result, point.config.bsld_bound);
      shard.observability = registry.snapshot();
    });
  }

  // Merge in shard-index order — NOT completion order — so the combined
  // snapshot is a pure function of the inputs.
  obs::Registry merged;
  for (const ShardOutcome& shard : outcome.shards) {
    merged.merge(shard.observability);
  }
  outcome.merged = merged.snapshot();
  return outcome;
}

}  // namespace lumos::sim
