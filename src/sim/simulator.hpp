// Discrete-event cluster scheduling simulator (the SchedGym substitute).
//
// Replays a trace's submissions (submit time, cores, runtime, walltime
// request) against a Cluster, making scheduling decisions with a queue
// policy plus a backfill strategy, and reports the paper's four Table II
// metrics: average wait, average bounded slowdown, utilization, and
// reservation-violation delay.
//
// Semantics (matching SWF-replay simulators like SchedGym):
//  * Jobs are rigid: `cores` held for exactly `run_time` seconds.
//  * Planning uses the walltime request (`requested_time`); execution uses
//    the actual runtime. Traces without walltime requests fall back to the
//    oracle runtime for planning (flagged in the result).
//  * EASY reservation: when the queue head cannot start, it is promised the
//    earliest start computed from running jobs' *planned* ends. A job's
//    first such promise is its reservation; `violation` measures how far
//    relaxed backfilling pushed actual starts past first reservations.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "sim/backfill.hpp"
#include "sim/cluster.hpp"
#include "sim/event_queue.hpp"
#include "sim/policy.hpp"
#include "trace/trace.hpp"

namespace lumos::obs {
class Registry;
}  // namespace lumos::obs

namespace lumos::sim {

/// Straggler-mitigation by hedged duplicate launches (DESIGN.md §4h).
/// When a running job's elapsed time exceeds `threshold` times its
/// planned (requested/oracle) runtime, the scheduler launches a duplicate
/// copy on the same partition if the cores are free. First finish wins;
/// the loser is cancelled, its cores freed exactly once and its burned
/// core-hours accounted as waste. Disabled (threshold 0) runs are
/// bit-identical to the pre-hedging simulator.
struct HedgeConfig {
  /// Launch a duplicate once elapsed > threshold * planned. 0 disables.
  double threshold = 0.0;
  /// Jobs with planned runtime below this never hedge (duplicating tiny
  /// jobs wastes cores for no tail benefit).
  double min_planned_s = 0.0;
  [[nodiscard]] bool enabled() const noexcept { return threshold > 0.0; }
};

struct SimConfig {
  PolicyKind policy = PolicyKind::Fcfs;
  BackfillConfig backfill;
  /// Bounded-slowdown interactive threshold (Feitelson), seconds.
  double bsld_bound = 10.0;
  /// Record the queue-length time series (one sample per scheduling pass).
  bool record_queue_series = false;
  /// EMA smoothing for the expected-wait reference used by relaxed
  /// backfilling allowances.
  double wait_ema_alpha = 0.01;
  /// Run the SimAuditor after every event: core accounting, queue
  /// accounting, queued/running disjointness, and incremental-profile
  /// equivalence (see DESIGN.md "Event-loop invariants"). Costs O(state)
  /// per event — for tests and debugging, not production sweeps.
  bool audit = false;
  /// When auditing, throw InternalError on the first violated invariant
  /// (otherwise violations are only counted in `counters.audit_failures`).
  bool audit_fatal = true;
  /// Node failure/recovery injection (see src/fault/fault.hpp). The
  /// default is disabled, and a disabled config leaves every result field
  /// and counter bit-identical to the fault-free simulator.
  fault::FaultConfig fault;
  /// Future-event queue backend. Both backends honour the same explicit
  /// `event_before` total order (sim/event_queue.hpp), so results are
  /// bit-identical; Calendar is O(1) amortised per event, Heap is the
  /// reference fallback.
  EventQueueKind event_queue = EventQueueKind::Calendar;
  /// Straggler hedging (see HedgeConfig). Disabled by default; a disabled
  /// config leaves every result field and counter bit-identical to the
  /// pre-hedging simulator.
  HedgeConfig hedge;
};

/// Event-loop instrumentation, surfaced through SimResult. All counters
/// are maintained unconditionally (they are O(1) increments); audit
/// counters stay zero unless `SimConfig::audit` is set.
struct SimCounters {
  std::uint64_t events = 0;            ///< completions + arrivals
  std::uint64_t completions = 0;
  std::uint64_t arrivals = 0;
  /// Distinct event timestamps processed: every event at one simulated
  /// instant is drained in one batch that triggers a single scheduling
  /// round, so events/event_batches measures how much work batching saves.
  std::uint64_t event_batches = 0;
  std::uint64_t scheduling_passes = 0; ///< per-partition pass invocations
  std::uint64_t sort_invocations = 0;  ///< policy re-sorts actually run
  std::uint64_t profile_rebuilds = 0;  ///< from-scratch profile builds
  std::uint64_t profile_cache_hits = 0;///< passes served by the cache
  std::uint64_t profile_invalidations = 0; ///< cached profiles dropped
  std::uint64_t backfill_attempts = 0; ///< non-head candidates examined
  std::uint64_t backfill_successes = 0;///< candidates started out of order
  std::uint64_t audits = 0;            ///< auditor checks performed
  std::uint64_t audit_failures = 0;    ///< violated invariants observed
  // Fault injection (all zero when SimConfig::fault is disabled).
  std::uint64_t node_failures = 0;     ///< node-down events processed
  std::uint64_t node_recoveries = 0;   ///< node-up events processed
  std::uint64_t jobs_interrupted = 0;  ///< interruptions (job may repeat)
  std::uint64_t retries = 0;           ///< resubmissions + requeues
  std::uint64_t jobs_abandoned = 0;    ///< jobs that exhausted retries
  double work_lost_core_hours = 0.0;   ///< progress discarded by faults
  // DAG + hedging (all zero for edge-free traces with hedging disabled).
  std::uint64_t dag_releases = 0;      ///< blocked jobs released by a parent
  std::uint64_t dag_abandoned = 0;     ///< descendants of dead parents
  std::uint64_t events_cancelled = 0;  ///< event-queue tombstones consumed
  std::uint64_t hedges_launched = 0;   ///< duplicate copies started
  std::uint64_t hedges_won = 0;        ///< duplicates that beat the primary
  std::uint64_t hedges_cancelled = 0;  ///< losing copies torn down
  double hedge_wasted_core_hours = 0.0;///< losers' burned core-hours
  [[nodiscard]] bool operator==(const SimCounters&) const = default;
};

/// A job currently executing — event-loop state, exposed so the
/// SimAuditor can cross-check running-set accounting against the Cluster.
struct RunningJob {
  double end = 0.0;          ///< actual completion time
  double planned_end = 0.0;  ///< scheduler-visible completion time
  std::uint64_t cores = 0;
  std::size_t partition = 0;
  std::uint32_t index = 0;
  /// Interruption generation at start; a queue entry whose epoch is stale
  /// belongs to an execution attempt a node failure already tore down.
  std::uint32_t epoch = 0;
  /// 1 for a hedged duplicate copy, 0 for the primary.
  std::uint8_t hedge = 0;
  /// Completion-event ordering key: (end, Finish, index, 2*epoch+hedge)
  /// under `event_before` — same-instant completions drain in job-index
  /// order, and a primary beats its duplicate at the exact same end.
  [[nodiscard]] EventKey key() const noexcept {
    return {end, EventKind::Finish, index, 2 * epoch + hedge};
  }
};

/// Outcome for one job, index-aligned with the input trace.
struct JobOutcome {
  double start_time = -1.0;          ///< -1 = never started (oversized)
  double finish_time = -1.0;         ///< winner's completion (-1 = none)
  double first_reservation = -1.0;   ///< -1 = never needed a reservation
  bool backfilled = false;           ///< started ahead of the queue head
  std::uint32_t interruptions = 0;   ///< node-failure interruptions
  bool abandoned = false;            ///< gave up after exhausting retries
  bool hedged = false;               ///< a duplicate copy was launched
  bool hedge_won = false;            ///< the duplicate finished first
  [[nodiscard]] bool started() const noexcept { return start_time >= 0.0; }
  /// Positive when a relaxed backfill pushed this job past its promise.
  [[nodiscard]] double reservation_delay() const noexcept {
    if (first_reservation < 0.0 || start_time < 0.0) return 0.0;
    const double d = start_time - first_reservation;
    return d > 1e-6 ? d : 0.0;
  }
  [[nodiscard]] bool operator==(const JobOutcome&) const = default;
};

struct QueueSample {
  double time = 0.0;
  std::uint32_t length = 0;
  [[nodiscard]] bool operator==(const QueueSample&) const = default;
};

struct SimResult {
  std::vector<JobOutcome> outcomes;     ///< per input-trace job
  std::vector<QueueSample> queue_series;
  std::size_t max_queue_length = 0;
  std::size_t backfilled_jobs = 0;
  std::size_t skipped_oversized = 0;    ///< jobs larger than any partition
  double makespan = 0.0;                ///< last completion time
  bool used_oracle_runtimes = false;    ///< trace lacked walltime requests
  // Fault accounting (zero in the fault-free world). Goodput is the
  // core-hours of completed useful work; waste is progress a failure
  // rolled back (plus everything an abandoned job had consumed).
  double goodput_core_hours = 0.0;
  double wasted_core_hours = 0.0;
  std::size_t interrupted_jobs = 0;     ///< distinct jobs interrupted
  std::size_t abandoned_jobs = 0;
  std::size_t hedged_jobs = 0;          ///< distinct jobs that got a duplicate
  SimCounters counters;                 ///< event-loop instrumentation
  /// Field-for-field (bit-exact for doubles) — the backend-equivalence
  /// and shard-identity tests compare entire results with this.
  [[nodiscard]] bool operator==(const SimResult&) const = default;
};

class Simulator {
 public:
  Simulator(const trace::Trace& trace, SimConfig config);

  /// Runs to completion. Deterministic for a given (trace, config).
  [[nodiscard]] SimResult run();

 private:
  const trace::Trace& trace_;
  SimConfig config_;
};

/// Convenience wrapper: simulate, publishing event-loop counters to the
/// global obs registry (metrics are computed separately via
/// sim::compute_metrics).
[[nodiscard]] SimResult simulate(const trace::Trace& trace,
                                 const SimConfig& config);

/// As above, but publishing into `registry` — sweep shards thread a
/// private registry through here so counters come from the registry
/// actually wired into the run, never a global one mutated by whoever
/// ran last.
[[nodiscard]] SimResult simulate(const trace::Trace& trace,
                                 const SimConfig& config,
                                 obs::Registry& registry);

}  // namespace lumos::sim
