// obs::Report — the structured result of one bench harness run.
//
// A Report separates what is *deterministic* from what is not, and the
// bench runner's `--verify` mode depends on that split:
//   metrics       — domain numbers (medians, shares, improvements) that a
//                   same-seed rerun must reproduce bit-for-bit. These are
//                   the values docs/FIGURES.md documents per harness.
//   wall_seconds  — harness wall-clock time; never compared.
//   observability — the registry snapshot taken after the harness ran
//                   (counters are deterministic, gauge/histogram timings
//                   are not; the runner only compares counters).
//
// `to_json()` emits the per-harness entry of the BENCH_results.json
// schema described in DESIGN.md ("Observability").
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace lumos::obs {

struct Report {
  /// Harness name, e.g. "fig4_waiting"; keys the runner's JSON object.
  std::string harness;
  /// Paper artefact this reproduces, e.g. "Figure 4" or "Table 2".
  std::string figure;
  /// Wall-clock seconds for the run (excluded from determinism checks).
  double wall_seconds = 0.0;
  /// Deterministic domain metrics; same seed => same values.
  std::map<std::string, double> metrics;
  /// Registry snapshot scoped to this harness (runner resets in between).
  Snapshot observability;

  /// Records a metric, overwriting any previous value under `key`.
  void set(std::string_view key, double value);

  /// The per-harness JSON entry: {figure, wall_seconds, metrics,
  /// counters, gauges, histograms}.
  [[nodiscard]] Json to_json() const;

  /// Rebuilds the deterministic fields (figure, wall_seconds, metrics)
  /// from a per-harness JSON entry — the inverse of to_json() for what
  /// the supervised bench runner validates. The observability snapshot is
  /// NOT reconstructed (the supervisor folds the child's JSON in
  /// verbatim). Throws lumos::InvalidArgument on kind mismatches.
  [[nodiscard]] static Report from_json(std::string harness,
                                        const Json& entry);
};

}  // namespace lumos::obs
