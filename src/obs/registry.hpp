// lumos::obs — named metrics behind a process-wide, thread-safe registry.
//
// Three instrument kinds, matching what the bench trajectory needs:
//   Counter   — monotonically increasing uint64 (events processed, cache
//               hits, jobs emitted). Relaxed atomic increments; totals are
//               deterministic for deterministic work.
//   Gauge     — last-written double (high-water marks, configuration
//               echoes). Not compared across runs: a gauge may depend on
//               thread scheduling (e.g. queue-depth high-water marks).
//   Histogram — fixed log-scale buckets over positive doubles, plus
//               count/sum/min/max. Used for wall-clock timings via
//               ScopedTimer, so its contents are *not* deterministic and
//               are exported under "timings"-style sections, never under
//               domain metrics.
//
// Thread-safety contract: instrument handles returned by the registry are
// valid for the registry's lifetime and individually thread-safe (all
// mutation is lock-free atomics). Registry lookup/creation, snapshot(),
// and reset() serialise on an internal mutex (annotated for Clang's
// -Wthread-safety via util/annotations.hpp). snapshot() while writers are
// active is safe but yields a momentary view; the bench runner snapshots
// only between harnesses.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.hpp"

namespace lumos::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (not monotone, not deterministic across runs when
/// written from worker threads — see the header comment).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if above the current value (high-water mark).
  void set_max(double v) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> value_{0.0};
};

/// Fixed log-scale histogram: bucket i spans [kBase*2^i, kBase*2^(i+1)),
/// with underflow folded into bucket 0 and overflow into the last bucket.
/// kBase = 1 microsecond puts timer observations from ~1 us to ~4.5 years
/// inside the scale.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;
  static constexpr double kBase = 1e-6;

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Lower bound of bucket i (kBase * 2^i).
  [[nodiscard]] static double bucket_bound(std::size_t i) noexcept;
  /// Bucket index for a value (what observe() increments).
  [[nodiscard]] static std::size_t bucket_index(double v) noexcept;

 private:
  friend class Registry;
  void reset() noexcept;
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// ------------------------------------------------------------ snapshots --

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
  [[nodiscard]] bool operator==(const CounterSample&) const = default;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
  [[nodiscard]] bool operator==(const GaugeSample&) const = default;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// (bucket lower bound, count) for the non-empty buckets only.
  std::vector<std::pair<double, std::uint64_t>> buckets;
  [[nodiscard]] bool operator==(const HistogramSample&) const = default;
};

/// Point-in-time copy of every registered instrument, name-sorted.
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

// ------------------------------------------------------------- registry --

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates the named instrument. The returned reference stays
  /// valid (and addresses stable) for the registry's lifetime, including
  /// across reset(). Hot paths should hold the reference, not re-look-up.
  [[nodiscard]] Counter& counter(std::string_view name) LUMOS_EXCLUDES(mutex_);
  [[nodiscard]] Gauge& gauge(std::string_view name) LUMOS_EXCLUDES(mutex_);
  [[nodiscard]] Histogram& histogram(std::string_view name)
      LUMOS_EXCLUDES(mutex_);

  /// Copies every instrument's current value, sorted by name.
  [[nodiscard]] Snapshot snapshot() const LUMOS_EXCLUDES(mutex_);

  /// Zeroes every instrument (names and handles survive). Note that a
  /// zeroed instrument still appears in snapshots: a consumer that needs
  /// sections to contain only instruments actually touched since the
  /// boundary must use clear() instead.
  void reset() LUMOS_EXCLUDES(mutex_);

  /// Removes every instrument — names, values, AND handles. Any
  /// previously returned Counter/Gauge/Histogram reference is dangling
  /// afterwards, so callers own a quiescence precondition: no concurrent
  /// writer may hold a handle across clear(). The bench runner calls this
  /// between harnesses so a section never inherits zero-valued ghosts of
  /// another harness's instruments (a stale `sim.events: 0` in a harness
  /// that never ran the simulator reads as a broken counter pipeline).
  void clear() LUMOS_EXCLUDES(mutex_);

  /// Folds a snapshot into this registry: counters add, gauges are
  /// overwritten (last merge wins), histograms accumulate buckets,
  /// count, sum, and min/max. Instruments missing here are created.
  /// Merging shard snapshots in a fixed order (shard index, not
  /// completion order) makes the combined registry deterministic; see
  /// sim::sweep_shards.
  void merge(const Snapshot& snap) LUMOS_EXCLUDES(mutex_);

  /// The process-wide registry the library layers write into.
  [[nodiscard]] static Registry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      LUMOS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      LUMOS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      LUMOS_GUARDED_BY(mutex_);
};

// ---------------------------------------------------------------- timer --

/// RAII wall-clock timer: observes the elapsed seconds into a Histogram
/// when it goes out of scope. Move-only; `cancel()` discards the sample.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) noexcept;
  /// Convenience: times into `Registry::global().histogram(name)`.
  explicit ScopedTimer(std::string_view name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Discards the pending observation.
  void cancel() noexcept { hist_ = nullptr; }
  /// Seconds since construction (the value a destructor now would record).
  [[nodiscard]] double elapsed_seconds() const noexcept;

 private:
  Histogram* hist_;
  std::int64_t start_ns_;
};

}  // namespace lumos::obs
