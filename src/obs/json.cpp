#include "obs/json.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "util/failpoint.hpp"
#include "util/error.hpp"

namespace lumos::obs {

namespace {

[[noreturn]] void fail(std::string_view what, std::size_t offset) {
  throw InvalidArgument("json: " + std::string(what) + " at offset " +
                              std::to_string(offset));
}

void write_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; emit null so documents always re-parse.
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
  // Keep doubles recognisable as doubles on re-parse.
  if (out.find_first_of(".eE", out.size() - (res.ptr - buf)) ==
      std::string::npos) {
    out += ".0";
  }
}

}  // namespace

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object) {
    throw InvalidArgument("json: operator[] on a non-object");
  }
  return object_[key];
}

const Json* Json::find(std::string_view key) const noexcept {
  if (kind_ != Kind::Object) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

void Json::push_back(Json value) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  if (kind_ != Kind::Array) {
    throw InvalidArgument("json: push_back on a non-array");
  }
  array_.push_back(std::move(value));
}

bool Json::as_bool() const {
  if (kind_ != Kind::Bool) throw InvalidArgument("json: not a bool");
  return bool_;
}

std::int64_t Json::as_int() const {
  if (kind_ != Kind::Int) throw InvalidArgument("json: not an int");
  return int_;
}

double Json::as_double() const {
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  if (kind_ == Kind::Double) return double_;
  throw InvalidArgument("json: not a number");
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::String) throw InvalidArgument("json: not a string");
  return string_;
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::Array) throw InvalidArgument("json: not an array");
  return array_;
}

const std::map<std::string, Json>& Json::entries() const {
  if (kind_ != Kind::Object) {
    throw InvalidArgument("json: not an object");
  }
  return object_;
}

bool Json::operator==(const Json& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::Null: return true;
    case Kind::Bool: return bool_ == other.bool_;
    case Kind::Int: return int_ == other.int_;
    case Kind::Double: return double_ == other.double_;
    case Kind::String: return string_ == other.string_;
    case Kind::Array: return array_ == other.array_;
    case Kind::Object: return object_ == other.object_;
  }
  return false;
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d),
               ' ');
  };
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Int: out += std::to_string(int_); break;
    case Kind::Double: write_double(out, double_); break;
    case Kind::String: write_escaped(out, string_); break;
    case Kind::Array: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      bool first = true;
      for (const auto& v : array_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        v.write(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Kind::Object: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        write_escaped(out, key);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        value.write(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

// ----------------------------------------------------------------- parse --

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters", pos_);
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'", pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal", pos_);
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal", pos_);
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal", pos_);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}'", pos_ - 1);
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']'", pos_ - 1);
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string", pos_ - 1);
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape", pos_);
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape", pos_);
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape", pos_ - 1);
            }
          }
          // Encode the code point as UTF-8 (surrogate pairs unsupported —
          // the exporter never emits them; reject rather than corrupt).
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate \\u escapes are not supported", pos_ - 6);
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          } else {
            out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
            out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          }
          break;
        }
        default: fail("invalid escape", pos_ - 1);
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (is_double) {
      double v = 0.0;
      const auto res = std::from_chars(token.begin(), token.end(), v);
      if (res.ec != std::errc() || res.ptr != token.end()) {
        fail("invalid number", start);
      }
      return Json(v);
    }
    std::int64_t v = 0;
    const auto res = std::from_chars(token.begin(), token.end(), v);
    if (res.ec != std::errc() || res.ptr != token.end()) {
      fail("invalid number", start);
    }
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

// ------------------------------------------------------- snapshot export --

Json to_json(const Snapshot& snapshot) {
  Json out = Json::object();
  Json counters = Json::object();
  for (const auto& c : snapshot.counters) counters[c.name] = c.value;
  out["counters"] = std::move(counters);
  Json gauges = Json::object();
  for (const auto& g : snapshot.gauges) gauges[g.name] = g.value;
  out["gauges"] = std::move(gauges);
  Json histograms = Json::object();
  for (const auto& h : snapshot.histograms) {
    Json entry = Json::object();
    entry["count"] = h.count;
    entry["sum"] = h.sum;
    entry["mean"] = h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
    entry["min"] = h.min;
    entry["max"] = h.max;
    Json buckets = Json::array();
    for (const auto& [bound, count] : h.buckets) {
      Json bucket = Json::object();
      bucket["le"] = bound;
      bucket["n"] = count;
      buckets.push_back(std::move(bucket));
    }
    entry["buckets"] = std::move(buckets);
    histograms[h.name] = std::move(entry);
  }
  out["histograms"] = std::move(histograms);
  return out;
}

void write_json(const Json& json, const std::string& path) {
  LUMOS_FAILPOINT("obs.write_json");
  const std::string text = json.dump(2) + "\n";
  if (path == "-") {
    std::cout << text;
    return;
  }
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    throw InvalidArgument("json: cannot open for writing: " + path);
  }
  file << text;
  if (!file.good()) {
    throw InvalidArgument("json: write failed: " + path);
  }
}

void write_json_atomic(const Json& json, const std::string& path) {
  LUMOS_FAILPOINT("obs.write_json");
  const std::string text = json.dump(2) + "\n";
  if (path == "-") {
    std::cout << text;
    return;
  }
  // The temp file lives next to the target so rename(2) never crosses a
  // filesystem boundary (cross-device rename is copy+delete, not atomic).
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw InvalidArgument("json: cannot open for writing: " + tmp);
  }
  const auto fail_and_cleanup = [&](const std::string& what) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw InvalidArgument("json: " + what + ": " + tmp);
  };
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_and_cleanup("write failed");
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) fail_and_cleanup("fsync failed");
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw InvalidArgument("json: close failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw InvalidArgument("json: rename failed: " + tmp + " -> " + path);
  }
  // Make the rename itself durable; best-effort (some filesystems refuse
  // directory fsync, and the data is already safe in the file).
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace lumos::obs
