#include "obs/report.hpp"

namespace lumos::obs {

void Report::set(std::string_view key, double value) {
  metrics[std::string(key)] = value;
}

Json Report::to_json() const {
  Json entry = Json::object();
  entry["figure"] = figure;
  entry["wall_seconds"] = wall_seconds;
  Json metrics_json = Json::object();
  for (const auto& [key, value] : metrics) metrics_json[key] = value;
  entry["metrics"] = std::move(metrics_json);
  // Observability sections only when instruments were touched — a harness
  // without counters serialises as plain {figure, wall_seconds, metrics}.
  const Json snap = obs::to_json(observability);
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const Json* value = snap.find(section);
    if (value != nullptr && !value->entries().empty()) {
      entry[section] = *value;
    }
  }
  return entry;
}

}  // namespace lumos::obs
