#include "obs/report.hpp"

namespace lumos::obs {

void Report::set(std::string_view key, double value) {
  metrics[std::string(key)] = value;
}

Json Report::to_json() const {
  Json entry = Json::object();
  entry["figure"] = figure;
  entry["wall_seconds"] = wall_seconds;
  Json metrics_json = Json::object();
  for (const auto& [key, value] : metrics) metrics_json[key] = value;
  entry["metrics"] = std::move(metrics_json);
  // Observability sections only when instruments were touched — a harness
  // without counters serialises as plain {figure, wall_seconds, metrics}.
  const Json snap = obs::to_json(observability);
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const Json* value = snap.find(section);
    if (value != nullptr && !value->entries().empty()) {
      entry[section] = *value;
    }
  }
  return entry;
}

Report Report::from_json(std::string harness, const Json& entry) {
  Report report;
  report.harness = std::move(harness);
  if (const Json* figure = entry.find("figure")) {
    report.figure = figure->as_string();
  }
  if (const Json* wall = entry.find("wall_seconds")) {
    report.wall_seconds = wall->as_double();
  }
  if (const Json* metrics = entry.find("metrics")) {
    for (const auto& [key, value] : metrics->entries()) {
      report.metrics[key] = value.as_double();
    }
  }
  return report;
}

}  // namespace lumos::obs
