#include "obs/registry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace lumos::obs {

namespace {

/// CAS add for atomic<double>: portable across libstdc++ versions that
/// predate P0020 fetch_add on floating atomics.
void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------- gauge --

void Gauge::set_max(double v) noexcept { atomic_max(value_, v); }

// ------------------------------------------------------------ histogram --

void Histogram::observe(double v) noexcept {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  if (n == 0) {
    // First observation seeds min/max; concurrent first observations still
    // converge through the CAS loops below.
    double expected = 0.0;
    min_.compare_exchange_strong(expected, v, std::memory_order_relaxed);
    expected = 0.0;
    max_.compare_exchange_strong(expected, v, std::memory_order_relaxed);
  }
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}
double Histogram::min() const noexcept {
  return min_.load(std::memory_order_relaxed);
}
double Histogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::bucket_bound(std::size_t i) noexcept {
  return kBase * std::ldexp(1.0, static_cast<int>(i));
}

std::size_t Histogram::bucket_index(double v) noexcept {
  if (!(v > kBase)) return 0;  // also catches NaN and non-positive values
  const int exp = static_cast<int>(std::floor(std::log2(v / kBase)));
  if (exp < 0) return 0;
  return std::min<std::size_t>(static_cast<std::size_t>(exp), kBuckets - 1);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// ------------------------------------------------------------- registry --

namespace {

template <typename T>
T& find_or_create(std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
                  std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  util::ScopedLock lock(mutex_);
  return find_or_create(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  util::ScopedLock lock(mutex_);
  return find_or_create(gauges_, name);
}

Histogram& Registry::histogram(std::string_view name) {
  util::ScopedLock lock(mutex_);
  return find_or_create(histograms_, name);
}

Snapshot Registry::snapshot() const {
  util::ScopedLock lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n > 0) s.buckets.emplace_back(Histogram::bucket_bound(i), n);
    }
    snap.histograms.push_back(std::move(s));
  }
  return snap;  // std::map iteration is already name-sorted
}

void Registry::reset() {
  util::ScopedLock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void Registry::clear() {
  util::ScopedLock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void Registry::merge(const Snapshot& snap) {
  util::ScopedLock lock(mutex_);
  for (const auto& s : snap.counters) {
    find_or_create(counters_, s.name).add(s.value);
  }
  for (const auto& s : snap.gauges) {
    find_or_create(gauges_, s.name).set(s.value);
  }
  for (const auto& s : snap.histograms) {
    Histogram& h = find_or_create(histograms_, s.name);
    for (const auto& [bound, n] : s.buckets) {
      h.buckets_[Histogram::bucket_index(bound)].fetch_add(
          n, std::memory_order_relaxed);
    }
    const std::uint64_t before =
        h.count_.fetch_add(s.count, std::memory_order_relaxed);
    atomic_add(h.sum_, s.sum);
    if (s.count > 0) {
      if (before == 0) {
        // Seeding an empty histogram: adopt the snapshot's extrema
        // (min 0.0 would otherwise be unbeatable for positive samples).
        h.min_.store(s.min, std::memory_order_relaxed);
        h.max_.store(s.max, std::memory_order_relaxed);
      } else {
        atomic_min(h.min_, s.min);
        atomic_max(h.max_, s.max);
      }
    }
  }
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

// ---------------------------------------------------------------- timer --

ScopedTimer::ScopedTimer(Histogram& hist) noexcept
    : hist_(&hist), start_ns_(now_ns()) {}

ScopedTimer::ScopedTimer(std::string_view name)
    : hist_(&Registry::global().histogram(name)), start_ns_(now_ns()) {}

ScopedTimer::~ScopedTimer() {
  if (hist_ != nullptr) hist_->observe(elapsed_seconds());
}

double ScopedTimer::elapsed_seconds() const noexcept {
  return static_cast<double>(now_ns() - start_ns_) * 1e-9;
}

}  // namespace lumos::obs
