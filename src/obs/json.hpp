// Minimal JSON document model for the observability exporter — no
// external dependencies, by design.
//
// `Json` is a tagged value (null / bool / int / double / string / array /
// object) with a writer and a recursive-descent parser. The writer is
// *stable*: object keys serialise in sorted order and doubles use
// shortest-round-trip formatting (std::to_chars), so two runs producing
// the same values produce byte-identical documents — the property the
// bench trajectory and its golden tests rely on. The parser accepts
// strict JSON (RFC 8259) and throws lumos::InvalidArgument with a byte
// offset on malformed input; parse(dump(x)) == x for every value this
// module can produce.
//
// `to_json(Snapshot)` maps a registry snapshot onto the documented schema
// (DESIGN.md "Observability"): counters/gauges as flat objects, histograms
// as {count, sum, mean, min, max, buckets}.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.hpp"

namespace lumos::obs {

class Json {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Json() = default;  // null
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(int v) : kind_(Kind::Int), int_(v) {}
  Json(std::int64_t v) : kind_(Kind::Int), int_(v) {}
  Json(std::uint64_t v) : kind_(Kind::Int), int_(static_cast<std::int64_t>(v)) {}
  Json(double v) : kind_(Kind::Double), double_(v) {}
  Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  Json(std::string_view s) : kind_(Kind::String), string_(s) {}
  Json(const char* s) : kind_(Kind::String), string_(s) {}

  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::Int || kind_ == Kind::Double;
  }

  /// Object element access; inserts null on first touch (object-only).
  Json& operator[](const std::string& key);
  /// Lookup without insertion; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  /// Appends to an array (array-only).
  void push_back(Json value);

  // Checked accessors — throw lumos::InvalidArgument on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  /// Numeric value of Int or Double.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& items() const;
  [[nodiscard]] const std::map<std::string, Json>& entries() const;

  [[nodiscard]] bool operator==(const Json& other) const;

  /// Serialises. indent < 0 → compact one-line form; indent >= 0 →
  /// pretty-printed with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Parses a complete JSON document (rejects trailing garbage).
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

/// Registry snapshot → schema'd JSON (see the header comment).
[[nodiscard]] Json to_json(const Snapshot& snapshot);

/// Writes `dump(json, indent=2)` plus a trailing newline to `path`;
/// "-" selects stdout. Throws lumos::InvalidArgument on I/O failure.
void write_json(const Json& json, const std::string& path);

/// Crash-safe variant of write_json: writes to a same-directory temp file,
/// fsyncs it, renames it over `path`, and fsyncs the directory, so a kill
/// at any instant leaves either the old document or the new one — never a
/// truncated file. "-" falls back to plain stdout output. Shares the
/// `obs.write_json` failpoint with write_json. Throws
/// lumos::InvalidArgument on I/O failure (the temp file is removed).
void write_json_atomic(const Json& json, const std::string& path);

}  // namespace lumos::obs
