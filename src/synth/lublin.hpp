// The Lublin–Feitelson (JPDC'03) rigid-job workload model — the classic
// statistical model the paper cites as [25] — implemented as an alternative
// generator.
//
// Serving two purposes:
//  * a community-standard baseline workload for the scheduling simulator;
//  * an ablation foil: Lublin's model predates DL clusters, so comparing
//    its output against the paper-calibrated generators shows exactly
//    which modern shapes (1-GPU dominance, sub-minute runtimes, burst
//    arrivals, long-job core-hour domination) the classic model misses —
//    the paper's core argument that pre-2017 characterizations are stale.
//
// Components follow the published model's structure (with the published
// default parameters):
//  * job size: probability p of serial; parallel sizes two-stage uniform
//    over powers of two (log2 sizes U[ul, um] w.p. uprob else U[um, uh]);
//  * runtime: hyper-gamma, with the mixture weight depending linearly on
//    the job size (bigger jobs draw from the longer gamma more often);
//  * inter-arrival: gamma gaps modulated by the published daily cycle.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace lumos::synth {

struct LublinOptions {
  /// Target system (capacity bounds the sampled sizes).
  trace::SystemSpec spec;
  double duration_days = 7.0;
  std::uint64_t seed = 1;
  int num_users = 100;

  // --- size model (published defaults) -----------------------------------
  double prob_serial = 0.244;
  double uprob = 0.7;   ///< weight of the low power-of-two range
  double ulow = 0.8;    ///< log2 of the smallest parallel size
  double umed = 4.5;
  /// uhi is derived from the system size: log2(capacity).

  // --- runtime model: runtime = exp(hyper-gamma(a1,b1 ; a2,b2)) ----------
  double a1 = 4.2;
  double b1 = 0.94;
  double a2 = 312.0;
  double b2 = 0.03;
  /// p(first gamma) = pa * log2(size) + pb (clamped to [0.01, 0.99]).
  double pa = -0.0054;
  double pb = 0.78;

  // --- arrival model ------------------------------------------------------
  double arrive_a = 10.23;   ///< gamma shape for inter-arrival (peak hours)
  double arrive_b = 0.4871;  ///< gamma rate parameter (per published aarr)
  /// Hourly arrival weights (published cyclic day profile approximation).
  double cycle_min = 0.2;
  double cycle_max = 1.8;
};

/// Generates a Lublin-style workload. Jobs all report status Passed (the
/// model has no failure component — itself one of the gaps the paper's
/// analysis highlights) and carry padded walltime requests so backfilling
/// simulations work.
[[nodiscard]] trace::Trace generate_lublin(const LublinOptions& options);

}  // namespace lumos::synth
