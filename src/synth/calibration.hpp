// Per-system workload calibrations.
//
// The real traces behind the paper are multi-GB downloads that are not
// available offline, so lumos synthesises statistically equivalent
// workloads: every parameter below is chosen to hit a statistic the paper
// reports (DESIGN.md §1 documents the substitution). The generator
// (synth/generator.hpp) turns one of these calibrations into a Trace with
// the same schema the real-trace parsers produce, so all analyses and
// simulations run unchanged on either source.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "trace/system_spec.hpp"

namespace lumos::synth {

/// One entry of the discrete job-size distribution.
struct SizeChoice {
  std::uint32_t cores = 1;   ///< CPUs or GPUs, per the system's primary kind
  std::uint32_t nodes = 1;
  double weight = 1.0;       ///< unnormalised probability
};

struct SystemCalibration {
  trace::SystemSpec spec;

  // --- volume -----------------------------------------------------------
  double duration_days = 120.0;  ///< trace window length to synthesise
  int num_users = 200;

  // --- arrival process (Fig 1b) -----------------------------------------
  // Hyperexponential bursts: with probability `burst_prob` the next gap is
  // Exp(burst_mean_s), otherwise Exp(idle_mean_s / diurnal(t)). Bursts give
  // the 5-10 s median inter-arrivals of DL/hybrid systems while idle gaps
  // set the overall job count (and thereby offered load / utilization).
  double burst_prob = 0.5;
  double burst_mean_s = 10.0;
  double idle_mean_s = 300.0;
  /// Hour-of-day intensity multipliers (local time), mean-normalised to 1.
  std::array<double, 24> hourly{};
  /// Intensity multiplier applied on Saturday/Sunday.
  double weekend_factor = 1.0;
  /// Probability that a burst-continuation job comes from the same user.
  double burst_same_user = 0.7;

  // --- per-user application templates (Fig 8) ---------------------------
  // Each user owns a fixed set of (cores, runtime-median) templates chosen
  // at construction; per job the user picks a template Zipf(s)-weighted.
  int templates_min = 8;
  int templates_max = 16;
  double zipf_s = 2.0;        ///< template-popularity skew
  double p_explore = 0.05;    ///< chance of a one-off ad-hoc configuration
  double user_activity_s = 1.0;  ///< Zipf skew of per-user submission volume

  // --- runtime model (Fig 1a) -------------------------------------------
  double log_run_mu = 8.6;     ///< ln of the population median runtime (s)
  double log_run_sigma = 1.2;  ///< between-template spread
  double within_template_sigma = 0.05;  ///< ±5% keeps a template one
                                        ///< resource-config group (§V-A)
  /// Runtime scales as cores^corr — positive for DL systems, where bigger
  /// training jobs run longer (drives Fig 2's long-job domination).
  double size_runtime_corr = 0.0;
  double run_min_s = 5.0;
  double run_max_s = 30.0 * 86400.0;

  // --- size model (Fig 1c) ----------------------------------------------
  std::vector<SizeChoice> sizes;

  // --- status model (Figs 6, 7, 11) --------------------------------------
  // P(Killed | runtime) is a sigmoid in ln(runtime): cancellations and
  // walltime terminations concentrate on long jobs (Mira's long jobs are
  // ~99% killed in the paper).
  double kill_base = 0.10;
  double kill_max = 0.99;
  double kill_log_mid = 11.4;   ///< ln(seconds) of the sigmoid midpoint
  double kill_log_width = 1.2;
  double fail_base = 0.08;      ///< P(Failed) before truncation
  /// DL-only: extra kill/fail probability per log2(cores) (Fig 7a).
  double fail_size_slope = 0.0;
  double kill_size_slope = 0.0;
  /// Failed jobs die early: runtime is multiplied by U(lo, hi).
  double fail_trunc_lo = 0.02;
  double fail_trunc_hi = 0.40;
  /// Per-user jitter (stddev of a shift on kill_log_mid) — gives Fig 11's
  /// user-distinct status/runtime distributions.
  double user_kill_mid_sigma = 0.6;

  // --- recorded-wait model (Figs 4, 5) -----------------------------------
  // Mixture: with `wait_zero_prob` the job starts almost immediately
  // (Exp(wait_zero_mean)); otherwise a lognormal queue wait.
  double wait_zero_prob = 0.3;
  double wait_zero_mean_s = 30.0;
  double wait_log_med_s = 3600.0;
  double wait_log_sigma = 1.6;
  /// Size-category multipliers (middle-size jobs wait longest in the paper,
  /// except Theta where the largest do).
  double wait_mult_small = 0.7;
  double wait_mult_middle = 1.6;
  double wait_mult_large = 1.0;
  /// Long jobs wait longer (backfilling favours short jobs):
  /// multiplier = 1 + kappa * ln(1 + run/1h).
  double wait_runtime_kappa = 0.30;
  /// Load coupling: multiplier = 1 + lambda * (queue/max_queue).
  double wait_load_lambda = 0.5;
  /// Hard cap on synthesised waits (production queues rarely exceed days;
  /// uncapped lognormal tails would otherwise distort makespans).
  double wait_max_s = 5.0 * 86400.0;

  // --- queue-aware submission behaviour (Figs 9, 10) ---------------------
  /// Under load users favour smaller templates:
  /// template weight *= exp(-beta * load * log2(cores)).
  double queue_size_beta = 0.3;
  /// DL-only: under load users favour shorter templates:
  /// weight *= exp(-gamma * load * (ln run - mean ln run)).
  double queue_runtime_gamma = 0.0;

  // --- walltime requests --------------------------------------------------
  bool emit_walltime = true;  ///< false for DL traces (no Wall Time, §VI-B)
  /// Users pad estimates by a coarse per-user factor from this menu.
  std::vector<double> walltime_factors{1.1, 1.33, 2.0, 3.0, 5.0, 10.0};
};

/// Calibrations for the five study systems (values documented inline with
/// the paper statistic they target).
[[nodiscard]] SystemCalibration mira_calibration();
[[nodiscard]] SystemCalibration theta_calibration();
[[nodiscard]] SystemCalibration blue_waters_calibration();
[[nodiscard]] SystemCalibration philly_calibration();
[[nodiscard]] SystemCalibration helios_calibration();

/// All five, presentation order (BW, Mira, Theta, Philly, Helios).
[[nodiscard]] std::vector<SystemCalibration> all_calibrations();

/// Calibration by system name (case-insensitive); throws InvalidArgument.
[[nodiscard]] SystemCalibration calibration_for(std::string_view name);

}  // namespace lumos::synth
