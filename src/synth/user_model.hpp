// User population with repeated resource-configuration templates.
//
// The paper's §V shows per-user behaviour is highly structured: a handful
// of "[cores, run time]" templates covers ~90% of each user's submissions
// (Fig 8), and under queue pressure users shift to smaller (all systems,
// Fig 9) and shorter (DL systems, Fig 10) configurations. UserPopulation
// encodes exactly that: per-user template sets with Zipf popularity,
// load-dependent re-weighting, and per-user failure/walltime personality.
#pragma once

#include <cstdint>
#include <vector>

#include "synth/calibration.hpp"
#include "util/rng.hpp"

namespace lumos::synth {

/// One application template: a fixed resource request plus a runtime
/// median. Jobs from the template jitter runtime by a few percent, so they
/// land in the same resource-configuration group as defined in §V-A.
struct JobTemplate {
  std::uint32_t cores = 1;
  std::uint32_t nodes = 1;
  double run_median_s = 3600.0;  ///< includes the size-runtime coupling
  double popularity = 1.0;       ///< Zipf weight
};

struct UserProfile {
  std::uint32_t id = 0;
  std::vector<JobTemplate> templates;
  double activity_weight = 1.0;   ///< share of overall submissions
  double kill_mid_shift = 0.0;    ///< personal shift on the kill sigmoid
  double walltime_factor = 2.0;   ///< padding multiplier on estimates
  std::int32_t virtual_cluster = -1;
  double mean_log_run = 0.0;      ///< mean ln(run_median) over templates
};

class UserPopulation {
 public:
  /// Builds `cal.num_users` users with deterministic template sets.
  UserPopulation(const SystemCalibration& cal, util::Rng& rng);

  [[nodiscard]] std::size_t size() const noexcept { return users_.size(); }
  [[nodiscard]] const UserProfile& user(std::uint32_t id) const noexcept {
    return users_[id];
  }

  /// Samples a submitting user (activity is Zipf-skewed: the paper's
  /// "heavy users" dominate submissions, §V-C).
  [[nodiscard]] std::uint32_t sample_user(util::Rng& rng) const;

  /// Picks a template for `user` under queue pressure `load` in [0,1].
  /// With probability p_explore a one-off ad-hoc template is returned
  /// instead (the ~10% of jobs outside the top groups in Fig 8).
  [[nodiscard]] JobTemplate sample_template(const UserProfile& user,
                                            double load,
                                            util::Rng& rng) const;

 private:
  const SystemCalibration& cal_;
  std::vector<UserProfile> users_;
  util::AliasTable activity_;

  [[nodiscard]] JobTemplate make_template(util::Rng& rng) const;
};

}  // namespace lumos::synth
