#include "synth/generator.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "obs/registry.hpp"
#include "synth/arrival.hpp"
#include "synth/failure_model.hpp"
#include "synth/user_model.hpp"
#include "synth/wait_model.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace lumos::synth {

WorkloadGenerator::WorkloadGenerator(SystemCalibration cal,
                                     GeneratorOptions options)
    : cal_(std::move(cal)), options_(options) {
  if (options_.duration_days) cal_.duration_days = *options_.duration_days;
  if (options_.num_users) cal_.num_users = *options_.num_users;
  LUMOS_REQUIRE(cal_.duration_days > 0.0, "duration must be positive");
}

trace::Trace WorkloadGenerator::generate() {
  obs::ScopedTimer timer(obs::Registry::global().histogram(
      "synth.generate_seconds." + cal_.spec.name));
  util::Rng rng(options_.seed ^
                std::hash<std::string>{}(cal_.spec.name));
  UserPopulation population(cal_, rng);
  ArrivalProcess arrivals(cal_, rng);
  FailureModel failures(cal_);
  WaitModel waits(cal_);

  const double horizon = cal_.duration_days * 86400.0;
  trace::Trace trace(cal_.spec);

  // Backlog tracker: min-heap of pending start times of already generated
  // jobs. Queue length at t = #jobs with submit <= t < start.
  std::priority_queue<double, std::vector<double>, std::greater<>> starts;
  std::size_t max_queue = 1;

  std::uint32_t last_user = population.sample_user(rng);
  std::uint64_t id = 0;

  for (;;) {
    const double submit = arrivals.next();
    if (submit >= horizon) break;
    if (options_.max_jobs > 0 && trace.size() >= options_.max_jobs) break;

    // Drain jobs whose recorded start has passed; the heap is the backlog.
    while (!starts.empty() && starts.top() <= submit) starts.pop();
    const std::size_t queue_len = starts.size();
    max_queue = std::max(max_queue, queue_len);
    const double load = static_cast<double>(queue_len) /
                        static_cast<double>(std::max<std::size_t>(max_queue, 1));

    // Burst continuations tend to come from the same user (retry sweeps).
    const std::uint32_t uid =
        (arrivals.in_burst() && rng.bernoulli(cal_.burst_same_user))
            ? last_user
            : population.sample_user(rng);
    last_user = uid;
    const UserProfile& user = population.user(uid);

    const JobTemplate tmpl = population.sample_template(user, load, rng);

    // Intended runtime: template median with a few percent jitter so the
    // jobs stay in one resource-configuration group (§V-A).
    double intended_run =
        tmpl.run_median_s *
        std::exp(rng.normal(0.0, cal_.within_template_sigma));
    intended_run = std::clamp(intended_run, cal_.run_min_s, cal_.run_max_s);

    const StatusDraw status = failures.draw(intended_run, tmpl.cores, user,
                                            rng);

    trace::Job job;
    job.id = id++;
    job.user = uid;
    job.submit_time = submit;
    job.run_time = status.run_time_s;
    job.status = status.status;
    job.cores = tmpl.cores;
    job.nodes = tmpl.nodes;
    job.kind = cal_.spec.primary_kind;
    job.virtual_cluster = user.virtual_cluster;
    job.wait_time = waits.sample(tmpl.cores, status.run_time_s, load, rng);

    if (cal_.emit_walltime) {
      // Coarse user estimate: padded actual *intended* runtime rounded up
      // to 30-minute multiples (users request for the intended length even
      // when the job dies early).
      const double padded = intended_run * user.walltime_factor;
      job.requested_time =
          std::max(1800.0, std::ceil(padded / 1800.0) * 1800.0);
      // A scheduler would kill anything exceeding its request.
      if (job.run_time > job.requested_time) {
        job.run_time = job.requested_time;
        job.status = trace::JobStatus::Killed;
      }
    } else {
      job.requested_time = trace::kNoValue;
    }

    starts.push(job.submit_time + job.wait_time);
    trace.add(job);
  }

  trace.sort_by_submit();
  obs::Registry::global().counter("synth.jobs_emitted").add(trace.size());
  LUMOS_INFO << "generated " << trace.size() << " jobs for "
             << cal_.spec.name;
  return trace;
}

trace::Trace generate_system(std::string_view name,
                             GeneratorOptions options) {
  WorkloadGenerator gen(calibration_for(name), options);
  return gen.generate();
}

}  // namespace lumos::synth
