#include "synth/lublin.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/time_util.hpp"

namespace lumos::synth {

namespace {

/// Gamma(shape, scale) via Marsaglia–Tsang (shape >= 1) with the boost for
/// shape < 1.
double gamma_sample(util::Rng& rng, double shape, double scale) {
  if (shape < 1.0) {
    const double u = rng.uniform();
    return gamma_sample(rng, shape + 1.0, scale) *
           std::pow(std::max(u, 1e-12), 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(std::max(u, 1e-300)) <
        0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

}  // namespace

trace::Trace generate_lublin(const LublinOptions& options) {
  LUMOS_REQUIRE(options.spec.primary_capacity() > 0,
                "Lublin model needs a positive capacity");
  LUMOS_REQUIRE(options.duration_days > 0.0, "duration must be positive");

  util::Rng rng(options.seed ^ 0x4c75626cULL);  // "Lubl"
  trace::Trace trace(options.spec);
  const double horizon = options.duration_days * 86400.0;
  const double capacity =
      static_cast<double>(options.spec.primary_capacity());
  const double uhi = std::log2(capacity);

  double now = 0.0;
  std::uint64_t id = 0;
  while (true) {
    // Inter-arrival: gamma gap scaled by the inverse of the daily cycle.
    const double hour_frac =
        std::fmod(now, 86400.0) / 86400.0;  // 0..1 through the day
    // Smooth day cycle peaking mid-day.
    const double cycle =
        options.cycle_min +
        (options.cycle_max - options.cycle_min) *
            0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * hour_frac));
    const double gap =
        gamma_sample(rng, options.arrive_a, options.arrive_b) * 60.0 /
        std::max(cycle, 1e-3) / options.arrive_a;
    now += std::max(gap, 0.1);
    if (now >= horizon) break;

    trace::Job job;
    job.id = id++;
    job.submit_time = now;
    job.user = static_cast<std::uint32_t>(
        rng.uniform_index(static_cast<std::uint64_t>(options.num_users)));

    // --- size ------------------------------------------------------------
    double log2_size = 0.0;
    if (!rng.bernoulli(options.prob_serial)) {
      const double umed = std::min(options.umed, uhi - 0.5);
      log2_size = rng.bernoulli(options.uprob)
                      ? rng.uniform(options.ulow, umed)
                      : rng.uniform(umed, uhi);
    }
    const double size =
        std::clamp(std::round(std::exp2(log2_size)), 1.0, capacity);
    job.cores = static_cast<std::uint32_t>(size);
    job.nodes = job.cores;

    // --- runtime: hyper-gamma with size-dependent mixture ------------------
    const double p = std::clamp(
        options.pa * std::log2(size + 1.0) + options.pb, 0.01, 0.99);
    // The published gamma parameters describe ln(runtime): sample the
    // hyper-gamma in log space and exponentiate.
    const double log_runtime =
        rng.bernoulli(p) ? gamma_sample(rng, options.a1, options.b1)
                         : gamma_sample(rng, options.a2, options.b2);
    job.run_time = std::clamp(std::exp(log_runtime), 1.0, 5.0 * 86400.0);

    // Classic traces have no failure labels; pad a walltime request so the
    // backfilling simulator has planning input.
    job.status = trace::JobStatus::Passed;
    job.requested_time =
        std::max(1800.0, std::ceil(job.run_time * 2.0 / 1800.0) * 1800.0);
    job.kind = options.spec.primary_kind;
    trace.add(job);
  }
  trace.sort_by_submit();
  return trace;
}

}  // namespace lumos::synth
