#include "synth/user_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace lumos::synth {

UserPopulation::UserPopulation(const SystemCalibration& cal, util::Rng& rng)
    : cal_(cal) {
  LUMOS_REQUIRE(cal.num_users > 0, "calibration needs at least one user");
  LUMOS_REQUIRE(!cal.sizes.empty(), "calibration needs a size distribution");

  users_.resize(static_cast<std::size_t>(cal.num_users));
  std::vector<double> activity(users_.size());
  for (std::size_t u = 0; u < users_.size(); ++u) {
    UserProfile& profile = users_[u];
    profile.id = static_cast<std::uint32_t>(u);

    const int n_templates = static_cast<int>(rng.uniform_int(
        cal.templates_min, std::max(cal.templates_min, cal.templates_max)));
    profile.templates.reserve(static_cast<std::size_t>(n_templates));
    double sum_log_run = 0.0;
    for (int t = 0; t < n_templates; ++t) {
      JobTemplate tmpl = make_template(rng);
      // Zipf popularity by creation rank.
      tmpl.popularity = 1.0 / std::pow(static_cast<double>(t + 1), cal.zipf_s);
      sum_log_run += std::log(tmpl.run_median_s);
      profile.templates.push_back(tmpl);
    }
    profile.mean_log_run = sum_log_run / static_cast<double>(n_templates);

    profile.kill_mid_shift = rng.normal(0.0, cal.user_kill_mid_sigma);
    profile.walltime_factor =
        cal.walltime_factors[rng.uniform_index(cal.walltime_factors.size())];
    if (cal.spec.virtual_clusters > 1) {
      profile.virtual_cluster = static_cast<std::int32_t>(
          rng.uniform_index(static_cast<std::uint64_t>(
              cal.spec.virtual_clusters)));
    }
    // Heavy-user skew: user activity ~ Zipf over a random permutation rank
    // (randomise so user ids are not sorted by activity).
    activity[u] =
        1.0 / std::pow(static_cast<double>(u + 1), cal.user_activity_s);
    profile.activity_weight = activity[u];
  }
  rng.shuffle(users_);
  for (std::size_t u = 0; u < users_.size(); ++u) {
    users_[u].id = static_cast<std::uint32_t>(u);
    activity[u] = users_[u].activity_weight;
  }
  activity_ = util::AliasTable(activity);
}

JobTemplate UserPopulation::make_template(util::Rng& rng) const {
  JobTemplate tmpl;
  std::vector<double> weights;
  weights.reserve(cal_.sizes.size());
  for (const auto& s : cal_.sizes) weights.push_back(s.weight);
  const auto& choice = cal_.sizes[rng.categorical(weights)];
  tmpl.cores = choice.cores;
  tmpl.nodes = choice.nodes;
  // Template runtime median: population lognormal, scaled by the DL
  // size-runtime coupling (cores^corr).
  const double base = rng.lognormal(cal_.log_run_mu, cal_.log_run_sigma);
  const double coupled =
      base * std::pow(static_cast<double>(tmpl.cores), cal_.size_runtime_corr);
  tmpl.run_median_s = std::clamp(coupled, cal_.run_min_s, cal_.run_max_s);
  return tmpl;
}

std::uint32_t UserPopulation::sample_user(util::Rng& rng) const {
  return static_cast<std::uint32_t>(activity_.sample(rng));
}

JobTemplate UserPopulation::sample_template(const UserProfile& user,
                                            double load,
                                            util::Rng& rng) const {
  if (rng.bernoulli(cal_.p_explore)) return make_template(rng);
  load = std::clamp(load, 0.0, 1.0);
  // Users only change behaviour under *genuine* congestion (the paper's
  // long-queue regime); thresholding keeps the unconditional geometry
  // distributions at their calibrated values while the top queue-length
  // tercile still shows the Fig 9/10 shifts.
  const double pressure = std::max(0.0, load - 0.5) * 2.0;
  std::vector<double> weights;
  weights.reserve(user.templates.size());
  for (const auto& t : user.templates) {
    double w = t.popularity;
    // Queue-aware shrinking (Fig 9): under pressure, bigger templates lose
    // weight exponentially in log2(cores).
    if (cal_.queue_size_beta > 0.0 && pressure > 0.0) {
      w *= std::exp(-cal_.queue_size_beta * pressure *
                    std::log2(static_cast<double>(t.cores) + 1.0));
    }
    // DL-only runtime shrinking (Fig 10): templates longer than the user's
    // typical length lose weight (one-sided, so low-pressure periods keep
    // the calibrated runtime distribution).
    if (cal_.queue_runtime_gamma > 0.0 && pressure > 0.0) {
      const double excess = std::log(t.run_median_s) - user.mean_log_run;
      w *= std::exp(-cal_.queue_runtime_gamma * pressure *
                    std::max(0.0, excess));
    }
    weights.push_back(w);
  }
  return user.templates[rng.categorical(weights)];
}

}  // namespace lumos::synth
