// Recorded-wait synthesis.
//
// Figures 4, 5, 9 and 10 read waiting times straight out of the traces
// (they reflect each production system's own scheduler, not ours), so the
// generator synthesises waits from a calibrated mixture:
//   wait = [Exp(near-zero) w.p. p0 | LogNormal(median, sigma)]
//          x size-category multiplier (middle-size jobs wait longest)
//          x (1 + kappa ln(1 + run/1h))   (backfilling favours short jobs)
//          x (1 + lambda * load)          (queue-pressure coupling)
// The scheduling *experiments* (Table II) never use these values — the
// simulator computes its own waits.
#pragma once

#include "synth/calibration.hpp"
#include "trace/system_spec.hpp"
#include "util/rng.hpp"

namespace lumos::synth {

class WaitModel {
 public:
  explicit WaitModel(const SystemCalibration& cal) : cal_(cal) {}

  /// Samples a wait for a job of `cores` cores and runtime `run_s` under
  /// queue pressure `load` in [0,1].
  [[nodiscard]] double sample(std::uint32_t cores, double run_s, double load,
                              util::Rng& rng) const;

  /// The deterministic multiplier part (exposed for tests).
  [[nodiscard]] double multiplier(std::uint32_t cores, double run_s,
                                  double load) const noexcept;

 private:
  const SystemCalibration& cal_;
};

}  // namespace lumos::synth
