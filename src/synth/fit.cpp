#include "synth/fit.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "ml/logistic.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "util/error.hpp"
#include "util/time_util.hpp"

namespace lumos::synth {

namespace {

double mean_of(std::span<const double> xs) { return stats::mean(xs); }

/// ln-space mean/std over strictly positive samples.
std::pair<double, double> log_moments(std::span<const double> xs) {
  std::vector<double> logs;
  logs.reserve(xs.size());
  for (double x : xs) {
    if (x > 0.0) logs.push_back(std::log(x));
  }
  if (logs.empty()) return {0.0, 1.0};
  return {stats::mean(logs), std::max(0.05, stats::stddev(logs))};
}

void fit_arrivals(const trace::Trace& trace, const FitOptions& options,
                  SystemCalibration& cal) {
  const auto gaps = trace.interarrival_times();
  if (gaps.empty()) return;
  std::vector<double> burst, idle;
  for (double g : gaps) {
    (g <= options.burst_gap_threshold_s ? burst : idle).push_back(g);
  }
  cal.burst_prob =
      std::clamp(static_cast<double>(burst.size()) /
                     static_cast<double>(gaps.size()),
                 0.02, 0.95);
  cal.burst_mean_s = burst.empty() ? 5.0 : std::max(0.5, mean_of(burst));
  cal.idle_mean_s = idle.empty() ? 300.0 : std::max(5.0, mean_of(idle));

  // Diurnal profile: normalised hourly counts; weekend factor from the
  // weekday/weekend submission-rate ratio.
  const auto& spec = trace.spec();
  const auto hourly = stats::hourly_counts(trace.submit_times(),
                                           spec.epoch_unix,
                                           spec.utc_offset_hours);
  double total = 0.0;
  for (double h : hourly) total += h;
  if (total > 0.0) {
    for (int h = 0; h < 24; ++h) {
      cal.hourly[static_cast<std::size_t>(h)] =
          std::max(0.05, hourly[static_cast<std::size_t>(h)] * 24.0 / total);
    }
  }
  double weekday = 0.0, weekend = 0.0;
  for (const auto& j : trace.jobs()) {
    const int dow = util::day_of_week(j.submit_time, spec.epoch_unix,
                                      spec.utc_offset_hours);
    (dow >= 5 ? weekend : weekday) += 1.0;
  }
  // Rates per day: 5 weekdays vs 2 weekend days.
  if (weekday > 0.0) {
    const double ratio = (weekend / 2.0) / (weekday / 5.0);
    cal.weekend_factor = std::clamp(ratio, 0.2, 1.5);
  }
}

void fit_runtime(const trace::Trace& trace, SystemCalibration& cal) {
  // Fit on Passed jobs: Failed runtimes are truncated artifacts and Killed
  // ones censored; the generator re-applies both distortions.
  std::vector<double> passed_runs;
  for (const auto& j : trace.jobs()) {
    if (j.status == trace::JobStatus::Passed && j.run_time > 0.0) {
      passed_runs.push_back(j.run_time);
    }
  }
  if (passed_runs.empty()) passed_runs = trace.run_times();
  const auto [mu, sigma] = log_moments(passed_runs);
  cal.log_run_mu = mu;
  cal.log_run_sigma = sigma;
  cal.run_min_s = std::max(1.0, stats::quantile(passed_runs, 0.001));
  cal.run_max_s = std::max(cal.run_min_s * 2.0,
                           stats::quantile(passed_runs, 0.999) * 2.0);
  cal.size_runtime_corr = 0.0;  // identified only with a size spread
  // Estimate the size-runtime coupling when sizes vary: regression slope
  // of ln(run) on ln(cores) over passed jobs.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (const auto& j : trace.jobs()) {
    if (j.status != trace::JobStatus::Passed || j.run_time <= 0.0) continue;
    const double x = std::log(static_cast<double>(j.cores));
    const double y = std::log(j.run_time);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n > 10) {
    const double denom = static_cast<double>(n) * sxx - sx * sx;
    if (denom > 1e-9) {
      cal.size_runtime_corr = std::clamp(
          (static_cast<double>(n) * sxy - sx * sy) / denom, 0.0, 1.0);
    }
  }
}

void fit_sizes(const trace::Trace& trace, const FitOptions& options,
               SystemCalibration& cal) {
  std::map<std::uint32_t, std::pair<std::size_t, std::uint32_t>> counts;
  for (const auto& j : trace.jobs()) {
    auto& [count, nodes] = counts[j.cores];
    ++count;
    nodes = j.nodes;
  }
  std::vector<std::pair<std::size_t, std::uint32_t>> order;  // (count, cores)
  order.reserve(counts.size());
  for (const auto& [cores, cn] : counts) order.emplace_back(cn.first, cores);
  std::sort(order.begin(), order.end(), std::greater<>());
  if (order.size() > options.max_size_choices) {
    order.resize(options.max_size_choices);
  }
  cal.sizes.clear();
  for (const auto& [count, cores] : order) {
    SizeChoice choice;
    choice.cores = cores;
    choice.nodes = counts[cores].second;
    choice.weight = static_cast<double>(count);
    cal.sizes.push_back(choice);
  }
}

void fit_status(const trace::Trace& trace, SystemCalibration& cal) {
  std::size_t killed = 0, failed = 0;
  for (const auto& j : trace.jobs()) {
    killed += j.status == trace::JobStatus::Killed;
    failed += j.status == trace::JobStatus::Failed;
  }
  const auto n = static_cast<double>(trace.size());
  cal.fail_base = std::clamp(static_cast<double>(failed) / n, 0.0, 0.5);

  // Kill sigmoid via 1-D logistic regression on ln(runtime).
  ml::Matrix x(trace.size(), 1);
  std::vector<double> y(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    x(i, 0) = std::log(std::max(trace[i].run_time, 1.0));
    y[i] = trace[i].status == trace::JobStatus::Killed ? 1.0 : 0.0;
  }
  ml::LogisticRegression logit;
  logit.fit(x, y);
  // Recover base/max from the empirical kill rate in the runtime extremes,
  // and mid/width from probe points of the fitted curve.
  std::vector<double> runs = trace.run_times();
  const double lo = stats::quantile(runs, 0.05);
  const double hi = stats::quantile(runs, 0.95);
  const double p_lo =
      logit.predict_proba(std::vector<double>{std::log(std::max(lo, 1.0))});
  const double p_hi =
      logit.predict_proba(std::vector<double>{std::log(std::max(hi, 2.0))});
  cal.kill_base = std::clamp(std::min(p_lo, p_hi), 0.0, 0.6);
  cal.kill_max = std::clamp(std::max(p_hi, cal.kill_base + 0.1), 0.2, 0.99);
  // Bisect the fitted curve for its midpoint between base and max.
  double a = std::log(std::max(lo, 1.0));
  double b = std::log(std::max(hi, 2.0)) + 3.0;
  const double target = 0.5 * (cal.kill_base + cal.kill_max);
  for (int it = 0; it < 48; ++it) {
    const double m = 0.5 * (a + b);
    const double p = logit.predict_proba(std::vector<double>{m});
    (p < target ? a : b) = m;
  }
  cal.kill_log_mid = 0.5 * (a + b);
  // Width from the fitted slope at the midpoint: d sigmoid/dx = s(1-s)/w.
  const double eps = 0.25;
  const double p1 = logit.predict_proba(
      std::vector<double>{cal.kill_log_mid - eps});
  const double p2 = logit.predict_proba(
      std::vector<double>{cal.kill_log_mid + eps});
  const double slope = std::max(1e-3, (p2 - p1) / (2.0 * eps));
  cal.kill_log_width = std::clamp(0.25 * (cal.kill_max - cal.kill_base) /
                                      slope,
                                  0.2, 4.0);

  // Failure truncation: ratio of failed-job runtimes to passed medians.
  std::vector<double> failed_runs, passed_runs;
  for (const auto& j : trace.jobs()) {
    if (j.status == trace::JobStatus::Failed) failed_runs.push_back(j.run_time);
    if (j.status == trace::JobStatus::Passed) passed_runs.push_back(j.run_time);
  }
  if (!failed_runs.empty() && !passed_runs.empty()) {
    const double ratio = std::clamp(
        stats::median(failed_runs) / std::max(1.0, stats::median(passed_runs)),
        0.005, 0.9);
    cal.fail_trunc_lo = std::max(0.002, ratio / 4.0);
    cal.fail_trunc_hi = std::min(0.95, ratio * 2.0);
  }
}

void fit_waits(const trace::Trace& trace, const FitOptions& options,
               SystemCalibration& cal) {
  const auto waits = trace.wait_times();
  std::vector<double> zero, queued;
  for (double w : waits) {
    (w <= options.zero_wait_threshold_s ? zero : queued).push_back(w);
  }
  cal.wait_zero_prob = std::clamp(static_cast<double>(zero.size()) /
                                      std::max<double>(1.0, waits.size()),
                                  0.01, 0.95);
  cal.wait_zero_mean_s = zero.empty() ? 5.0 : std::max(0.5, mean_of(zero));
  if (!queued.empty()) {
    cal.wait_log_med_s = std::max(1.0, stats::median(queued));
    cal.wait_log_sigma = log_moments(queued).second;
    cal.wait_max_s = std::max(cal.wait_log_med_s * 4.0,
                              stats::quantile(queued, 0.999) * 1.5);
  }
  // Size-category multipliers from mean waits per category.
  const auto& spec = trace.spec();
  std::array<double, 4> sum{};
  std::array<std::size_t, 4> count{};
  for (const auto& j : trace.jobs()) {
    const auto c = static_cast<std::size_t>(spec.size_category(j.cores));
    sum[c] += j.wait_time;
    count[c] += 1;
  }
  double overall = stats::mean(waits);
  if (overall > 0.0) {
    auto mult = [&](std::size_t c, double fallback) {
      if (count[c] < 10) return fallback;
      return std::clamp(sum[c] / static_cast<double>(count[c]) / overall,
                        0.2, 5.0);
    };
    cal.wait_mult_small = mult(static_cast<std::size_t>(
                                   trace::SizeCategory::Small), 1.0);
    cal.wait_mult_middle = mult(static_cast<std::size_t>(
                                    trace::SizeCategory::Middle), 1.0);
    cal.wait_mult_large = mult(static_cast<std::size_t>(
                                   trace::SizeCategory::Large), 1.0);
  }
}

}  // namespace

FitResult fit_calibration(const trace::Trace& trace,
                          const FitOptions& options) {
  LUMOS_REQUIRE(trace.size() >= 100, "fit_calibration needs >= 100 jobs");
  LUMOS_REQUIRE(trace.is_sorted_by_submit(),
                "fit_calibration needs a submit-sorted trace");

  FitResult result;
  SystemCalibration& cal = result.calibration;
  cal.spec = trace.spec();
  cal.duration_days = std::max(trace.last_submit() / 86400.0, 0.1);
  cal.num_users = static_cast<int>(std::max<std::size_t>(trace.user_count(),
                                                         1));

  // Walltime availability follows the data.
  std::size_t with_walltime = 0;
  for (const auto& j : trace.jobs()) with_walltime += j.has_requested_time();
  cal.emit_walltime = with_walltime * 2 > trace.size();
  cal.spec.has_walltime_estimates = cal.emit_walltime;

  fit_arrivals(trace, options, cal);
  fit_runtime(trace, cal);
  fit_sizes(trace, options, cal);
  fit_status(trace, cal);
  fit_waits(trace, options, cal);

  auto& d = result.diagnostics;
  d.runtime_median_s = stats::median(trace.run_times());
  d.gap_median_s = stats::median(trace.interarrival_times());
  d.wait_median_s = stats::median(trace.wait_times());
  std::size_t passed = 0;
  for (const auto& j : trace.jobs()) {
    passed += j.status == trace::JobStatus::Passed;
  }
  d.passed_fraction =
      static_cast<double>(passed) / static_cast<double>(trace.size());
  d.distinct_sizes = cal.sizes.size();
  return result;
}

}  // namespace lumos::synth
