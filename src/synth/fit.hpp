// Calibration fitting: estimate a SystemCalibration from a trace.
//
// The paper ships its analysis as a package "for others to easily conduct
// similar analysis using their own job traces". lumos goes one step
// further: `fit_calibration` inverts the workload generator by
// method-of-moments, so a site can ingest its own trace (SWF/CSV), fit a
// calibration, and then synthesise arbitrarily long statistically similar
// workloads for scheduler studies — without sharing the raw trace.
//
// Fitted components: arrival process (burst/idle split, diurnal profile,
// weekend factor), runtime lognormal, empirical size distribution, the
// kill sigmoid (via logistic regression on ln runtime), failure rate and
// truncation, and the recorded-wait mixture. Behavioural parameters that
// need intervention-style identification (queue_size_beta,
// queue_runtime_gamma) keep their defaults.
#pragma once

#include "synth/calibration.hpp"
#include "trace/trace.hpp"

namespace lumos::synth {

struct FitOptions {
  /// Gaps at or below this are treated as burst arrivals (seconds).
  double burst_gap_threshold_s = 15.0;
  /// Waits at or below this count as the near-zero mixture component.
  double zero_wait_threshold_s = 30.0;
  /// Maximum number of distinct size choices kept (most frequent first).
  std::size_t max_size_choices = 24;
};

/// Diagnostics comparing the input trace's moments with the fit.
struct FitDiagnostics {
  double runtime_median_s = 0.0;
  double gap_median_s = 0.0;
  double wait_median_s = 0.0;
  double passed_fraction = 0.0;
  std::size_t distinct_sizes = 0;
};

struct FitResult {
  SystemCalibration calibration;
  FitDiagnostics diagnostics;
};

/// Fits a calibration to `trace` (which must be non-trivially sized and
/// submit-sorted). Throws InvalidArgument on traces below 100 jobs.
[[nodiscard]] FitResult fit_calibration(const trace::Trace& trace,
                                        const FitOptions& options = {});

}  // namespace lumos::synth
