// Job arrival process: hyperexponential bursts modulated by a diurnal and
// weekly intensity profile.
//
// Submissions in production traces are far from Poisson (§III-A): users
// submit in bursts (sweeps, retries, session work), and intensity follows
// local time of day. The process here draws each gap either from a short
// "burst" exponential or from an "idle" exponential whose mean is divided
// by the current local-time intensity multiplier, which reproduces both
// the inter-arrival CDF (Fig 1b top) and the hourly profile (Fig 1b
// bottom).
#pragma once

#include "synth/calibration.hpp"
#include "util/rng.hpp"

namespace lumos::synth {

class ArrivalProcess {
 public:
  ArrivalProcess(const SystemCalibration& cal, util::Rng& rng);

  /// Advances and returns the next submit time (seconds since epoch start,
  /// strictly increasing). Also updates the in-burst flag.
  double next();

  /// Whether the *last* returned arrival continued a burst (used to keep
  /// burst jobs on the same user).
  [[nodiscard]] bool in_burst() const noexcept { return in_burst_; }

  [[nodiscard]] double now() const noexcept { return now_; }

 private:
  const SystemCalibration& cal_;
  util::Rng& rng_;
  double now_ = 0.0;
  bool in_burst_ = false;

  /// Local-time intensity multiplier at time t (hour-of-day x weekday).
  [[nodiscard]] double intensity(double t) const noexcept;
};

}  // namespace lumos::synth
