// Job status assignment.
//
// Encodes the paper's §IV findings as a generative model:
//  * P(Killed) rises with runtime along a sigmoid in ln(run) — long jobs
//    are overwhelmingly killed (walltime terminations, abandoned training).
//  * In DL systems P(Failed)/P(Killed) also rise with GPU count (Fig 7a);
//    HPC pass rates are size-independent.
//  * Failed jobs die early: their recorded runtime is a small fraction of
//    the intended one, so Failed jobs cost fewer core-hours than their
//    count suggests (Fig 6).
//  * Per-user shifts on the kill midpoint give the distinct per-user
//    runtime-by-status distributions of Fig 11.
#pragma once

#include "fault/fault.hpp"
#include "synth/calibration.hpp"
#include "synth/user_model.hpp"
#include "trace/job.hpp"
#include "util/rng.hpp"

namespace lumos::synth {

struct StatusDraw {
  trace::JobStatus status = trace::JobStatus::Passed;
  double run_time_s = 0.0;  ///< possibly truncated (Failed jobs die early)
};

class FailureModel {
 public:
  explicit FailureModel(const SystemCalibration& cal) : cal_(cal) {}

  /// Kill probability for a job with intended runtime `run_s` and `cores`,
  /// submitted by a user with kill-midpoint shift `user_shift`.
  [[nodiscard]] double kill_probability(double run_s, std::uint32_t cores,
                                        double user_shift) const noexcept;

  /// Failure probability (evaluated after the kill draw fails).
  [[nodiscard]] double fail_probability(std::uint32_t cores) const noexcept;

  /// Draws the final status and (possibly truncated) runtime.
  [[nodiscard]] StatusDraw draw(double intended_run_s, std::uint32_t cores,
                                const UserProfile& user,
                                util::Rng& rng) const;

 private:
  const SystemCalibration& cal_;
};

/// Maps a system's status-model calibration onto simulator fault-injection
/// parameters (fault::FaultConfig). The anchor: a system at the corpus
/// baseline failure share (fail_base = 0.08) gets a 30-day per-node MTBF;
/// systems where jobs fail more often get proportionally flakier nodes,
/// and repair time scales with how late failures strike (fail_trunc_hi).
/// Deterministic — retry policy, seed, and checkpointing are left at
/// FaultConfig defaults for the caller to override.
[[nodiscard]] fault::FaultConfig fault_config_for(
    const SystemCalibration& cal) noexcept;

}  // namespace lumos::synth
