#include "synth/failure_model.hpp"

#include <algorithm>
#include <cmath>

namespace lumos::synth {

namespace {
double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

double FailureModel::kill_probability(double run_s, std::uint32_t cores,
                                      double user_shift) const noexcept {
  const double log_run = std::log(std::max(run_s, 1.0));
  const double mid = cal_.kill_log_mid + user_shift;
  double p = cal_.kill_base +
             (cal_.kill_max - cal_.kill_base) *
                 sigmoid((log_run - mid) / cal_.kill_log_width);
  if (cal_.kill_size_slope > 0.0) {
    p += cal_.kill_size_slope * std::log2(static_cast<double>(cores) + 1.0);
  }
  return std::clamp(p, 0.0, 0.995);
}

double FailureModel::fail_probability(std::uint32_t cores) const noexcept {
  double p = cal_.fail_base;
  if (cal_.fail_size_slope > 0.0) {
    p += cal_.fail_size_slope * std::log2(static_cast<double>(cores) + 1.0);
  }
  return std::clamp(p, 0.0, 0.9);
}

StatusDraw FailureModel::draw(double intended_run_s, std::uint32_t cores,
                              const UserProfile& user, util::Rng& rng) const {
  StatusDraw out;
  out.run_time_s = intended_run_s;
  if (rng.bernoulli(
          kill_probability(intended_run_s, cores, user.kill_mid_shift))) {
    out.status = trace::JobStatus::Killed;
    // Cancellations happen at any point; walltime kills at the end. Trim a
    // uniform fraction for a small share of kills to model mid-run
    // cancellation (most kills land at or near the intended length, which
    // keeps the killed-longer-than-passed signal of Fig 11).
    if (rng.bernoulli(0.15)) {
      out.run_time_s *= rng.uniform(0.5, 1.0);
    }
    return out;
  }
  if (rng.bernoulli(fail_probability(cores))) {
    out.status = trace::JobStatus::Failed;
    // Failed jobs die early (bad config, missing file, crash at startup).
    out.run_time_s *= rng.uniform(cal_.fail_trunc_lo, cal_.fail_trunc_hi);
    out.run_time_s = std::max(out.run_time_s, 1.0);
    return out;
  }
  out.status = trace::JobStatus::Passed;
  return out;
}

fault::FaultConfig fault_config_for(const SystemCalibration& cal) noexcept {
  fault::FaultConfig config;
  // fail_base = 0.08 is the corpus baseline failure share; anchor it to a
  // 30-day node MTBF and scale inversely with the system's failure rate.
  constexpr double kBaselineFailShare = 0.08;
  constexpr double kBaselineMtbfS = 30.0 * 86400.0;
  const double share = std::max(cal.fail_base, 0.01);
  config.node_mtbf_s = kBaselineMtbfS * (kBaselineFailShare / share);
  // Late-striking failures (high truncation ceiling) indicate heavier
  // repair/restage work: 0.5–5.5 h across the calibrated range.
  config.node_mttr_s = 3600.0 * (0.5 + 5.0 * cal.fail_trunc_hi);
  return config;
}

}  // namespace lumos::synth
