// Workload generator: calibration -> Trace.
//
// Drives the arrival process, user population, failure model and wait
// model to produce a full synthetic trace. The generator tracks the
// system backlog while it generates (queue length computed from the
// already-emitted jobs' submit+wait), so queue-aware user behaviour (Figs
// 9/10) reacts to the same queue-length signal the analyses later measure.
#pragma once

#include <cstdint>
#include <optional>

#include "synth/calibration.hpp"
#include "trace/trace.hpp"

namespace lumos::synth {

struct GeneratorOptions {
  std::uint64_t seed = 42;
  /// Overrides the calibration's window length (days) when set.
  std::optional<double> duration_days;
  /// Overrides the calibration's user count when set.
  std::optional<int> num_users;
  /// Caps the number of generated jobs (0 = no cap) — for quick tests.
  std::size_t max_jobs = 0;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(SystemCalibration cal,
                             GeneratorOptions options = {});

  /// Generates the full trace (sorted by submit time, ids assigned).
  [[nodiscard]] trace::Trace generate();

  [[nodiscard]] const SystemCalibration& calibration() const noexcept {
    return cal_;
  }

 private:
  SystemCalibration cal_;
  GeneratorOptions options_;
};

/// One-call helper: synthesise a named system's workload.
[[nodiscard]] trace::Trace generate_system(std::string_view name,
                                           GeneratorOptions options = {});

}  // namespace lumos::synth
