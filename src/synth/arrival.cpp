#include "synth/arrival.hpp"

#include <algorithm>

#include "util/time_util.hpp"

namespace lumos::synth {

ArrivalProcess::ArrivalProcess(const SystemCalibration& cal, util::Rng& rng)
    : cal_(cal), rng_(rng) {}

double ArrivalProcess::intensity(double t) const noexcept {
  const auto& spec = cal_.spec;
  const int hour =
      util::hour_of_day(t, spec.epoch_unix, spec.utc_offset_hours);
  const int dow =
      util::day_of_week(t, spec.epoch_unix, spec.utc_offset_hours);
  double m = cal_.hourly[static_cast<std::size_t>(hour)];
  if (dow >= 5) m *= cal_.weekend_factor;
  return std::max(m, 1e-3);
}

double ArrivalProcess::next() {
  double gap;
  if (rng_.bernoulli(cal_.burst_prob)) {
    gap = rng_.exponential(1.0 / std::max(cal_.burst_mean_s, 1e-3));
    in_burst_ = true;
  } else {
    const double mean = cal_.idle_mean_s / intensity(now_);
    gap = rng_.exponential(1.0 / std::max(mean, 1e-3));
    in_burst_ = false;
  }
  now_ += std::max(gap, 1e-3);
  return now_;
}

}  // namespace lumos::synth
