#include "synth/dag.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "trace/dag.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace lumos::synth {

std::string_view to_string(WorkflowShape s) noexcept {
  switch (s) {
    case WorkflowShape::Chain: return "chain";
    case WorkflowShape::ForkJoin: return "forkjoin";
    case WorkflowShape::RandomLayered: return "layered";
  }
  return "?";
}

WorkflowShape workflow_shape_from_string(std::string_view name) {
  const std::string n = util::to_lower(name);
  if (n == "chain") return WorkflowShape::Chain;
  if (n == "forkjoin" || n == "fork-join") return WorkflowShape::ForkJoin;
  if (n == "layered" || n == "random_layered") {
    return WorkflowShape::RandomLayered;
  }
  throw InvalidArgument("unknown workflow shape: " + std::string(name));
}

namespace {

/// Emits one workflow's tasks into `out`. Task ids are `first_id + k` with
/// k in generation order; every parent is generated before its children,
/// so edges always point at lower ids (acyclic by construction — and
/// revalidated before generate returns).
void emit_workflow(const DagWorkloadOptions& opt, util::Rng& rng,
                   std::uint32_t workflow, double submit,
                   std::uint64_t first_id, std::vector<trace::Job>& out) {
  std::size_t n = opt.min_tasks +
                  rng.uniform_index(opt.max_tasks - opt.min_tasks + 1);
  if (opt.shape == WorkflowShape::ForkJoin && n < 3) n = 3;

  const std::size_t base = out.size();
  for (std::size_t k = 0; k < n; ++k) {
    trace::Job j;
    j.id = first_id + k;
    j.user = workflow;
    j.submit_time = submit;
    j.run_time = rng.lognormal(opt.runtime_log_mu, opt.runtime_log_sigma);
    j.requested_time = j.run_time * opt.walltime_factor;
    j.cores = opt.min_cores + static_cast<std::uint32_t>(rng.uniform_index(
                                  opt.max_cores - opt.min_cores + 1));
    out.push_back(std::move(j));
  }

  auto link = [&](std::size_t child, std::size_t parent) {
    out[base + child].parents.push_back(first_id + parent);
  };
  switch (opt.shape) {
    case WorkflowShape::Chain:
      for (std::size_t k = 1; k < n; ++k) link(k, k - 1);
      break;
    case WorkflowShape::ForkJoin:
      // Task 0 fans out to 1..n-2; task n-1 joins them all.
      for (std::size_t k = 1; k + 1 < n; ++k) link(k, 0);
      for (std::size_t k = 1; k + 1 < n; ++k) link(n - 1, k);
      break;
    case WorkflowShape::RandomLayered: {
      // Slice 0..n-1 into random-width layers; every task in layer L > 0
      // gets one mandatory parent in layer L-1 plus Bernoulli extras.
      std::size_t layer_begin = 0;
      std::size_t layer_end = 1 + rng.uniform_index(
                                      std::min(opt.max_width, n));
      while (layer_end < n) {
        const std::size_t remaining = n - layer_end;
        const std::size_t width =
            1 + rng.uniform_index(std::min(opt.max_width, remaining));
        const std::size_t prev_size = layer_end - layer_begin;
        for (std::size_t k = layer_end; k < layer_end + width; ++k) {
          const std::size_t mandatory =
              layer_begin + rng.uniform_index(prev_size);
          link(k, mandatory);
          for (std::size_t p = layer_begin; p < layer_end; ++p) {
            if (p != mandatory && rng.bernoulli(opt.edge_prob)) link(k, p);
          }
        }
        layer_begin = layer_end;
        layer_end += width;
      }
      break;
    }
  }
}

}  // namespace

trace::Trace generate_dag_workload(const DagWorkloadOptions& opt) {
  LUMOS_REQUIRE(opt.min_tasks >= 1 && opt.min_tasks <= opt.max_tasks,
                "DagWorkloadOptions: need 1 <= min_tasks <= max_tasks");
  LUMOS_REQUIRE(opt.min_cores >= 1 && opt.min_cores <= opt.max_cores,
                "DagWorkloadOptions: need 1 <= min_cores <= max_cores");
  LUMOS_REQUIRE(opt.max_cores <= opt.cluster_cores,
                "DagWorkloadOptions: tasks must fit the cluster");
  LUMOS_REQUIRE(opt.edge_prob >= 0.0 && opt.edge_prob <= 1.0,
                "DagWorkloadOptions: edge_prob must be a probability");
  LUMOS_REQUIRE(opt.max_width >= 1,
                "DagWorkloadOptions: max_width must be >= 1");

  util::Rng rng(opt.seed);
  std::vector<trace::Job> jobs;
  jobs.reserve(opt.workflows * (opt.min_tasks + opt.max_tasks) / 2);
  double submit = 0.0;
  for (std::size_t w = 0; w < opt.workflows; ++w) {
    submit += rng.exponential(1.0 / opt.mean_interarrival_s);
    emit_workflow(opt, rng, static_cast<std::uint32_t>(w), submit,
                  jobs.size(), jobs);
  }

  trace::SystemSpec spec;
  spec.name = "dag-synth";
  spec.affiliation = "synthetic";
  spec.cores = opt.cluster_cores;
  spec.nodes = opt.cluster_cores;
  spec.has_walltime_estimates = true;
  trace::Trace trace(std::move(spec), std::move(jobs));
  // Workflows share one submit instant per workflow and the sort is
  // stable, so generation order (parents before children) survives.
  trace.sort_by_submit();
  trace::validate_dependencies(trace);
  return trace;
}

trace::Trace inject_heavy_tail(const trace::Trace& input,
                               const HeavyTailOptions& opt) {
  LUMOS_REQUIRE(opt.fraction >= 0.0 && opt.fraction <= 1.0,
                "HeavyTailOptions: fraction must be a probability");
  LUMOS_REQUIRE(opt.alpha > 0.0, "HeavyTailOptions: alpha must be > 0");
  LUMOS_REQUIRE(opt.max_multiplier >= 1.0,
                "HeavyTailOptions: max_multiplier must be >= 1");
  util::Rng rng(opt.seed);
  std::vector<trace::Job> jobs(input.jobs().begin(), input.jobs().end());
  for (trace::Job& j : jobs) {
    if (!rng.bernoulli(opt.fraction)) continue;
    const double mult = std::min(rng.pareto(1.0, opt.alpha),
                                 opt.max_multiplier);
    if (mult <= 1.0 || j.run_time <= 0.0) continue;
    j.hedge_run_time = j.run_time;
    j.run_time *= mult;
  }
  return trace::Trace(input.spec(), std::move(jobs));
}

}  // namespace lumos::synth
