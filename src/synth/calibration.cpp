#include "synth/calibration.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace lumos::synth {

namespace {

/// Normalises an hourly profile to mean 1 so idle_mean_s keeps its meaning.
std::array<double, 24> normalized(std::array<double, 24> h) {
  double sum = 0.0;
  for (double v : h) sum += v;
  const double mean = sum / 24.0;
  for (double& v : h) v /= mean;
  return h;
}

/// Flat-ish profile with slightly more submissions after noon — the paper's
/// observation for Mira and Theta (no real "peak hours").
std::array<double, 24> hpc_flat_profile() {
  std::array<double, 24> h{};
  for (int i = 0; i < 24; ++i) h[i] = i >= 12 ? 1.15 : 0.95;
  return normalized(h);
}

/// Classic 8am-5pm peak (Blue Waters and, strongly, Helios).
std::array<double, 24> day_peak_profile(double peak, double trough) {
  std::array<double, 24> h{};
  for (int i = 0; i < 24; ++i) {
    if (i >= 8 && i <= 17) {
      h[i] = peak;
    } else if (i >= 6 && i <= 19) {
      h[i] = (peak + trough) / 2.0;  // shoulders
    } else {
      h[i] = trough;
    }
  }
  return normalized(h);
}

/// Philly's inverted pattern: slightly *fewer* jobs during peak hours,
/// max/min ratio ~2.5 (paper: min ~40, max <100 per hour).
std::array<double, 24> philly_profile() {
  std::array<double, 24> h{};
  for (int i = 0; i < 24; ++i) h[i] = (i >= 8 && i <= 17) ? 0.62 : 1.30;
  return normalized(h);
}

}  // namespace

SystemCalibration mira_calibration() {
  SystemCalibration c;
  c.spec = trace::mira_spec();
  c.duration_days = 120.0;
  c.num_users = 180;

  // ~25k jobs in 4 months at 88% offered load (Fig 3) with the size and
  // runtime models below -> mean inter-arrival ~420 s; bursts push the
  // median inter-arrival towards the paper's ~100 s (Fig 1b).
  c.burst_prob = 0.45;
  c.burst_mean_s = 40.0;
  c.idle_mean_s = 620.0;
  c.hourly = hpc_flat_profile();
  c.weekend_factor = 0.95;

  // Median runtime ~1.5 h, narrow spread (Fig 1a: "stable job run times").
  c.log_run_mu = std::log(7000.0);
  c.log_run_sigma = 1.1;
  c.size_runtime_corr = 0.0;
  c.run_max_s = 2.0 * 86400.0;  // Mira capability queue walltime limits

  // >50% of jobs request >1000 cores (Fig 1c); small jobs <35% of core
  // hours (Fig 2). Cores = nodes * 16.
  c.sizes = {
      {16, 1, 0.04},        {128, 8, 0.08},      {512, 32, 0.12},
      {1024, 64, 0.15},     {2048, 128, 0.12},   {4096, 256, 0.10},
      {8192, 512, 0.09},    {16384, 1024, 0.08}, {32768, 2048, 0.07},
      {65536, 4096, 0.05},  {131072, 8192, 0.06}, {262144, 16384, 0.03},
      {524288, 32768, 0.01},
  };

  // ~70% Passed overall; nearly all >1-day jobs killed (Fig 7b). The
  // sigmoid midpoint sits ~1.5 ln-units above the median runtime so the
  // kill/runtime correlation is visible across the whole in-range
  // distribution (Fig 11), not just at the walltime limit.
  c.kill_base = 0.06;
  c.kill_max = 0.97;
  c.kill_log_mid = std::log(7000.0) + 1.3;
  c.kill_log_width = 0.8;
  c.fail_base = 0.10;

  // Recorded waits clearly shorter than Blue Waters (Fig 4a).
  c.wait_zero_prob = 0.40;
  c.wait_zero_mean_s = 120.0;
  c.wait_log_med_s = 2700.0;
  c.wait_log_sigma = 1.6;
  c.wait_mult_small = 0.7;
  c.wait_mult_middle = 1.7;  // middle-size jobs wait longest (Fig 5)
  c.wait_mult_large = 0.9;   // large jobs get priority treatment
  c.wait_max_s = 3.0 * 86400.0;

  c.queue_size_beta = 0.25;
  c.queue_runtime_gamma = 0.0;  // HPC runtimes insensitive to load (Fig 10)

  c.templates_min = 8;
  c.templates_max = 14;
  c.zipf_s = 2.0;       // top-3 groups >80% of jobs (Fig 8)
  c.p_explore = 0.05;
  c.user_activity_s = 0.7;
  c.emit_walltime = true;
  return c;
}

SystemCalibration theta_calibration() {
  SystemCalibration c;
  c.spec = trace::theta_spec();
  c.duration_days = 120.0;
  c.num_users = 140;

  // ~11k jobs at 87% offered load; median inter-arrival ~100 s via bursts.
  c.burst_prob = 0.50;
  c.burst_mean_s = 45.0;
  c.idle_mean_s = 1850.0;
  c.hourly = hpc_flat_profile();
  c.weekend_factor = 0.95;

  c.log_run_mu = std::log(4500.0);
  c.log_run_sigma = 1.2;
  c.run_max_s = 3.0 * 86400.0;

  // Cores = nodes * 64; small (<10% = <28,109 cores) jobs ~16% of core
  // hours (Fig 2).
  c.sizes = {
      {1024, 16, 0.10},   {4096, 64, 0.15},    {8192, 128, 0.25},
      {16384, 256, 0.15}, {32768, 512, 0.15},  {65536, 1024, 0.12},
      {131072, 2048, 0.05}, {262144, 4096, 0.03},
  };

  c.kill_base = 0.10;
  c.kill_max = 0.95;
  c.kill_log_mid = std::log(4500.0) + 1.5;
  c.kill_log_width = 1.0;
  c.fail_base = 0.11;

  c.wait_zero_prob = 0.35;
  c.wait_zero_mean_s = 120.0;
  c.wait_log_med_s = 3600.0;
  c.wait_log_sigma = 1.7;
  // Theta is the paper's exception: its *largest* jobs wait longest (Fig 5).
  c.wait_mult_small = 0.7;
  c.wait_mult_middle = 1.1;
  c.wait_mult_large = 1.9;
  c.wait_max_s = 4.0 * 86400.0;

  c.queue_size_beta = 0.25;
  c.queue_runtime_gamma = 0.0;

  c.templates_min = 8;
  c.templates_max = 14;
  c.zipf_s = 2.0;
  c.p_explore = 0.05;
  c.user_activity_s = 0.7;
  c.emit_walltime = true;
  return c;
}

SystemCalibration blue_waters_calibration() {
  SystemCalibration c;
  c.spec = trace::blue_waters_spec();
  c.duration_days = 120.0;
  c.num_users = 450;

  // ~75k jobs at ~71% offered load; >50% of gaps within 5-10 s (Fig 1b).
  c.burst_prob = 0.60;
  c.burst_mean_s = 8.0;
  c.idle_mean_s = 125.0;
  c.hourly = day_peak_profile(1.8, 0.55);
  c.weekend_factor = 0.8;

  // Median ~1.5 h but wider spread than Mira (hybrid middle ground,
  // Fig 1a violin); middle-length jobs dominate core hours (Fig 2).
  c.log_run_mu = std::log(5400.0);
  c.log_run_sigma = 1.5;
  c.run_max_s = 14.0 * 86400.0;

  // Median ~512 cores (32 nodes); >85% of core hours from small jobs
  // (Fig 2); ~90% of jobs >10 cores (Fig 1c).
  c.sizes = {
      {1, 1, 0.04},        {16, 1, 0.13},      {32, 2, 0.06},
      {64, 4, 0.07},       {128, 8, 0.09},     {256, 16, 0.10},
      {512, 32, 0.14},     {1024, 64, 0.13},   {2048, 128, 0.10},
      {4096, 256, 0.07},   {8192, 512, 0.05},  {16384, 1024, 0.028},
      {32768, 2048, 0.015},{65536, 4096, 0.004},{131072, 8192, 0.001},
  };

  // Passed ~67%, Failed ~7.3% of jobs but only ~4.9% of core hours (§IV-A).
  c.kill_base = 0.10;
  c.kill_max = 0.93;
  c.kill_log_mid = std::log(5400.0) + 1.9;
  c.kill_log_width = 1.1;
  c.fail_base = 0.08;

  // Longest waits of all systems: median ~1.5 h (Fig 4a).
  c.wait_zero_prob = 0.25;
  c.wait_zero_mean_s = 30.0;
  c.wait_log_med_s = 9000.0;
  c.wait_log_sigma = 1.0;  // tight spread: the rare middle/large size
                           // buckets need stable category means (Fig 5)
  c.wait_mult_small = 0.75;
  c.wait_mult_middle = 2.2;  // middle sizes are rare on BW; a strong
                             // multiplier keeps Fig 5's signal stable
  c.wait_mult_large = 0.8;
  c.wait_max_s = 5.0 * 86400.0;

  c.queue_size_beta = 0.25;
  c.queue_runtime_gamma = 0.0;

  c.templates_min = 8;
  c.templates_max = 16;
  c.zipf_s = 2.0;
  c.p_explore = 0.06;
  c.user_activity_s = 0.7;
  c.emit_walltime = true;
  return c;
}

SystemCalibration philly_calibration() {
  SystemCalibration c;
  c.spec = trace::philly_spec();
  c.duration_days = 120.0;
  c.num_users = 300;

  // ~115k jobs (Table I: 117,325) with gaps of median ~6 s.
  c.burst_prob = 0.70;
  c.burst_mean_s = 4.0;
  c.idle_mean_s = 70.0;
  c.hourly = philly_profile();  // *fewer* jobs at peak hours (Fig 1b)
  c.weekend_factor = 0.9;

  // Median runtime 12 min, very diverse (seconds to weeks, Fig 1a);
  // large training jobs run longer (cores^0.31), which pushes >8-GPU and
  // >1-day jobs to dominate GPU hours (Fig 2).
  c.log_run_mu = std::log(1300.0);
  c.log_run_sigma = 2.8;
  c.within_template_sigma = 0.06;
  c.size_runtime_corr = 0.62;
  c.run_min_s = 2.0;
  c.run_max_s = 30.0 * 86400.0;

  // ~80% single-GPU jobs (Fig 1c); max request ~128 GPUs (an order of
  // magnitude below Helios, §II-A).
  c.sizes = {
      {1, 1, 0.80},  {2, 1, 0.07},  {4, 1, 0.05},  {8, 1, 0.055},
      {16, 2, 0.02}, {32, 4, 0.008},{64, 8, 0.002},{128, 16, 0.0005},
  };

  // Highest failure rate of the five (~40% not Passed, §IV-A); pass rate
  // degrades with GPU count (Fig 7a).
  c.kill_base = 0.12;
  c.kill_max = 0.95;
  c.kill_log_mid = std::log(1300.0) + 2.6;
  c.kill_log_width = 1.3;
  c.fail_base = 0.14;
  c.fail_size_slope = 0.015;  // per log2(GPUs)
  c.kill_size_slope = 0.03;
  c.fail_trunc_lo = 0.01;
  c.fail_trunc_hi = 0.30;

  // >50% of jobs wait >=10 min despite low utilization (virtual-cluster
  // fragmentation, Fig 4a / Takeaway 6).
  c.wait_zero_prob = 0.25;
  c.wait_zero_mean_s = 8.0;
  c.wait_log_med_s = 1100.0;
  c.wait_log_sigma = 1.7;
  c.wait_mult_small = 0.8;
  c.wait_mult_middle = 1.5;
  c.wait_mult_large = 1.2;
  c.wait_load_lambda = 0.8;
  c.wait_max_s = 2.0 * 86400.0;
  // Weak runtime coupling: with the strong burst/same-user correlation a
  // large kappa would let a user's own long jobs congest the queue they
  // observe, masking the behavioural Fig 10 effect.
  c.wait_runtime_kappa = 0.12;

  // Strong DL queue sensitivity: ~100% 1-GPU submissions under long
  // queues (Fig 9) and shorter jobs under load (Fig 10).
  c.queue_size_beta = 1.1;
  c.queue_runtime_gamma = 1.5;

  c.templates_min = 9;
  c.templates_max = 15;
  c.zipf_s = 1.3;     // top-3 groups <60%, top-10 ~85-90% (Fig 8)
  c.p_explore = 0.07;
  c.emit_walltime = false;
  return c;
}

SystemCalibration helios_calibration() {
  SystemCalibration c;
  c.spec = trace::helios_spec();
  // Helios submits millions of jobs over its window; a 14-day slice keeps
  // every marginal identical while staying tractable (DESIGN.md §1).
  c.duration_days = 14.0;
  c.num_users = 550;

  // ~190k jobs in 14 days: ~80% of jobs arrive within 10 s of the previous
  // one (Fig 1b); strong 10x day/night peak (Fig 1b bottom).
  c.burst_prob = 0.80;
  c.burst_mean_s = 2.0;
  c.idle_mean_s = 22.0;
  c.hourly = day_peak_profile(2.3, 0.23);
  c.weekend_factor = 0.7;

  // Median runtime 90 s, the most diverse spread of all (Fig 1a).
  c.log_run_mu = std::log(90.0);
  c.log_run_sigma = 2.9;
  c.within_template_sigma = 0.06;
  c.size_runtime_corr = 0.52;
  c.run_min_s = 1.0;
  c.run_max_s = 14.0 * 86400.0;

  // ~80% single-GPU; maximum request 2048 GPUs (§II-A); single-GPU jobs
  // <5% of GPU hours (Fig 2).
  c.sizes = {
      {1, 1, 0.78},    {2, 1, 0.08},    {4, 1, 0.05},   {8, 1, 0.04},
      {16, 2, 0.02},   {32, 4, 0.015},  {64, 8, 0.01},  {128, 16, 0.003},
      {256, 32, 0.001},{512, 64, 0.0005},{1024, 128, 0.0003},
      {2048, 256, 0.0002},
  };

  c.kill_base = 0.12;
  c.kill_max = 0.93;
  c.kill_log_mid = std::log(90.0) + 3.4;
  c.kill_log_width = 1.2;
  c.fail_base = 0.12;
  c.fail_size_slope = 0.012;
  c.kill_size_slope = 0.025;
  c.fail_trunc_lo = 0.01;
  c.fail_trunc_hi = 0.30;

  // Minimal waits: ~80% of jobs wait <10 s (Fig 4a).
  c.wait_zero_prob = 0.80;
  c.wait_zero_mean_s = 3.0;
  c.wait_log_med_s = 150.0;
  c.wait_log_sigma = 1.6;
  c.wait_mult_small = 0.8;
  c.wait_mult_middle = 1.4;
  c.wait_mult_large = 1.2;
  c.wait_max_s = 86400.0;
  c.wait_runtime_kappa = 0.12;

  c.queue_size_beta = 1.0;
  c.queue_runtime_gamma = 1.5;

  c.templates_min = 9;
  c.templates_max = 15;
  c.zipf_s = 1.3;
  c.p_explore = 0.07;
  c.emit_walltime = false;
  return c;
}

std::vector<SystemCalibration> all_calibrations() {
  return {blue_waters_calibration(), mira_calibration(), theta_calibration(),
          philly_calibration(), helios_calibration()};
}

SystemCalibration calibration_for(std::string_view name) {
  const std::string key = util::to_lower(name);
  for (auto& c : all_calibrations()) {
    if (util::to_lower(c.spec.name) == key) return c;
  }
  if (key == "blue waters" || key == "blue_waters" || key == "bw") {
    return blue_waters_calibration();
  }
  throw InvalidArgument("no calibration for system: " + std::string(name));
}

}  // namespace lumos::synth
