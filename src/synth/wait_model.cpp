#include "synth/wait_model.hpp"

#include <algorithm>
#include <cmath>

namespace lumos::synth {

double WaitModel::multiplier(std::uint32_t cores, double run_s,
                             double load) const noexcept {
  double m = 1.0;
  switch (cal_.spec.size_category(cores)) {
    case trace::SizeCategory::Minimal:
    case trace::SizeCategory::Small:
      m *= cal_.wait_mult_small;
      break;
    case trace::SizeCategory::Middle:
      m *= cal_.wait_mult_middle;
      break;
    case trace::SizeCategory::Large:
      m *= cal_.wait_mult_large;
      break;
  }
  m *= 1.0 + cal_.wait_runtime_kappa * std::log1p(run_s / 3600.0);
  m *= 1.0 + cal_.wait_load_lambda * std::clamp(load, 0.0, 1.0);
  return m;
}

double WaitModel::sample(std::uint32_t cores, double run_s, double load,
                         util::Rng& rng) const {
  if (rng.bernoulli(cal_.wait_zero_prob)) {
    return rng.exponential(1.0 / std::max(cal_.wait_zero_mean_s, 1e-3));
  }
  const double base =
      rng.lognormal(std::log(cal_.wait_log_med_s), cal_.wait_log_sigma);
  return std::min(base * multiplier(cores, run_s, load), cal_.wait_max_s);
}

}  // namespace lumos::synth
