// DAG workflow synthesis and heavy-tail runtime injection.
//
// Produces workflow-structured traces for the DAG/hedging extension
// (DESIGN.md §4h): every workflow is a set of tasks connected by parent
// edges (Job::parents), submitted together and released by the simulator
// as parents finish. Three shapes cover the spectrum the scheduling
// literature studies: chains (maximal depth), fork-joins (maximal width,
// one straggler gates the sink), and random layered DAGs (both).
//
// The heavy-tail injector turns a seeded fraction of tasks into
// stragglers by inflating their runtime with a Pareto multiplier,
// recording the original sample in Job::hedge_run_time — the runtime a
// freshly launched duplicate would achieve. This is the workload knob
// the straggler-hedging ablation (bench/ext_dag_hedging) turns.
//
// Everything is deterministic for a given options struct: the same seed
// reproduces the same trace bit-for-bit.
#pragma once

#include <cstdint>
#include <string_view>

#include "trace/trace.hpp"

namespace lumos::synth {

/// Workflow topology family.
enum class WorkflowShape : std::uint8_t {
  Chain,          ///< t0 -> t1 -> ... -> tn-1
  ForkJoin,       ///< source -> n-2 parallel tasks -> sink
  RandomLayered,  ///< random layers, edges only between adjacent layers
};

[[nodiscard]] std::string_view to_string(WorkflowShape s) noexcept;
/// Parses "chain"/"forkjoin"/"layered" (case-insensitive); throws
/// InvalidArgument on anything else.
[[nodiscard]] WorkflowShape workflow_shape_from_string(std::string_view name);

struct DagWorkloadOptions {
  std::uint64_t seed = 42;
  std::size_t workflows = 64;
  WorkflowShape shape = WorkflowShape::RandomLayered;
  /// Tasks per workflow, drawn uniformly in [min_tasks, max_tasks]
  /// (fork-join needs >= 3; smaller draws are clamped).
  std::size_t min_tasks = 4;
  std::size_t max_tasks = 24;
  /// RandomLayered: cap on tasks per layer.
  std::size_t max_width = 8;
  /// RandomLayered: probability of each extra edge from the previous
  /// layer (every task always gets at least one parent there).
  double edge_prob = 0.35;
  /// Workflow interarrival times are exponential with this mean (s). The
  /// default keeps a 256-core cluster near half-loaded before heavy-tail
  /// inflation, leaving spare cores for hedged duplicates to land on.
  double mean_interarrival_s = 600.0;
  /// Task runtimes are lognormal(mu, sigma) seconds.
  double runtime_log_mu = 6.0;
  double runtime_log_sigma = 0.8;
  /// Walltime request = factor * runtime (the scheduler plans on this).
  double walltime_factor = 1.5;
  /// Task core counts, uniform in [min_cores, max_cores].
  std::uint32_t min_cores = 1;
  std::uint32_t max_cores = 16;
  /// Capacity of the single-partition synthetic system.
  std::uint32_t cluster_cores = 256;
};

/// Generates a workflow trace: submit-sorted, ids 0..n-1, Job::user set
/// to the owning workflow's index (analyses group tasks by user), and
/// dependencies validated acyclic before returning.
[[nodiscard]] trace::Trace generate_dag_workload(
    const DagWorkloadOptions& options);

struct HeavyTailOptions {
  std::uint64_t seed = 7;
  /// Probability that a task becomes a straggler.
  double fraction = 0.15;
  /// Pareto shape of the runtime multiplier; smaller = heavier tail
  /// (alpha <= 1 has infinite mean — 1.1 is a plausibly brutal default).
  double alpha = 1.1;
  /// Clamp on the multiplier so a single sample cannot dominate makespan.
  double max_multiplier = 50.0;
};

/// Returns a copy of `input` where a seeded Bernoulli(fraction) subset of
/// jobs runs Pareto(1, alpha)-times longer. Each straggler's original
/// runtime is recorded in Job::hedge_run_time, so a hedged duplicate
/// (which re-rolls the straggler lottery by construction) finishes in the
/// un-inflated time. Walltime requests are not touched: the scheduler
/// keeps planning on the user's estimate, exactly as real stragglers
/// blow through theirs.
[[nodiscard]] trace::Trace inject_heavy_tail(const trace::Trace& input,
                                             const HeavyTailOptions& options);

}  // namespace lumos::synth
