#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/string_util.hpp"

namespace lumos::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      os << row[c];
      for (std::size_t p = row[c].size(); p < widths[c]; ++p) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.render();
}

std::string percent(double fraction, int decimals) {
  return format("%.*f%%", decimals, fraction * 100.0);
}

std::string fixed(double value, int decimals) {
  return format("%.*f", decimals, value);
}

std::string with_commas(long long value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  if (value < 0) out.insert(out.begin(), '-');
  return out;
}

}  // namespace lumos::util
