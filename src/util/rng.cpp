#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <numeric>

#include "util/error.hpp"

namespace lumos::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // splitmix64 guarantees the state is not all-zero for any seed.
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded sampling; bias is negligible for
  // the ranges lumos uses, and we keep the rejection loop for exactness.
  if (n == 0) return 0;
  const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) noexcept {
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::pareto(double xm, double alpha) noexcept {
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::categorical(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;
}

Rng Rng::split() noexcept {
  return Rng(next() ^ 0xa0761d6478bd642fULL);
}

AliasTable::AliasTable(std::span<const double> weights) {
  LUMOS_REQUIRE(!weights.empty(), "AliasTable needs at least one weight");
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    LUMOS_REQUIRE(w >= 0.0, "AliasTable weights must be non-negative");
    total += w;
  }
  LUMOS_REQUIRE(total > 0.0, "AliasTable needs a positive total weight");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t AliasTable::sample(Rng& rng) const noexcept {
  const std::size_t i = rng.uniform_index(prob_.size());
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace lumos::util
