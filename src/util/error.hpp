// Error types shared across the lumos libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace lumos {

/// Base class for all lumos-originated errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A malformed input file (SWF/CSV trace, calibration file, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A caller violated a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Internal invariant violation; indicates a bug in lumos itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid(const std::string& what) {
  throw InvalidArgument(what);
}
}  // namespace detail

/// Checks a precondition and throws InvalidArgument when violated.
/// Used at public API boundaries where the cost is irrelevant.
#define LUMOS_REQUIRE(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::lumos::detail::throw_invalid(std::string("precondition failed: ") + \
                                     (msg));                            \
    }                                                                   \
  } while (false)

}  // namespace lumos
