// Deterministic random number generation for reproducible experiments.
//
// All stochastic components in lumos (workload synthesis, ML initialisation,
// bootstrap resampling) draw from `Rng`, a thin wrapper around
// xoshiro256** seeded via splitmix64. A given seed therefore reproduces a
// whole experiment bit-for-bit across runs and platforms, which is the
// property the paper's simulation methodology depends on.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace lumos::util {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Next 64 random bits.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box–Muller (cached pair).
  double normal() noexcept;
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Log-normal: exp(N(mu, sigma)); parameters are of the underlying normal.
  double lognormal(double mu, double sigma) noexcept;
  /// Exponential with the given rate (mean = 1/rate).
  double exponential(double rate) noexcept;
  /// Pareto (type I) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) noexcept;
  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) noexcept;
  /// Samples an index according to `weights` (unnormalised, non-negative).
  std::size_t categorical(std::span<const double> weights) noexcept;

  /// Splits off an independent child generator (for per-thread streams).
  Rng split() noexcept;

  /// Complete generator state, exposed so stateful consumers (the
  /// quantile-sketch compaction coin, checkpointed streams) can snapshot
  /// and restore a generator bit-for-bit mid-stream. `words` is never
  /// all-zero for a generator produced by the seeding constructor.
  struct State {
    std::array<std::uint64_t, 4> words{};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };
  [[nodiscard]] State state() const noexcept {
    return State{state_, cached_normal_, has_cached_normal_};
  }
  /// Restores a previously captured state; the restored generator
  /// produces exactly the sequence the captured one would have.
  void set_state(const State& s) noexcept {
    state_ = s.words;
    cached_normal_ = s.cached_normal;
    has_cached_normal_ = s.has_cached_normal;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform_index(i)]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Precomputed alias table for repeated sampling from one fixed discrete
/// distribution in O(1) per draw (Walker's alias method).
class AliasTable {
 public:
  AliasTable() = default;
  /// Builds the table from unnormalised non-negative weights (at least one
  /// weight must be positive).
  explicit AliasTable(std::span<const double> weights);

  /// Number of categories.
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }
  [[nodiscard]] bool empty() const noexcept { return prob_.empty(); }

  /// Draws a category index.
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace lumos::util
