// Failpoints: deterministic fault injection for library error paths.
//
// A failpoint is a named site in library code (`LUMOS_FAILPOINT("name")`)
// where a test can inject a failure. Sites compile to nothing unless the
// build defines LUMOS_FAILPOINTS (the `failpoints` CMake preset; the
// sanitize/tsan presets also enable it so injected error paths run under
// ASan/UBSan and TSan). When compiled in, every evaluation consults the
// process-wide FailpointRegistry; an *armed* site throws InjectedFault — a
// typed lumos::Error — which must propagate to the caller like any other
// library error: no crashes, hangs, or silently truncated results. The
// registry keeps per-site evaluation and fire counts so tests can assert a
// site was actually reached.
//
// This header sits below every other lumos library (util::ThreadPool
// threads a failpoint through task execution), so it depends only on the
// header-only util/error.hpp and util/annotations.hpp. That position is
// why it lives in src/util/ rather than src/fault/: trace, obs, and util
// itself evaluate failpoints, and the module layer DAG
// (tools/lint/layers.txt) places fault — the stochastic MTBF/MTTR node
// failure model — above those layers. The injection vocabulary keeps the
// lumos::fault namespace: an armed site throws fault::InjectedFault no
// matter which layer hosts the site.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "util/annotations.hpp"
#include "util/error.hpp"

namespace lumos::fault {

/// The error an armed failpoint throws. Deriving from lumos::Error means
/// every documented error-propagation path (parser ParseError handling
/// excepted — an injected fault is *not* a malformed row and must never be
/// swallowed by a lenient-parse budget) carries it to the caller typed.
class InjectedFault : public Error {
 public:
  explicit InjectedFault(const std::string& site)
      : Error("injected fault at failpoint: " + site) {}
};

/// Process-wide registry of failpoint sites. Thread-safe: sites are hit
/// from ThreadPool workers under TSan.
class FailpointRegistry {
 public:
  /// The registry consulted by LUMOS_FAILPOINT.
  [[nodiscard]] static FailpointRegistry& global();

  /// Arming parameters: let `skip` evaluations pass, then fire on the next
  /// `fire` evaluations (0 = every evaluation until disarmed).
  struct Arm {
    std::uint64_t skip = 0;
    std::uint64_t fire = 1;
  };

  /// Arms `name`; re-arming replaces the previous arming but keeps counts.
  void arm(const std::string& name, Arm arm) LUMOS_EXCLUDES(mutex_);
  /// Arms `name` to fire on its next evaluation.
  void arm(const std::string& name) { arm(name, Arm{}); }
  /// Disarms `name` (counts survive until reset()).
  void disarm(const std::string& name) LUMOS_EXCLUDES(mutex_);
  /// Disarms every site and zeroes all counts — call between tests.
  void reset() LUMOS_EXCLUDES(mutex_);

  /// Evaluations observed at `name` (only counted in LUMOS_FAILPOINTS
  /// builds, where sites actually consult the registry).
  [[nodiscard]] std::uint64_t evaluations(std::string_view name) const
      LUMOS_EXCLUDES(mutex_);
  /// Times `name` actually fired.
  [[nodiscard]] std::uint64_t fired(std::string_view name) const
      LUMOS_EXCLUDES(mutex_);

  /// One evaluation of site `name`: bumps counts and reports whether the
  /// site should fail now. Called by LUMOS_FAILPOINT; tests normally use
  /// arm()/fired() instead.
  [[nodiscard]] bool should_fire(std::string_view name)
      LUMOS_EXCLUDES(mutex_);

 private:
  struct State {
    bool armed = false;
    Arm arm;
    std::uint64_t evaluations = 0;
    std::uint64_t fired = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, State, std::less<>> sites_ LUMOS_GUARDED_BY(mutex_);
};

/// Out-of-line throw keeps the macro expansion tiny.
[[noreturn]] void throw_injected(const char* name);

}  // namespace lumos::fault

#ifdef LUMOS_FAILPOINTS
/// Evaluates the named failpoint: throws fault::InjectedFault when armed.
#define LUMOS_FAILPOINT(name)                                        \
  do {                                                               \
    if (::lumos::fault::FailpointRegistry::global().should_fire(     \
            (name))) {                                               \
      ::lumos::fault::throw_injected((name));                        \
    }                                                                \
  } while (false)
#else
#define LUMOS_FAILPOINT(name) ((void)0)
#endif
