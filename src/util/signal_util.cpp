#include "util/signal_util.hpp"

#include <atomic>
#include <csignal>

#include "util/annotations.hpp"
#include "util/error.hpp"

namespace lumos::util {

namespace {

// Lock-free atomic stores are async-signal-safe; sig_atomic_t would also
// do but cannot carry *which* signal arrived.
std::atomic<int> g_shutdown_signal{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free atomic");

extern "C" LUMOS_SIGNAL_HANDLER void lumos_on_shutdown_signal(int sig) {
  g_shutdown_signal.store(sig, std::memory_order_relaxed);
}

}  // namespace

void install_shutdown_signals() {
  struct sigaction action {};
  action.sa_handler = lumos_on_shutdown_signal;
  sigemptyset(&action.sa_mask);
  // Deliberately no SA_RESTART: a blocking read must come back EINTR so
  // the ingest loop can notice the flag (see the header comment).
  action.sa_flags = 0;
  for (const int sig : {SIGTERM, SIGINT}) {
    if (sigaction(sig, &action, nullptr) != 0) {
      throw InternalError("install_shutdown_signals: sigaction failed");
    }
  }
}

bool shutdown_requested() noexcept {
  return g_shutdown_signal.load(std::memory_order_relaxed) != 0;
}

int shutdown_signal() noexcept {
  return g_shutdown_signal.load(std::memory_order_relaxed);
}

void clear_shutdown_request() noexcept {
  g_shutdown_signal.store(0, std::memory_order_relaxed);
}

}  // namespace lumos::util
