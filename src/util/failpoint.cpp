#include "util/failpoint.hpp"

namespace lumos::fault {

FailpointRegistry& FailpointRegistry::global() {
  static FailpointRegistry registry;
  return registry;
}

void FailpointRegistry::arm(const std::string& name, Arm arm) {
  util::ScopedLock lock(mutex_);
  State& state = sites_[name];
  state.armed = true;
  state.arm = arm;
}

void FailpointRegistry::disarm(const std::string& name) {
  util::ScopedLock lock(mutex_);
  const auto it = sites_.find(name);
  if (it != sites_.end()) it->second.armed = false;
}

void FailpointRegistry::reset() {
  util::ScopedLock lock(mutex_);
  sites_.clear();
}

std::uint64_t FailpointRegistry::evaluations(std::string_view name) const {
  util::ScopedLock lock(mutex_);
  const auto it = sites_.find(name);
  return it == sites_.end() ? 0 : it->second.evaluations;
}

std::uint64_t FailpointRegistry::fired(std::string_view name) const {
  util::ScopedLock lock(mutex_);
  const auto it = sites_.find(name);
  return it == sites_.end() ? 0 : it->second.fired;
}

bool FailpointRegistry::should_fire(std::string_view name) {
  util::ScopedLock lock(mutex_);
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    it = sites_.emplace(std::string(name), State{}).first;
  }
  State& state = it->second;
  ++state.evaluations;
  if (!state.armed) return false;
  if (state.arm.skip > 0) {
    --state.arm.skip;
    return false;
  }
  if (state.arm.fire == 0) {  // unlimited until disarmed
    ++state.fired;
    return true;
  }
  --state.arm.fire;
  if (state.arm.fire == 0) state.armed = false;
  ++state.fired;
  return true;
}

void throw_injected(const char* name) { throw InjectedFault(name); }

}  // namespace lumos::fault
