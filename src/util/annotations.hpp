// Clang thread-safety-analysis capability macros.
//
// Under Clang these expand to the `capability`/`guarded_by`/... attributes
// so that `-Wthread-safety` statically proves lock discipline: every access
// to a LUMOS_GUARDED_BY member must hold the named mutex, functions marked
// LUMOS_REQUIRES can only be called with the capability held, and
// LUMOS_ACQUIRE/LUMOS_RELEASE document lock-transferring helpers. Under
// GCC (which has no such analysis) every macro is a no-op, so annotated
// headers stay portable.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LUMOS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef LUMOS_THREAD_ANNOTATION
#define LUMOS_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability (std::mutex already is one; use
/// this for wrapper types that own a lock).
#define LUMOS_CAPABILITY(x) LUMOS_THREAD_ANNOTATION(capability(x))

/// Member/global data that must only be touched with `x` held.
#define LUMOS_GUARDED_BY(x) LUMOS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer whose pointee is guarded by `x` (the pointer itself is not).
#define LUMOS_PT_GUARDED_BY(x) LUMOS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called with the capabilities held.
#define LUMOS_REQUIRES(...) \
  LUMOS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must be called WITHOUT the capabilities held.
#define LUMOS_EXCLUDES(...) LUMOS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability and returns with it held.
#define LUMOS_ACQUIRE(...) \
  LUMOS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases a held capability before returning.
#define LUMOS_RELEASE(...) \
  LUMOS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// RAII type that acquires on construction and releases on destruction.
#define LUMOS_SCOPED_CAPABILITY LUMOS_THREAD_ANNOTATION(scoped_lockable)

/// Escape hatch for code the analysis cannot model (e.g. init/teardown
/// paths that are single-threaded by construction). Use sparingly and
/// leave a comment explaining why the access is safe.
#define LUMOS_NO_THREAD_SAFETY_ANALYSIS \
  LUMOS_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Marks a function definition as simulator-hot-path code. Expands to
/// nothing at compile time; lumos_lint's hot-path pass (tools/lint/
/// hotpath.hpp) scans every marked body and fails on heap allocation,
/// node-container construction, lock acquisition, stream I/O, throw, and
/// std::regex. Put it before the return type of the *definition*:
///
///     LUMOS_HOT_PATH void push(Event event) { ... }
///
/// Individual findings inside a marked body can be waived with
///     // lumos-lint: allow(<rule>) <reason>
/// on the offending line or the line above — used for genuine invariant
/// throws that never fire on the happy path.
#define LUMOS_HOT_PATH

/// Marks a function definition as an async signal handler (or code that
/// runs in signal context). Expands to nothing at compile time;
/// lumos_lint's marker pass (tools/lint/hotpath.hpp) scans every marked
/// body and fails on anything that is not async-signal-safe: heap
/// allocation, stream I/O / printf-family formatting, lock acquisition,
/// and `throw` (unwinding out of a handler is undefined). A handler body
/// may only touch lock-free atomics, sig_atomic_t, and raw syscalls like
/// write(2). Put it before the return type of the *definition*:
///
///     extern "C" LUMOS_SIGNAL_HANDLER void on_term(int sig) { ... }
#define LUMOS_SIGNAL_HANDLER

namespace lumos::util {

/// std::unique_lock with capability annotations. libstdc++'s lock types
/// carry no thread-safety attributes, so Clang's analysis cannot see that
/// they hold the mutex; this wrapper is the annotated equivalent (the
/// pattern from the Clang thread-safety docs). `native()` exposes the
/// underlying unique_lock for condition-variable waits — the capability
/// is considered held across the wait, which matches how guarded state
/// may be touched in the predicate.
class LUMOS_SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(std::mutex& mutex) LUMOS_ACQUIRE(mutex)
      : lock_(mutex) {}
  ~ScopedLock() LUMOS_RELEASE() {}

  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

  [[nodiscard]] std::unique_lock<std::mutex>& native() noexcept {
    return lock_;
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace lumos::util
