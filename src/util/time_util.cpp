#include "util/time_util.hpp"

#include <cmath>

#include "util/string_util.hpp"

namespace lumos::util {

namespace {
double local_seconds(double t, std::int64_t epoch_unix,
                     double utc_offset_hours) noexcept {
  return t + static_cast<double>(epoch_unix) + utc_offset_hours * kHour;
}
}  // namespace

int hour_of_day(double t, std::int64_t epoch_unix,
                double utc_offset_hours) noexcept {
  const double s = local_seconds(t, epoch_unix, utc_offset_hours);
  double day_sec = std::fmod(s, kDay);
  if (day_sec < 0) day_sec += kDay;
  return static_cast<int>(day_sec / kHour) % 24;
}

int day_of_week(double t, std::int64_t epoch_unix,
                double utc_offset_hours) noexcept {
  const double s = local_seconds(t, epoch_unix, utc_offset_hours);
  // Unix epoch (1970-01-01) was a Thursday = index 3 with Monday = 0.
  double days = std::floor(s / kDay);
  long long d = static_cast<long long>(days) + 3;
  long long w = d % 7;
  if (w < 0) w += 7;
  return static_cast<int>(w);
}

std::string format_duration(double seconds) {
  const double a = std::fabs(seconds);
  if (a < kMinute) return format("%.0fs", seconds);
  if (a < kHour) return format("%.1fm", seconds / kMinute);
  if (a < kDay) return format("%.1fh", seconds / kHour);
  return format("%.1fd", seconds / kDay);
}

}  // namespace lumos::util
