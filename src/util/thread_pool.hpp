// A fixed-size thread pool with a parallel_for convenience wrapper.
//
// Used for embarrassingly parallel sweeps (per-system analyses, prediction
// model grids). Work is chunked to amortise queue overhead; exceptions from
// worker tasks are rethrown on the calling thread.
//
// Shutdown contract: `shutdown()` (also run by the destructor) drains every
// task already queued — nothing is silently dropped — and any later
// `submit`/`parallel_for` fails deterministically with InternalError
// instead of queueing work no worker will ever run.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "util/failpoint.hpp"
#include "util/annotations.hpp"
#include "util/error.hpp"

namespace lumos::util {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Equivalent to `shutdown()`: drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Usage counters, for observability. The pool maintains them itself
  /// (it sits below lumos_obs in the layering); callers publish them into
  /// a registry when they want them exported.
  struct Stats {
    std::size_t threads = 0;          ///< worker count
    std::uint64_t tasks_run = 0;      ///< tasks executed to completion
    std::size_t max_queue_depth = 0;  ///< queue high-water mark
  };
  [[nodiscard]] Stats stats() const LUMOS_EXCLUDES(mutex_);

  /// Stops accepting work, runs every already-queued task to completion,
  /// and joins the workers. Idempotent; afterwards `submit` throws.
  void shutdown() LUMOS_EXCLUDES(mutex_);

  /// Enqueues a task; the returned future rethrows task exceptions.
  /// Throws InternalError if the pool has been shut down.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>>
      LUMOS_EXCLUDES(mutex_) {
    using R = std::invoke_result_t<F>;
    // The failpoint sits inside the packaged task so an injected fault
    // surfaces on the caller's future exactly like a task exception would.
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(f)]() mutable -> R {
          LUMOS_FAILPOINT("util.thread_pool.task");
          return fn();
        });
    std::future<R> fut = task->get_future();
    {
      ScopedLock lock(mutex_);
      if (stop_) {
        throw InternalError("ThreadPool::submit called after shutdown");
      }
      queue_.emplace_back([task] { (*task)(); });
      max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs f(i) for i in [begin, end) across the pool; blocks until every
  /// chunk finishes, then rethrows the exception (if any) from the chunk
  /// covering the lowest indices — deterministic regardless of worker
  /// scheduling, and the pool stays reusable afterwards.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& f)
      LUMOS_EXCLUDES(mutex_);

 private:
  void worker_loop() LUMOS_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_ LUMOS_GUARDED_BY(mutex_);
  bool stop_ LUMOS_GUARDED_BY(mutex_) = false;
  std::size_t max_queue_depth_ LUMOS_GUARDED_BY(mutex_) = 0;
  std::atomic<std::uint64_t> tasks_run_{0};
};

}  // namespace lumos::util
