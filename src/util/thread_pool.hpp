// A fixed-size thread pool with a parallel_for convenience wrapper.
//
// Used for embarrassingly parallel sweeps (per-system analyses, prediction
// model grids). Work is chunked to amortise queue overhead; exceptions from
// worker tasks are rethrown on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace lumos::util {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future rethrows task exceptions.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs f(i) for i in [begin, end) across the pool; blocks until every
  /// chunk finishes, then rethrows the exception (if any) from the chunk
  /// covering the lowest indices — deterministic regardless of worker
  /// scheduling, and the pool stays reusable afterwards.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& f);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace lumos::util
