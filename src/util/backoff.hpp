// Deterministic capped exponential backoff — the one retry schedule.
//
// Both the bench supervisor (supervise::run_supervised, retrying whole
// child processes) and the streaming event sources (stream::EventSource,
// retrying transient open/read failures) pace retries with the same
// schedule: base * 2^(retry-1), capped. Keeping the arithmetic here means
// the two layers cannot drift apart, and tests can assert a schedule
// without sleeping (both layers take an injectable sleep hook).
#pragma once

#include <algorithm>
#include <cstddef>

#include "util/error.hpp"

namespace lumos::util {

/// Delay before 1-based retry `retry_index`: base * 2^(retry_index - 1),
/// capped at `cap_seconds`. Deterministic — no jitter, by design: lumos
/// retry schedules must reproduce bit-for-bit in drills and tests.
[[nodiscard]] inline double backoff_delay_seconds(double base_seconds,
                                                  double cap_seconds,
                                                  std::size_t retry_index) {
  LUMOS_REQUIRE(retry_index >= 1, "backoff: retry_index is 1-based");
  double delay = base_seconds;
  for (std::size_t i = 1; i < retry_index; ++i) {
    delay *= 2.0;
    if (delay >= cap_seconds) break;
  }
  return std::min(delay, cap_seconds);
}

}  // namespace lumos::util
