#include "util/csv.hpp"

#include <istream>
#include <ostream>

#include "util/error.hpp"

namespace lumos::util {

CsvReader::CsvReader(std::istream& in, char delim, bool has_header)
    : in_(in), delim_(delim) {
  if (has_header) {
    CsvRow row;
    if (next(row)) {
      header_ = row;
      for (std::size_t i = 0; i < header_.size(); ++i) {
        columns_.emplace(header_[i], i);
      }
    }
  }
}

std::optional<std::size_t> CsvReader::column(std::string_view name) const {
  const auto it = columns_.find(std::string(name));
  if (it == columns_.end()) return std::nullopt;
  return it->second;
}

bool CsvReader::next(CsvRow& row) {
  row.clear();
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  int c;
  while ((c = in_.get()) != std::istream::traits_type::eof()) {
    saw_any = true;
    const char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (in_.peek() == '"') {
          field.push_back('"');
          in_.get();
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(ch);
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == delim_) {
      row.push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      ++line_;
      row.push_back(std::move(field));
      return true;
    } else if (ch != '\r') {
      field.push_back(ch);
    }
  }
  if (!saw_any) return false;
  ++line_;
  row.push_back(std::move(field));
  return true;
}

CsvWriter::CsvWriter(std::ostream& out, char delim)
    : out_(out), delim_(delim) {}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << delim_;
    out_ << csv_escape(fields[i], delim_);
  }
  out_ << '\n';
}

std::string csv_escape(std::string_view field, char delim) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace lumos::util
