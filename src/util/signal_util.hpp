// Cooperative shutdown signaling for long-running drivers.
//
// A daemon that dies mid-write loses everything since its last
// checkpoint; one that catches SIGTERM/SIGINT can flush a final
// checkpoint + report first (stream::run_ingest does exactly that — see
// DESIGN.md "Streaming mode", crash consistency). The handler installed
// here is the async-signal-safe minimum: it stores the signal number into
// a lock-free atomic and returns. Everything else — noticing the flag,
// flushing, exiting — happens on the normal control path, which polls
// `shutdown_requested()` at loop granularity.
//
// The handlers are installed WITHOUT SA_RESTART, so a blocking read(2)
// returns EINTR when a shutdown signal lands and the loop notices
// immediately instead of after the next byte arrives. EINTR-safe readers
// (stream::EventSource) treat that as "check the flag, then retry".
//
// Process-wide by necessity (signal dispositions are); the flag is
// test-resettable via clear_shutdown_request().
#pragma once

namespace lumos::util {

/// Installs SIGTERM and SIGINT handlers that record the signal in the
/// process-wide shutdown flag. Idempotent. Throws lumos::InternalError
/// if sigaction fails.
void install_shutdown_signals();

/// True once a shutdown signal has been received.
[[nodiscard]] bool shutdown_requested() noexcept;

/// The signal that requested shutdown (SIGTERM/SIGINT), or 0.
[[nodiscard]] int shutdown_signal() noexcept;

/// Clears the flag (tests, and drivers that run multiple ingest rounds).
void clear_shutdown_request() noexcept;

}  // namespace lumos::util
