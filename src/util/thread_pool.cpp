#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace lumos::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    ScopedLock lock(mutex_);
    if (stop_ && workers_.empty()) return;  // already shut down
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  // Workers only exit once the queue is empty, so every task submitted
  // before shutdown() has run — the drain guarantee documented in the
  // header. Holding the lock here is for the analysis only: the workers
  // are gone, so there is no contention left.
  ScopedLock lock(mutex_);
  assert(queue_.empty() && "ThreadPool shutdown dropped queued tasks");
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      ScopedLock lock(mutex_);
      cv_.wait(lock.native(), [this]() LUMOS_REQUIRES(mutex_) {
        return stop_ || !queue_.empty();
      });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.threads = workers_.size();
  s.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  ScopedLock lock(mutex_);
  s.max_queue_depth = max_queue_depth_;
  return s;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& f) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, size() * 4);
  if (chunks == 0) {
    throw InternalError("ThreadPool::parallel_for called after shutdown");
  }
  const std::size_t chunk = (n + chunks - 1) / chunks;

  // One error slot per chunk: after all chunks finish, the exception from
  // the lowest-index (= lowest-i) chunk is rethrown, so which exception
  // surfaces does not depend on worker scheduling.
  std::vector<std::exception_ptr> errors(chunks);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &f, slot = &errors[c]] {
      try {
        for (std::size_t i = lo; i < hi; ++i) f(i);
      } catch (...) {
        *slot = std::current_exception();
      }
    }));
  }
  // Every future must be drained before anything is rethrown. A bare
  // fut.get() loop would rethrow exceptions that escape the task wrapper
  // itself (e.g. an injected failpoint in submit's instrumentation) as
  // soon as that chunk's future is reached — in race order, and while
  // later chunks still reference `f` and `errors` on this stack frame.
  // Catching into the chunk's slot keeps propagation deterministic
  // (lowest chunk wins) and keeps the frame alive until all chunks stop.
  for (std::size_t c = 0; c < futures.size(); ++c) {
    try {
      futures[c].get();
    } catch (...) {
      if (!errors[c]) errors[c] = std::current_exception();
    }
  }
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace lumos::util
