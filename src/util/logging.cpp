#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "util/annotations.hpp"

namespace lumos::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

// The sink (stderr today) is a process-wide shared resource: interleaved
// writes from concurrent sweeps would shear lines, so every emission goes
// through g_log_mutex. g_sink is lazily bound so the guarded pointer —
// not a bare global FILE* — is the only way to reach the stream.
std::mutex g_log_mutex;
std::FILE* g_sink LUMOS_GUARDED_BY(g_log_mutex) = nullptr;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load() || level == LogLevel::Off) return;
  ScopedLock lock(g_log_mutex);
  if (g_sink == nullptr) g_sink = stderr;
  std::fprintf(g_sink, "[lumos][%s] %s\n", level_name(level), message.c_str());
  std::fflush(g_sink);
}

}  // namespace lumos::util
