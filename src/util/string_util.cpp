#include "util/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace lumos::util {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_whitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<double> parse_double(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<long long> parse_int(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long value = 0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args2);
    out.resize(static_cast<std::size_t>(n));
  }
  va_end(args2);
  return out;
}

}  // namespace lumos::util
