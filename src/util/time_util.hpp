// Time helpers: seconds-based durations, human formatting, local hour-of-day.
//
// All lumos timestamps are doubles in seconds relative to a trace epoch;
// the trace carries the epoch as a Unix timestamp plus a UTC offset so the
// diurnal analyses (Fig 1b) can recover local hour-of-day, matching the
// paper's "we always use their local time" rule.
#pragma once

#include <cstdint>
#include <string>

namespace lumos::util {

inline constexpr double kSecond = 1.0;
inline constexpr double kMinute = 60.0;
inline constexpr double kHour = 3600.0;
inline constexpr double kDay = 86400.0;
inline constexpr double kWeek = 7.0 * kDay;

/// Local hour-of-day (0..23) for `t` seconds after an epoch that itself is
/// `epoch_unix` seconds after the Unix epoch, in a zone `utc_offset_hours`
/// ahead of UTC (negative = behind).
[[nodiscard]] int hour_of_day(double t, std::int64_t epoch_unix,
                              double utc_offset_hours) noexcept;

/// Local day-of-week, 0 = Monday .. 6 = Sunday (Unix epoch was a Thursday).
[[nodiscard]] int day_of_week(double t, std::int64_t epoch_unix,
                              double utc_offset_hours) noexcept;

/// "90s" / "12.0m" / "1.5h" / "2.3d" — compact duration for reports.
[[nodiscard]] std::string format_duration(double seconds);

}  // namespace lumos::util
