// Lightweight leveled logging to stderr.
//
// Library code logs sparingly (parser warnings, calibration notes); bench
// and example binaries may raise the level for progress reporting.
#pragma once

#include <sstream>
#include <string>

namespace lumos::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one line ("[lumos][WARN] message") to stderr, thread-safely.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_message(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace lumos::util

#define LUMOS_LOG(level)                                  \
  if (::lumos::util::log_level() <= (level))              \
  ::lumos::util::detail::LogStream(level)

#define LUMOS_DEBUG LUMOS_LOG(::lumos::util::LogLevel::Debug)
#define LUMOS_INFO LUMOS_LOG(::lumos::util::LogLevel::Info)
#define LUMOS_WARN LUMOS_LOG(::lumos::util::LogLevel::Warn)
#define LUMOS_ERROR LUMOS_LOG(::lumos::util::LogLevel::Error)
