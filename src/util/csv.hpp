// Minimal RFC-4180-ish CSV reading and writing.
//
// Handles quoted fields with embedded delimiters/quotes/newlines, header
// rows, and column lookup by name — enough for the Philly/Helios/ALCF trace
// dialects without pulling in a dependency.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lumos::util {

/// One parsed CSV record.
using CsvRow = std::vector<std::string>;

/// Streaming CSV reader over any std::istream.
class CsvReader {
 public:
  /// `has_header`: consume the first record as the header row.
  explicit CsvReader(std::istream& in, char delim = ',',
                     bool has_header = true);

  /// Header fields (empty when constructed with has_header=false).
  [[nodiscard]] const CsvRow& header() const noexcept { return header_; }

  /// Index of a named column, or nullopt when absent.
  [[nodiscard]] std::optional<std::size_t> column(
      std::string_view name) const;

  /// Reads the next record into `row`; returns false at end of input.
  bool next(CsvRow& row);

  /// 1-based line number of the last record read (for error messages).
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::istream& in_;
  char delim_;
  CsvRow header_;
  std::unordered_map<std::string, std::size_t> columns_;
  std::size_t line_ = 0;
};

/// Streaming CSV writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char delim = ',');

  /// Writes one record, quoting fields as needed.
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
  char delim_;
};

/// Quotes a single field if it contains the delimiter, quotes or newlines.
[[nodiscard]] std::string csv_escape(std::string_view field, char delim);

}  // namespace lumos::util
