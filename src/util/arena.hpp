// Monotonic chunked arena allocator.
//
// Serves aligned, never-individually-freed allocations from geometrically
// growing chunks; `reset()` recycles every chunk without returning memory
// to the system. Built for event-loop scratch storage (the calendar event
// queue's bucket lanes, rebuilt wholesale on every queue resize): in
// steady state the hot path performs zero heap allocations, and the waste
// from abandoned lanes is bounded by one reset cycle.
//
// Not thread-safe: one arena belongs to one simulator shard. Types placed
// in an arena must be trivially destructible (nothing runs destructors).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace lumos::util {

class Arena {
 public:
  /// First chunk size in bytes; later chunks double up to `kMaxChunk`.
  explicit Arena(std::size_t first_chunk_bytes = 4096)
      : next_chunk_bytes_(first_chunk_bytes < kMinChunk ? kMinChunk
                                                        : first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialised storage for `count` objects of T, aligned for T.
  /// T must be trivially destructible — reset() never runs destructors.
  template <typename T>
  [[nodiscard]] T* allocate(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is reclaimed without running destructors");
    return static_cast<T*>(allocate_bytes(count * sizeof(T), alignof(T)));
  }

  /// Recycles every chunk: subsequent allocations reuse the same memory.
  /// Everything previously allocated is invalidated.
  void reset() noexcept {
    chunk_index_ = 0;
    offset_ = 0;
  }

  /// Total bytes currently reserved across all chunks (capacity, not use).
  [[nodiscard]] std::size_t reserved_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c.size;
    return total;
  }

  /// Bytes handed out since the last reset (including alignment padding).
  [[nodiscard]] std::size_t used_bytes() const noexcept {
    std::size_t total = 0;
    for (std::size_t i = 0; i + 1 < chunks_.size() && i < chunk_index_; ++i) {
      total += chunks_[i].size;
    }
    return chunks_.empty() ? 0 : total + offset_;
  }

 private:
  static constexpr std::size_t kMinChunk = 256;
  static constexpr std::size_t kMaxChunk = std::size_t{1} << 22;  // 4 MiB

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  [[nodiscard]] void* allocate_bytes(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    for (;;) {
      if (chunk_index_ < chunks_.size()) {
        Chunk& chunk = chunks_[chunk_index_];
        const auto base = reinterpret_cast<std::uintptr_t>(chunk.data.get());
        const std::size_t aligned =
            (base + offset_ + (align - 1)) / align * align - base;
        if (aligned + bytes <= chunk.size) {
          offset_ = aligned + bytes;
          return chunk.data.get() + aligned;
        }
        // Chunk exhausted; move on (recycled chunks keep their storage).
        ++chunk_index_;
        offset_ = 0;
        continue;
      }
      std::size_t size = next_chunk_bytes_;
      if (size < bytes + align) size = bytes + align;
      chunks_.push_back({std::make_unique<std::byte[]>(size), size});
      if (next_chunk_bytes_ < kMaxChunk) next_chunk_bytes_ *= 2;
    }
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_index_ = 0;       ///< chunk currently being filled
  std::size_t offset_ = 0;            ///< fill offset within that chunk
  std::size_t next_chunk_bytes_;
};

}  // namespace lumos::util
