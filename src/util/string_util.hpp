// Small string helpers used by the trace parsers and report renderers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lumos::util {

/// Splits `s` on `delim`, keeping empty fields (CSV semantics).
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char delim);

/// Splits on arbitrary runs of whitespace, dropping empty fields
/// (SWF semantics).
[[nodiscard]] std::vector<std::string_view> split_whitespace(
    std::string_view s);

/// Strips leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Parses a double; returns nullopt on any trailing garbage or empty input.
[[nodiscard]] std::optional<double> parse_double(std::string_view s) noexcept;

/// Parses a signed 64-bit integer; returns nullopt on failure.
[[nodiscard]] std::optional<long long> parse_int(std::string_view s) noexcept;

/// True when `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s,
                               std::string_view prefix) noexcept;

/// Lower-cases ASCII.
[[nodiscard]] std::string to_lower(std::string_view s);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace lumos::util
