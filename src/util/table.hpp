// Fixed-width text table rendering for the bench harnesses and reports.
//
// Every figure/table binary prints its reproduction as one of these tables
// so the output diff against the paper's numbers is easy to eyeball.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lumos::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one data row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with column alignment and a header underline.
  [[nodiscard]] std::string render() const;

  /// Convenience: render straight into a stream.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.3%"-style helper.
[[nodiscard]] std::string percent(double fraction, int decimals = 1);
/// Fixed-decimal double.
[[nodiscard]] std::string fixed(double value, int decimals = 2);
/// Thousands-separated integer.
[[nodiscard]] std::string with_commas(long long value);

}  // namespace lumos::util
