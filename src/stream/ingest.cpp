#include "stream/ingest.hpp"

#include <chrono>
#include <istream>
#include <memory>
#include <string_view>
#include <thread>
#include <utility>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "stream/checkpoint.hpp"
#include "stream/snapshot.hpp"
#include "trace/parse.hpp"
#include "trace/swf.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/signal_util.hpp"
#include "util/string_util.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace lumos::stream {

double peak_rss_mb() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB on Linux
#endif
#else
  return 0.0;
#endif
}

obs::Json make_report_document(const IngestResult& result,
                               const std::string& source) {
  obs::Report report;
  report.harness = "lumos_serve";
  report.figure = "streaming characterization (DESIGN.md Streaming mode)";
  report.wall_seconds = result.wall_seconds;
  result.characterizer.publish(report, "stream.");

  obs::Registry registry;
  registry.counter("stream.events").add(result.events);
  registry.counter("stream.bad_rows").add(result.bad_rows);
  registry.counter("stream.unknown_runtime").add(result.unknown_runtime);
  registry.counter("stream.reports_written").add(result.reports_written);
  registry.counter("stream.checkpoints_written")
      .add(result.checkpoints_written);
  registry.counter("stream.checkpoint_fallbacks")
      .add(result.checkpoint_fallbacks);
  registry.counter("stream.resumed_events").add(result.resumed_events);
  registry.counter("stream.replayed_events").add(result.replayed_events);
  registry.counter("stream.source_retries").add(result.source_retries);
  registry.gauge("stream.events_per_sec").set(result.events_per_sec);
  registry.gauge("stream.peak_rss_mb").set(peak_rss_mb());
  registry.gauge("stream.retained_items")
      .set(static_cast<double>(result.characterizer.retained_items()));
  registry.gauge("stream.last_event_age_s").set(result.last_event_age_s);
  registry.gauge("stream.checkpoint_age_s").set(result.checkpoint_age_s);
  report.observability = registry.snapshot();

  obs::Json doc = obs::Json::object();
  obs::Json meta = obs::Json::object();
  meta["schema_version"] = obs::Json(kReportSchemaVersion);
  meta["source"] = obs::Json(source);
  meta["events"] = obs::Json(result.events);
  meta["reports"] = obs::Json(result.reports_written);
  meta["bad_rows"] = obs::Json(result.bad_rows);
  meta["unknown_runtime"] = obs::Json(result.unknown_runtime);
  doc["_meta"] = std::move(meta);
  doc["lumos_serve"] = report.to_json();
  return doc;
}

namespace {

using Clock = std::chrono::steady_clock;

/// Shared per-line ingest state: counters, cadence, report + checkpoint
/// emission, the source cursor, and the watchdog clocks.
class Ingestor {
 public:
  Ingestor(const IngestOptions& options, CheckpointLoad restored)
      : options_(options), start_(Clock::now()) {
    parse_opts_.origin =
        options_.input_path == "-" ? "stdin" : options_.input_path;
    if (restored.checkpoint) {
      const Checkpoint& cp = *restored.checkpoint;
      result_.characterizer = OnlineCharacterizer::restore(cp.characterizer);
      result_.events = cp.cursor.events;
      result_.bad_rows = cp.cursor.bad_rows;
      result_.unknown_runtime = cp.cursor.unknown_runtime;
      result_.resumed_events = cp.cursor.events;
      result_.checkpoint_fallbacks =
          restored.outcome == CheckpointLoad::Outcome::Fallback ? 1 : 0;
      lineno_ = cp.cursor.line;
      consumed_bytes_ = cp.cursor.byte_offset;
      LUMOS_INFO << "resumed from checkpoint: " << cp.cursor.events
                 << " events, byte " << cp.cursor.byte_offset
                 << (result_.checkpoint_fallbacks != 0 ? " (fallback)" : "");
    } else {
      result_.characterizer = OnlineCharacterizer(options.config);
    }
    last_event_ = start_;
    last_checkpoint_ = start_;
  }

  /// Feeds one raw line (without its terminator); `terminated` adds the
  /// newline byte to the cursor. Returns false once max_events is reached.
  bool feed(std::string_view line, bool terminated = true) {
    ++lineno_;
    consumed_bytes_ += line.size() + (terminated ? 1 : 0);
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == ';') return true;
    LUMOS_FAILPOINT("stream.ingest.row");
    try {
      const trace::SwfRow row = trace::parse_swf_row(
          trimmed, trace::ResourceKind::Cpu, parse_opts_, lineno_);
      if (row.unknown_runtime) {
        ++result_.unknown_runtime;
        return true;
      }
      result_.characterizer.ingest(row.job);
      ++result_.events;
      ++result_.replayed_events;
      last_event_ = Clock::now();
      stall_warned_ = false;
    } catch (const ParseError&) {
      if (result_.bad_rows >= options_.bad_row_budget) throw;
      ++result_.bad_rows;
      return true;
    }
    if (options_.report_every_events > 0 &&
        result_.events % options_.report_every_events == 0) {
      emit_report();
    }
    if (!options_.checkpoint_path.empty() &&
        options_.checkpoint_every_events > 0 &&
        result_.events % options_.checkpoint_every_events == 0) {
      emit_checkpoint();
    }
    return options_.max_events == 0 || result_.events < options_.max_events;
  }

  /// Watchdog hook, called from the poll path: warns once per stall when
  /// no event arrived for stall_warn_s.
  void on_idle() {
    if (options_.stall_warn_s <= 0.0 || stall_warned_) return;
    if (age_seconds(last_event_) >= options_.stall_warn_s) {
      stall_warned_ = true;
      LUMOS_WARN << "stream source '" << parse_opts_.origin
                 << "' stalled: no event for "
                 << age_seconds(last_event_) << "s";
    }
  }

  void note_shutdown(int signal) { result_.shutdown_signal = signal; }
  void note_retries(std::uint64_t retries) {
    result_.source_retries = retries;
  }

  /// Final checkpoint + report + throughput accounting.
  IngestResult finish() {
    refresh_timing();
    if (!options_.checkpoint_path.empty()) emit_checkpoint();
    if (!options_.output_path.empty()) emit_report();
    return std::move(result_);
  }

 private:
  [[nodiscard]] double age_seconds(Clock::time_point since) const {
    return std::chrono::duration<double>(Clock::now() - since).count();
  }

  void refresh_timing() {
    const std::chrono::duration<double> elapsed = Clock::now() - start_;
    result_.wall_seconds = elapsed.count();
    result_.events_per_sec =
        result_.wall_seconds > 0.0
            ? static_cast<double>(result_.events) / result_.wall_seconds
            : 0.0;
    result_.last_event_age_s = age_seconds(last_event_);
    result_.checkpoint_age_s = age_seconds(last_checkpoint_);
  }

  void emit_report() {
    if (options_.output_path.empty()) return;
    refresh_timing();
    obs::write_json_atomic(
        make_report_document(result_, parse_opts_.origin),
        options_.output_path);
    ++result_.reports_written;
  }

  void emit_checkpoint() {
    Checkpoint cp;
    cp.cursor.input = options_.input_path;
    cp.cursor.byte_offset = consumed_bytes_;
    cp.cursor.line = lineno_;
    cp.cursor.events = result_.events;
    cp.cursor.bad_rows = result_.bad_rows;
    cp.cursor.unknown_runtime = result_.unknown_runtime;
    cp.cursor.fingerprint =
        fingerprintable_ ? input_fingerprint(options_.input_path,
                                             consumed_bytes_)
                         : 0;
    cp.characterizer = result_.characterizer.snapshot();
    save_checkpoint(cp, options_.checkpoint_path);
    ++result_.checkpoints_written;
    last_checkpoint_ = Clock::now();
  }

  const IngestOptions& options_;
  trace::ParseOptions parse_opts_;
  IngestResult result_;
  std::size_t lineno_ = 0;
  std::uint64_t consumed_bytes_ = 0;
  Clock::time_point start_;
  Clock::time_point last_event_;
  Clock::time_point last_checkpoint_;
  bool stall_warned_ = false;

 public:
  /// Whether checkpoints may fingerprint input_path (regular file only).
  bool fingerprintable_ = false;
};

}  // namespace

IngestResult ingest_stream(std::istream& in, const IngestOptions& options) {
  Ingestor ingestor(options, CheckpointLoad{});
  std::string line;
  while (std::getline(in, line)) {
    if (!ingestor.feed(line)) break;
  }
  return ingestor.finish();
}

IngestResult run_ingest(const IngestOptions& options) {
  if (options.handle_signals) util::install_shutdown_signals();

  RetryingSource source(open_event_source(options.input_path),
                        options.retry);

  // Restore the newest good checkpoint and position the source.
  CheckpointLoad restored;
  if (!options.checkpoint_path.empty() && options.resume) {
    restored = load_checkpoint(options.checkpoint_path);
    if (restored.checkpoint) {
      const SourceCursor& cursor = restored.checkpoint->cursor;
      if (source.seekable()) {
        const std::uint64_t fp =
            input_fingerprint(options.input_path, cursor.byte_offset);
        if (fp != cursor.fingerprint) {
          throw InvalidArgument(
              "checkpoint: input fingerprint mismatch for '" +
              options.input_path +
              "' — the input is not the file the checkpoint describes; "
              "remove the checkpoint to start fresh");
        }
        source.seek(cursor.byte_offset);
      } else {
        LUMOS_WARN << "checkpoint: source '" << source.describe()
                   << "' is not seekable; restoring state and continuing "
                      "from the live position (no replay)";
      }
    }
  }

  Ingestor ingestor(options, std::move(restored));
  ingestor.fingerprintable_ = source.seekable();

  std::string carry;
  std::string chunk(1 << 16, '\0');
  double idle_s = 0.0;
  bool stop = false;
  bool eof = false;
  while (!stop && !eof) {
    if (util::shutdown_requested()) {
      ingestor.note_shutdown(util::shutdown_signal());
      break;
    }
    const ReadResult read = source.read_some(chunk.data(), chunk.size());
    switch (read.status) {
      case ReadStatus::Data: {
        idle_s = 0.0;
        carry.append(chunk.data(), read.bytes);
        std::size_t begin = 0;
        for (std::size_t nl = carry.find('\n', begin);
             nl != std::string::npos && !stop;
             nl = carry.find('\n', begin)) {
          stop = !ingestor.feed(
              std::string_view(carry).substr(begin, nl - begin));
          begin = nl + 1;
        }
        carry.erase(0, begin);
        break;
      }
      case ReadStatus::Eof:
        // Regular file at end: in follow mode poll for growth, otherwise
        // the stream is complete.
        if (!options.follow || !source.seekable()) {
          eof = true;
          break;
        }
        [[fallthrough]];
      case ReadStatus::Idle:
        if (idle_s >= options.idle_timeout_s) {
          eof = true;
          break;
        }
        ingestor.on_idle();
        std::this_thread::sleep_for(
            std::chrono::duration<double>(options.poll_interval_s));
        idle_s += options.poll_interval_s;
        break;
      case ReadStatus::Interrupted:
        // A signal arrived mid-read; loop around so the shutdown flag
        // check runs before the next read.
        break;
    }
  }
  // A trailing unterminated line is data only once the stream truly
  // ended; a shutdown leaves it for the resumed run (the cursor does not
  // cover it).
  if (!stop && eof && !carry.empty()) {
    ingestor.feed(carry, /*terminated=*/false);
  }
  ingestor.note_retries(source.retries());
  return ingestor.finish();
}

}  // namespace lumos::stream
