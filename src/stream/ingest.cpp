#include "stream/ingest.hpp"

#include <chrono>
#include <fstream>
#include <iostream>
#include <istream>
#include <thread>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "trace/parse.hpp"
#include "trace/swf.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace lumos::stream {

double peak_rss_mb() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB on Linux
#endif
#else
  return 0.0;
#endif
}

obs::Json make_report_document(const IngestResult& result,
                               const std::string& source) {
  obs::Report report;
  report.harness = "lumos_serve";
  report.figure = "streaming characterization (DESIGN.md Streaming mode)";
  report.wall_seconds = result.wall_seconds;
  result.characterizer.publish(report, "stream.");

  obs::Registry registry;
  registry.counter("stream.events").add(result.events);
  registry.counter("stream.bad_rows").add(result.bad_rows);
  registry.counter("stream.unknown_runtime").add(result.unknown_runtime);
  registry.counter("stream.reports_written").add(result.reports_written);
  registry.gauge("stream.events_per_sec").set(result.events_per_sec);
  registry.gauge("stream.peak_rss_mb").set(peak_rss_mb());
  registry.gauge("stream.retained_items")
      .set(static_cast<double>(result.characterizer.retained_items()));
  report.observability = registry.snapshot();

  obs::Json doc = obs::Json::object();
  obs::Json meta = obs::Json::object();
  meta["schema_version"] = obs::Json(kReportSchemaVersion);
  meta["source"] = obs::Json(source);
  meta["events"] = obs::Json(result.events);
  meta["reports"] = obs::Json(result.reports_written);
  meta["bad_rows"] = obs::Json(result.bad_rows);
  meta["unknown_runtime"] = obs::Json(result.unknown_runtime);
  doc["_meta"] = std::move(meta);
  doc["lumos_serve"] = report.to_json();
  return doc;
}

namespace {

using Clock = std::chrono::steady_clock;

/// Shared per-line ingest state: counters, cadence, report emission.
class Ingestor {
 public:
  explicit Ingestor(const IngestOptions& options)
      : options_(options), start_(Clock::now()) {
    result_.characterizer = OnlineCharacterizer(options.config);
    parse_opts_.origin =
        options_.input_path == "-" ? "stdin" : options_.input_path;
  }

  /// Feeds one raw line; returns false once max_events is reached.
  bool feed(std::string_view line) {
    ++lineno_;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == ';') return true;
    LUMOS_FAILPOINT("stream.ingest.row");
    try {
      const trace::SwfRow row = trace::parse_swf_row(
          trimmed, trace::ResourceKind::Cpu, parse_opts_, lineno_);
      if (row.unknown_runtime) {
        ++result_.unknown_runtime;
        return true;
      }
      result_.characterizer.ingest(row.job);
      ++result_.events;
    } catch (const ParseError&) {
      if (result_.bad_rows >= options_.bad_row_budget) throw;
      ++result_.bad_rows;
      return true;
    }
    if (options_.report_every_events > 0 &&
        result_.events % options_.report_every_events == 0) {
      emit_report();
    }
    return options_.max_events == 0 || result_.events < options_.max_events;
  }

  /// Final report + throughput accounting; returns the result.
  IngestResult finish() {
    refresh_timing();
    if (!options_.output_path.empty()) emit_report();
    return std::move(result_);
  }

 private:
  void refresh_timing() {
    const std::chrono::duration<double> elapsed = Clock::now() - start_;
    result_.wall_seconds = elapsed.count();
    result_.events_per_sec =
        result_.wall_seconds > 0.0
            ? static_cast<double>(result_.events) / result_.wall_seconds
            : 0.0;
  }

  void emit_report() {
    if (options_.output_path.empty()) return;
    refresh_timing();
    obs::write_json_atomic(
        make_report_document(result_, parse_opts_.origin),
        options_.output_path);
    ++result_.reports_written;
  }

  const IngestOptions& options_;
  trace::ParseOptions parse_opts_;
  IngestResult result_;
  std::size_t lineno_ = 0;
  Clock::time_point start_;
};

}  // namespace

IngestResult ingest_stream(std::istream& in, const IngestOptions& options) {
  Ingestor ingestor(options);
  std::string line;
  while (std::getline(in, line)) {
    if (!ingestor.feed(line)) break;
  }
  return ingestor.finish();
}

IngestResult run_ingest(const IngestOptions& options) {
  if (options.input_path == "-") {
    return ingest_stream(std::cin, options);
  }
  std::ifstream in(options.input_path);
  if (!in) {
    throw ParseError("cannot open stream source: " + options.input_path);
  }
  if (!options.follow) return ingest_stream(in, options);

  // tail -f over a growing regular file: chunked reads with a carry
  // buffer so a half-written line is never parsed; EOF clears and the
  // loop polls until idle_timeout_s passes without new bytes.
  Ingestor ingestor(options);
  std::string carry;
  std::string chunk(1 << 16, '\0');
  double idle_s = 0.0;
  bool stop = false;
  while (!stop && idle_s < options.idle_timeout_s) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const std::streamsize got = in.gcount();
    if (got == 0) {
      in.clear();
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.poll_interval_s));
      idle_s += options.poll_interval_s;
      continue;
    }
    idle_s = 0.0;
    carry.append(chunk.data(), static_cast<std::size_t>(got));
    std::size_t begin = 0;
    for (std::size_t nl = carry.find('\n', begin);
         nl != std::string::npos && !stop; nl = carry.find('\n', begin)) {
      stop = !ingestor.feed(
          std::string_view(carry).substr(begin, nl - begin));
      begin = nl + 1;
    }
    carry.erase(0, begin);
  }
  if (!stop && !carry.empty()) ingestor.feed(carry);  // trailing line
  return ingestor.finish();
}

}  // namespace lumos::stream
