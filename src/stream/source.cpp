#include "stream/source.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/backoff.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace lumos::stream {

void EventSource::seek(std::uint64_t /*offset*/) {
  throw InvalidArgument("EventSource::seek: source '" + describe() +
                        "' is not seekable");
}

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  const int err = errno;
  throw SourceError(what + ": " + std::strerror(err), err);
}

/// Raw POSIX-fd source; the concrete classes differ only in how they
/// classify a read of zero bytes and EAGAIN.
class FdSourceBase : public EventSource {
 public:
  FdSourceBase(int fd, bool owned, std::string origin)
      : fd_(fd), owned_(owned), origin_(std::move(origin)) {}
  ~FdSourceBase() override {
    if (owned_ && fd_ >= 0) ::close(fd_);
  }
  FdSourceBase(const FdSourceBase&) = delete;
  FdSourceBase& operator=(const FdSourceBase&) = delete;

  ReadResult read_some(char* data, std::size_t capacity) override {
    LUMOS_FAILPOINT("stream.source.read");
    const ::ssize_t got = ::read(fd_, data, capacity);
    if (got > 0) {
      return ReadResult{ReadStatus::Data, static_cast<std::size_t>(got)};
    }
    if (got == 0) return ReadResult{eof_status(), 0};
    if (errno == EINTR) return ReadResult{ReadStatus::Interrupted, 0};
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return ReadResult{ReadStatus::Idle, 0};
    }
    throw_errno("read from '" + origin_ + "' failed");
  }

  [[nodiscard]] const std::string& describe() const noexcept override {
    return origin_;
  }

 protected:
  /// What a zero-byte read means for this source shape.
  [[nodiscard]] virtual ReadStatus eof_status() const noexcept {
    return ReadStatus::Eof;
  }

  int fd_;

 private:
  bool owned_;
  std::string origin_;
};

/// stdin or another non-seekable stream fd: EOF is final.
class FdSource final : public FdSourceBase {
 public:
  using FdSourceBase::FdSourceBase;
};

/// Regular file: seekable, so checkpoint resume can reposition, and Eof
/// is retryable under follow (the fd offset persists across reads).
class FileSource final : public FdSourceBase {
 public:
  using FdSourceBase::FdSourceBase;

  [[nodiscard]] bool seekable() const noexcept override { return true; }

  void seek(std::uint64_t offset) override {
    if (::lseek(fd_, static_cast<::off_t>(offset), SEEK_SET) ==
        static_cast<::off_t>(-1)) {
      throw_errno("seek in '" + describe() + "' failed");
    }
  }
};

/// FIFO opened O_NONBLOCK: a zero-byte read means "no writer connected
/// right now", not end of stream — a writer may attach later, so both
/// that and EAGAIN map to Idle and the ingest idle-timeout ends the run.
class FifoSource final : public FdSourceBase {
 public:
  using FdSourceBase::FdSourceBase;

 protected:
  [[nodiscard]] ReadStatus eof_status() const noexcept override {
    return ReadStatus::Idle;
  }
};

}  // namespace

std::unique_ptr<EventSource> open_event_source(const std::string& path) {
  LUMOS_FAILPOINT("stream.source.open");
  if (path == "-") {
    return std::make_unique<FdSource>(STDIN_FILENO, /*owned=*/false,
                                      "stdin");
  }
  struct ::stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    throw_errno("cannot stat stream source '" + path + "'");
  }
  if (S_ISFIFO(st.st_mode)) {
    // O_NONBLOCK so open() returns before a writer connects; reads then
    // report Idle until data arrives.
    const int fd = ::open(path.c_str(), O_RDONLY | O_NONBLOCK);  // NOLINT
    if (fd < 0) throw_errno("cannot open FIFO source '" + path + "'");
    return std::make_unique<FifoSource>(fd, /*owned=*/true, path);
  }
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT
  if (fd < 0) throw_errno("cannot open stream source '" + path + "'");
  if (S_ISREG(st.st_mode)) {
    return std::make_unique<FileSource>(fd, /*owned=*/true, path);
  }
  return std::make_unique<FdSource>(fd, /*owned=*/true, path);
}

RetryingSource::RetryingSource(std::unique_ptr<EventSource> inner,
                               RetryPolicy policy)
    : inner_(std::move(inner)), policy_(std::move(policy)) {
  LUMOS_REQUIRE(inner_ != nullptr, "RetryingSource requires a source");
  if (!policy_.sleep) {
    policy_.sleep = [](double seconds) {
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    };
  }
}

ReadResult RetryingSource::read_some(char* data, std::size_t capacity) {
  std::size_t failures = 0;
  for (;;) {
    try {
      return inner_->read_some(data, capacity);
    } catch (const SourceError& e) {
      ++failures;
      if (failures > policy_.max_retries) throw;
      const double delay = util::backoff_delay_seconds(
          policy_.base_delay_s, policy_.max_delay_s, failures);
      LUMOS_WARN << "source '" << describe() << "': transient error ("
                 << e.what() << "); retry " << failures << "/"
                 << policy_.max_retries << " in " << delay << "s";
      ++retries_;
      policy_.sleep(delay);
    }
  }
}

}  // namespace lumos::stream
