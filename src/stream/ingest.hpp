// stream::run_ingest — the long-running "lumos-served" ingest loop.
//
// Tails an SWF event source (a growing file, a FIFO, or stdin), feeds
// every job row into an OnlineCharacterizer, and periodically publishes
// the characterization as a schema-versioned report document written with
// obs::write_json_atomic — so a dashboard (or a test) polling the output
// path always reads either the previous complete report or the new one,
// never a torn file. `tools/lumos_serve` is the CLI wrapper;
// `bench/ext_stream_ingest` reuses the same loop for throughput
// measurement. EXPERIMENTS.md ("Streaming ingest walkthrough") shows the
// end-to-end pipe recipe.
//
// Report document shape (see DESIGN.md "Streaming mode"):
//   {
//     "_meta": { "schema_version": 1, "source": ..., "events": ...,
//                "reports": ..., "bad_rows": ..., "unknown_runtime": ... },
//     "lumos_serve": <obs::Report entry — stream.* metrics, plus the
//                     stream.events_per_sec / stream.peak_rss_mb gauges>
//   }
// The per-harness entry round-trips through obs::Report::from_json, so
// downstream tooling written against BENCH_results.json entries works on
// streaming reports unchanged.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/report.hpp"
#include "stream/online.hpp"

namespace lumos::stream {

/// Version of the emitted report document; bump on breaking changes to
/// the _meta or metric-key layout.
inline constexpr int kReportSchemaVersion = 1;

struct IngestOptions {
  /// SWF source path; "-" reads stdin.
  std::string input_path = "-";
  /// Report destination; "-" writes stdout, "" disables report emission
  /// (bench mode: the caller publishes from the returned characterizer).
  std::string output_path;
  /// Characterizer knobs (epoch/offset for the diurnal profile etc).
  StreamConfig config;
  /// Emit a report every N ingested job events (0 = only the final one).
  std::uint64_t report_every_events = 10000;
  /// Keep polling for more data after EOF (tail -f). Only meaningful for
  /// regular files; pipes/stdin block in read instead. The loop stops
  /// after `idle_timeout_s` without new data.
  bool follow = false;
  double poll_interval_s = 0.25;
  double idle_timeout_s = 5.0;
  /// Stop after this many job events (0 = unlimited). Lets tests and
  /// benches bound a run over an endless source.
  std::uint64_t max_events = 0;
  /// Malformed rows tolerated before the loop throws ParseError — live
  /// feeds default lenient, unlike the strict batch reader.
  std::uint64_t bad_row_budget = 1000;
};

struct IngestResult {
  std::uint64_t events = 0;          ///< job rows ingested
  std::uint64_t bad_rows = 0;        ///< malformed rows skipped
  std::uint64_t unknown_runtime = 0; ///< rows dropped (negative runtime)
  std::uint64_t reports_written = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  /// Final characterizer state (also what the last report published).
  OnlineCharacterizer characterizer;
};

/// Runs the ingest loop over an already-open stream (no follow mode —
/// reads to EOF or max_events). The deterministic core of run_ingest;
/// tests drive this overload directly.
[[nodiscard]] IngestResult ingest_stream(std::istream& in,
                                         const IngestOptions& options);

/// Opens `options.input_path` (file, FIFO, or "-") and runs the loop,
/// honoring follow mode for regular files. Throws ParseError when the
/// source cannot be opened or the bad-row budget is exhausted.
[[nodiscard]] IngestResult run_ingest(const IngestOptions& options);

/// Builds the schema-versioned report document for a characterizer state
/// (the document run_ingest writes). Exposed so the bench can emit the
/// identical shape without a filesystem round-trip.
[[nodiscard]] obs::Json make_report_document(const IngestResult& result,
                                             const std::string& source);

/// Peak resident set size of this process in MiB (getrusage; 0.0 where
/// unsupported). Published as the stream.peak_rss_mb gauge.
[[nodiscard]] double peak_rss_mb() noexcept;

}  // namespace lumos::stream
