// stream::run_ingest — the long-running "lumos-served" ingest loop.
//
// Tails an SWF event source (a growing file, a FIFO, or stdin), feeds
// every job row into an OnlineCharacterizer, and periodically publishes
// the characterization as a schema-versioned report document written with
// obs::write_json_atomic — so a dashboard (or a test) polling the output
// path always reads either the previous complete report or the new one,
// never a torn file. `tools/lumos_serve` is the CLI wrapper;
// `bench/ext_stream_ingest` reuses the same loop for throughput
// measurement. EXPERIMENTS.md ("Streaming ingest walkthrough") shows the
// end-to-end pipe recipe.
//
// Crash consistency (DESIGN.md §4g): when `checkpoint_path` is set the
// loop persists a checkpoint (stream/checkpoint.hpp) — source cursor +
// complete characterizer snapshot — every `checkpoint_every_events`
// events and on graceful shutdown. On start it restores the newest good
// checkpoint, seeks the source to the cursor, and replays only the gap,
// so a SIGKILL at any instant costs at most one checkpoint interval of
// redone work and the final report is identical to an uninterrupted run
// (`bench/ext_serve_chaos` drills this). Reads go through the
// stream::EventSource seam (source.hpp): EINTR surfaces the shutdown
// flag, FIFO EAGAIN means idle rather than EOF, and transient OS errors
// retry on a deterministic capped-exponential schedule.
//
// Graceful shutdown: with `handle_signals` set, SIGTERM/SIGINT set a flag
// (util/signal_util.hpp, no SA_RESTART) that the loop checks every read;
// it then writes a final checkpoint + report and returns normally with
// `shutdown_signal` recording the cause. The flag is honoured at chunk
// granularity — the hard deadline backstop is the supervisor's
// SIGTERM -> SIGKILL escalation (supervise::Options::kill_after).
//
// Report document shape (see DESIGN.md "Streaming mode"):
//   {
//     "_meta": { "schema_version": 1, "source": ..., "events": ...,
//                "reports": ..., "bad_rows": ..., "unknown_runtime": ... },
//     "lumos_serve": <obs::Report entry — stream.* metrics, plus
//                     robustness counters/gauges in observability:
//                     stream.checkpoints_written, stream.source_retries,
//                     stream.resumed_events, stream.replayed_events,
//                     stream.checkpoint_fallbacks,
//                     stream.last_event_age_s, stream.checkpoint_age_s>
//   }
// The per-harness entry round-trips through obs::Report::from_json, so
// downstream tooling written against BENCH_results.json entries works on
// streaming reports unchanged. The deterministic `metrics` map is
// unchanged by the robustness work — a fault-free run publishes exactly
// the same metrics as before checkpointing existed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/report.hpp"
#include "stream/online.hpp"
#include "stream/source.hpp"

namespace lumos::stream {

/// Version of the emitted report document; bump on breaking changes to
/// the _meta or metric-key layout.
inline constexpr int kReportSchemaVersion = 1;

struct IngestOptions {
  /// SWF source path; "-" reads stdin.
  std::string input_path = "-";
  /// Report destination; "-" writes stdout, "" disables report emission
  /// (bench mode: the caller publishes from the returned characterizer).
  std::string output_path;
  /// Characterizer knobs (epoch/offset for the diurnal profile etc).
  StreamConfig config;
  /// Emit a report every N ingested job events (0 = only the final one).
  std::uint64_t report_every_events = 10000;
  /// Keep polling for more data after EOF (tail -f). Only meaningful for
  /// regular files; pipes/stdin block in read instead. The loop stops
  /// after `idle_timeout_s` without new data.
  bool follow = false;
  double poll_interval_s = 0.25;
  double idle_timeout_s = 5.0;
  /// Stop after this many job events (0 = unlimited). Lets tests and
  /// benches bound a run over an endless source. Counts cumulatively on
  /// resume: a run restored at event 800 with max_events 1000 ingests 200.
  std::uint64_t max_events = 0;
  /// Malformed rows tolerated before the loop throws ParseError — live
  /// feeds default lenient, unlike the strict batch reader.
  std::uint64_t bad_row_budget = 1000;

  // ---- crash consistency (see the header comment) ----
  /// Checkpoint document path; "" disables checkpointing.
  std::string checkpoint_path;
  /// Persist a checkpoint every N events (0 = only on graceful shutdown
  /// and at end of stream). Only meaningful with checkpoint_path.
  std::uint64_t checkpoint_every_events = 0;
  /// Restore from an existing checkpoint on start. Resume seeks seekable
  /// sources to the cursor; non-seekable sources (stdin, FIFO) restore
  /// state only and continue from the live position (logged).
  bool resume = true;
  /// Install SIGTERM/SIGINT handlers and stop cleanly (final checkpoint
  /// + report) when one arrives. Off by default so library callers and
  /// tests never have process-wide handlers installed behind their back.
  bool handle_signals = false;
  /// Transient-source-error retry schedule (stream.source_retries counts).
  RetryPolicy retry;
  /// Warn (once per stall) when no event arrived for this many seconds
  /// while the loop is live; 0 disables. The corresponding gauge is
  /// stream.last_event_age_s.
  double stall_warn_s = 0.0;
};

struct IngestResult {
  std::uint64_t events = 0;          ///< job rows ingested (cumulative)
  std::uint64_t bad_rows = 0;        ///< malformed rows skipped
  std::uint64_t unknown_runtime = 0; ///< rows dropped (negative runtime)
  std::uint64_t reports_written = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  /// Final characterizer state (also what the last report published).
  OnlineCharacterizer characterizer;

  // ---- robustness accounting ----
  /// Events carried in from the restored checkpoint (0 on a fresh start).
  std::uint64_t resumed_events = 0;
  /// Events actually ingested by this process — the replay window plus
  /// new data. events == resumed_events + replayed_events always holds.
  std::uint64_t replayed_events = 0;
  std::uint64_t checkpoints_written = 0;
  /// 1 when the restore came from the `.prev` fallback document.
  std::uint64_t checkpoint_fallbacks = 0;
  /// Transient source-read errors retried away (RetryingSource).
  std::uint64_t source_retries = 0;
  /// Signal that ended the loop (0 = ran to completion).
  int shutdown_signal = 0;
  /// Watchdog ages at the moment the result was finalized (gauges).
  double last_event_age_s = 0.0;
  double checkpoint_age_s = 0.0;
};

/// Runs the ingest loop over an already-open stream (no follow mode —
/// reads to EOF or max_events). The deterministic core of run_ingest;
/// tests drive this overload directly. Checkpoint *writing* works here
/// (cadence tests); resume/seek needs run_ingest over a real file.
[[nodiscard]] IngestResult ingest_stream(std::istream& in,
                                         const IngestOptions& options);

/// Opens `options.input_path` (file, FIFO, or "-") through the
/// EventSource seam and runs the loop, honoring follow mode, checkpoints,
/// and graceful shutdown. Throws SourceError when the source cannot be
/// opened (after retries), ParseError when the bad-row budget is
/// exhausted, and InvalidArgument when a checkpoint cursor does not match
/// the input (fingerprint mismatch — see stream/checkpoint.hpp).
[[nodiscard]] IngestResult run_ingest(const IngestOptions& options);

/// Builds the schema-versioned report document for a characterizer state
/// (the document run_ingest writes). Exposed so the bench can emit the
/// identical shape without a filesystem round-trip.
[[nodiscard]] obs::Json make_report_document(const IngestResult& result,
                                             const std::string& source);

/// Peak resident set size of this process in MiB (getrusage; 0.0 where
/// unsupported). Published as the stream.peak_rss_mb gauge.
[[nodiscard]] double peak_rss_mb() noexcept;

}  // namespace lumos::stream
