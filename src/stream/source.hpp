// stream::EventSource — the resilient byte-source seam under run_ingest.
//
// The serve loop used to read through std::ifstream/std::cin, which hides
// errno: EINTR (a signal arrived — the graceful-shutdown flag must be
// checked), EAGAIN (a FIFO with a connected writer but no data — idle, not
// EOF), and transient I/O errors were all indistinguishable from end of
// stream. This seam exposes them as a four-state ReadResult over raw POSIX
// reads, so run_ingest can implement tail-follow, graceful shutdown, and
// checkpoint cursors on top of any source shape:
//
//   open_event_source(path) picks the concrete source by fstat:
//     "-"           -> FdSource over stdin (not seekable, EOF is final)
//     regular file  -> FileSource (seekable -> checkpoint resume works;
//                      Eof is retryable in follow mode: the fd keeps its
//                      offset, so a later read picks up appended bytes)
//     FIFO          -> FifoSource (opened O_RDONLY|O_NONBLOCK so open
//                      never deadlocks waiting for a writer; EAGAIN and
//                      read()==0 both map to Idle — a FIFO "EOF" only
//                      means no writer *right now*, and the ingest
//                      idle-timeout is what ends the run)
//
// EINTR maps to Interrupted and is surfaced, not swallowed: the shutdown
// signal handler is installed without SA_RESTART (util/signal_util.hpp)
// precisely so a blocking read returns and the loop can notice the flag.
//
// RetryingSource decorates any source with deterministic capped-exponential
// retry (util::backoff_delay_seconds — the same schedule supervise uses)
// for *transient* errno failures (SourceError). The sleep is injectable so
// tests assert the exact schedule without waiting. Typed non-errno errors
// — fault::InjectedFault from the stream.source.* failpoints in particular
// — are never retried and propagate to the caller.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "util/error.hpp"

namespace lumos::stream {

/// A source read failed with a (possibly transient) OS error. Carries the
/// errno value so retry policies and logs can name the cause.
class SourceError : public Error {
 public:
  SourceError(const std::string& what, int errno_value)
      : Error(what), errno_value_(errno_value) {}
  [[nodiscard]] int errno_value() const noexcept { return errno_value_; }

 private:
  int errno_value_;
};

/// Outcome of one read_some() call.
enum class ReadStatus {
  Data,         ///< `bytes` > 0 bytes were read
  Eof,          ///< end of a finite stream (retryable for regular files
                ///< in follow mode: appended bytes show up on re-read)
  Idle,         ///< no data available right now (FIFO EAGAIN / no writer)
  Interrupted,  ///< EINTR — check the shutdown flag, then retry
};

struct ReadResult {
  ReadStatus status = ReadStatus::Eof;
  std::size_t bytes = 0;
};

/// Abstract byte source for the ingest loop (see the header comment).
class EventSource {
 public:
  virtual ~EventSource() = default;

  /// Reads up to `capacity` bytes into `data`. Throws SourceError on OS
  /// errors other than EINTR/EAGAIN; throws fault::InjectedFault when the
  /// stream.source.read failpoint is armed.
  [[nodiscard]] virtual ReadResult read_some(char* data,
                                             std::size_t capacity) = 0;

  /// Whether seek() works — true only for regular files. Checkpoint
  /// resume needs a seekable source; non-seekable sources restore state
  /// but continue from the live stream position.
  [[nodiscard]] virtual bool seekable() const noexcept { return false; }

  /// Repositions the next read at `offset` bytes from the start. Throws
  /// lumos::InvalidArgument on non-seekable sources, SourceError on OS
  /// failure.
  virtual void seek(std::uint64_t offset);

  /// Human-readable origin ("stdin", a path) for errors and reports.
  [[nodiscard]] virtual const std::string& describe() const noexcept = 0;
};

/// Opens `path` ("-" = stdin) and picks the source shape by fstat. Throws
/// SourceError when the path cannot be opened or stat'd; evaluates the
/// stream.source.open failpoint.
[[nodiscard]] std::unique_ptr<EventSource> open_event_source(
    const std::string& path);

/// Deterministic capped-exponential retry schedule for transient source
/// errors. Delay before retry i (1-based) is
/// util::backoff_delay_seconds(base_delay_s, max_delay_s, i).
struct RetryPolicy {
  std::size_t max_retries = 5;
  double base_delay_s = 0.05;
  double max_delay_s = 1.0;
  /// Injectable sleep; tests capture the schedule, production wires
  /// std::this_thread::sleep_for (the default when null).
  std::function<void(double)> sleep;
};

/// Decorator: retries the inner source's SourceError failures on the
/// RetryPolicy schedule, rethrowing after max_retries consecutive
/// failures. A successful read resets the consecutive-failure count.
/// Anything that is not a SourceError (notably fault::InjectedFault)
/// propagates immediately, un-retried.
class RetryingSource : public EventSource {
 public:
  RetryingSource(std::unique_ptr<EventSource> inner, RetryPolicy policy);

  [[nodiscard]] ReadResult read_some(char* data,
                                     std::size_t capacity) override;
  [[nodiscard]] bool seekable() const noexcept override {
    return inner_->seekable();
  }
  void seek(std::uint64_t offset) override { inner_->seek(offset); }
  [[nodiscard]] const std::string& describe() const noexcept override {
    return inner_->describe();
  }

  /// Total retries performed over the source's lifetime (the
  /// stream.source_retries counter).
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }

 private:
  std::unique_ptr<EventSource> inner_;
  RetryPolicy policy_;
  std::uint64_t retries_ = 0;
};

}  // namespace lumos::stream
