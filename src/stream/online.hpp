// stream::OnlineCharacterizer — bounded-memory, one-pass versions of the
// paper's headline characterizations.
//
// Every exact analysis in `src/analysis` loads a whole trace before
// computing anything; this class consumes job events one at a time
// (submit order) and maintains, with O(1) amortized work per event and
// memory independent of stream length:
//
//   * distribution sketches — runtime / wait / inter-arrival gap
//     `stats::QuantileSketch` (rank-error bound) plus a runtime
//     `stats::StreamingHistogram` (relative value error); both expose the
//     exact `Ecdf` query surface, so `analysis`-style consumers can swap
//     backends (sketch.hpp documents the shared quantile convention).
//   * the diurnal arrival profile — local hour-of-day counts, peak ratio,
//     business-hours share; identical to `analysis::analyze_arrivals`
//     because both use `util::hour_of_day` (exact, no approximation).
//   * inter-arrival moments — streaming count/sum/sum-of-squares, giving
//     the mean and CV with the same unbiased-variance convention as
//     `stats::variance` (exact up to floating-point summation order).
//   * per-user repetition (§V-A / Fig 8) — a bounded per-user table of
//     (cores, log-bucketed runtime) configuration groups approximating
//     the exact "runtime within 10% of the group mean" grouping; capped
//     at `max_tracked_users` users x `max_groups_per_user` groups with
//     deterministic smallest-count eviction.
//   * tumbling windows — per-`window_seconds` job counts and arrival
//     rates, so a long-running server can report "current load" next to
//     the cumulative profile.
//
// Sharded ingest: `merge()` folds another characterizer in. Counts,
// hourly profiles, moments, and the streaming histogram merge exactly
// (for contiguous time shards the boundary inter-arrival gap is
// reconstructed from the shards' first/last submit times, so moments
// match serial ingest bit-for-bit up to summation order); quantile
// sketches merge within their epsilon bound. This composes with
// `obs::Registry::merge` for per-shard metric registries — see
// `sim::sweep_shards` and the tsan-labelled concurrent-ingest test.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/report.hpp"
#include "stats/sketch.hpp"
#include "trace/job.hpp"
#include "util/time_util.hpp"

namespace lumos::stream {

struct StreamConfig {
  /// QuantileSketch accuracy knob (rank error ~3/k).
  std::size_t sketch_k = 200;
  /// StreamingHistogram relative value error.
  double histogram_relative_error = 0.01;
  /// Per-user repetition table caps (bounded memory).
  std::size_t max_tracked_users = 512;
  std::size_t max_groups_per_user = 64;
  /// Users with fewer jobs are not "representative" (§V-A default 50).
  std::size_t min_jobs_per_user = 50;
  /// Runtime grouping tolerance: the streaming stand-in for the exact
  /// "within 10% of the group mean" rule buckets log(runtime) with
  /// bucket ratio (1 + 2 * run_tolerance).
  double run_tolerance = 0.10;
  /// Local-time base for the diurnal profile (copy from SystemSpec).
  std::int64_t epoch_unix = 0;
  double utc_offset_hours = 0.0;
  /// Tumbling-window length for the live-load summaries.
  double window_seconds = util::kDay;
  /// Compaction-coin seed forwarded to the quantile sketches.
  std::uint64_t sketch_seed = 0x6c756d6f73ULL;
};

/// One completed tumbling window.
struct WindowSummary {
  double start = 0.0;           ///< window start, trace seconds
  std::uint64_t jobs = 0;       ///< submissions inside the window
  double rate_per_hour = 0.0;   ///< jobs / window hours
};

class OnlineCharacterizer {
 public:
  OnlineCharacterizer() : OnlineCharacterizer(StreamConfig{}) {}
  explicit OnlineCharacterizer(StreamConfig config);

  /// Consumes one job event. Events should arrive in non-decreasing
  /// submit order; a regression is tolerated (the gap clamps to zero and
  /// `out_of_order()` counts it).
  void ingest(const trace::Job& job);

  /// Folds another shard's state in (see the header comment for what is
  /// exact vs within-epsilon). Requires identical StreamConfig; throws
  /// lumos::InvalidArgument otherwise.
  void merge(const OnlineCharacterizer& other);

  [[nodiscard]] const StreamConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::uint64_t jobs() const noexcept { return jobs_; }
  [[nodiscard]] bool empty() const noexcept { return jobs_ == 0; }
  [[nodiscard]] std::uint64_t out_of_order() const noexcept {
    return out_of_order_;
  }
  [[nodiscard]] double first_submit() const noexcept { return first_submit_; }
  [[nodiscard]] double last_submit() const noexcept { return last_submit_; }

  // ---- distribution sketches ----
  [[nodiscard]] const stats::QuantileSketch& runtime_sketch() const noexcept {
    return runtime_sketch_;
  }
  [[nodiscard]] const stats::QuantileSketch& wait_sketch() const noexcept {
    return wait_sketch_;
  }
  [[nodiscard]] const stats::QuantileSketch& interarrival_sketch()
      const noexcept {
    return interarrival_sketch_;
  }
  [[nodiscard]] const stats::StreamingHistogram& runtime_histogram()
      const noexcept {
    return runtime_histogram_;
  }

  // ---- diurnal profile (exact) ----
  [[nodiscard]] const std::array<double, 24>& hourly() const noexcept {
    return hourly_;
  }
  /// max/min over hourly counts (max alone when some hour is empty) —
  /// the Fig 1(b) peak ratio.
  [[nodiscard]] double peak_ratio() const noexcept;
  /// Fraction of jobs submitted 8am-5pm local time.
  [[nodiscard]] double business_hours_share() const noexcept;

  // ---- inter-arrival moments (exact) ----
  [[nodiscard]] std::uint64_t interarrival_gaps() const noexcept {
    return gap_count_;
  }
  [[nodiscard]] double interarrival_mean() const noexcept;
  /// Coefficient of variation, unbiased-variance convention
  /// (stats::variance); 0 with fewer than 2 gaps or zero mean.
  [[nodiscard]] double interarrival_cv() const noexcept;

  // ---- per-user repetition (bounded approximation of Fig 8) ----
  struct Repetition {
    /// Mean over representative users of (top-k group jobs / user jobs).
    double topk_share = 0.0;
    std::size_t representative_users = 0;
    double mean_groups_per_user = 0.0;
  };
  [[nodiscard]] Repetition repetition(std::size_t top_k) const;
  [[nodiscard]] std::size_t tracked_users() const noexcept {
    return users_.size();
  }
  /// Jobs whose per-user state was evicted by the capacity caps.
  [[nodiscard]] std::uint64_t untracked_jobs() const noexcept {
    return untracked_jobs_;
  }

  // ---- tumbling windows ----
  [[nodiscard]] std::uint64_t windows_completed() const noexcept {
    return windows_completed_;
  }
  /// Most recently completed window (jobs == 0 when none completed yet).
  [[nodiscard]] const WindowSummary& last_window() const noexcept {
    return last_window_;
  }
  /// Submissions in the currently open window.
  [[nodiscard]] std::uint64_t open_window_jobs() const noexcept {
    return open_window_jobs_;
  }

  // ---- memory accounting & export ----
  /// Total retained state slots: sketch items + histogram buckets +
  /// user-table entries. The bounded-memory claim is about this number:
  /// it plateaus as the stream grows (asserted in tests and published as
  /// a gauge by the ingest driver / bench).
  [[nodiscard]] std::size_t retained_items() const noexcept;

  /// Writes the characterization into `report.metrics` under
  /// `prefix` + key (see DESIGN.md "Streaming mode" for the key list).
  /// Every published value is deterministic in (stream, config).
  void publish(obs::Report& report, const std::string& prefix) const;

  // ---- checkpoint/restore (crash-consistent serve mode) ----

  /// Complete characterizer state. restore() is bit-identical: the
  /// restored characterizer answers every query identically AND continues
  /// ingesting identically to the original (sketch compaction coins ride
  /// along), which is what makes kill-and-resume drills reproduce an
  /// uninterrupted run exactly. stream/snapshot.hpp provides the
  /// schema-checked JSON codec used by run_ingest checkpoints.
  struct Snapshot {
    StreamConfig config;
    std::uint64_t jobs = 0;
    std::uint64_t out_of_order = 0;
    double first_submit = 0.0;
    double last_submit = 0.0;
    stats::QuantileSketch::Snapshot runtime_sketch;
    stats::QuantileSketch::Snapshot wait_sketch;
    stats::QuantileSketch::Snapshot interarrival_sketch;
    stats::StreamingHistogram::Snapshot runtime_histogram;
    std::array<double, 24> hourly{};
    std::uint64_t gap_count = 0;
    double gap_sum = 0.0;
    double gap_sum_sq = 0.0;
    struct UserEntry {
      std::uint32_t id = 0;
      std::uint64_t jobs = 0;
      std::uint64_t overflow = 0;
      /// (cores, runtime log-bucket) group key -> count, sorted by key.
      std::vector<std::pair<std::uint64_t, std::uint64_t>> groups;
    };
    std::vector<UserEntry> users;  ///< sorted by id
    std::uint64_t untracked_jobs = 0;
    std::int64_t open_window_index = 0;
    bool window_started = false;
    std::uint64_t open_window_jobs = 0;
    std::uint64_t windows_completed = 0;
    WindowSummary last_window;
  };
  [[nodiscard]] Snapshot snapshot() const;
  /// Rebuilds a characterizer from a snapshot. Throws
  /// lumos::InvalidArgument on inconsistent state (invalid config, sketch
  /// invariant violations, capacity caps exceeded, duplicate users) so a
  /// corrupted checkpoint can never restore into silently-wrong state.
  [[nodiscard]] static OnlineCharacterizer restore(const Snapshot& snapshot);

 private:
  struct UserState {
    std::uint64_t jobs = 0;
    /// (cores, runtime log-bucket) -> job count.
    std::map<std::uint64_t, std::uint64_t> groups;
    /// Jobs whose group slot was evicted (count toward totals, never
    /// toward a top-k group).
    std::uint64_t overflow = 0;
  };

  [[nodiscard]] std::uint64_t group_key(const trace::Job& job) const;
  void bound_user_groups(UserState& user);
  void evict_smallest_user();
  void advance_window(double t);

  StreamConfig config_;
  std::uint64_t jobs_ = 0;
  std::uint64_t out_of_order_ = 0;
  double first_submit_ = 0.0;
  double last_submit_ = 0.0;

  stats::QuantileSketch runtime_sketch_;
  stats::QuantileSketch wait_sketch_;
  stats::QuantileSketch interarrival_sketch_;
  stats::StreamingHistogram runtime_histogram_;

  std::array<double, 24> hourly_{};

  std::uint64_t gap_count_ = 0;
  double gap_sum_ = 0.0;
  double gap_sum_sq_ = 0.0;

  std::map<std::uint32_t, UserState> users_;
  std::uint64_t untracked_jobs_ = 0;

  std::int64_t open_window_index_ = 0;
  bool window_started_ = false;
  std::uint64_t open_window_jobs_ = 0;
  std::uint64_t windows_completed_ = 0;
  WindowSummary last_window_;
};

}  // namespace lumos::stream
