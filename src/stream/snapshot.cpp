#include "stream/snapshot.hpp"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace lumos::stream {

namespace {

using obs::Json;

// ---- strict decode helpers -------------------------------------------

[[noreturn]] void bad(const std::string& path, const std::string& what) {
  throw InvalidArgument("snapshot codec: " + path + ": " + what);
}

const Json& get(const Json& obj, const std::string& path,
                const std::string& key) {
  if (obj.kind() != Json::Kind::Object) bad(path, "expected an object");
  const Json* value = obj.find(key);
  if (value == nullptr) bad(path + "." + key, "missing");
  return *value;
}

double get_double(const Json& obj, const std::string& path,
                  const std::string& key) {
  const Json& v = get(obj, path, key);
  if (!v.is_number()) bad(path + "." + key, "expected a number");
  return v.as_double();
}

std::int64_t get_int(const Json& obj, const std::string& path,
                     const std::string& key) {
  const Json& v = get(obj, path, key);
  if (v.kind() != Json::Kind::Int) bad(path + "." + key, "expected an integer");
  return v.as_int();
}

// uint64 fields travel through the int64 JSON integer as a two's-complement
// bit-cast (see the header comment); the cast back is lossless.
std::uint64_t get_u64(const Json& obj, const std::string& path,
                      const std::string& key) {
  return static_cast<std::uint64_t>(get_int(obj, path, key));
}

std::size_t get_size(const Json& obj, const std::string& path,
                     const std::string& key) {
  const std::int64_t v = get_int(obj, path, key);
  if (v < 0) bad(path + "." + key, "expected a non-negative integer");
  return static_cast<std::size_t>(v);
}

bool get_bool(const Json& obj, const std::string& path,
              const std::string& key) {
  const Json& v = get(obj, path, key);
  if (v.kind() != Json::Kind::Bool) bad(path + "." + key, "expected a bool");
  return v.as_bool();
}

const std::vector<Json>& get_array(const Json& obj, const std::string& path,
                                   const std::string& key) {
  const Json& v = get(obj, path, key);
  if (v.kind() != Json::Kind::Array) bad(path + "." + key, "expected an array");
  return v.items();
}

// ---- util::Rng::State ------------------------------------------------

Json rng_to_json(const util::Rng::State& state) {
  Json words = Json::array();
  for (const std::uint64_t w : state.words) words.push_back(Json(w));
  Json json = Json::object();
  json["words"] = std::move(words);
  json["cached_normal"] = Json(state.cached_normal);
  json["has_cached_normal"] = Json(state.has_cached_normal);
  return json;
}

util::Rng::State rng_from_json(const Json& json, const std::string& path) {
  util::Rng::State state;
  const auto& words = get_array(json, path, "words");
  if (words.size() != state.words.size()) {
    bad(path + ".words", "expected exactly 4 state words");
  }
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (words[i].kind() != Json::Kind::Int) {
      bad(path + ".words", "expected integer state words");
    }
    state.words[i] = static_cast<std::uint64_t>(words[i].as_int());
  }
  state.cached_normal = get_double(json, path, "cached_normal");
  state.has_cached_normal = get_bool(json, path, "has_cached_normal");
  return state;
}

}  // namespace

// ---- QuantileSketch --------------------------------------------------

Json to_json(const stats::QuantileSketch::Snapshot& s) {
  Json json = Json::object();
  json["k"] = Json(static_cast<std::uint64_t>(s.k));
  json["rng"] = rng_to_json(s.rng);
  Json levels = Json::array();
  for (const auto& level : s.levels) {
    Json items = Json::array();
    for (const double x : level) items.push_back(Json(x));
    levels.push_back(std::move(items));
  }
  json["levels"] = std::move(levels);
  json["count"] = Json(s.count);
  json["min"] = Json(s.min);
  json["max"] = Json(s.max);
  return json;
}

stats::QuantileSketch::Snapshot sketch_from_json(const Json& json) {
  const std::string path = "sketch";
  stats::QuantileSketch::Snapshot s;
  s.k = get_size(json, path, "k");
  s.rng = rng_from_json(get(json, path, "rng"), path + ".rng");
  const auto& levels = get_array(json, path, "levels");
  s.levels.reserve(levels.size());
  for (const Json& level : levels) {
    if (level.kind() != Json::Kind::Array) {
      bad(path + ".levels", "expected arrays of items");
    }
    std::vector<double> items;
    items.reserve(level.items().size());
    for (const Json& x : level.items()) {
      if (!x.is_number()) bad(path + ".levels", "expected numeric items");
      items.push_back(x.as_double());
    }
    s.levels.push_back(std::move(items));
  }
  s.count = get_u64(json, path, "count");
  s.min = get_double(json, path, "min");
  s.max = get_double(json, path, "max");
  return s;
}

// ---- StreamingHistogram ----------------------------------------------

Json to_json(const stats::StreamingHistogram::Snapshot& s) {
  Json options = Json::object();
  options["relative_error"] = Json(s.options.relative_error);
  options["min_value"] = Json(s.options.min_value);
  options["max_buckets"] = Json(static_cast<std::uint64_t>(s.options.max_buckets));
  Json buckets = Json::array();
  for (const auto& [index, count] : s.buckets) {
    Json pair = Json::array();
    pair.push_back(Json(static_cast<std::int64_t>(index)));
    pair.push_back(Json(count));
    buckets.push_back(std::move(pair));
  }
  Json json = Json::object();
  json["options"] = std::move(options);
  json["buckets"] = std::move(buckets);
  json["zero_count"] = Json(s.zero_count);
  json["count"] = Json(s.count);
  json["sum"] = Json(s.sum);
  json["min"] = Json(s.min);
  json["max"] = Json(s.max);
  return json;
}

stats::StreamingHistogram::Snapshot histogram_from_json(const Json& json) {
  const std::string path = "histogram";
  stats::StreamingHistogram::Snapshot s;
  const Json& options = get(json, path, "options");
  s.options.relative_error = get_double(options, path + ".options",
                                        "relative_error");
  s.options.min_value = get_double(options, path + ".options", "min_value");
  s.options.max_buckets = get_size(options, path + ".options", "max_buckets");
  for (const Json& pair : get_array(json, path, "buckets")) {
    if (pair.kind() != Json::Kind::Array || pair.items().size() != 2 ||
        pair.items()[0].kind() != Json::Kind::Int ||
        pair.items()[1].kind() != Json::Kind::Int) {
      bad(path + ".buckets", "expected [index, count] integer pairs");
    }
    const std::int64_t index = pair.items()[0].as_int();
    if (index < INT32_MIN || index > INT32_MAX) {
      bad(path + ".buckets", "bucket index out of int32 range");
    }
    s.buckets.emplace_back(static_cast<std::int32_t>(index),
                           static_cast<std::uint64_t>(pair.items()[1].as_int()));
  }
  s.zero_count = get_u64(json, path, "zero_count");
  s.count = get_u64(json, path, "count");
  s.sum = get_double(json, path, "sum");
  s.min = get_double(json, path, "min");
  s.max = get_double(json, path, "max");
  return s;
}

// ---- OnlineCharacterizer ---------------------------------------------

namespace {

Json config_to_json(const StreamConfig& c) {
  Json json = Json::object();
  json["sketch_k"] = Json(static_cast<std::uint64_t>(c.sketch_k));
  json["histogram_relative_error"] = Json(c.histogram_relative_error);
  json["max_tracked_users"] = Json(static_cast<std::uint64_t>(c.max_tracked_users));
  json["max_groups_per_user"] =
      Json(static_cast<std::uint64_t>(c.max_groups_per_user));
  json["min_jobs_per_user"] = Json(static_cast<std::uint64_t>(c.min_jobs_per_user));
  json["run_tolerance"] = Json(c.run_tolerance);
  json["epoch_unix"] = Json(c.epoch_unix);
  json["utc_offset_hours"] = Json(c.utc_offset_hours);
  json["window_seconds"] = Json(c.window_seconds);
  json["sketch_seed"] = Json(c.sketch_seed);
  return json;
}

StreamConfig config_from_json(const Json& json) {
  const std::string path = "characterizer.config";
  StreamConfig c;
  c.sketch_k = get_size(json, path, "sketch_k");
  c.histogram_relative_error =
      get_double(json, path, "histogram_relative_error");
  c.max_tracked_users = get_size(json, path, "max_tracked_users");
  c.max_groups_per_user = get_size(json, path, "max_groups_per_user");
  c.min_jobs_per_user = get_size(json, path, "min_jobs_per_user");
  c.run_tolerance = get_double(json, path, "run_tolerance");
  c.epoch_unix = get_int(json, path, "epoch_unix");
  c.utc_offset_hours = get_double(json, path, "utc_offset_hours");
  c.window_seconds = get_double(json, path, "window_seconds");
  c.sketch_seed = get_u64(json, path, "sketch_seed");
  return c;
}

Json window_to_json(const WindowSummary& w) {
  Json json = Json::object();
  json["start"] = Json(w.start);
  json["jobs"] = Json(w.jobs);
  json["rate_per_hour"] = Json(w.rate_per_hour);
  return json;
}

WindowSummary window_from_json(const Json& json, const std::string& path) {
  WindowSummary w;
  w.start = get_double(json, path, "start");
  w.jobs = get_u64(json, path, "jobs");
  w.rate_per_hour = get_double(json, path, "rate_per_hour");
  return w;
}

}  // namespace

Json to_json(const OnlineCharacterizer::Snapshot& s) {
  Json json = Json::object();
  json["config"] = config_to_json(s.config);
  json["jobs"] = Json(s.jobs);
  json["out_of_order"] = Json(s.out_of_order);
  json["first_submit"] = Json(s.first_submit);
  json["last_submit"] = Json(s.last_submit);
  json["runtime_sketch"] = to_json(s.runtime_sketch);
  json["wait_sketch"] = to_json(s.wait_sketch);
  json["interarrival_sketch"] = to_json(s.interarrival_sketch);
  json["runtime_histogram"] = to_json(s.runtime_histogram);
  Json hourly = Json::array();
  for (const double h : s.hourly) hourly.push_back(Json(h));
  json["hourly"] = std::move(hourly);
  json["gap_count"] = Json(s.gap_count);
  json["gap_sum"] = Json(s.gap_sum);
  json["gap_sum_sq"] = Json(s.gap_sum_sq);
  Json users = Json::array();
  for (const auto& entry : s.users) {
    Json groups = Json::array();
    for (const auto& [key, n] : entry.groups) {
      Json pair = Json::array();
      pair.push_back(Json(key));
      pair.push_back(Json(n));
      groups.push_back(std::move(pair));
    }
    Json user = Json::object();
    user["id"] = Json(static_cast<std::uint64_t>(entry.id));
    user["jobs"] = Json(entry.jobs);
    user["overflow"] = Json(entry.overflow);
    user["groups"] = std::move(groups);
    users.push_back(std::move(user));
  }
  json["users"] = std::move(users);
  json["untracked_jobs"] = Json(s.untracked_jobs);
  Json window = Json::object();
  window["open_index"] = Json(s.open_window_index);
  window["started"] = Json(s.window_started);
  window["open_jobs"] = Json(s.open_window_jobs);
  window["completed"] = Json(s.windows_completed);
  window["last"] = window_to_json(s.last_window);
  json["window"] = std::move(window);
  return json;
}

OnlineCharacterizer::Snapshot characterizer_from_json(const Json& json) {
  const std::string path = "characterizer";
  OnlineCharacterizer::Snapshot s;
  s.config = config_from_json(get(json, path, "config"));
  s.jobs = get_u64(json, path, "jobs");
  s.out_of_order = get_u64(json, path, "out_of_order");
  s.first_submit = get_double(json, path, "first_submit");
  s.last_submit = get_double(json, path, "last_submit");
  s.runtime_sketch = sketch_from_json(get(json, path, "runtime_sketch"));
  s.wait_sketch = sketch_from_json(get(json, path, "wait_sketch"));
  s.interarrival_sketch =
      sketch_from_json(get(json, path, "interarrival_sketch"));
  s.runtime_histogram =
      histogram_from_json(get(json, path, "runtime_histogram"));
  const auto& hourly = get_array(json, path, "hourly");
  if (hourly.size() != s.hourly.size()) {
    bad(path + ".hourly", "expected exactly 24 hour counts");
  }
  for (std::size_t h = 0; h < hourly.size(); ++h) {
    if (!hourly[h].is_number()) bad(path + ".hourly", "expected numbers");
    s.hourly[h] = hourly[h].as_double();
  }
  s.gap_count = get_u64(json, path, "gap_count");
  s.gap_sum = get_double(json, path, "gap_sum");
  s.gap_sum_sq = get_double(json, path, "gap_sum_sq");
  for (const Json& user : get_array(json, path, "users")) {
    const std::string user_path = path + ".users";
    OnlineCharacterizer::Snapshot::UserEntry entry;
    const std::int64_t id = get_int(user, user_path, "id");
    if (id < 0 || id > static_cast<std::int64_t>(UINT32_MAX)) {
      bad(user_path + ".id", "user id out of uint32 range");
    }
    entry.id = static_cast<std::uint32_t>(id);
    entry.jobs = get_u64(user, user_path, "jobs");
    entry.overflow = get_u64(user, user_path, "overflow");
    for (const Json& pair : get_array(user, user_path, "groups")) {
      if (pair.kind() != Json::Kind::Array || pair.items().size() != 2 ||
          pair.items()[0].kind() != Json::Kind::Int ||
          pair.items()[1].kind() != Json::Kind::Int) {
        bad(user_path + ".groups", "expected [key, count] integer pairs");
      }
      entry.groups.emplace_back(
          static_cast<std::uint64_t>(pair.items()[0].as_int()),
          static_cast<std::uint64_t>(pair.items()[1].as_int()));
    }
    s.users.push_back(std::move(entry));
  }
  s.untracked_jobs = get_u64(json, path, "untracked_jobs");
  const Json& window = get(json, path, "window");
  s.open_window_index = get_int(window, path + ".window", "open_index");
  s.window_started = get_bool(window, path + ".window", "started");
  s.open_window_jobs = get_u64(window, path + ".window", "open_jobs");
  s.windows_completed = get_u64(window, path + ".window", "completed");
  s.last_window = window_from_json(get(window, path + ".window", "last"),
                                   path + ".window.last");
  return s;
}

}  // namespace lumos::stream
