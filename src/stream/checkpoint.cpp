#include "stream/checkpoint.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "stream/snapshot.hpp"
#include "stream/source.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace lumos::stream {

namespace {

using obs::Json;

constexpr const char* kCheckpointKind = "lumos_checkpoint";
constexpr std::uint64_t kFingerprintWindow = 64ull * 1024;

Json cursor_to_json(const SourceCursor& cursor) {
  Json json = Json::object();
  json["input"] = Json(cursor.input);
  json["byte_offset"] = Json(cursor.byte_offset);
  json["line"] = Json(cursor.line);
  json["events"] = Json(cursor.events);
  json["bad_rows"] = Json(cursor.bad_rows);
  json["unknown_runtime"] = Json(cursor.unknown_runtime);
  json["fingerprint"] = Json(cursor.fingerprint);
  return json;
}

const Json& require(const Json& obj, const char* key, const char* what) {
  const Json* value = obj.find(key);
  if (value == nullptr) {
    throw InvalidArgument(std::string("checkpoint: missing ") + what);
  }
  return *value;
}

std::uint64_t require_u64(const Json& obj, const char* key,
                          const char* what) {
  const Json& v = require(obj, key, what);
  if (v.kind() != Json::Kind::Int) {
    throw InvalidArgument(std::string("checkpoint: ") + what +
                          " must be an integer");
  }
  return static_cast<std::uint64_t>(v.as_int());
}

SourceCursor cursor_from_json(const Json& json) {
  SourceCursor cursor;
  const Json& input = require(json, "input", "cursor.input");
  if (input.kind() != Json::Kind::String) {
    throw InvalidArgument("checkpoint: cursor.input must be a string");
  }
  cursor.input = input.as_string();
  cursor.byte_offset = require_u64(json, "byte_offset", "cursor.byte_offset");
  cursor.line = require_u64(json, "line", "cursor.line");
  cursor.events = require_u64(json, "events", "cursor.events");
  cursor.bad_rows = require_u64(json, "bad_rows", "cursor.bad_rows");
  cursor.unknown_runtime =
      require_u64(json, "unknown_runtime", "cursor.unknown_runtime");
  cursor.fingerprint = require_u64(json, "fingerprint", "cursor.fingerprint");
  return cursor;
}

/// Whole-file slurp for checkpoint documents (small by construction:
/// bounded characterizer state). Returns nullopt when the file does not
/// exist; throws nothing else — read failures surface as nullopt with
/// `error` set, so the loader's fallback chain stays exception-free.
std::optional<std::string> slurp(const std::string& path,
                                 std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    error = "read failed for '" + path + "'";
    return std::nullopt;
  }
  return std::move(buffer).str();
}

}  // namespace

Json to_json(const Checkpoint& checkpoint) {
  Json meta = Json::object();
  meta["schema_version"] = Json(kSnapshotSchemaVersion);
  meta["kind"] = Json(kCheckpointKind);
  Json json = Json::object();
  json["_meta"] = std::move(meta);
  json["cursor"] = cursor_to_json(checkpoint.cursor);
  json["characterizer"] = to_json(checkpoint.characterizer);
  return json;
}

Checkpoint checkpoint_from_json(const Json& json) {
  const Json& meta = require(json, "_meta", "_meta");
  const Json& version = require(meta, "schema_version", "_meta.schema_version");
  if (version.kind() != Json::Kind::Int ||
      version.as_int() != kSnapshotSchemaVersion) {
    throw InvalidArgument(
        "checkpoint: unsupported schema_version (expected " +
        std::to_string(kSnapshotSchemaVersion) + ")");
  }
  const Json& kind = require(meta, "kind", "_meta.kind");
  if (kind.kind() != Json::Kind::String ||
      kind.as_string() != kCheckpointKind) {
    throw InvalidArgument("checkpoint: _meta.kind is not '" +
                          std::string(kCheckpointKind) + "'");
  }
  Checkpoint checkpoint;
  checkpoint.cursor = cursor_from_json(require(json, "cursor", "cursor"));
  checkpoint.characterizer =
      characterizer_from_json(require(json, "characterizer", "characterizer"));
  return checkpoint;
}

std::uint64_t input_fingerprint(const std::string& path,
                                std::uint64_t byte_offset) {
  if (byte_offset == 0) return 0;
  const std::uint64_t window = std::min(byte_offset, kFingerprintWindow);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SourceError("fingerprint: cannot open '" + path + "'", errno);
  }
  // FNV-1a 64-bit over the prefix: cheap, deterministic, and order-
  // sensitive — exactly enough to notice "this is a different file".
  std::uint64_t hash = 0xcbf29ce484222325ull;
  char chunk[4096];
  std::uint64_t remaining = window;
  while (remaining > 0) {
    const auto want = static_cast<std::streamsize>(
        std::min<std::uint64_t>(remaining, sizeof(chunk)));
    in.read(chunk, want);
    const std::streamsize got = in.gcount();
    if (got <= 0) {
      throw SourceError("fingerprint: '" + path + "' shorter than cursor",
                        0);
    }
    for (std::streamsize i = 0; i < got; ++i) {
      hash ^= static_cast<unsigned char>(chunk[i]);
      hash *= 0x100000001b3ull;
    }
    remaining -= static_cast<std::uint64_t>(got);
  }
  return hash;
}

void save_checkpoint(const Checkpoint& checkpoint, const std::string& path) {
  LUMOS_FAILPOINT("stream.checkpoint.write");
  // Rotate the current good document out of the way first; rename is
  // atomic, so at every instant either `path` or `path.prev` holds a
  // complete checkpoint. ENOENT (first checkpoint) is fine.
  const std::string prev = path + ".prev";
  if (std::rename(path.c_str(), prev.c_str()) != 0 && errno != ENOENT) {
    throw InvalidArgument("checkpoint: cannot rotate '" + path + "' to '" +
                          prev + "': " + std::strerror(errno));
  }
  obs::write_json_atomic(to_json(checkpoint), path);
}

CheckpointLoad load_checkpoint(const std::string& path) {
  LUMOS_FAILPOINT("stream.checkpoint.load");
  CheckpointLoad load;
  bool primary_existed = false;
  for (const std::string& candidate : {path, path + ".prev"}) {
    std::string read_error;
    const auto text = slurp(candidate, read_error);
    if (!text) {
      if (!read_error.empty() && !load.detail.empty()) load.detail += "; ";
      load.detail += read_error;
      continue;
    }
    if (candidate == path) primary_existed = true;
    try {
      load.checkpoint = checkpoint_from_json(obs::Json::parse(*text));
      load.outcome = candidate == path ? CheckpointLoad::Outcome::Primary
                                       : CheckpointLoad::Outcome::Fallback;
      if (load.outcome == CheckpointLoad::Outcome::Fallback) {
        LUMOS_WARN << "checkpoint: primary '" << path
                   << "' unusable; restored fallback '" << candidate
                   << "' (" << load.detail << ")";
      }
      return load;
    } catch (const Error& e) {
      if (!load.detail.empty()) load.detail += "; ";
      load.detail += "'" + candidate + "': " + e.what();
    }
  }
  if (primary_existed || !load.detail.empty()) {
    load.outcome = CheckpointLoad::Outcome::CorruptIgnored;
    LUMOS_ERROR << "checkpoint: no usable checkpoint at '" << path
                << "' (" << load.detail << "); starting from zero state";
  }
  return load;
}

}  // namespace lumos::stream
