// stream checkpoints — crash-consistent state for the serve loop.
//
// A checkpoint is one JSON document pairing a *source cursor* (how far
// into the input the characterizer state accounts for) with the complete
// OnlineCharacterizer snapshot (stream/snapshot.hpp). run_ingest writes
// one every `checkpoint_every_events` events and on graceful shutdown; on
// startup it restores the newest good checkpoint, seeks the source to
// `cursor.byte_offset`, and replays only the gap — so a SIGKILL at any
// instant costs at most one checkpoint interval of replay and the final
// report is identical to an uninterrupted run (the ext_serve_chaos drill
// pins this).
//
// Document shape (schema-checked on load):
//   { "_meta": { "schema_version": 1, "kind": "lumos_checkpoint" },
//     "cursor": { "input", "byte_offset", "line", "events", "bad_rows",
//                 "unknown_runtime", "fingerprint" },
//     "characterizer": <stream/snapshot.hpp encoding> }
//
// Torn-write safety, two layers:
//   * save_checkpoint writes via obs::write_json_atomic (temp + fsync +
//     rename), so a kill mid-write leaves the previous document intact;
//   * before writing it rotates the current document to `path + ".prev"`,
//     and load_checkpoint falls back to .prev when the primary is missing
//     or fails schema/decode checks — so even out-of-band corruption of
//     the primary never crashes the daemon and never silently restarts
//     from zero state (the fallback is logged and surfaced in Outcome).
//
// The cursor fingerprint (FNV-1a over the first min(byte_offset, 64 KiB)
// of the input) catches the operational accident checkpoints cannot
// otherwise see: the input file was replaced or rewritten between runs,
// making the cursor meaningless. A mismatch refuses the resume (typed
// InvalidArgument) instead of silently double-counting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "obs/json.hpp"
#include "stream/online.hpp"

namespace lumos::stream {

/// Resume position in the input stream. Counters mirror IngestResult so a
/// resumed run reports cumulative totals identical to an uninterrupted one.
struct SourceCursor {
  std::string input;                  ///< path the offsets refer to
  std::uint64_t byte_offset = 0;      ///< next unconsumed input byte
  std::uint64_t line = 0;             ///< input lines consumed so far
  std::uint64_t events = 0;           ///< job events ingested so far
  std::uint64_t bad_rows = 0;
  std::uint64_t unknown_runtime = 0;
  std::uint64_t fingerprint = 0;      ///< input_fingerprint at write time
};

struct Checkpoint {
  SourceCursor cursor;
  OnlineCharacterizer::Snapshot characterizer;
};

[[nodiscard]] obs::Json to_json(const Checkpoint& checkpoint);
/// Strict decode incl. _meta schema/kind check; throws
/// lumos::InvalidArgument on any mismatch.
[[nodiscard]] Checkpoint checkpoint_from_json(const obs::Json& json);

/// FNV-1a over the first min(`byte_offset`, 64 KiB) bytes of `path`.
/// Returns 0 for byte_offset == 0 (nothing consumed -> nothing to match).
/// Throws SourceError (source.hpp) when the file cannot be read.
[[nodiscard]] std::uint64_t input_fingerprint(const std::string& path,
                                              std::uint64_t byte_offset);

/// Rotates the current checkpoint at `path` to `path + ".prev"`, then
/// writes `checkpoint` atomically. Evaluates the stream.checkpoint.write
/// failpoint before touching the filesystem; throws lumos::InvalidArgument
/// on I/O failure (from write_json_atomic).
void save_checkpoint(const Checkpoint& checkpoint, const std::string& path);

struct CheckpointLoad {
  enum class Outcome {
    NoCheckpoint,    ///< neither path nor path.prev exists — fresh start
    Primary,         ///< restored from `path`
    Fallback,        ///< primary missing/corrupt; restored from .prev
    CorruptIgnored,  ///< both unreadable — fresh start, loudly logged
  };
  Outcome outcome = Outcome::NoCheckpoint;
  std::optional<Checkpoint> checkpoint;
  /// Decode errors encountered along the way (empty when clean).
  std::string detail;
};

/// Loads the newest good checkpoint: `path`, then `path + ".prev"`.
/// Never throws on corrupt documents (that is the point — see the header
/// comment); evaluates the stream.checkpoint.load failpoint, whose
/// InjectedFault does propagate.
[[nodiscard]] CheckpointLoad load_checkpoint(const std::string& path);

}  // namespace lumos::stream
