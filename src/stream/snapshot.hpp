// JSON codec for streaming-state snapshots (crash-consistent serve mode).
//
// stats::QuantileSketch / stats::StreamingHistogram / OnlineCharacterizer
// expose plain-struct `Snapshot`s; this module maps them onto `obs::Json`
// documents and back. It lives in `stream` (not `stats`) because stats
// must stay below obs in the include-graph layering (tools/lint/layers.txt)
// — the sketches know nothing about serialization formats.
//
// Round-trip fidelity: the obs::Json writer emits doubles in shortest
// round-trip form (std::to_chars) and the parser reads them back with
// std::from_chars, so every finite double survives dump→parse bit-exactly.
// uint64 fields (rng state words, group keys, counters) ride through the
// int64 JSON integer via two's-complement cast, which is lossless. Hence
// decode(encode(snapshot)) == snapshot exactly, and restoring it yields a
// characterizer bit-identical to the original — the property the
// kill-and-resume drills depend on.
//
// Decoding is strict: missing keys, wrong kinds, or malformed shapes throw
// lumos::InvalidArgument naming the offending path. Semantic invariants
// (weight conservation, capacity caps) are enforced one layer up by the
// `restore()` functions, so a corrupted checkpoint fails loudly either way.
#pragma once

#include "obs/json.hpp"
#include "stats/sketch.hpp"
#include "stream/online.hpp"

namespace lumos::stream {

/// Bump when any snapshot encoding changes shape. Checked by the
/// checkpoint loader (stream/checkpoint.hpp) before decoding.
inline constexpr std::int64_t kSnapshotSchemaVersion = 1;

[[nodiscard]] obs::Json to_json(const stats::QuantileSketch::Snapshot& s);
[[nodiscard]] stats::QuantileSketch::Snapshot sketch_from_json(
    const obs::Json& json);

[[nodiscard]] obs::Json to_json(const stats::StreamingHistogram::Snapshot& s);
[[nodiscard]] stats::StreamingHistogram::Snapshot histogram_from_json(
    const obs::Json& json);

[[nodiscard]] obs::Json to_json(const OnlineCharacterizer::Snapshot& s);
[[nodiscard]] OnlineCharacterizer::Snapshot characterizer_from_json(
    const obs::Json& json);

}  // namespace lumos::stream
