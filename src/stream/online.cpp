#include "stream/online.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace lumos::stream {

namespace {

bool same_config(const StreamConfig& a, const StreamConfig& b) noexcept {
  return a.sketch_k == b.sketch_k &&
         a.histogram_relative_error == b.histogram_relative_error &&
         a.max_tracked_users == b.max_tracked_users &&
         a.max_groups_per_user == b.max_groups_per_user &&
         a.min_jobs_per_user == b.min_jobs_per_user &&
         a.run_tolerance == b.run_tolerance && a.epoch_unix == b.epoch_unix &&
         a.utc_offset_hours == b.utc_offset_hours &&
         a.window_seconds == b.window_seconds &&
         a.sketch_seed == b.sketch_seed;
}

stats::QuantileSketch make_sketch(const StreamConfig& c,
                                  std::uint64_t salt) {
  stats::QuantileSketch::Options o;
  o.k = c.sketch_k;
  // Distinct deterministic coin per sketch so the three streams do not
  // share compaction decisions.
  o.seed = c.sketch_seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  return stats::QuantileSketch(o);
}

stats::StreamingHistogram make_histogram(const StreamConfig& c) {
  stats::StreamingHistogram::Options o;
  o.relative_error = c.histogram_relative_error;
  return stats::StreamingHistogram(o);
}

}  // namespace

OnlineCharacterizer::OnlineCharacterizer(StreamConfig config)
    : config_(config),
      runtime_sketch_(make_sketch(config_, 1)),
      wait_sketch_(make_sketch(config_, 2)),
      interarrival_sketch_(make_sketch(config_, 3)),
      runtime_histogram_(make_histogram(config_)) {
  LUMOS_REQUIRE(config_.window_seconds > 0.0,
                "StreamConfig window_seconds must be positive");
  LUMOS_REQUIRE(config_.run_tolerance > 0.0 && config_.run_tolerance < 1.0,
                "StreamConfig run_tolerance must be in (0, 1)");
  LUMOS_REQUIRE(config_.max_tracked_users >= 1,
                "StreamConfig max_tracked_users must be >= 1");
  LUMOS_REQUIRE(config_.max_groups_per_user >= 1,
                "StreamConfig max_groups_per_user must be >= 1");
}

std::uint64_t OnlineCharacterizer::group_key(const trace::Job& job) const {
  // Streaming stand-in for analysis::analyze_repetition's "same cores,
  // runtime within run_tolerance of the group mean": quantize log(runtime)
  // into buckets of ratio (1 + 2 * tol), so two runtimes within ~tol of a
  // common center land in the same bucket.
  std::int32_t bucket = std::numeric_limits<std::int32_t>::min();
  if (job.run_time > 0.0) {
    const double ratio = 1.0 + 2.0 * config_.run_tolerance;
    bucket = static_cast<std::int32_t>(
        std::floor(std::log(job.run_time) / std::log(ratio)));
  }
  return (static_cast<std::uint64_t>(job.cores) << 32) |
         static_cast<std::uint32_t>(bucket);
}

void OnlineCharacterizer::bound_user_groups(UserState& user) {
  while (user.groups.size() > config_.max_groups_per_user) {
    // Evict the smallest-count group (first such key for determinism).
    auto victim = user.groups.begin();
    for (auto it = std::next(victim); it != user.groups.end(); ++it) {
      if (it->second < victim->second) victim = it;
    }
    user.overflow += victim->second;
    user.groups.erase(victim);
  }
}

void OnlineCharacterizer::evict_smallest_user() {
  while (users_.size() > config_.max_tracked_users) {
    auto victim = users_.begin();
    for (auto it = std::next(victim); it != users_.end(); ++it) {
      if (it->second.jobs < victim->second.jobs) victim = it;
    }
    untracked_jobs_ += victim->second.jobs;
    users_.erase(victim);
  }
}

void OnlineCharacterizer::advance_window(double t) {
  const auto index =
      static_cast<std::int64_t>(std::floor(t / config_.window_seconds));
  if (!window_started_) {
    window_started_ = true;
    open_window_index_ = index;
    return;
  }
  if (index <= open_window_index_) return;
  if (open_window_jobs_ > 0) {
    last_window_.start =
        static_cast<double>(open_window_index_) * config_.window_seconds;
    last_window_.jobs = open_window_jobs_;
    last_window_.rate_per_hour = static_cast<double>(open_window_jobs_) /
                                 (config_.window_seconds / 3600.0);
  }
  // Every elapsed window counts as completed, including empty gaps.
  windows_completed_ +=
      static_cast<std::uint64_t>(index - open_window_index_);
  open_window_index_ = index;
  open_window_jobs_ = 0;
}

void OnlineCharacterizer::ingest(const trace::Job& job) {
  const double t = job.submit_time;
  if (jobs_ == 0) {
    first_submit_ = t;
    last_submit_ = t;
  } else {
    double gap = t - last_submit_;
    if (gap < 0.0) {
      ++out_of_order_;
      gap = 0.0;
    } else {
      last_submit_ = t;
    }
    ++gap_count_;
    gap_sum_ += gap;
    gap_sum_sq_ += gap * gap;
    interarrival_sketch_.insert(gap);
    first_submit_ = std::min(first_submit_, t);
  }
  ++jobs_;

  runtime_sketch_.insert(job.run_time);
  runtime_histogram_.insert(job.run_time);
  wait_sketch_.insert(job.wait_time);

  hourly_[static_cast<std::size_t>(util::hour_of_day(
      t, config_.epoch_unix, config_.utc_offset_hours))] += 1.0;

  auto& user = users_[job.user];
  ++user.jobs;
  ++user.groups[group_key(job)];
  bound_user_groups(user);
  evict_smallest_user();

  advance_window(t);
  ++open_window_jobs_;
}

void OnlineCharacterizer::merge(const OnlineCharacterizer& other) {
  LUMOS_REQUIRE(same_config(config_, other.config_),
                "OnlineCharacterizer::merge requires identical StreamConfig");
  if (other.jobs_ == 0) return;
  if (jobs_ == 0) {
    first_submit_ = other.first_submit_;
    last_submit_ = other.last_submit_;
  } else {
    // Contiguous shards (other strictly after this) contribute the exact
    // boundary gap, so merged moments equal serial ingest. Overlapping
    // ranges merge moments without a synthetic gap — a documented
    // approximation for out-of-order shard assignment.
    if (other.first_submit_ >= last_submit_) {
      const double gap = other.first_submit_ - last_submit_;
      ++gap_count_;
      gap_sum_ += gap;
      gap_sum_sq_ += gap * gap;
      interarrival_sketch_.insert(gap);
    }
    first_submit_ = std::min(first_submit_, other.first_submit_);
    last_submit_ = std::max(last_submit_, other.last_submit_);
  }
  jobs_ += other.jobs_;
  out_of_order_ += other.out_of_order_;

  runtime_sketch_.merge(other.runtime_sketch_);
  wait_sketch_.merge(other.wait_sketch_);
  interarrival_sketch_.merge(other.interarrival_sketch_);
  runtime_histogram_.merge(other.runtime_histogram_);

  for (std::size_t h = 0; h < hourly_.size(); ++h) {
    hourly_[h] += other.hourly_[h];
  }

  gap_count_ += other.gap_count_;
  gap_sum_ += other.gap_sum_;
  gap_sum_sq_ += other.gap_sum_sq_;

  for (const auto& [id, theirs] : other.users_) {
    auto& mine = users_[id];
    mine.jobs += theirs.jobs;
    mine.overflow += theirs.overflow;
    for (const auto& [key, n] : theirs.groups) mine.groups[key] += n;
    bound_user_groups(mine);
  }
  untracked_jobs_ += other.untracked_jobs_;
  evict_smallest_user();

  // Windows: keep the later shard's open window; completed counts add,
  // plus the later-started shard's completed windows.
  windows_completed_ += other.windows_completed_;
  if (other.last_window_.jobs > 0 &&
      (last_window_.jobs == 0 ||
       other.last_window_.start > last_window_.start)) {
    last_window_ = other.last_window_;
  }
  if (!window_started_ ||
      (other.window_started_ &&
       other.open_window_index_ > open_window_index_)) {
    window_started_ = other.window_started_;
    open_window_index_ = other.open_window_index_;
    open_window_jobs_ = other.open_window_jobs_;
  } else if (other.window_started_ &&
             other.open_window_index_ == open_window_index_) {
    open_window_jobs_ += other.open_window_jobs_;
  }
}

double OnlineCharacterizer::peak_ratio() const noexcept {
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (double c : hourly_) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  if (hi == 0.0) return 0.0;
  return lo > 0.0 ? hi / lo : hi;
}

double OnlineCharacterizer::business_hours_share() const noexcept {
  if (jobs_ == 0) return 0.0;
  double business = 0.0;
  for (int h = 8; h <= 17; ++h) {
    business += hourly_[static_cast<std::size_t>(h)];
  }
  return business / static_cast<double>(jobs_);
}

double OnlineCharacterizer::interarrival_mean() const noexcept {
  return gap_count_ == 0 ? 0.0
                         : gap_sum_ / static_cast<double>(gap_count_);
}

double OnlineCharacterizer::interarrival_cv() const noexcept {
  if (gap_count_ < 2) return 0.0;
  const double n = static_cast<double>(gap_count_);
  const double mean = gap_sum_ / n;
  if (mean == 0.0) return 0.0;
  const double var =
      std::max(0.0, (gap_sum_sq_ - gap_sum_ * gap_sum_ / n) / (n - 1.0));
  return std::sqrt(var) / mean;
}

OnlineCharacterizer::Repetition OnlineCharacterizer::repetition(
    std::size_t top_k) const {
  Repetition rep;
  if (top_k == 0) return rep;
  double share_sum = 0.0;
  double group_sum = 0.0;
  for (const auto& [id, user] : users_) {
    if (user.jobs < config_.min_jobs_per_user) continue;
    std::vector<std::uint64_t> counts;
    counts.reserve(user.groups.size());
    for (const auto& [key, n] : user.groups) counts.push_back(n);
    std::sort(counts.begin(), counts.end(), std::greater<>());
    std::uint64_t topk_jobs = 0;
    for (std::size_t i = 0; i < counts.size() && i < top_k; ++i) {
      topk_jobs += counts[i];
    }
    share_sum +=
        static_cast<double>(topk_jobs) / static_cast<double>(user.jobs);
    group_sum += static_cast<double>(user.groups.size());
    ++rep.representative_users;
  }
  if (rep.representative_users > 0) {
    const auto n = static_cast<double>(rep.representative_users);
    rep.topk_share = share_sum / n;
    rep.mean_groups_per_user = group_sum / n;
  }
  return rep;
}

std::size_t OnlineCharacterizer::retained_items() const noexcept {
  std::size_t total = runtime_sketch_.retained() + wait_sketch_.retained() +
                      interarrival_sketch_.retained() +
                      runtime_histogram_.buckets() + hourly_.size();
  for (const auto& [id, user] : users_) total += 1 + user.groups.size();
  return total;
}

OnlineCharacterizer::Snapshot OnlineCharacterizer::snapshot() const {
  Snapshot s;
  s.config = config_;
  s.jobs = jobs_;
  s.out_of_order = out_of_order_;
  s.first_submit = first_submit_;
  s.last_submit = last_submit_;
  s.runtime_sketch = runtime_sketch_.snapshot();
  s.wait_sketch = wait_sketch_.snapshot();
  s.interarrival_sketch = interarrival_sketch_.snapshot();
  s.runtime_histogram = runtime_histogram_.snapshot();
  s.hourly = hourly_;
  s.gap_count = gap_count_;
  s.gap_sum = gap_sum_;
  s.gap_sum_sq = gap_sum_sq_;
  s.users.reserve(users_.size());
  for (const auto& [id, user] : users_) {
    Snapshot::UserEntry entry;
    entry.id = id;
    entry.jobs = user.jobs;
    entry.overflow = user.overflow;
    entry.groups.assign(user.groups.begin(), user.groups.end());
    s.users.push_back(std::move(entry));
  }
  s.untracked_jobs = untracked_jobs_;
  s.open_window_index = open_window_index_;
  s.window_started = window_started_;
  s.open_window_jobs = open_window_jobs_;
  s.windows_completed = windows_completed_;
  s.last_window = last_window_;
  return s;
}

OnlineCharacterizer OnlineCharacterizer::restore(const Snapshot& snapshot) {
  // The constructor re-validates the config; the sketch restores validate
  // their own invariants (weight conservation, options, bucket caps).
  OnlineCharacterizer c(snapshot.config);
  c.jobs_ = snapshot.jobs;
  c.out_of_order_ = snapshot.out_of_order;
  c.first_submit_ = snapshot.first_submit;
  c.last_submit_ = snapshot.last_submit;
  c.runtime_sketch_ = stats::QuantileSketch::restore(snapshot.runtime_sketch);
  c.wait_sketch_ = stats::QuantileSketch::restore(snapshot.wait_sketch);
  c.interarrival_sketch_ =
      stats::QuantileSketch::restore(snapshot.interarrival_sketch);
  c.runtime_histogram_ =
      stats::StreamingHistogram::restore(snapshot.runtime_histogram);
  LUMOS_REQUIRE(c.runtime_sketch_.count() == snapshot.jobs &&
                    c.wait_sketch_.count() == snapshot.jobs &&
                    c.runtime_histogram_.count() == snapshot.jobs,
                "OnlineCharacterizer::restore: runtime/wait sketch and "
                "histogram counts must match the job count");
  LUMOS_REQUIRE(c.interarrival_sketch_.count() == snapshot.gap_count,
                "OnlineCharacterizer::restore: interarrival sketch count "
                "does not match gap_count");
  c.hourly_ = snapshot.hourly;
  c.gap_count_ = snapshot.gap_count;
  c.gap_sum_ = snapshot.gap_sum;
  c.gap_sum_sq_ = snapshot.gap_sum_sq;
  LUMOS_REQUIRE(snapshot.users.size() <= snapshot.config.max_tracked_users,
                "OnlineCharacterizer::restore: user table exceeds "
                "max_tracked_users");
  for (const auto& entry : snapshot.users) {
    LUMOS_REQUIRE(entry.groups.size() <= snapshot.config.max_groups_per_user,
                  "OnlineCharacterizer::restore: user group table exceeds "
                  "max_groups_per_user");
    UserState user;
    user.jobs = entry.jobs;
    user.overflow = entry.overflow;
    std::uint64_t grouped = entry.overflow;
    for (const auto& [key, n] : entry.groups) {
      LUMOS_REQUIRE(user.groups.emplace(key, n).second,
                    "OnlineCharacterizer::restore: duplicate group key");
      grouped += n;
    }
    LUMOS_REQUIRE(grouped == entry.jobs,
                  "OnlineCharacterizer::restore: user group counts plus "
                  "overflow must sum to the user's jobs");
    LUMOS_REQUIRE(c.users_.emplace(entry.id, std::move(user)).second,
                  "OnlineCharacterizer::restore: duplicate user id");
  }
  c.untracked_jobs_ = snapshot.untracked_jobs;
  c.open_window_index_ = snapshot.open_window_index;
  c.window_started_ = snapshot.window_started;
  c.open_window_jobs_ = snapshot.open_window_jobs;
  c.windows_completed_ = snapshot.windows_completed;
  c.last_window_ = snapshot.last_window;
  return c;
}

void OnlineCharacterizer::publish(obs::Report& report,
                                  const std::string& prefix) const {
  const auto set = [&](std::string_view key, double value) {
    report.set(prefix + std::string(key), value);
  };
  set("jobs", static_cast<double>(jobs_));
  set("out_of_order", static_cast<double>(out_of_order_));
  set("span_s", jobs_ == 0 ? 0.0 : last_submit_ - first_submit_);

  set("runtime_p50_s", runtime_sketch_.quantile(0.5));
  set("runtime_p90_s", runtime_sketch_.quantile(0.9));
  set("runtime_p99_s", runtime_sketch_.quantile(0.99));
  set("runtime_mean_s", runtime_histogram_.mean());
  set("wait_p50_s", wait_sketch_.quantile(0.5));
  set("wait_p90_s", wait_sketch_.quantile(0.9));
  set("interarrival_p50_s", interarrival_sketch_.quantile(0.5));

  set("peak_hour_ratio", peak_ratio());
  set("business_hours_share", business_hours_share());
  set("interarrival_mean_s", interarrival_mean());
  set("interarrival_cv", interarrival_cv());

  const Repetition rep = repetition(3);
  set("rep_top3_share", rep.topk_share);
  set("rep_users", static_cast<double>(rep.representative_users));
  set("rep_mean_groups", rep.mean_groups_per_user);
  set("tracked_users", static_cast<double>(users_.size()));
  set("untracked_jobs", static_cast<double>(untracked_jobs_));

  set("windows_completed", static_cast<double>(windows_completed_));
  set("last_window_jobs", static_cast<double>(last_window_.jobs));
  set("last_window_rate_per_hour", last_window_.rate_per_hour);
  set("open_window_jobs", static_cast<double>(open_window_jobs_));

  set("retained_items", static_cast<double>(retained_items()));
}

}  // namespace lumos::stream
