// Descriptive statistics over double samples.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace lumos::stats {

/// Five-number-plus summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Arithmetic mean; 0 for an empty sample.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Unbiased sample variance; 0 for n < 2.
[[nodiscard]] double variance(std::span<const double> xs) noexcept;

/// sqrt(variance).
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Linear-interpolated quantile, q in [0,1]. Sorts a copy; O(n log n).
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Quantile over data the caller has already sorted ascending; O(1).
///
/// This is THE quantile convention of the repo — every quantile producer
/// (`quantile`, `summarize`, `Ecdf::quantile`, `stats::QuantileSketch`,
/// `stats::StreamingHistogram`) follows it, and the
/// `SketchMatchesExactConvention` test pins exact and sketch backends to
/// it so they stay swappable:
///   * position: the q-quantile sits at fractional 0-based position
///     `pos = q * (n - 1)` in order-statistic space (the "type 7" /
///     numpy-default rule);
///   * interpolation: linear between the two adjacent order statistics,
///     `x[floor(pos)] * (1 - frac) + x[floor(pos) + 1] * frac`;
///   * ties: duplicate values are distinct order statistics (a run of
///     equal values occupies a run of positions); the forward CDF
///     `F(x) = P(X <= x)` counts ALL items `<= x` (upper-bound
///     semantics), so `F` is right-continuous at ties;
///   * clamping: `q <= 0` returns the minimum, `q >= 1` the maximum.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted,
                                     double q) noexcept;

/// Median (quantile 0.5).
[[nodiscard]] double median(std::span<const double> xs);

/// Full summary in one pass over a sorted copy.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Renders "n=... mean=... p50=..." for reports.
[[nodiscard]] std::string to_string(const Summary& s);

/// Geometric mean of strictly positive samples (0 when any is <= 0).
[[nodiscard]] double geometric_mean(std::span<const double> xs) noexcept;

}  // namespace lumos::stats
