// Pearson and Spearman correlation, used in the failure-vs-geometry and
// queue-length behaviour analyses to quantify the trends the paper reads
// off its bar charts.
#pragma once

#include <span>
#include <vector>

namespace lumos::stats {

/// Pearson product-moment correlation; 0 for degenerate inputs.
/// Both spans must be the same length.
[[nodiscard]] double pearson(std::span<const double> x,
                             std::span<const double> y);

/// Spearman rank correlation (average ranks for ties).
[[nodiscard]] double spearman(std::span<const double> x,
                              std::span<const double> y);

/// Mid-ranks (1-based, ties averaged) of a sample.
[[nodiscard]] std::vector<double> ranks(std::span<const double> xs);

}  // namespace lumos::stats
