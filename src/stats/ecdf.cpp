#include "stats/ecdf.hpp"

#include <algorithm>

#include "stats/descriptive.hpp"

namespace lumos::stats {

Ecdf::Ecdf(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const noexcept {
  return quantile_sorted(sorted_, q);
}

std::vector<std::pair<double, double>> Ecdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  if (points == 1) {
    out.emplace_back(sorted_.back(), 1.0);
    return out;
  }
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q =
        static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

}  // namespace lumos::stats
