#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace lumos::stats {

double pearson(std::span<const double> x, std::span<const double> y) {
  LUMOS_REQUIRE(x.size() == y.size(), "pearson: length mismatch");
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> r(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average 1-based rank across the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg;
    i = j + 1;
  }
  return r;
}

double spearman(std::span<const double> x, std::span<const double> y) {
  LUMOS_REQUIRE(x.size() == y.size(), "spearman: length mismatch");
  const auto rx = ranks(x);
  const auto ry = ranks(y);
  return pearson(rx, ry);
}

}  // namespace lumos::stats
