// Linear- and log-spaced histograms.
//
// The hourly-arrival profile (Fig 1b bottom) is a 24-bin linear histogram;
// runtime/size distributions use log-spaced bins because both span 5+
// decades on every system in the study.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace lumos::stats {

class Histogram {
 public:
  /// Linear bins over [lo, hi) (values outside are clamped into the edge
  /// bins). `bins` must be >= 1 and hi > lo.
  static Histogram linear(double lo, double hi, std::size_t bins);

  /// Log10-spaced bins over [lo, hi); lo must be > 0.
  static Histogram logarithmic(double lo, double hi, std::size_t bins);

  /// Adds one observation with the given weight.
  void add(double x, double weight = 1.0) noexcept;

  /// Adds a whole sample.
  void add_all(std::span<const double> xs) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  /// Inclusive lower edge of bin i.
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  /// Exclusive upper edge of bin i.
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;
  /// Weighted count in bin i.
  [[nodiscard]] double count(std::size_t i) const noexcept {
    return counts_[i];
  }
  /// Total weight.
  [[nodiscard]] double total() const noexcept { return total_; }
  /// count(i)/total(), or 0 when empty.
  [[nodiscard]] double fraction(std::size_t i) const noexcept;

  /// All weighted counts.
  [[nodiscard]] std::span<const double> counts() const noexcept {
    return counts_;
  }

 private:
  Histogram(double lo, double hi, std::size_t bins, bool log_scale);

  double lo_, hi_;
  bool log_scale_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Counts per local hour-of-day (24 bins) — the Fig 1b bottom panel.
[[nodiscard]] std::vector<double> hourly_counts(
    std::span<const double> submit_times, long long epoch_unix,
    double utc_offset_hours);

}  // namespace lumos::stats
