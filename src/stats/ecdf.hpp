// Empirical cumulative distribution functions.
//
// The paper's Figures 1 and 4 are CDF plots; `Ecdf` provides both directions
// (F(x) and quantiles) plus a downsampled point series the bench harnesses
// print as the reproduced curve.
#pragma once

#include <span>
#include <vector>

namespace lumos::stats {

class Ecdf {
 public:
  Ecdf() = default;
  /// Builds from an arbitrary sample (copied and sorted).
  explicit Ecdf(std::span<const double> sample);

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }

  /// F(x) = P(X <= x); 0 for an empty sample.
  [[nodiscard]] double operator()(double x) const noexcept;

  /// Inverse CDF with linear interpolation; q clamped to [0,1].
  [[nodiscard]] double quantile(double q) const noexcept;

  /// The sorted sample (ascending).
  [[nodiscard]] std::span<const double> sorted() const noexcept {
    return sorted_;
  }

  /// `points` (x, F(x)) pairs evenly spaced in probability — the printable
  /// curve. Always includes the min and max.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace lumos::stats
