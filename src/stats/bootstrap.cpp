#include "stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace lumos::stats {

ConfidenceInterval bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t resamples, double level, std::uint64_t seed) {
  LUMOS_REQUIRE(!sample.empty(), "bootstrap needs a non-empty sample");
  LUMOS_REQUIRE(level > 0.0 && level < 1.0, "level must be in (0,1)");
  LUMOS_REQUIRE(resamples >= 10, "too few bootstrap resamples");

  ConfidenceInterval ci;
  ci.level = level;
  ci.point = statistic(sample);

  util::Rng rng(seed);
  std::vector<double> resample(sample.size());
  std::vector<double> stats_v;
  stats_v.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& x : resample) {
      x = sample[rng.uniform_index(sample.size())];
    }
    stats_v.push_back(statistic(resample));
  }
  std::sort(stats_v.begin(), stats_v.end());
  const double alpha = (1.0 - level) / 2.0;
  ci.lo = quantile_sorted(stats_v, alpha);
  ci.hi = quantile_sorted(stats_v, 1.0 - alpha);
  return ci;
}

ConfidenceInterval bootstrap_median_ci(std::span<const double> sample,
                                       std::size_t resamples, double level,
                                       std::uint64_t seed) {
  return bootstrap_ci(
      sample, [](std::span<const double> xs) { return median(xs); },
      resamples, level, seed);
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample,
                                     std::size_t resamples, double level,
                                     std::uint64_t seed) {
  return bootstrap_ci(
      sample, [](std::span<const double> xs) { return mean(xs); }, resamples,
      level, seed);
}

}  // namespace lumos::stats
