#include "stats/sketch.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace lumos::stats {

// ------------------------------------------------------------------ KLL --

namespace {
/// Compactor capacity decay: level h (0 = finest) holds k * c^(H-1-h).
constexpr double kDecay = 2.0 / 3.0;
}  // namespace

QuantileSketch::QuantileSketch(Options options)
    : k_(std::max<std::size_t>(options.k, 2 * kMinLevelCapacity)),
      rng_(options.seed) {}

std::size_t QuantileSketch::level_capacity(std::size_t level,
                                           std::size_t num_levels) const {
  const double decayed =
      static_cast<double>(k_) *
      std::pow(kDecay, static_cast<double>(num_levels - 1 - level));
  const auto cap = static_cast<std::size_t>(std::ceil(decayed));
  return std::max(cap, kMinLevelCapacity);
}

std::size_t QuantileSketch::capacity_budget() const {
  std::size_t budget = 0;
  const std::size_t num_levels = std::max<std::size_t>(levels_.size(), 1);
  for (std::size_t h = 0; h < num_levels; ++h) {
    budget += level_capacity(h, num_levels);
  }
  return budget;
}

std::size_t QuantileSketch::retained() const noexcept {
  std::size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

void QuantileSketch::insert(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  if (levels_.empty()) levels_.emplace_back();
  levels_.front().push_back(x);
  ++count_;
  view_dirty_ = true;
  if (retained() > capacity_budget()) compress();
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  if (levels_.size() < other.levels_.size()) {
    levels_.resize(other.levels_.size());
  }
  for (std::size_t h = 0; h < other.levels_.size(); ++h) {
    levels_[h].insert(levels_[h].end(), other.levels_[h].begin(),
                      other.levels_[h].end());
  }
  count_ += other.count_;
  view_dirty_ = true;
  if (retained() > capacity_budget()) compress();
}

void QuantileSketch::compress() {
  while (retained() > capacity_budget()) {
    const std::size_t num_levels = levels_.size();
    // Budget exceeded implies (pigeonhole) some level exceeds its own
    // capacity; compact the lowest such level, halving it upward.
    std::size_t l = 0;
    while (l < num_levels &&
           levels_[l].size() <= level_capacity(l, num_levels)) {
      ++l;
    }
    if (l == num_levels) break;  // growing levels_ raised the budget
    // Grow first: emplace_back would invalidate references into levels_.
    if (l + 1 == levels_.size()) levels_.emplace_back();
    auto& level = levels_[l];
    auto& above = levels_[l + 1];
    std::sort(level.begin(), level.end());
    // Compact an even count so total weight is preserved exactly: an odd
    // straggler stays behind at this level.
    bool has_carry = false;
    double carry = 0.0;
    if (level.size() % 2 == 1) {
      has_carry = true;
      carry = level.back();
      level.pop_back();
    }
    const bool keep_odd = rng_.bernoulli(0.5);
    for (std::size_t i = keep_odd ? 1 : 0; i < level.size(); i += 2) {
      above.push_back(level[i]);
    }
    level.clear();
    if (has_carry) level.push_back(carry);
  }
  view_dirty_ = true;
}

void QuantileSketch::ensure_view() const {
  if (!view_dirty_) return;
  view_.clear();
  view_.reserve(retained());
  std::uint64_t weight = 1;
  for (const auto& level : levels_) {
    for (double v : level) view_.emplace_back(v, weight);
    weight <<= 1;
  }
  std::sort(view_.begin(), view_.end());
  view_dirty_ = false;
}

double QuantileSketch::operator()(double x) const {
  if (count_ == 0) return 0.0;
  ensure_view();
  std::uint64_t below_or_equal = 0;
  for (const auto& [value, weight] : view_) {
    if (value > x) break;
    below_or_equal += weight;
  }
  return static_cast<double>(below_or_equal) / static_cast<double>(count_);
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  ensure_view();
  // Shared convention (see quantile_sorted): target the fractional
  // position q * (n - 1) in 0-based order-statistic space. An item of
  // weight w occupying cumulative slots [c, c + w) represents the order
  // statistic at the center position c + (w - 1) / 2; interpolate
  // linearly between consecutive representatives, anchored at the exact
  // stream min (position 0) and max (position n - 1). With all weights 1
  // this reduces to quantile_sorted exactly.
  const double pos =
      q * (static_cast<double>(count_) - 1.0);
  double prev_pos = 0.0;
  double prev_value = min_;
  double cumulative = 0.0;
  for (const auto& [value, weight] : view_) {
    const double w = static_cast<double>(weight);
    const double center = cumulative + (w - 1.0) / 2.0;
    if (pos <= center) {
      if (center <= prev_pos) return value;
      const double frac = (pos - prev_pos) / (center - prev_pos);
      return prev_value * (1.0 - frac) + value * frac;
    }
    prev_pos = center;
    prev_value = value;
    cumulative += w;
  }
  return max_;
}

QuantileSketch::Snapshot QuantileSketch::snapshot() const {
  Snapshot snap;
  snap.k = k_;
  snap.rng = rng_.state();
  snap.levels = levels_;
  snap.count = count_;
  snap.min = min_;
  snap.max = max_;
  return snap;
}

QuantileSketch QuantileSketch::restore(const Snapshot& snapshot) {
  // Weight conservation is the sketch's core invariant: every level-h
  // item represents 2^h stream elements. A checkpoint that fails it is
  // corrupt and must not restore into a silently-wrong sketch.
  std::uint64_t weight = 0;
  LUMOS_REQUIRE(snapshot.levels.size() < 64,
                "QuantileSketch snapshot: too many levels");
  for (std::size_t h = 0; h < snapshot.levels.size(); ++h) {
    weight += static_cast<std::uint64_t>(snapshot.levels[h].size()) << h;
  }
  LUMOS_REQUIRE(weight == snapshot.count,
                "QuantileSketch snapshot: retained weight does not match "
                "count");
  LUMOS_REQUIRE(snapshot.count == 0 || snapshot.min <= snapshot.max,
                "QuantileSketch snapshot: min exceeds max");
  Options options;
  options.k = snapshot.k;
  QuantileSketch sketch(options);
  LUMOS_REQUIRE(sketch.k_ == snapshot.k,
                "QuantileSketch snapshot: k below the minimum capacity");
  sketch.rng_.set_state(snapshot.rng);
  sketch.levels_ = snapshot.levels;
  sketch.count_ = snapshot.count;
  sketch.min_ = snapshot.min;
  sketch.max_ = snapshot.max;
  sketch.view_dirty_ = true;
  return sketch;
}

std::vector<std::pair<double, double>> QuantileSketch::curve(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (count_ == 0 || points == 0) return out;
  if (points == 1) {
    out.emplace_back(max_, 1.0);
    return out;
  }
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

// ----------------------------------------------------- StreamingHistogram --

StreamingHistogram::StreamingHistogram(Options options) : options_(options) {
  LUMOS_REQUIRE(options_.relative_error > 0.0 &&
                    options_.relative_error < 1.0,
                "StreamingHistogram relative_error must be in (0, 1)");
  LUMOS_REQUIRE(options_.min_value > 0.0,
                "StreamingHistogram min_value must be positive");
  LUMOS_REQUIRE(options_.max_buckets >= 2,
                "StreamingHistogram max_buckets must be >= 2");
  const double gamma =
      (1.0 + options_.relative_error) / (1.0 - options_.relative_error);
  log_gamma_ = std::log(gamma);
}

std::int32_t StreamingHistogram::bucket_index(double x) const {
  return static_cast<std::int32_t>(std::ceil(std::log(x) / log_gamma_));
}

double StreamingHistogram::bucket_value(std::int32_t index) const {
  // Midpoint-of-bucket representative: within relative_error of every
  // value the bucket covers.
  const double gamma = std::exp(log_gamma_);
  return 2.0 * std::exp(static_cast<double>(index) * log_gamma_) /
         (gamma + 1.0);
}

void StreamingHistogram::insert(double x) {
  if (x < 0.0) x = 0.0;
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  if (x < options_.min_value) {
    ++zero_count_;
  } else {
    ++buckets_[bucket_index(x)];
    collapse_if_needed();
  }
  ++count_;
  sum_ += x;
}

void StreamingHistogram::merge(const StreamingHistogram& other) {
  LUMOS_REQUIRE(options_.relative_error == other.options_.relative_error &&
                    options_.min_value == other.options_.min_value &&
                    options_.max_buckets == other.options_.max_buckets,
                "StreamingHistogram::merge requires identical options");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (const auto& [index, n] : other.buckets_) buckets_[index] += n;
  zero_count_ += other.zero_count_;
  count_ += other.count_;
  sum_ += other.sum_;
  collapse_if_needed();
}

void StreamingHistogram::collapse_if_needed() {
  while (buckets_.size() > options_.max_buckets) {
    auto lowest = buckets_.begin();
    auto second = std::next(lowest);
    second->second += lowest->second;
    buckets_.erase(lowest);
  }
}

double StreamingHistogram::operator()(double x) const {
  if (count_ == 0) return 0.0;
  if (x < 0.0) return 0.0;
  std::uint64_t below_or_equal = zero_count_;
  if (x >= options_.min_value) {
    const std::int32_t limit = bucket_index(x);
    for (const auto& [index, n] : buckets_) {
      if (index > limit) break;
      below_or_equal += n;
    }
  }
  return static_cast<double>(below_or_equal) / static_cast<double>(count_);
}

double StreamingHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double target = q * (static_cast<double>(count_) - 1.0);
  double cumulative = static_cast<double>(zero_count_);
  if (target < cumulative) return 0.0;
  for (const auto& [index, n] : buckets_) {
    cumulative += static_cast<double>(n);
    if (target < cumulative) {
      return std::clamp(bucket_value(index), min_, max_);
    }
  }
  return max_;
}

StreamingHistogram::Snapshot StreamingHistogram::snapshot() const {
  Snapshot snap;
  snap.options = options_;
  snap.buckets.assign(buckets_.begin(), buckets_.end());
  snap.zero_count = zero_count_;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  return snap;
}

StreamingHistogram StreamingHistogram::restore(const Snapshot& snapshot) {
  StreamingHistogram hist(snapshot.options);  // validates the options
  std::uint64_t total = snapshot.zero_count;
  for (const auto& [index, n] : snapshot.buckets) {
    LUMOS_REQUIRE(hist.buckets_.emplace(index, n).second,
                  "StreamingHistogram snapshot: duplicate bucket index");
    total += n;
  }
  LUMOS_REQUIRE(total == snapshot.count,
                "StreamingHistogram snapshot: bucket counts do not sum to "
                "count");
  LUMOS_REQUIRE(snapshot.count == 0 || snapshot.min <= snapshot.max,
                "StreamingHistogram snapshot: min exceeds max");
  LUMOS_REQUIRE(snapshot.buckets.size() <= snapshot.options.max_buckets,
                "StreamingHistogram snapshot: more buckets than max_buckets");
  hist.zero_count_ = snapshot.zero_count;
  hist.count_ = snapshot.count;
  hist.sum_ = snapshot.sum;
  hist.min_ = snapshot.min;
  hist.max_ = snapshot.max;
  return hist;
}

std::vector<std::pair<double, double>> StreamingHistogram::curve(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (count_ == 0 || points == 0) return out;
  if (points == 1) {
    out.emplace_back(max_, 1.0);
    return out;
  }
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

}  // namespace lumos::stats
