// Gaussian kernel density estimation — the numeric core behind the paper's
// violin plots (Figs 1a bottom, 11). We evaluate the density on a grid (in
// log space for runtimes) and report the grid + densities plus the modal
// interval, which is what "widest (high density) part" refers to in §V-C.
#pragma once

#include <span>
#include <vector>

namespace lumos::stats {

/// A violin summary: density evaluated on a fixed grid.
struct ViolinSummary {
  std::vector<double> grid;      ///< evaluation points (original units)
  std::vector<double> density;   ///< KDE density at each grid point
  double mode = 0.0;             ///< grid point of maximal density
  double bandwidth = 0.0;        ///< bandwidth used (in transform space)
  std::size_t count = 0;         ///< sample size
};

/// Scott's rule bandwidth for a sample (returns a positive fallback for
/// degenerate samples).
[[nodiscard]] double scott_bandwidth(std::span<const double> xs) noexcept;

/// Gaussian KDE density at point x.
[[nodiscard]] double kde_density(std::span<const double> xs, double x,
                                 double bandwidth) noexcept;

/// Violin over raw values on a linear grid of `points` between sample
/// min and max.
[[nodiscard]] ViolinSummary violin(std::span<const double> xs,
                                   std::size_t points = 64);

/// Violin in log10 space (for runtimes spanning decades). Non-positive
/// samples are dropped; the returned grid is in original units.
[[nodiscard]] ViolinSummary violin_log(std::span<const double> xs,
                                       std::size_t points = 64);

}  // namespace lumos::stats
