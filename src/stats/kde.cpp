#include "stats/kde.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "stats/descriptive.hpp"

namespace lumos::stats {

double scott_bandwidth(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 1.0;
  const double sd = stddev(xs);
  if (sd <= 0.0) return 1.0;
  return sd * std::pow(static_cast<double>(xs.size()), -0.2);
}

double kde_density(std::span<const double> xs, double x,
                   double bandwidth) noexcept {
  if (xs.empty() || bandwidth <= 0.0) return 0.0;
  const double inv_h = 1.0 / bandwidth;
  const double norm =
      inv_h / (std::sqrt(2.0 * std::numbers::pi) *
               static_cast<double>(xs.size()));
  double sum = 0.0;
  for (double xi : xs) {
    const double u = (x - xi) * inv_h;
    sum += std::exp(-0.5 * u * u);
  }
  return sum * norm;
}

namespace {
ViolinSummary violin_impl(std::vector<double> xs, std::size_t points,
                          bool log_space) {
  ViolinSummary v;
  v.count = xs.size();
  if (xs.empty() || points < 2) return v;
  const auto [mn_it, mx_it] = std::minmax_element(xs.begin(), xs.end());
  double lo = *mn_it;
  double hi = *mx_it;
  if (hi <= lo) hi = lo + 1.0;
  v.bandwidth = scott_bandwidth(xs);
  v.grid.resize(points);
  v.density.resize(points);
  double best = -1.0;
  for (std::size_t i = 0; i < points; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(points - 1);
    const double g = lo + f * (hi - lo);
    v.grid[i] = log_space ? std::pow(10.0, g) : g;
    v.density[i] = kde_density(xs, g, v.bandwidth);
    if (v.density[i] > best) {
      best = v.density[i];
      v.mode = v.grid[i];
    }
  }
  return v;
}
}  // namespace

ViolinSummary violin(std::span<const double> xs, std::size_t points) {
  return violin_impl(std::vector<double>(xs.begin(), xs.end()), points,
                     /*log_space=*/false);
}

ViolinSummary violin_log(std::span<const double> xs, std::size_t points) {
  std::vector<double> logs;
  logs.reserve(xs.size());
  for (double x : xs) {
    if (x > 0.0) logs.push_back(std::log10(x));
  }
  return violin_impl(std::move(logs), points, /*log_space=*/true);
}

}  // namespace lumos::stats
