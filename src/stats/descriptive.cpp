#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/string_util.hpp"
#include "util/error.hpp"

namespace lumos::stats {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double quantile_sorted(std::span<const double> sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double quantile(std::span<const double> xs, double q) {
  LUMOS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.5);
  s.p75 = quantile_sorted(sorted, 0.75);
  s.p90 = quantile_sorted(sorted, 0.90);
  s.p99 = quantile_sorted(sorted, 0.99);
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  for (double x : xs) s.sum += x;
  return s;
}

std::string to_string(const Summary& s) {
  return util::format(
      "n=%zu mean=%.3g sd=%.3g min=%.3g p25=%.3g p50=%.3g p75=%.3g p90=%.3g "
      "p99=%.3g max=%.3g",
      s.count, s.mean, s.stddev, s.min, s.p25, s.median, s.p75, s.p90, s.p99,
      s.max);
}

double geometric_mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace lumos::stats
