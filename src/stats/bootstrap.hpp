// Nonparametric bootstrap confidence intervals.
//
// The cross-system claims rest on medians and means of heavy-tailed
// samples; bootstrap CIs quantify how much a reported statistic could move
// under resampling — used by the report layer and available to users
// comparing their own traces against the paper's numbers.
#pragma once

#include <functional>
#include <span>

#include "util/rng.hpp"

namespace lumos::stats {

struct ConfidenceInterval {
  double point = 0.0;  ///< statistic on the original sample
  double lo = 0.0;     ///< lower percentile bound
  double hi = 0.0;     ///< upper percentile bound
  double level = 0.95;
};

/// Percentile-bootstrap CI for an arbitrary statistic. `resamples` draws
/// with replacement; deterministic for a given seed.
[[nodiscard]] ConfidenceInterval bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t resamples = 500, double level = 0.95,
    std::uint64_t seed = 1234);

/// Convenience: CI of the median.
[[nodiscard]] ConfidenceInterval bootstrap_median_ci(
    std::span<const double> sample, std::size_t resamples = 500,
    double level = 0.95, std::uint64_t seed = 1234);

/// Convenience: CI of the mean.
[[nodiscard]] ConfidenceInterval bootstrap_mean_ci(
    std::span<const double> sample, std::size_t resamples = 500,
    double level = 0.95, std::uint64_t seed = 1234);

}  // namespace lumos::stats
