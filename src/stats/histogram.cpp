#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/time_util.hpp"

namespace lumos::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins, bool log_scale)
    : lo_(lo), hi_(hi), log_scale_(log_scale), counts_(bins, 0.0) {
  LUMOS_REQUIRE(bins >= 1, "histogram needs at least one bin");
  LUMOS_REQUIRE(hi > lo, "histogram upper edge must exceed lower edge");
  if (log_scale) {
    LUMOS_REQUIRE(lo > 0.0, "log histogram lower edge must be positive");
  }
}

Histogram Histogram::linear(double lo, double hi, std::size_t bins) {
  return Histogram(lo, hi, bins, /*log_scale=*/false);
}

Histogram Histogram::logarithmic(double lo, double hi, std::size_t bins) {
  return Histogram(lo, hi, bins, /*log_scale=*/true);
}

void Histogram::add(double x, double weight) noexcept {
  double pos;
  if (log_scale_) {
    const double clamped = std::max(x, lo_);
    pos = (std::log10(clamped) - std::log10(lo_)) /
          (std::log10(hi_) - std::log10(lo_));
  } else {
    pos = (x - lo_) / (hi_ - lo_);
  }
  auto idx = static_cast<std::ptrdiff_t>(pos * static_cast<double>(bins()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(bins()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  const double f = static_cast<double>(i) / static_cast<double>(bins());
  if (log_scale_) {
    return std::pow(10.0, std::log10(lo_) +
                              f * (std::log10(hi_) - std::log10(lo_)));
  }
  return lo_ + f * (hi_ - lo_);
}

double Histogram::bin_hi(std::size_t i) const noexcept { return bin_lo(i + 1); }

double Histogram::fraction(std::size_t i) const noexcept {
  return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

std::vector<double> hourly_counts(std::span<const double> submit_times,
                                  long long epoch_unix,
                                  double utc_offset_hours) {
  std::vector<double> counts(24, 0.0);
  for (double t : submit_times) {
    counts[util::hour_of_day(t, epoch_unix, utc_offset_hours)] += 1.0;
  }
  return counts;
}

}  // namespace lumos::stats
