// Mergeable streaming sketches: bounded-memory quantile/ECDF estimation.
//
// The exact stats layer (`Ecdf`, `summarize`) needs the whole sample in
// memory; these sketches answer the same queries over unbounded streams
// with O(k log(n/k)) retained items and O(1) amortized ingest — the
// substrate of the streaming "lumos-served" mode (DESIGN.md "Streaming
// mode", `src/stream`). Two complementary error models:
//
//   QuantileSketch     — KLL-style compactor hierarchy (Karnin-Lang-
//                        Liberty 2016). Guarantees *rank* error: a
//                        quantile query returns a value whose true rank
//                        is within epsilon() * n of the requested one.
//                        Accuracy is value-scale-free.
//   StreamingHistogram — log-bucket histogram (DDSketch-style,
//                        Masson et al. 2019). Guarantees *relative value*
//                        error: the returned quantile value is within
//                        relative_error() of the true quantile value.
//                        Merge is exact (bucket-wise add), so sharded
//                        ingest is bit-identical to serial ingest.
//
// Both expose the `Ecdf` query surface — operator()(x) = F(x),
// quantile(q), curve(points) — so analyses can swap the exact backend for
// a sketch without touching query code, and both follow the shared
// quantile convention documented on `stats::quantile_sorted`
// (descriptive.hpp): linear interpolation at fractional position
// q * (n - 1), ties counted by upper bound. When a QuantileSketch has
// never compacted (n <= its level-0 capacity) its answers equal the exact
// code's bit for bit — the `SketchMatchesExactConvention` test pins this.
//
// Merging: merge() folds another sketch in; the result is a valid sketch
// over the union stream with the same error bound, so sharded ingest
// (split stream, sketch per shard, merge in any order) stays within
// epsilon of the serial sketch. QuantileSketch compaction uses a seeded
// util::Rng coin, so a fixed (seed, stream, merge order) reproduces the
// sketch bit-for-bit — the determinism contract every lumos experiment
// keeps.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace lumos::stats {

/// KLL-style mergeable quantile sketch with rank-error guarantee.
class QuantileSketch {
 public:
  struct Options {
    /// Accuracy knob: capacity of the highest compactor level. Rank error
    /// shrinks as ~1/k while retained items grow as ~3k.
    std::size_t k = 200;
    /// Seed of the compaction coin (odd/even survivor choice). Fixed by
    /// default so sketches are deterministic; vary it only to study the
    /// randomization itself.
    std::uint64_t seed = 0x6c756d6f73ULL;  // "lumos"
  };

  QuantileSketch() : QuantileSketch(Options{}) {}
  explicit QuantileSketch(Options options);

  /// Adds one observation. O(1) amortized; a compaction pass runs only
  /// when the retained items exceed the capacity budget.
  void insert(double x);

  /// Folds `other` into this sketch. The merged sketch covers the
  /// concatenated streams and keeps the epsilon() bound. Merging in any
  /// order yields rank-equivalent (not bit-identical) sketches.
  void merge(const QuantileSketch& other);

  /// Stream length so far (the n of the rank-error bound).
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Exact stream extremes (tracked outside the compactors).
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Configured normalized rank-error bound: for any q, the true rank of
  /// quantile(q) is within epsilon() * count() of q * count(). The
  /// constant is conservative for the c = 2/3 compactor geometry; tests
  /// assert the observed error against this bound on the seed traces.
  [[nodiscard]] double epsilon() const noexcept {
    return 3.0 / static_cast<double>(k_);
  }

  /// Items currently held across all levels — the memory footprint proxy
  /// (8 bytes each). Bounded by ~3k + 8 * levels regardless of count().
  [[nodiscard]] std::size_t retained() const noexcept;

  // ---- Ecdf-compatible query surface (shared quantile convention) ----

  /// Approximate F(x) = P(X <= x); 0 for an empty sketch.
  [[nodiscard]] double operator()(double x) const;

  /// Approximate inverse CDF with linear interpolation; q clamped to
  /// [0, 1]. Follows the quantile_sorted convention (descriptive.hpp);
  /// exact (bitwise) while the sketch has never compacted.
  [[nodiscard]] double quantile(double q) const;

  /// `points` (x, F(x)) pairs evenly spaced in probability, min and max
  /// included — same shape as Ecdf::curve.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      std::size_t points) const;

  // ---- checkpoint/restore (crash-consistent serve mode) ----

  /// Complete sketch state, including the compaction coin. restore() of a
  /// snapshot yields a sketch that is bit-identical to the original — it
  /// answers every query identically AND continues ingesting identically,
  /// because the coin state rides along. The streaming checkpoint codec
  /// (stream/snapshot.hpp) serializes this to schema-checked JSON.
  struct Snapshot {
    std::size_t k = 0;                        ///< clamped accuracy knob
    util::Rng::State rng;                     ///< compaction-coin state
    std::vector<std::vector<double>> levels;  ///< items per weight level
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const;
  /// Rebuilds a sketch from a snapshot. Throws lumos::InvalidArgument on
  /// inconsistent state (total retained weight must equal count) so a
  /// corrupted checkpoint can never restore into a silently-wrong sketch.
  [[nodiscard]] static QuantileSketch restore(const Snapshot& snapshot);

 private:
  /// Capacity of level `level` when `num_levels` exist (top level gets k,
  /// lower levels decay by c = 2/3, floored at kMinLevelCapacity).
  [[nodiscard]] std::size_t level_capacity(std::size_t level,
                                           std::size_t num_levels) const;
  [[nodiscard]] std::size_t capacity_budget() const;
  /// Compacts the lowest over-full level until within budget.
  void compress();
  /// Sorted (value, weight) view of every retained item; cached until the
  /// next mutation.
  void ensure_view() const;

  static constexpr std::size_t kMinLevelCapacity = 8;

  std::size_t k_;
  util::Rng rng_;
  /// levels_[h] holds items of weight 2^h, unsorted between compactions.
  std::vector<std::vector<double>> levels_;
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;

  mutable bool view_dirty_ = true;
  mutable std::vector<std::pair<double, std::uint64_t>> view_;
};

/// Mergeable log-bucket histogram with a relative value-error guarantee.
class StreamingHistogram {
 public:
  struct Options {
    /// Relative accuracy alpha: quantile values are within alpha of the
    /// true quantile value (for values above `min_value`).
    double relative_error = 0.01;
    /// Values in [0, min_value) fold into the zero bucket.
    double min_value = 1e-9;
    /// Hard memory cap: when exceeded, the lowest buckets collapse into
    /// one (the DDSketch collapse rule), sacrificing low-tail accuracy
    /// but never the bound for large values.
    std::size_t max_buckets = 2048;
  };

  StreamingHistogram() : StreamingHistogram(Options{}) {}
  explicit StreamingHistogram(Options options);

  /// Adds one non-negative observation (negatives clamp to 0).
  void insert(double x);

  /// Bucket-wise add — exact, commutative, and associative, so sharded
  /// ingest merges bit-identically to serial ingest. Requires equal
  /// Options on both sides (throws lumos::InvalidArgument otherwise).
  void merge(const StreamingHistogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double relative_error() const noexcept {
    return options_.relative_error;
  }
  /// Non-empty buckets currently held (memory proxy; <= max_buckets + 1).
  [[nodiscard]] std::size_t buckets() const noexcept {
    return buckets_.size() + (zero_count_ > 0 ? 1u : 0u);
  }

  // ---- Ecdf-compatible query surface ----

  /// Approximate F(x); exact for the zero bucket, within one bucket
  /// otherwise.
  [[nodiscard]] double operator()(double x) const;
  /// Approximate inverse CDF; the returned value is within
  /// relative_error() of the order statistic at position
  /// floor(q * (n - 1)) when that value is above min_value. (Unlike the
  /// rank-error sketch, a log-bucket histogram cannot bound its distance
  /// to the *interpolated* type-7 value: interpolation may land between
  /// two arbitrarily distant sample values.)
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      std::size_t points) const;

  // ---- checkpoint/restore (crash-consistent serve mode) ----

  /// Complete histogram state; restore() is exact (the histogram is pure
  /// counts — no randomness), so a checkpointed histogram round-trips
  /// bit-identically.
  struct Snapshot {
    Options options;
    std::vector<std::pair<std::int32_t, std::uint64_t>> buckets;
    std::uint64_t zero_count = 0;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const;
  /// Throws lumos::InvalidArgument on inconsistent state (bucket counts
  /// plus the zero bucket must sum to count; options must validate).
  [[nodiscard]] static StreamingHistogram restore(const Snapshot& snapshot);

 private:
  [[nodiscard]] std::int32_t bucket_index(double x) const;
  [[nodiscard]] double bucket_value(std::int32_t index) const;
  void collapse_if_needed();

  Options options_;
  double log_gamma_;
  /// bucket index -> count; ordered so quantile walks are one pass.
  std::map<std::int32_t, std::uint64_t> buckets_;
  std::uint64_t zero_count_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace lumos::stats
