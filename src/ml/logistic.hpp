// L2-regularised binary logistic regression (Adam on the log-loss).
//
// Used by the status predictor (predict/status_predictor.hpp): §V-C of the
// paper observes that per-user runtime-by-status distributions are
// separable enough that "schedulers may reversely predict job status".
#pragma once

#include "ml/dataset.hpp"

namespace lumos::ml {

struct LogisticOptions {
  int epochs = 200;
  double learning_rate = 0.1;
  double l2 = 1e-4;
};

class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticOptions options = {})
      : options_(options) {}

  /// Fits on features `x` and binary labels (0/1) `y`.
  void fit(const Matrix& x, std::span<const double> y);

  /// P(label = 1 | row).
  [[nodiscard]] double predict_proba(std::span<const double> row) const;
  /// Hard decision at the given threshold.
  [[nodiscard]] bool predict(std::span<const double> row,
                             double threshold = 0.5) const {
    return predict_proba(row) >= threshold;
  }

  /// Classification accuracy on a labelled set.
  [[nodiscard]] double accuracy(const Matrix& x, std::span<const double> y,
                                double threshold = 0.5) const;

  /// Learned weights in standardised space (bias last); empty before fit.
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }

 private:
  LogisticOptions options_;
  Standardizer scaler_;
  std::vector<double> weights_;
};

}  // namespace lumos::ml
