// Minimal dense row-major matrix — just enough linear algebra for the
// runtime-prediction models (normal equations, MLP layers).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lumos::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const
      noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] Matrix transpose() const;
  [[nodiscard]] Matrix multiply(const Matrix& other) const;
  [[nodiscard]] std::vector<double> multiply(std::span<const double> v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves the SPD system a x = b via Cholesky; throws InvalidArgument when
/// `a` is not positive definite. Consumes its arguments (in-place factor).
[[nodiscard]] std::vector<double> cholesky_solve(Matrix a,
                                                 std::vector<double> b);

}  // namespace lumos::ml
