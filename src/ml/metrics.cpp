#include "ml/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace lumos::ml {

namespace {
void check(std::span<const double> a, std::span<const double> b) {
  LUMOS_REQUIRE(a.size() == b.size() && !a.empty(),
                "metric inputs must be equal-length and non-empty");
}
}  // namespace

double mse(std::span<const double> truth, std::span<const double> pred) {
  check(truth, pred);
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - pred[i];
    s += d * d;
  }
  return s / static_cast<double>(truth.size());
}

double mae(std::span<const double> truth, std::span<const double> pred) {
  check(truth, pred);
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    s += std::fabs(truth[i] - pred[i]);
  }
  return s / static_cast<double>(truth.size());
}

double r2(std::span<const double> truth, std::span<const double> pred) {
  check(truth, pred);
  double mean = 0.0;
  for (double t : truth) mean += t;
  mean /= static_cast<double>(truth.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot <= 1e-12) return ss_res <= 1e-12 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double prediction_accuracy(std::span<const double> truth,
                           std::span<const double> pred) {
  check(truth, pred);
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double lo = std::min(truth[i], pred[i]);
    const double hi = std::max(truth[i], pred[i]);
    if (lo > 0.0 && hi > 0.0) s += lo / hi;
  }
  return s / static_cast<double>(truth.size());
}

double underestimate_rate(std::span<const double> truth,
                          std::span<const double> pred) {
  check(truth, pred);
  std::size_t under = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (pred[i] < truth[i]) ++under;
  }
  return static_cast<double>(under) / static_cast<double>(truth.size());
}

}  // namespace lumos::ml
