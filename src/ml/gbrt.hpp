// Gradient-boosted regression trees (squared loss) — the paper's "XGBoost"
// baseline, reimplemented from scratch: shrinkage, row subsampling, and
// depth-limited CART base learners.
#pragma once

#include <cstdint>

#include "ml/regressor.hpp"
#include "ml/tree.hpp"

namespace lumos::ml {

struct GbrtOptions {
  int n_trees = 120;
  double learning_rate = 0.1;
  double subsample = 0.8;        ///< row fraction per tree
  TreeOptions tree{/*max_depth=*/4, /*min_samples_leaf=*/8,
                   /*candidate_splits=*/24};
  std::uint64_t seed = 7;
};

class GradientBoosting final : public Regressor {
 public:
  explicit GradientBoosting(GbrtOptions options = {}) : options_(options) {}

  void fit(const Dataset& train) override;
  [[nodiscard]] double predict(std::span<const double> row) const override;
  [[nodiscard]] std::string name() const override { return "XGBoost"; }

  [[nodiscard]] std::size_t tree_count() const noexcept {
    return trees_.size();
  }

 private:
  GbrtOptions options_;
  double base_prediction_ = 0.0;
  std::vector<RegressionTree> trees_;
};

}  // namespace lumos::ml
