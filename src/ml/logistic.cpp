#include "ml/logistic.hpp"

#include <cmath>

#include "util/error.hpp"

namespace lumos::ml {

namespace {
double sigmoid(double z) noexcept {
  if (z >= 0.0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

void LogisticRegression::fit(const Matrix& x, std::span<const double> y) {
  const std::size_t n = x.rows();
  LUMOS_REQUIRE(n > 0 && n == y.size(), "logistic: bad training shapes");
  scaler_ = Standardizer(x);
  const Matrix xs = scaler_.transform(x);
  const std::size_t d = xs.cols();

  weights_.assign(d + 1, 0.0);
  std::vector<double> m(d + 1, 0.0), v(d + 1, 0.0);
  const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
  const double inv_n = 1.0 / static_cast<double>(n);

  for (int epoch = 1; epoch <= options_.epochs; ++epoch) {
    std::vector<double> grad(d + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double z = weights_[d];
      for (std::size_t j = 0; j < d; ++j) z += weights_[j] * xs(i, j);
      const double err = sigmoid(z) - y[i];
      for (std::size_t j = 0; j < d; ++j) grad[j] += err * xs(i, j) * inv_n;
      grad[d] += err * inv_n;
    }
    for (std::size_t j = 0; j < d; ++j) grad[j] += options_.l2 * weights_[j];
    for (std::size_t k = 0; k < d + 1; ++k) {
      m[k] = b1 * m[k] + (1 - b1) * grad[k];
      v[k] = b2 * v[k] + (1 - b2) * grad[k] * grad[k];
      const double mhat = m[k] / (1.0 - std::pow(b1, epoch));
      const double vhat = v[k] / (1.0 - std::pow(b2, epoch));
      weights_[k] -= options_.learning_rate * mhat / (std::sqrt(vhat) + eps);
    }
  }
}

double LogisticRegression::predict_proba(std::span<const double> row) const {
  LUMOS_REQUIRE(!weights_.empty(), "predict before fit");
  std::vector<double> scaled(row.begin(), row.end());
  scaler_.transform_row(scaled);
  double z = weights_.back();
  for (std::size_t j = 0; j < scaled.size() && j + 1 < weights_.size(); ++j) {
    z += weights_[j] * scaled[j];
  }
  return sigmoid(z);
}

double LogisticRegression::accuracy(const Matrix& x,
                                    std::span<const double> y,
                                    double threshold) const {
  LUMOS_REQUIRE(x.rows() == y.size() && !y.empty(),
                "accuracy: bad shapes");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const bool label = y[i] >= 0.5;
    if (predict(x.row(i), threshold) == label) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(y.size());
}

}  // namespace lumos::ml
