#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace lumos::ml {

Split chronological_split(const Dataset& data, double train_fraction) {
  LUMOS_REQUIRE(train_fraction > 0.0 && train_fraction < 1.0,
                "train_fraction must be in (0,1)");
  const std::size_t n = data.size();
  const std::size_t n_train = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(n) * train_fraction));
  Split split;
  split.train.feature_names = data.feature_names;
  split.test.feature_names = data.feature_names;
  split.train.x = Matrix(n_train, data.dims());
  split.train.y.assign(data.y.begin(),
                       data.y.begin() + static_cast<std::ptrdiff_t>(n_train));
  const std::size_t n_test = n - n_train;
  split.test.x = Matrix(n_test, data.dims());
  split.test.y.assign(data.y.begin() + static_cast<std::ptrdiff_t>(n_train),
                      data.y.end());
  for (std::size_t i = 0; i < n_train; ++i) {
    for (std::size_t j = 0; j < data.dims(); ++j) {
      split.train.x(i, j) = data.x(i, j);
    }
  }
  for (std::size_t i = 0; i < n_test; ++i) {
    for (std::size_t j = 0; j < data.dims(); ++j) {
      split.test.x(i, j) = data.x(n_train + i, j);
    }
  }
  return split;
}

Standardizer::Standardizer(const Matrix& x) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  mean_.assign(d, 0.0);
  std_.assign(d, 1.0);
  if (n == 0) return;
  for (std::size_t j = 0; j < d; ++j) {
    double m = 0.0;
    for (std::size_t i = 0; i < n; ++i) m += x(i, j);
    m /= static_cast<double>(n);
    double v = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = x(i, j) - m;
      v += dx * dx;
    }
    v /= static_cast<double>(n);
    mean_[j] = m;
    std_[j] = v > 1e-12 ? std::sqrt(v) : 1.0;
  }
}

Matrix Standardizer::transform(const Matrix& x) const {
  LUMOS_REQUIRE(x.cols() == mean_.size(), "standardizer dims mismatch");
  Matrix out(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      out(i, j) = (x(i, j) - mean_[j]) / std_[j];
    }
  }
  return out;
}

void Standardizer::transform_row(std::span<double> row) const noexcept {
  for (std::size_t j = 0; j < row.size() && j < mean_.size(); ++j) {
    row[j] = (row[j] - mean_[j]) / std_[j];
  }
}

}  // namespace lumos::ml
