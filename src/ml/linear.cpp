#include "ml/linear.hpp"

#include <vector>

#include "util/error.hpp"

namespace lumos::ml {

void LinearRegression::fit(const Dataset& train) {
  LUMOS_REQUIRE(train.size() > 0, "cannot fit on an empty dataset");
  scaler_ = Standardizer(train.x);
  const Matrix xs = scaler_.transform(train.x);
  const std::size_t n = xs.rows();
  const std::size_t d = xs.cols();

  // Augment with a bias column; solve (X^T X + l2 I) w = X^T y.
  Matrix xtx(d + 1, d + 1);
  std::vector<double> xty(d + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < d; ++a) {
      const double xa = xs(i, a);
      for (std::size_t b = a; b < d; ++b) {
        xtx(a, b) += xa * xs(i, b);
      }
      xtx(a, d) += xa;  // bias column
      xty[a] += xa * train.y[i];
    }
    xtx(d, d) += 1.0;
    xty[d] += train.y[i];
  }
  for (std::size_t a = 0; a < d + 1; ++a) {
    for (std::size_t b = 0; b < a; ++b) xtx(a, b) = xtx(b, a);
  }
  for (std::size_t a = 0; a < d; ++a) xtx(a, a) += l2_;  // bias unpenalised
  xtx(d, d) += 1e-9;  // numerical floor
  weights_ = cholesky_solve(std::move(xtx), std::move(xty));
}

double LinearRegression::predict(std::span<const double> row) const {
  LUMOS_REQUIRE(!weights_.empty(), "predict before fit");
  std::vector<double> scaled(row.begin(), row.end());
  scaler_.transform_row(scaled);
  double y = weights_.back();
  for (std::size_t j = 0; j < scaled.size() && j + 1 < weights_.size(); ++j) {
    y += weights_[j] * scaled[j];
  }
  return y;
}

}  // namespace lumos::ml
