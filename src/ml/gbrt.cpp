#include "ml/gbrt.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace lumos::ml {

void GradientBoosting::fit(const Dataset& train) {
  const std::size_t n = train.size();
  LUMOS_REQUIRE(n > 0, "cannot fit on an empty dataset");
  trees_.clear();
  util::Rng rng(options_.seed);

  base_prediction_ = 0.0;
  for (double y : train.y) base_prediction_ += y;
  base_prediction_ /= static_cast<double>(n);

  std::vector<double> residual(n);
  std::vector<double> current(n, base_prediction_);
  for (int t = 0; t < options_.n_trees; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      residual[i] = train.y[i] - current[i];
    }
    // Row subsampling: train the tree on a sampled subset by zero-weighting
    // — we materialise the subset matrix to keep RegressionTree simple.
    RegressionTree tree(options_.tree);
    if (options_.subsample < 1.0) {
      const auto m = static_cast<std::size_t>(
          std::max(1.0, options_.subsample * static_cast<double>(n)));
      Matrix xsub(m, train.x.cols());
      std::vector<double> ysub(m);
      for (std::size_t k = 0; k < m; ++k) {
        const std::size_t i = rng.uniform_index(n);
        for (std::size_t j = 0; j < train.x.cols(); ++j) {
          xsub(k, j) = train.x(i, j);
        }
        ysub[k] = residual[i];
      }
      tree.fit_target(xsub, ysub);
    } else {
      tree.fit_target(train.x, residual);
    }
    for (std::size_t i = 0; i < n; ++i) {
      current[i] += options_.learning_rate * tree.predict(train.x.row(i));
    }
    trees_.push_back(std::move(tree));
  }
}

double GradientBoosting::predict(std::span<const double> row) const {
  LUMOS_REQUIRE(!trees_.empty(), "predict before fit");
  double y = base_prediction_;
  for (const auto& tree : trees_) {
    y += options_.learning_rate * tree.predict(row);
  }
  return y;
}

}  // namespace lumos::ml
