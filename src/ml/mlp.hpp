// Multilayer perceptron regressor (the paper's "MLP" baseline): dense
// ReLU hidden layers trained with Adam on standardised inputs/targets.
#pragma once

#include <cstdint>

#include "ml/regressor.hpp"

namespace lumos::ml {

struct MlpOptions {
  std::vector<std::size_t> hidden{32, 16};
  int epochs = 60;
  std::size_t batch_size = 64;
  double learning_rate = 1e-3;
  double l2 = 1e-5;
  std::uint64_t seed = 11;
};

class Mlp final : public Regressor {
 public:
  explicit Mlp(MlpOptions options = {}) : options_(std::move(options)) {}

  void fit(const Dataset& train) override;
  [[nodiscard]] double predict(std::span<const double> row) const override;
  [[nodiscard]] std::string name() const override { return "MLP"; }

 private:
  struct Layer {
    Matrix w;                 ///< out x in
    std::vector<double> b;    ///< out
    // Adam state
    Matrix mw, vw;
    std::vector<double> mb, vb;
  };

  MlpOptions options_;
  Standardizer scaler_;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  std::vector<Layer> layers_;

  [[nodiscard]] double forward(std::span<const double> x,
                               std::vector<std::vector<double>>* acts) const;
};

}  // namespace lumos::ml
