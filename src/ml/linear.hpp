// Ridge-regularised linear regression (normal equations + Cholesky).
//
// The paper's "LR" baseline (Hastie et al.). Features are standardised
// internally; a bias term is always included and never penalised.
#pragma once

#include "ml/regressor.hpp"

namespace lumos::ml {

class LinearRegression final : public Regressor {
 public:
  /// `l2` is the ridge penalty (0 = OLS; a tiny default keeps the normal
  /// equations well-conditioned on collinear features).
  explicit LinearRegression(double l2 = 1e-6) : l2_(l2) {}

  void fit(const Dataset& train) override;
  [[nodiscard]] double predict(std::span<const double> row) const override;
  [[nodiscard]] std::string name() const override { return "LR"; }

  /// Learned weights (standardised space), bias last; empty before fit.
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }

 private:
  double l2_;
  Standardizer scaler_;
  std::vector<double> weights_;  ///< d weights + bias
};

}  // namespace lumos::ml
