// Tabular datasets for the prediction models: feature matrix + target,
// chronological splitting (train on the past, predict the future — the
// protocol runtime predictors must follow), and z-score standardisation.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "ml/matrix.hpp"

namespace lumos::ml {

struct Dataset {
  Matrix x;                     ///< n x d features
  std::vector<double> y;        ///< n targets
  std::vector<std::string> feature_names;

  [[nodiscard]] std::size_t size() const noexcept { return y.size(); }
  [[nodiscard]] std::size_t dims() const noexcept { return x.cols(); }
};

/// Chronological split: first `train_fraction` rows train, rest test.
/// (Rows are assumed already in time order.)
struct Split {
  Dataset train;
  Dataset test;
};
[[nodiscard]] Split chronological_split(const Dataset& data,
                                        double train_fraction);

/// Per-feature standardisation fitted on one dataset, applied to others.
class Standardizer {
 public:
  Standardizer() = default;
  /// Fits means/stddevs per column (constant columns get stddev 1).
  explicit Standardizer(const Matrix& x);

  /// Returns (x - mean) / std column-wise.
  [[nodiscard]] Matrix transform(const Matrix& x) const;
  /// Transforms a single row in place.
  void transform_row(std::span<double> row) const noexcept;

  [[nodiscard]] const std::vector<double>& means() const noexcept {
    return mean_;
  }
  [[nodiscard]] const std::vector<double>& stddevs() const noexcept {
    return std_;
  }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace lumos::ml
