// Common interface for the runtime-prediction model zoo.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace lumos::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fits on the training set. May be called once per instance.
  virtual void fit(const Dataset& train) = 0;

  /// Predicts the target for one feature row (same column order as fit).
  [[nodiscard]] virtual double predict(std::span<const double> row) const = 0;

  /// Model name for reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Predicts all rows of a matrix.
  [[nodiscard]] std::vector<double> predict_all(const Matrix& x) const {
    std::vector<double> out;
    out.reserve(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i) out.push_back(predict(x.row(i)));
    return out;
  }
};

}  // namespace lumos::ml
