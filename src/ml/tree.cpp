#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace lumos::ml {

void RegressionTree::fit(const Dataset& train) {
  fit_target(train.x, train.y);
}

void RegressionTree::fit_target(const Matrix& x, std::span<const double> y) {
  LUMOS_REQUIRE(x.rows() == y.size(), "tree: x/y length mismatch");
  LUMOS_REQUIRE(y.size() > 0, "tree: empty training set");
  nodes_.clear();
  std::vector<std::uint32_t> indices(y.size());
  std::iota(indices.begin(), indices.end(), 0);
  build(x, y, indices, 0);
}

std::int32_t RegressionTree::build(const Matrix& x, std::span<const double> y,
                                   std::vector<std::uint32_t>& indices,
                                   int depth) {
  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();

  double sum = 0.0;
  for (auto i : indices) sum += y[i];
  const double mean = sum / static_cast<double>(indices.size());
  nodes_[node_id].value = mean;

  if (depth >= options_.max_depth ||
      indices.size() < 2 * options_.min_samples_leaf) {
    return node_id;
  }

  // Parent impurity (sum of squared deviations).
  double parent_sse = 0.0;
  for (auto i : indices) parent_sse += (y[i] - mean) * (y[i] - mean);
  if (parent_sse <= 1e-12) return node_id;

  // Best split over quantile-spaced candidate thresholds per feature.
  const std::size_t d = x.cols();
  std::int32_t best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = 1e-9;
  std::vector<double> values(indices.size());
  for (std::size_t f = 0; f < d; ++f) {
    for (std::size_t k = 0; k < indices.size(); ++k) {
      values[k] = x(indices[k], f);
    }
    // Threshold candidates come from (sub)sampled quantiles: sorting every
    // value at every node dominates build time on large nodes.
    std::vector<double> sorted;
    constexpr std::size_t kMaxSorted = 4096;
    if (values.size() > kMaxSorted) {
      sorted.reserve(kMaxSorted);
      const std::size_t stride = values.size() / kMaxSorted;
      for (std::size_t k = 0; k < values.size(); k += stride) {
        sorted.push_back(values[k]);
      }
    } else {
      sorted = values;
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front() == sorted.back()) continue;
    const int cands = options_.candidate_splits;
    double prev_threshold = std::numeric_limits<double>::quiet_NaN();
    for (int c = 1; c <= cands; ++c) {
      const double q =
          static_cast<double>(c) / static_cast<double>(cands + 1);
      const double threshold =
          sorted[static_cast<std::size_t>(q *
                 static_cast<double>(sorted.size() - 1))];
      if (threshold == prev_threshold) continue;
      prev_threshold = threshold;
      double lsum = 0.0, lsq = 0.0, rsum = 0.0, rsq = 0.0;
      std::size_t ln = 0;
      for (std::size_t k = 0; k < indices.size(); ++k) {
        const double yi = y[indices[k]];
        if (values[k] <= threshold) {
          lsum += yi;
          lsq += yi * yi;
          ++ln;
        } else {
          rsum += yi;
          rsq += yi * yi;
        }
      }
      const std::size_t rn = indices.size() - ln;
      if (ln < options_.min_samples_leaf || rn < options_.min_samples_leaf) {
        continue;
      }
      const double lsse = lsq - lsum * lsum / static_cast<double>(ln);
      const double rsse = rsq - rsum * rsum / static_cast<double>(rn);
      const double gain = parent_sse - lsse - rsse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<std::int32_t>(f);
        best_threshold = threshold;
      }
    }
  }
  if (best_feature < 0) return node_id;

  std::vector<std::uint32_t> left, right;
  left.reserve(indices.size());
  right.reserve(indices.size());
  for (auto i : indices) {
    (x(i, static_cast<std::size_t>(best_feature)) <= best_threshold ? left
                                                                    : right)
        .push_back(i);
  }
  // Free the parent's index storage before recursing.
  indices.clear();
  indices.shrink_to_fit();

  const std::int32_t l = build(x, y, left, depth + 1);
  const std::int32_t r = build(x, y, right, depth + 1);
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  nodes_[node_id].left = l;
  nodes_[node_id].right = r;
  return node_id;
}

double RegressionTree::predict(std::span<const double> row) const {
  LUMOS_REQUIRE(!nodes_.empty(), "predict before fit");
  std::int32_t node = 0;
  for (;;) {
    const Node& n = nodes_[node];
    if (n.feature < 0) return n.value;
    const auto f = static_cast<std::size_t>(n.feature);
    const double v = f < row.size() ? row[f] : 0.0;
    node = v <= n.threshold ? n.left : n.right;
  }
}

}  // namespace lumos::ml
