#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace lumos::ml {

namespace {
double relu(double x) noexcept { return x > 0.0 ? x : 0.0; }
}  // namespace

double Mlp::forward(std::span<const double> x,
                    std::vector<std::vector<double>>* acts) const {
  std::vector<double> cur(x.begin(), x.end());
  if (acts) acts->push_back(cur);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> next(layer.b);
    for (std::size_t o = 0; o < layer.w.rows(); ++o) {
      double s = next[o];
      for (std::size_t i = 0; i < layer.w.cols() && i < cur.size(); ++i) {
        s += layer.w(o, i) * cur[i];
      }
      next[o] = s;
    }
    const bool last = l + 1 == layers_.size();
    if (!last) {
      for (double& v : next) v = relu(v);
    }
    if (acts) acts->push_back(next);
    cur = std::move(next);
  }
  return cur.empty() ? 0.0 : cur[0];
}

void Mlp::fit(const Dataset& train) {
  const std::size_t n = train.size();
  LUMOS_REQUIRE(n > 0, "cannot fit on an empty dataset");
  scaler_ = Standardizer(train.x);
  const Matrix xs = scaler_.transform(train.x);
  const std::size_t d = xs.cols();

  y_mean_ = std::accumulate(train.y.begin(), train.y.end(), 0.0) /
            static_cast<double>(n);
  double var = 0.0;
  for (double y : train.y) var += (y - y_mean_) * (y - y_mean_);
  y_std_ = var > 1e-12 ? std::sqrt(var / static_cast<double>(n)) : 1.0;
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) ys[i] = (train.y[i] - y_mean_) / y_std_;

  // Layer sizes: d -> hidden... -> 1.
  util::Rng rng(options_.seed);
  layers_.clear();
  std::vector<std::size_t> sizes{d};
  for (auto h : options_.hidden) sizes.push_back(h);
  sizes.push_back(1);
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer layer;
    const std::size_t in = sizes[l], out = sizes[l + 1];
    layer.w = Matrix(out, in);
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    for (std::size_t o = 0; o < out; ++o) {
      for (std::size_t i = 0; i < in; ++i) {
        layer.w(o, i) = rng.normal(0.0, scale);
      }
    }
    layer.b.assign(out, 0.0);
    layer.mw = Matrix(out, in);
    layer.vw = Matrix(out, in);
    layer.mb.assign(out, 0.0);
    layer.vb.assign(out, 0.0);
    layers_.push_back(std::move(layer));
  }

  const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
  long long step = 0;
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t batch = 0; batch < n; batch += options_.batch_size) {
      const std::size_t hi = std::min(n, batch + options_.batch_size);
      // Accumulate gradients over the mini-batch.
      std::vector<Matrix> gw;
      std::vector<std::vector<double>> gb;
      for (const auto& layer : layers_) {
        gw.emplace_back(layer.w.rows(), layer.w.cols());
        gb.emplace_back(layer.b.size(), 0.0);
      }
      for (std::size_t k = batch; k < hi; ++k) {
        const std::size_t i = order[k];
        std::vector<std::vector<double>> acts;
        const double pred = forward(xs.row(i), &acts);
        // dL/dpred for 0.5*(pred-y)^2.
        std::vector<double> delta{pred - ys[i]};
        for (std::size_t l = layers_.size(); l-- > 0;) {
          const Layer& layer = layers_[l];
          const auto& input = acts[l];
          // Grad w.r.t. weights/bias.
          for (std::size_t o = 0; o < layer.w.rows(); ++o) {
            gb[l][o] += delta[o];
            for (std::size_t ii = 0; ii < layer.w.cols(); ++ii) {
              gw[l](o, ii) += delta[o] * input[ii];
            }
          }
          if (l == 0) break;
          // Backprop through the ReLU of the previous layer.
          std::vector<double> prev_delta(layer.w.cols(), 0.0);
          for (std::size_t ii = 0; ii < layer.w.cols(); ++ii) {
            double s = 0.0;
            for (std::size_t o = 0; o < layer.w.rows(); ++o) {
              s += layer.w(o, ii) * delta[o];
            }
            prev_delta[ii] = acts[l][ii] > 0.0 ? s : 0.0;
          }
          delta = std::move(prev_delta);
        }
      }
      // Adam update.
      ++step;
      const double inv_batch = 1.0 / static_cast<double>(hi - batch);
      const double bc1 = 1.0 - std::pow(b1, static_cast<double>(step));
      const double bc2 = 1.0 - std::pow(b2, static_cast<double>(step));
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        for (std::size_t o = 0; o < layer.w.rows(); ++o) {
          for (std::size_t ii = 0; ii < layer.w.cols(); ++ii) {
            const double g =
                gw[l](o, ii) * inv_batch + options_.l2 * layer.w(o, ii);
            layer.mw(o, ii) = b1 * layer.mw(o, ii) + (1 - b1) * g;
            layer.vw(o, ii) = b2 * layer.vw(o, ii) + (1 - b2) * g * g;
            layer.w(o, ii) -= options_.learning_rate *
                              (layer.mw(o, ii) / bc1) /
                              (std::sqrt(layer.vw(o, ii) / bc2) + eps);
          }
          const double g = gb[l][o] * inv_batch;
          layer.mb[o] = b1 * layer.mb[o] + (1 - b1) * g;
          layer.vb[o] = b2 * layer.vb[o] + (1 - b2) * g * g;
          layer.b[o] -= options_.learning_rate * (layer.mb[o] / bc1) /
                        (std::sqrt(layer.vb[o] / bc2) + eps);
        }
      }
    }
  }
}

double Mlp::predict(std::span<const double> row) const {
  LUMOS_REQUIRE(!layers_.empty(), "predict before fit");
  std::vector<double> scaled(row.begin(), row.end());
  scaler_.transform_row(scaled);
  return forward(scaled, nullptr) * y_std_ + y_mean_;
}

}  // namespace lumos::ml
