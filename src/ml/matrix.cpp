#include "ml/matrix.hpp"

#include <cmath>

#include "util/error.hpp"

namespace lumos::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  LUMOS_REQUIRE(cols_ == other.rows_, "matrix multiply shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += a * other(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> v) const {
  LUMOS_REQUIRE(cols_ == v.size(), "matrix-vector shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) s += (*this)(i, j) * v[j];
    out[i] = s;
  }
  return out;
}

std::vector<double> cholesky_solve(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  LUMOS_REQUIRE(a.cols() == n && b.size() == n,
                "cholesky_solve needs a square system");
  // In-place Cholesky a = L L^T (lower triangle).
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    LUMOS_REQUIRE(d > 1e-12, "matrix is not positive definite");
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / ljj;
    }
  }
  // Forward solve L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= a(i, k) * b[k];
    b[i] = s / a(i, i);
  }
  // Back solve L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= a(k, ii) * b[k];
    b[ii] = s / a(ii, ii);
  }
  return b;
}

}  // namespace lumos::ml
