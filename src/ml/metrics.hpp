// Regression evaluation metrics, including the two the paper uses for
// runtime prediction (§VI-A): prediction accuracy min/max ratio and the
// underestimation rate.
#pragma once

#include <span>

namespace lumos::ml {

/// Mean squared error.
[[nodiscard]] double mse(std::span<const double> truth,
                         std::span<const double> pred);
/// Mean absolute error.
[[nodiscard]] double mae(std::span<const double> truth,
                         std::span<const double> pred);
/// R^2 coefficient of determination.
[[nodiscard]] double r2(std::span<const double> truth,
                        std::span<const double> pred);

/// Paper metric: mean of min(truth,pred)/max(truth,pred) — in (0,1],
/// higher is better. Non-positive pairs contribute 0.
[[nodiscard]] double prediction_accuracy(std::span<const double> truth,
                                         std::span<const double> pred);

/// Paper metric: fraction of jobs whose runtime was underestimated
/// (pred < truth). Lower is better.
[[nodiscard]] double underestimate_rate(std::span<const double> truth,
                                        std::span<const double> pred);

}  // namespace lumos::ml
