#include "ml/tobit.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace lumos::ml {

namespace {

double norm_pdf(double z) noexcept {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double norm_cdf(double z) noexcept {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

/// Inverse Mills ratio phi(z)/(1-Phi(z)) with a stable large-z asymptote.
double mills(double z) noexcept {
  if (z > 6.0) return z + 1.0 / z;  // asymptotic expansion
  const double denom = 1.0 - norm_cdf(z);
  if (denom < 1e-300) return z + 1.0 / std::max(z, 1e-6);
  return norm_pdf(z) / denom;
}

}  // namespace

void TobitRegression::fit(const Dataset& train) {
  const std::size_t n = train.size();
  LUMOS_REQUIRE(n > 0, "cannot fit on an empty dataset");
  LUMOS_REQUIRE(censored_.empty() || censored_.size() == n,
                "censoring flags must match the training set");
  scaler_ = Standardizer(train.x);
  const Matrix xs = scaler_.transform(train.x);
  const std::size_t d = xs.cols();

  // Standardise the target too (keeps sigma O(1)).
  y_mean_ = 0.0;
  for (double y : train.y) y_mean_ += y;
  y_mean_ /= static_cast<double>(n);
  double var = 0.0;
  for (double y : train.y) var += (y - y_mean_) * (y - y_mean_);
  y_std_ = var > 1e-12 ? std::sqrt(var / static_cast<double>(n)) : 1.0;
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) ys[i] = (train.y[i] - y_mean_) / y_std_;

  // Parameters: weights (d), bias, log sigma — Adam ascent on the Tobit
  // log-likelihood.
  weights_.assign(d + 1, 0.0);
  double log_sigma = 0.0;
  std::vector<double> m(d + 2, 0.0), v(d + 2, 0.0);
  const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
  const double inv_n = 1.0 / static_cast<double>(n);

  for (int epoch = 1; epoch <= options_.epochs; ++epoch) {
    std::vector<double> grad(d + 2, 0.0);
    const double sigma = std::exp(log_sigma);
    for (std::size_t i = 0; i < n; ++i) {
      double mu = weights_[d];
      for (std::size_t j = 0; j < d; ++j) mu += weights_[j] * xs(i, j);
      const double z = (ys[i] - mu) / sigma;
      double dmu, dls;
      if (!censored_.empty() && censored_[i]) {
        // Censored: log(1 - Phi((c - mu)/sigma)); here ys[i] is the bound.
        const double lambda = mills(z);
        dmu = lambda / sigma;
        dls = lambda * z;
      } else {
        dmu = z / sigma;
        dls = z * z - 1.0;
      }
      for (std::size_t j = 0; j < d; ++j) grad[j] += dmu * xs(i, j) * inv_n;
      grad[d] += dmu * inv_n;
      grad[d + 1] += dls * inv_n;
    }
    for (std::size_t j = 0; j < d; ++j) grad[j] -= options_.l2 * weights_[j];

    for (std::size_t k = 0; k < d + 2; ++k) {
      m[k] = b1 * m[k] + (1.0 - b1) * grad[k];
      v[k] = b2 * v[k] + (1.0 - b2) * grad[k] * grad[k];
      const double mhat = m[k] / (1.0 - std::pow(b1, epoch));
      const double vhat = v[k] / (1.0 - std::pow(b2, epoch));
      const double step =
          options_.learning_rate * mhat / (std::sqrt(vhat) + eps);
      if (k < d + 1) {
        weights_[k] += step;
      } else {
        log_sigma = std::clamp(log_sigma + step, -6.0, 6.0);
      }
    }
  }
  sigma_ = std::exp(log_sigma);
}

double TobitRegression::predict(std::span<const double> row) const {
  LUMOS_REQUIRE(!weights_.empty(), "predict before fit");
  std::vector<double> scaled(row.begin(), row.end());
  scaler_.transform_row(scaled);
  double mu = weights_.back();
  for (std::size_t j = 0; j < scaled.size() && j + 1 < weights_.size(); ++j) {
    mu += weights_[j] * scaled[j];
  }
  return mu * y_std_ + y_mean_;
}

}  // namespace lumos::ml
