// CART-style regression tree (variance-reduction splits, histogram
// candidate thresholds). Building block for the gradient-boosted ensemble.
#pragma once

#include <cstdint>

#include "ml/regressor.hpp"

namespace lumos::ml {

struct TreeOptions {
  int max_depth = 6;
  std::size_t min_samples_leaf = 8;
  /// Candidate thresholds per feature (quantile-spaced).
  int candidate_splits = 32;
};

class RegressionTree final : public Regressor {
 public:
  explicit RegressionTree(TreeOptions options = {}) : options_(options) {}

  void fit(const Dataset& train) override;
  /// Fits on an explicit target (used by boosting on residuals).
  void fit_target(const Matrix& x, std::span<const double> y);
  [[nodiscard]] double predict(std::span<const double> row) const override;
  [[nodiscard]] std::string name() const override { return "Tree"; }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

 private:
  struct Node {
    std::int32_t feature = -1;   ///< -1 = leaf
    double threshold = 0.0;
    double value = 0.0;          ///< leaf prediction
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  TreeOptions options_;
  std::vector<Node> nodes_;

  std::int32_t build(const Matrix& x, std::span<const double> y,
                     std::vector<std::uint32_t>& indices, int depth);
};

}  // namespace lumos::ml
