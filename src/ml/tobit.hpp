// Tobit (right-censored Gaussian) regression.
//
// The Tobit baseline of Fan et al. (CLUSTER'17): observed runtimes are
// right-censored at the requested walltime (a job killed at its limit would
// have run longer). Maximum likelihood over (weights, log sigma) via Adam.
// Without censoring flags it degrades gracefully to Gaussian-MLE linear
// regression.
#pragma once

#include "ml/regressor.hpp"

namespace lumos::ml {

struct TobitOptions {
  int epochs = 200;
  double learning_rate = 0.05;
  double l2 = 1e-4;
};

class TobitRegression final : public Regressor {
 public:
  explicit TobitRegression(TobitOptions options = {}) : options_(options) {}

  /// Marks rows of the next fit() as censored (y is a lower bound).
  /// Must match the training set length.
  void set_censoring(std::vector<bool> censored) {
    censored_ = std::move(censored);
  }

  void fit(const Dataset& train) override;
  [[nodiscard]] double predict(std::span<const double> row) const override;
  [[nodiscard]] std::string name() const override { return "Tobit"; }

  /// Fitted noise scale (of the standardised target).
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  TobitOptions options_;
  std::vector<bool> censored_;
  Standardizer scaler_;
  std::vector<double> weights_;  ///< d weights + bias
  double sigma_ = 1.0;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
};

}  // namespace lumos::ml
