// CSV trace dialects.
//
// Three dialects cover the study's source formats:
//  * lumos canonical CSV — what lumos itself writes; lossless round-trip.
//  * Philly/Helios-style DL CSV — per-job GPU counts, VC ids, textual status.
//  * ALCF-style HPC CSV — queued/start/end timestamps, nodes/cores, exit code.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/parse.hpp"
#include "trace/trace.hpp"

namespace lumos::trace {

/// Canonical columns:
/// id,user,submit,wait,run,requested_time,nodes,cores,kind,status,vc
/// All readers honor `opts.bad_row_budget` (0 = strict) and record skipped
/// line numbers in `audit`; missing-header errors are never budgeted.
[[nodiscard]] Trace read_lumos_csv(std::istream& in, SystemSpec spec,
                                   const ParseOptions& opts = {},
                                   ParseAudit* audit = nullptr);
void write_lumos_csv(std::ostream& out, const Trace& trace);
[[nodiscard]] Trace read_lumos_csv_file(const std::string& path,
                                        SystemSpec spec,
                                        const ParseOptions& opts = {},
                                        ParseAudit* audit = nullptr);
void write_lumos_csv_file(const std::string& path, const Trace& trace);

/// Philly/Helios-style columns (header required; extra columns ignored):
/// job_id,user,vc,submit_time,queue_delay,run_time,gpus,status
/// status strings: Pass/Passed/Completed -> Passed; Failed -> Failed;
/// Killed/Cancelled -> Killed (case-insensitive).
[[nodiscard]] Trace read_dl_csv(std::istream& in, SystemSpec spec,
                                const ParseOptions& opts = {},
                                ParseAudit* audit = nullptr);

/// ALCF-style columns (header required; extra columns ignored):
/// JOB_ID,USER,QUEUED_TIMESTAMP,START_TIMESTAMP,END_TIMESTAMP,
/// NODES_USED,CORES_USED,WALLTIME_SECONDS,EXIT_STATUS
/// Timestamps are Unix seconds; EXIT_STATUS 0 -> Passed, negative ->
/// Killed, positive -> Failed.
[[nodiscard]] Trace read_alcf_csv(std::istream& in, SystemSpec spec,
                                  const ParseOptions& opts = {},
                                  ParseAudit* audit = nullptr);

}  // namespace lumos::trace
