#include "trace/swf.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/failpoint.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace lumos::trace {

namespace {

JobStatus status_from_swf(long long code) noexcept {
  switch (code) {
    case 1: return JobStatus::Passed;
    case 5: return JobStatus::Killed;   // cancelled
    default: return JobStatus::Failed;  // 0 failed, 3/4 partial
  }
}

long long status_to_swf(JobStatus s) noexcept {
  switch (s) {
    case JobStatus::Passed: return 1;
    case JobStatus::Failed: return 0;
    case JobStatus::Killed: return 5;
  }
  return 0;
}

}  // namespace

SwfRow parse_swf_row(std::string_view trimmed, ResourceKind kind,
                     const ParseOptions& opts, std::size_t lineno) {
  const auto fields = util::split_whitespace(trimmed);
  if (fields.size() < 18) {
    throw ParseError(
        util::format("SWF %s: expected 18 fields, got %zu",
                     parse_context(opts, lineno).c_str(), fields.size()));
  }
  auto need_num = [&](std::size_t i) -> double {
    const auto v = util::parse_double(fields[i]);
    if (!v) {
      throw ParseError(util::format("SWF %s field %zu: not a number",
                                    parse_context(opts, lineno).c_str(),
                                    i + 1));
    }
    // std::from_chars accepts "nan"/"inf"; a non-finite field would poison
    // every downstream sketch and moment, so reject it as malformed.
    if (!std::isfinite(*v)) {
      throw ParseError(util::format("SWF %s field %zu: non-finite value",
                                    parse_context(opts, lineno).c_str(),
                                    i + 1));
    }
    return *v;
  };
  // Clamped float->int conversions: a value outside the target range is a
  // malformed row in practice, but casting it directly is UB — and the
  // fuzz corpus (trace_test) feeds exactly such rows.
  const auto to_u32 = [](double v) -> std::uint32_t {
    if (!(v > 0.0)) return 0;
    if (v >= 4294967295.0) return UINT32_MAX;
    return static_cast<std::uint32_t>(v);
  };
  const auto to_u64 = [](double v) -> std::uint64_t {
    if (!(v > 0.0)) return 0;
    if (v >= 18446744073709549568.0) return UINT64_MAX;  // 2^64 pred
    return static_cast<std::uint64_t>(v);
  };
  SwfRow row;
  Job& j = row.job;
  j.id = to_u64(need_num(0));
  j.submit_time = need_num(1);
  const double wait = need_num(2);
  j.wait_time = wait < 0.0 ? 0.0 : wait;
  j.run_time = need_num(3);
  if (j.run_time < 0.0) {
    row.unknown_runtime = true;  // SWF "unknown runtime"
    return row;
  }
  const double alloc = need_num(4);
  const double req_procs = need_num(7);
  const double procs = alloc > 0.0 ? alloc : req_procs;
  j.cores = procs > 0.0 ? std::max<std::uint32_t>(to_u32(procs), 1) : 1;
  j.nodes = j.cores;  // SWF has no node notion; proc-granular
  j.requested_time = need_num(8);
  if (j.requested_time <= 0.0) j.requested_time = kNoValue;
  const double status = need_num(10);
  j.status = status_from_swf(
      status >= 0.0 && status <= 5.0 ? static_cast<long long>(status) : -1);
  j.user = to_u32(need_num(11));
  j.kind = kind;
  return row;
}

Trace read_swf(std::istream& in, SystemSpec spec, const ParseOptions& opts,
               ParseAudit* audit) {
  Trace trace(std::move(spec));
  std::string line;
  std::size_t lineno = 0;
  std::size_t dropped = 0;
  std::size_t bad_rows = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == ';') continue;
    // Only ParseError is budgeted below: an InjectedFault armed on this
    // site is a library fault, not a malformed row, and must propagate.
    LUMOS_FAILPOINT("trace.swf.row");
    try {
      const SwfRow row =
          parse_swf_row(trimmed, trace.spec().primary_kind, opts, lineno);
      if (row.unknown_runtime) {
        ++dropped;
        continue;
      }
      trace.add(row.job);
    } catch (const ParseError&) {
      if (bad_rows >= opts.bad_row_budget) throw;
      ++bad_rows;
      if (audit != nullptr) audit->skipped_lines.push_back(lineno);
    }
  }
  if (dropped > 0) {
    LUMOS_INFO << "read_swf: dropped " << dropped
               << " jobs with unknown runtime";
  }
  if (audit != nullptr) audit->dropped_unknown_runtime += dropped;
  trace.sort_by_submit();
  return trace;
}

Trace read_swf_file(const std::string& path, SystemSpec spec,
                    const ParseOptions& opts, ParseAudit* audit) {
  LUMOS_FAILPOINT("trace.swf.open");
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open SWF file: " + path);
  ParseOptions file_opts = opts;
  if (file_opts.origin.empty()) file_opts.origin = path;
  return read_swf(in, std::move(spec), file_opts, audit);
}

void write_swf(std::ostream& out, const Trace& trace) {
  const auto& spec = trace.spec();
  out << "; System: " << spec.name << "\n";
  out << "; MaxProcs: " << spec.primary_capacity() << "\n";
  out << "; UnixStartTime: " << spec.epoch_unix << "\n";
  out << "; TimeZoneOffsetHours: " << spec.utc_offset_hours << "\n";
  for (const Job& j : trace.jobs()) {
    out << j.id + 1 << ' '                        // 1 job number (1-based)
        << j.submit_time << ' '                   // 2 submit
        << j.wait_time << ' '                     // 3 wait
        << j.run_time << ' '                      // 4 run
        << j.cores << ' '                         // 5 allocated procs
        << -1 << ' ' << -1 << ' '                 // 6 cpu time, 7 memory
        << j.cores << ' '                         // 8 requested procs
        << (j.has_requested_time() ? j.requested_time : -1.0) << ' '  // 9
        << -1 << ' '                              // 10 requested memory
        << status_to_swf(j.status) << ' '         // 11 status
        << j.user << ' '                          // 12 user
        << -1 << ' ' << -1 << ' ' << -1 << ' '    // 13 group 14 exe 15 queue
        << (j.virtual_cluster >= 0 ? j.virtual_cluster : -1) << ' '  // 16
        << -1 << ' ' << -1 << '\n';               // 17 prec job, 18 think
  }
}

void write_swf_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) throw ParseError("cannot open SWF file for writing: " + path);
  write_swf(out, trace);
}

}  // namespace lumos::trace
