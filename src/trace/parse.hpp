// Shared knobs for the trace parsers (SWF and the CSV dialects).
//
// Real archive dumps carry the occasional mangled row; forcing callers to
// choose between "throw on the first bad byte" and "pre-clean the file by
// hand" loses data silently or loudly. ParseOptions adds a lenient mode
// with an explicit per-file bad-row budget (default 0 = strict, the
// historical behavior), and ParseAudit records exactly which lines were
// skipped so nothing is dropped without a trace. ParseError messages carry
// `file:line` context whenever the caller names the origin.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lumos::trace {

struct ParseOptions {
  /// Malformed rows tolerated per file before the parser throws the
  /// offending ParseError after all. 0 = strict: first bad row throws.
  std::size_t bad_row_budget = 0;
  /// Origin name (usually the file path) for error context; when empty,
  /// messages fall back to bare line numbers. The *_file readers fill
  /// this in with their path automatically.
  std::string origin;
};

/// Filled in (when the caller passes one) with everything a lenient parse
/// skipped — the non-silent half of the bad-row budget.
struct ParseAudit {
  /// 1-based line numbers of malformed rows skipped under the budget.
  std::vector<std::size_t> skipped_lines;
  /// SWF rows dropped for a negative ("unknown") runtime — always dropped,
  /// budget or not, but surfaced here instead of only in the log.
  std::size_t dropped_unknown_runtime = 0;
  [[nodiscard]] bool clean() const noexcept {
    return skipped_lines.empty() && dropped_unknown_runtime == 0;
  }
};

/// "origin:line" when an origin is known, "line N" otherwise — the context
/// prefix every parser error message carries.
[[nodiscard]] inline std::string parse_context(const ParseOptions& opts,
                                               std::size_t line) {
  if (opts.origin.empty()) return "line " + std::to_string(line);
  return opts.origin + ":" + std::to_string(line);
}

}  // namespace lumos::trace
