#include "trace/dag.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "util/error.hpp"

namespace lumos::trace {

namespace {

/// Resolves every edge into index space, rejecting self-edges, duplicate
/// edges, and ids that name no job. Returns per-job parent index lists.
std::vector<std::vector<std::uint32_t>> resolve_edges(const Trace& trace) {
  const auto jobs = trace.jobs();
  std::unordered_map<std::uint64_t, std::uint32_t> by_id;
  by_id.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    by_id[jobs[i].id] = static_cast<std::uint32_t>(i);
  }
  std::vector<std::vector<std::uint32_t>> parents(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    auto& resolved = parents[i];
    resolved.reserve(jobs[i].parents.size());
    for (const std::uint64_t pid : jobs[i].parents) {
      if (pid == jobs[i].id) {
        throw InvalidArgument("DAG: job " + std::to_string(jobs[i].id) +
                              " lists itself as a parent");
      }
      const auto it = by_id.find(pid);
      if (it == by_id.end()) {
        throw InvalidArgument("DAG: job " + std::to_string(jobs[i].id) +
                              " references unknown parent id " +
                              std::to_string(pid));
      }
      resolved.push_back(it->second);
    }
    std::sort(resolved.begin(), resolved.end());
    if (std::adjacent_find(resolved.begin(), resolved.end()) !=
        resolved.end()) {
      throw InvalidArgument("DAG: job " + std::to_string(jobs[i].id) +
                            " lists a parent twice");
    }
  }
  return parents;
}

/// Kahn's algorithm over the resolved edges. Returns a topological order;
/// throws naming a job on the cycle when one exists.
std::vector<std::uint32_t> topological_order(
    const Trace& trace,
    const std::vector<std::vector<std::uint32_t>>& parents) {
  const std::size_t n = parents.size();
  std::vector<std::uint32_t> indegree(n, 0);
  std::vector<std::vector<std::uint32_t>> children(n);
  for (std::size_t i = 0; i < n; ++i) {
    indegree[i] = static_cast<std::uint32_t>(parents[i].size());
    for (const std::uint32_t p : parents[i]) {
      children[p].push_back(static_cast<std::uint32_t>(i));
    }
  }
  std::vector<std::uint32_t> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) order.push_back(static_cast<std::uint32_t>(i));
  }
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (const std::uint32_t c : children[order[head]]) {
      if (--indegree[c] == 0) order.push_back(c);
    }
  }
  if (order.size() != n) {
    // Any job with a remaining unmet parent sits on (or downstream of) a
    // cycle; the smallest-index one gives a stable diagnostic.
    for (std::size_t i = 0; i < n; ++i) {
      if (indegree[i] > 0) {
        throw InvalidArgument("DAG: dependency cycle through job " +
                              std::to_string(trace.jobs()[i].id));
      }
    }
  }
  return order;
}

}  // namespace

bool has_dependencies(const Trace& trace) {
  for (const Job& j : trace.jobs()) {
    if (!j.parents.empty()) return true;
  }
  return false;
}

void validate_dependencies(const Trace& trace) {
  if (!has_dependencies(trace)) return;
  const auto parents = resolve_edges(trace);
  (void)topological_order(trace, parents);
}

DagIndex build_dag_index(const Trace& trace,
                         const std::vector<double>& weight) {
  LUMOS_REQUIRE(weight.size() == trace.size(),
                "build_dag_index: weight size does not match the trace");
  const auto parents = resolve_edges(trace);
  const auto order = topological_order(trace, parents);
  const std::size_t n = parents.size();

  DagIndex index;
  index.parent_count.resize(n);
  index.child_offset.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    index.parent_count[i] = static_cast<std::uint32_t>(parents[i].size());
    for (const std::uint32_t p : parents[i]) ++index.child_offset[p + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    index.child_offset[i + 1] += index.child_offset[i];
  }
  index.children.resize(index.child_offset[n]);
  {
    std::vector<std::uint32_t> cursor(index.child_offset.begin(),
                                      index.child_offset.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      for (const std::uint32_t p : parents[i]) {
        index.children[cursor[p]++] = static_cast<std::uint32_t>(i);
      }
    }
  }
  // Downstream critical path: reverse topological order guarantees every
  // child is final before its parents read it.
  index.critical_path.assign(n, 0.0);
  for (std::size_t k = n; k-- > 0;) {
    const std::uint32_t i = order[k];
    double longest_child = 0.0;
    for (std::uint32_t e = index.child_offset[i]; e < index.child_offset[i + 1];
         ++e) {
      longest_child = std::max(longest_child,
                               index.critical_path[index.children[e]]);
    }
    index.critical_path[i] = weight[i] + longest_child;
  }
  return index;
}

}  // namespace lumos::trace
