// Trace: an ordered collection of jobs plus the system it ran on.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "trace/job.hpp"
#include "trace/system_spec.hpp"

namespace lumos::trace {

class Trace {
 public:
  Trace() = default;
  explicit Trace(SystemSpec spec) : spec_(std::move(spec)) {}
  Trace(SystemSpec spec, std::vector<Job> jobs);

  [[nodiscard]] const SystemSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] SystemSpec& spec() noexcept { return spec_; }

  [[nodiscard]] std::span<const Job> jobs() const noexcept { return jobs_; }
  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return jobs_.empty(); }
  [[nodiscard]] const Job& operator[](std::size_t i) const noexcept {
    return jobs_[i];
  }

  /// Appends one job (call sort_by_submit() when done if order is unknown).
  void add(Job job) { jobs_.push_back(job); }
  void reserve(std::size_t n) { jobs_.reserve(n); }

  /// Stable-sorts jobs by submit time and renumbers ids 0..n-1.
  void sort_by_submit();

  /// True when jobs are non-decreasing in submit time.
  [[nodiscard]] bool is_sorted_by_submit() const noexcept;

  /// Restricts the trace to jobs submitted in [t_begin, t_end) and rebases
  /// submit times to t_begin (the paper's four-month alignment, §II-B).
  [[nodiscard]] Trace window(double t_begin, double t_end) const;

  /// Last job end time (makespan upper edge); 0 for an empty trace.
  [[nodiscard]] double end_time() const noexcept;
  /// Last submit time.
  [[nodiscard]] double last_submit() const noexcept;

  // Column extractors (for the stats layer).
  [[nodiscard]] std::vector<double> run_times() const;
  [[nodiscard]] std::vector<double> wait_times() const;
  [[nodiscard]] std::vector<double> submit_times() const;
  [[nodiscard]] std::vector<double> turnarounds() const;
  [[nodiscard]] std::vector<double> cores_requested() const;
  /// Submission gaps between consecutive jobs (size n-1, non-negative when
  /// sorted).
  [[nodiscard]] std::vector<double> interarrival_times() const;

  /// Number of distinct users.
  [[nodiscard]] std::size_t user_count() const;

  /// Total core-hours consumed by all jobs.
  [[nodiscard]] double total_core_hours() const noexcept;

 private:
  SystemSpec spec_;
  std::vector<Job> jobs_;
};

}  // namespace lumos::trace
