#include "trace/csv_formats.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/failpoint.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace lumos::trace {

namespace {

JobStatus parse_status_text(std::string_view s, const ParseOptions& opts,
                            std::size_t line) {
  const std::string t = util::to_lower(util::trim(s));
  if (t == "pass" || t == "passed" || t == "completed" || t == "success") {
    return JobStatus::Passed;
  }
  if (t == "failed" || t == "fail" || t == "error") return JobStatus::Failed;
  if (t == "killed" || t == "cancelled" || t == "canceled" || t == "kill") {
    return JobStatus::Killed;
  }
  throw ParseError("CSV " + parse_context(opts, line) +
                   ": unknown job status string: " + std::string(s));
}

double require_double(const util::CsvRow& row, std::size_t col,
                      const ParseOptions& opts, std::size_t line,
                      const char* what) {
  if (col >= row.size()) {
    throw ParseError(util::format("CSV %s: missing column %s",
                                  parse_context(opts, line).c_str(), what));
  }
  const auto v = util::parse_double(row[col]);
  if (!v) {
    throw ParseError(util::format("CSV %s: column %s is not numeric",
                                  parse_context(opts, line).c_str(), what));
  }
  return *v;
}

std::size_t require_column(const util::CsvReader& reader,
                           std::string_view name, const ParseOptions& opts) {
  const auto col = reader.column(name);
  if (!col) {
    std::string msg = "CSV";
    if (!opts.origin.empty()) msg += " " + opts.origin;
    throw ParseError(msg + " is missing required column: " +
                     std::string(name));
  }
  return *col;
}

/// Shared bad-row bookkeeping: returns normally when the budget absorbs
/// one more malformed row (recording it), rethrows the current ParseError
/// otherwise. Must be called from a catch handler.
void consume_bad_row(std::size_t& bad_rows, const ParseOptions& opts,
                     ParseAudit* audit, std::size_t line) {
  if (bad_rows >= opts.bad_row_budget) throw;  // NOLINT: rethrow
  ++bad_rows;
  if (audit != nullptr) audit->skipped_lines.push_back(line);
}

}  // namespace

Trace read_lumos_csv(std::istream& in, SystemSpec spec,
                     const ParseOptions& opts, ParseAudit* audit) {
  util::CsvReader reader(in);
  const std::size_t c_id = require_column(reader, "id", opts);
  const std::size_t c_user = require_column(reader, "user", opts);
  const std::size_t c_submit = require_column(reader, "submit", opts);
  const std::size_t c_wait = require_column(reader, "wait", opts);
  const std::size_t c_run = require_column(reader, "run", opts);
  const std::size_t c_req = require_column(reader, "requested_time", opts);
  const std::size_t c_nodes = require_column(reader, "nodes", opts);
  const std::size_t c_cores = require_column(reader, "cores", opts);
  const std::size_t c_kind = require_column(reader, "kind", opts);
  const std::size_t c_status = require_column(reader, "status", opts);
  const std::size_t c_vc = require_column(reader, "vc", opts);

  Trace trace(std::move(spec));
  util::CsvRow row;
  std::size_t bad_rows = 0;
  while (reader.next(row)) {
    if (row.size() == 1 && util::trim(row[0]).empty()) continue;
    const std::size_t line = reader.line();
    // Only ParseError is budgeted: an InjectedFault armed on this site is
    // a library fault, not a malformed row, and must propagate.
    LUMOS_FAILPOINT("trace.csv.row");
    try {
      Job j;
      j.id = static_cast<std::uint64_t>(
          require_double(row, c_id, opts, line, "id"));
      j.user = static_cast<std::uint32_t>(
          require_double(row, c_user, opts, line, "user"));
      j.submit_time = require_double(row, c_submit, opts, line, "submit");
      j.wait_time = require_double(row, c_wait, opts, line, "wait");
      j.run_time = require_double(row, c_run, opts, line, "run");
      j.requested_time =
          require_double(row, c_req, opts, line, "requested_time");
      j.nodes = static_cast<std::uint32_t>(
          require_double(row, c_nodes, opts, line, "nodes"));
      j.cores = static_cast<std::uint32_t>(
          require_double(row, c_cores, opts, line, "cores"));
      j.kind = util::to_lower(row[c_kind]) == "gpu" ? ResourceKind::Gpu
                                                    : ResourceKind::Cpu;
      j.status = parse_status_text(row[c_status], opts, line);
      j.virtual_cluster = static_cast<std::int32_t>(
          require_double(row, c_vc, opts, line, "vc"));
      trace.add(j);
    } catch (const ParseError&) {
      consume_bad_row(bad_rows, opts, audit, line);
    }
  }
  trace.sort_by_submit();
  return trace;
}

void write_lumos_csv(std::ostream& out, const Trace& trace) {
  util::CsvWriter writer(out);
  writer.write_row({"id", "user", "submit", "wait", "run", "requested_time",
                    "nodes", "cores", "kind", "status", "vc"});
  for (const Job& j : trace.jobs()) {
    writer.write_row({std::to_string(j.id), std::to_string(j.user),
                      util::format("%.3f", j.submit_time),
                      util::format("%.3f", j.wait_time),
                      util::format("%.3f", j.run_time),
                      util::format("%.3f", j.requested_time),
                      std::to_string(j.nodes), std::to_string(j.cores),
                      std::string(to_string(j.kind)),
                      std::string(to_string(j.status)),
                      std::to_string(j.virtual_cluster)});
  }
}

Trace read_lumos_csv_file(const std::string& path, SystemSpec spec,
                          const ParseOptions& opts, ParseAudit* audit) {
  LUMOS_FAILPOINT("trace.csv.open");
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open CSV file: " + path);
  ParseOptions file_opts = opts;
  if (file_opts.origin.empty()) file_opts.origin = path;
  return read_lumos_csv(in, std::move(spec), file_opts, audit);
}

void write_lumos_csv_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) throw ParseError("cannot open CSV file for writing: " + path);
  write_lumos_csv(out, trace);
}

Trace read_dl_csv(std::istream& in, SystemSpec spec,
                  const ParseOptions& opts, ParseAudit* audit) {
  util::CsvReader reader(in);
  const std::size_t c_id = require_column(reader, "job_id", opts);
  const std::size_t c_user = require_column(reader, "user", opts);
  const std::size_t c_submit = require_column(reader, "submit_time", opts);
  const std::size_t c_queue = require_column(reader, "queue_delay", opts);
  const std::size_t c_run = require_column(reader, "run_time", opts);
  const std::size_t c_gpus = require_column(reader, "gpus", opts);
  const std::size_t c_status = require_column(reader, "status", opts);
  const auto c_vc = reader.column("vc");

  Trace trace(std::move(spec));
  util::CsvRow row;
  std::size_t bad_rows = 0;
  while (reader.next(row)) {
    if (row.size() == 1 && util::trim(row[0]).empty()) continue;
    const std::size_t line = reader.line();
    LUMOS_FAILPOINT("trace.csv.row");
    try {
      Job j;
      j.id = static_cast<std::uint64_t>(
          require_double(row, c_id, opts, line, "job_id"));
      j.user = static_cast<std::uint32_t>(
          require_double(row, c_user, opts, line, "user"));
      j.submit_time = require_double(row, c_submit, opts, line, "submit_time");
      j.wait_time =
          std::max(0.0, require_double(row, c_queue, opts, line,
                                       "queue_delay"));
      j.run_time = require_double(row, c_run, opts, line, "run_time");
      j.cores = static_cast<std::uint32_t>(
          require_double(row, c_gpus, opts, line, "gpus"));
      if (j.cores == 0) j.cores = 1;
      j.nodes = (j.cores + 7) / 8;  // typical 8-GPU DL nodes
      j.kind = ResourceKind::Gpu;
      j.status = parse_status_text(row[c_status], opts, line);
      if (c_vc && *c_vc < row.size()) {
        const auto vc = util::parse_int(row[*c_vc]);
        j.virtual_cluster = vc ? static_cast<std::int32_t>(*vc)
                               : kNoVirtualCluster;
      }
      trace.add(j);
    } catch (const ParseError&) {
      consume_bad_row(bad_rows, opts, audit, line);
    }
  }
  trace.sort_by_submit();
  return trace;
}

Trace read_alcf_csv(std::istream& in, SystemSpec spec,
                    const ParseOptions& opts, ParseAudit* audit) {
  util::CsvReader reader(in);
  const std::size_t c_id = require_column(reader, "JOB_ID", opts);
  const std::size_t c_user = require_column(reader, "USER", opts);
  const std::size_t c_queued =
      require_column(reader, "QUEUED_TIMESTAMP", opts);
  const std::size_t c_start = require_column(reader, "START_TIMESTAMP", opts);
  const std::size_t c_end = require_column(reader, "END_TIMESTAMP", opts);
  const std::size_t c_nodes = require_column(reader, "NODES_USED", opts);
  const std::size_t c_cores = require_column(reader, "CORES_USED", opts);
  const std::size_t c_wall =
      require_column(reader, "WALLTIME_SECONDS", opts);
  const std::size_t c_exit = require_column(reader, "EXIT_STATUS", opts);

  Trace trace(std::move(spec));
  const double epoch = static_cast<double>(trace.spec().epoch_unix);
  util::CsvRow row;
  std::size_t bad_rows = 0;
  while (reader.next(row)) {
    if (row.size() == 1 && util::trim(row[0]).empty()) continue;
    const std::size_t line = reader.line();
    LUMOS_FAILPOINT("trace.csv.row");
    try {
      Job j;
      j.id = static_cast<std::uint64_t>(
          require_double(row, c_id, opts, line, "JOB_ID"));
      j.user = static_cast<std::uint32_t>(
          require_double(row, c_user, opts, line, "USER"));
      const double queued = require_double(row, c_queued, opts, line,
                                           "QUEUED");
      const double start = require_double(row, c_start, opts, line, "START");
      const double end = require_double(row, c_end, opts, line, "END");
      if (end < start || start < queued) {
        throw ParseError(
            util::format("CSV %s: non-monotonic timestamps",
                         parse_context(opts, line).c_str()));
      }
      j.submit_time = queued - epoch;
      j.wait_time = start - queued;
      j.run_time = end - start;
      j.nodes = static_cast<std::uint32_t>(
          require_double(row, c_nodes, opts, line, "NODES_USED"));
      j.cores = static_cast<std::uint32_t>(
          require_double(row, c_cores, opts, line, "CORES_USED"));
      j.requested_time =
          require_double(row, c_wall, opts, line, "WALLTIME_SECONDS");
      if (j.requested_time <= 0.0) j.requested_time = kNoValue;
      const auto exit_status = static_cast<long long>(
          require_double(row, c_exit, opts, line, "EXIT"));
      j.status = exit_status == 0 ? JobStatus::Passed
                 : exit_status < 0 ? JobStatus::Killed
                                   : JobStatus::Failed;
      j.kind = ResourceKind::Cpu;
      trace.add(j);
    } catch (const ParseError&) {
      consume_bad_row(bad_rows, opts, audit, line);
    }
  }
  trace.sort_by_submit();
  return trace;
}

}  // namespace lumos::trace
