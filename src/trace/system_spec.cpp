#include "trace/system_spec.hpp"

#include "util/string_util.hpp"

namespace lumos::trace {

SizeCategory SystemSpec::size_category(std::uint32_t job_cores,
                                       bool with_minimal) const noexcept {
  if (with_minimal && job_cores <= 1) return SizeCategory::Minimal;
  if (klass == SystemClass::ClassicDl) {
    // DL rule (§III-A, following Helios conventions): 1 GPU = small,
    // 2..8 = middle, >8 = large.
    if (job_cores <= 1) return SizeCategory::Small;
    if (job_cores <= 8) return SizeCategory::Middle;
    return SizeCategory::Large;
  }
  // HPC/hybrid rule: fraction of total primary cores.
  const double frac = static_cast<double>(job_cores) /
                      static_cast<double>(primary_capacity());
  if (frac < 0.10) return SizeCategory::Small;
  if (frac <= 0.30) return SizeCategory::Middle;
  return SizeCategory::Large;
}

LengthCategory SystemSpec::length_category(double run_time_s,
                                           bool with_minimal) noexcept {
  if (with_minimal && run_time_s < 60.0) return LengthCategory::Minimal;
  if (run_time_s < 3600.0) return LengthCategory::Short;
  if (run_time_s <= 86400.0) return LengthCategory::Middle;
  return LengthCategory::Long;
}

SystemSpec mira_spec() {
  SystemSpec s;
  s.name = "Mira";
  s.affiliation = "ALCF";
  s.klass = SystemClass::ClassicHpc;
  s.nodes = 49152;
  s.cores = 786432;  // 16 CPUs per node
  s.gpus = 0;
  s.primary_kind = ResourceKind::Cpu;
  s.utc_offset_hours = -6.0;  // Central Time
  s.epoch_unix = 1564617600;  // 2019-08-01 (aligned 4-month window)
  s.trace_window = "2019-08~2019-12";
  s.virtual_clusters = 0;
  s.has_walltime_estimates = true;
  return s;
}

SystemSpec theta_spec() {
  SystemSpec s;
  s.name = "Theta";
  s.affiliation = "ALCF";
  s.klass = SystemClass::ClassicHpc;
  s.nodes = 4392;
  s.cores = 281088;  // 64 CPUs per node
  s.gpus = 0;
  s.primary_kind = ResourceKind::Cpu;
  s.utc_offset_hours = -6.0;  // Central Time
  s.epoch_unix = 1669852800;  // 2022-12-01
  s.trace_window = "2022-12~2023-05";
  s.virtual_clusters = 0;
  s.has_walltime_estimates = true;
  return s;
}

SystemSpec blue_waters_spec() {
  SystemSpec s;
  s.name = "BlueWaters";
  s.affiliation = "NCSA";
  s.klass = SystemClass::Hybrid;
  s.nodes = 26864;    // 22,636 CPU + 4,228 GPU nodes
  s.cores = 396000;
  s.gpus = 4228;
  s.primary_kind = ResourceKind::Cpu;
  s.utc_offset_hours = -6.0;  // Central Time (Illinois)
  s.epoch_unix = 1564617600;  // 2019-08-01
  s.trace_window = "2019-08~2019-12";
  s.virtual_clusters = 0;
  s.has_walltime_estimates = true;
  return s;
}

SystemSpec philly_spec() {
  SystemSpec s;
  s.name = "Philly";
  s.affiliation = "Microsoft";
  s.klass = SystemClass::ClassicDl;
  s.nodes = 552;
  s.cores = 0;  // CPU scale not reported in the trace
  s.gpus = 2490;
  s.primary_kind = ResourceKind::Gpu;
  s.utc_offset_hours = -8.0;  // Pacific Time
  s.epoch_unix = 1501545600;  // 2017-08-01
  s.trace_window = "2017-08~2017-12";
  s.virtual_clusters = 14;
  s.has_walltime_estimates = false;  // no Wall Time in the DL traces
  return s;
}

SystemSpec helios_spec() {
  SystemSpec s;
  s.name = "Helios";
  s.affiliation = "SenseTime";
  s.klass = SystemClass::ClassicDl;
  s.nodes = 802;
  s.cores = 0;
  s.gpus = 6416;
  s.primary_kind = ResourceKind::Gpu;
  s.utc_offset_hours = 8.0;  // China Standard Time
  s.epoch_unix = 1585699200;  // 2020-04-01
  s.trace_window = "2020-04~2020-09";
  s.virtual_clusters = 0;
  s.has_walltime_estimates = false;
  return s;
}

std::vector<SystemSpec> all_system_specs() {
  return {blue_waters_spec(), mira_spec(), theta_spec(), philly_spec(),
          helios_spec()};
}

std::optional<SystemSpec> find_system_spec(std::string_view name) {
  const std::string key = util::to_lower(name);
  for (auto& spec : all_system_specs()) {
    if (util::to_lower(spec.name) == key) return spec;
  }
  // Common aliases.
  if (key == "blue waters" || key == "blue_waters" || key == "bw") {
    return blue_waters_spec();
  }
  return std::nullopt;
}

std::vector<CandidateTrace> table1_candidates() {
  auto make = [](std::string name, std::string aff, std::string years,
                 std::string jobs, std::string nodes, std::string cores,
                 std::string gpus, bool large, bool user, bool status,
                 bool consistent, bool selected, std::string reason) {
    CandidateTrace c;
    c.name = std::move(name);
    c.affiliation = std::move(aff);
    c.years = std::move(years);
    c.job_count = std::move(jobs);
    c.nodes = std::move(nodes);
    c.cores = std::move(cores);
    c.gpus = std::move(gpus);
    c.large_scale = large;
    c.user_info = user;
    c.job_status = status;
    c.info_consistent = consistent;
    c.selected = selected;
    c.exclusion_reason = std::move(reason);
    return c;
  };
  return {
      make("Mira", "ALCF", "2013~2019", "750,000", "49,152", "786,432", "NA",
           true, true, true, true, true, ""),
      make("Theta", "ALCF", "2017~2023", "522,858", "4,392", "281,088", "NA",
           true, true, true, true, true, ""),
      make("Blue Waters", "NCSA", "2013~2019", "10.5M", "26,864", "396,000",
           "4,228", true, true, true, true, true, ""),
      make("ThetaGPU", "ALCF", "2020~2023", "135,975", "24", "NA", "192",
           false, true, true, true, false, "cluster size (24 nodes)"),
      make("Supercloud", "MIT", "2021-01~2021-10", "395,914", "704", "32,000",
           "448", true, true, true, false, false,
           "inconsistent info (jobs exceed node count)"),
      make("Philly", "Microsoft", "2017-08~2017-12", "117,325", "552", "NA",
           "2,490", true, true, true, true, true, ""),
      make("Helios", "SenseTime", "2020-04~2020-09", "3.3M", "802", "NA",
           "6,416", true, true, true, true, true, ""),
      make("Elasticflow", "Microsoft", "2021-03~2021-05", "69,351", "NA",
           "NA", "NA", false, false, false, true, false,
           "job count; missing user/status info"),
      make("Alibaba Cluster Trace", "Alibaba", "2023", "8,152", "1,523",
           "107,018", "6,212", false, true, true, true, false, "job count"),
  };
}

}  // namespace lumos::trace
