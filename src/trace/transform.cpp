#include "trace/transform.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace lumos::trace {

Trace merge(const Trace& a, const Trace& b, bool share_users) {
  LUMOS_REQUIRE(a.spec().name == b.spec().name,
                "merge requires traces of the same system");
  Trace out(a.spec());
  out.reserve(a.size() + b.size());
  std::uint32_t user_offset = 0;
  if (!share_users) {
    for (const Job& j : a.jobs()) {
      user_offset = std::max(user_offset, j.user + 1);
    }
  }
  for (const Job& j : a.jobs()) out.add(j);
  for (Job j : b.jobs()) {
    j.user += user_offset;
    out.add(j);
  }
  out.sort_by_submit();
  return out;
}

Trace anonymize_users(const Trace& trace, std::uint64_t salt) {
  // Salted hash decides the encounter ordering -> dense pseudonyms.
  std::unordered_map<std::uint32_t, std::uint32_t> mapping;
  mapping.reserve(trace.user_count());
  Trace out(trace.spec());
  out.reserve(trace.size());
  for (Job j : trace.jobs()) {
    const auto it = mapping.find(j.user);
    if (it != mapping.end()) {
      j.user = it->second;
    } else {
      // Mix the original id with the salt so pseudonym assignment is not
      // a function of submission order alone.
      std::uint64_t h = salt ^ (static_cast<std::uint64_t>(j.user) + 1);
      (void)util::splitmix64(h);
      const auto pseudonym = static_cast<std::uint32_t>(mapping.size());
      mapping.emplace(j.user, pseudonym);
      j.user = pseudonym;
    }
    out.add(j);
  }
  return out;
}

Trace scale_sizes(const Trace& trace, double factor) {
  LUMOS_REQUIRE(factor > 0.0, "scale factor must be positive");
  Trace out(trace.spec());
  out.reserve(trace.size());
  const double capacity =
      std::max<double>(1.0, trace.spec().primary_capacity());
  for (Job j : trace.jobs()) {
    const double scaled =
        std::clamp(std::round(static_cast<double>(j.cores) * factor), 1.0,
                   capacity);
    j.cores = static_cast<std::uint32_t>(scaled);
    out.add(j);
  }
  return out;
}

Trace dilate_arrivals(const Trace& trace, double factor) {
  LUMOS_REQUIRE(factor > 0.0, "dilation factor must be positive");
  Trace out(trace.spec());
  out.reserve(trace.size());
  for (Job j : trace.jobs()) {
    j.submit_time *= factor;
    out.add(j);
  }
  out.sort_by_submit();
  return out;
}

}  // namespace lumos::trace
