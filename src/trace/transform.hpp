// Trace transformation utilities: merging, anonymisation, scaling — the
// operations a site performs before sharing a trace (cf. the Parallel
// Workloads Archive's cleaned/anonymised releases).
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace lumos::trace {

/// Merges two traces of the *same system* into one submit-sorted trace
/// (ids renumbered; the second trace's users are offset to stay disjoint
/// unless `share_users` is true).
[[nodiscard]] Trace merge(const Trace& a, const Trace& b,
                          bool share_users = false);

/// Deterministically remaps user ids to dense pseudonyms 0..U-1 in order
/// of first appearance keyed by a salted hash, destroying any correlation
/// between id value and identity. Job geometry is untouched.
[[nodiscard]] Trace anonymize_users(const Trace& trace,
                                    std::uint64_t salt = 0x5eed);

/// Scales every job's requested cores by `factor` (clamped to [1,
/// capacity]) — the standard trick for replaying a trace against a larger
/// or smaller machine. Runtimes are untouched (rigid jobs).
[[nodiscard]] Trace scale_sizes(const Trace& trace, double factor);

/// Time-dilates the arrival process by `factor` (>1 spreads submissions
/// out, <1 compresses them), keeping runtimes and waits — used to sweep
/// offered load in simulator studies.
[[nodiscard]] Trace dilate_arrivals(const Trace& trace, double factor);

}  // namespace lumos::trace
