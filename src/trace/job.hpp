// The per-job record every lumos analysis consumes.
//
// This is the common-attribute schema the paper aligns all five traces to
// (§II-B): geometry (submit/run/size), scheduling outcome (wait), exit
// status, and the submitting user. Fields that only some traces carry
// (walltime request, virtual cluster) are optional-with-sentinel.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace lumos::trace {

/// Final job status per the paper's three-way classification (§IV-A):
/// Passed (normal completion), Failed (technical fault — SIGABRT/SIGSEGV
/// class), Killed (terminated externally — SIGTERM/SIGKILL class,
/// cancellations, walltime kills).
enum class JobStatus : std::uint8_t { Passed = 0, Failed = 1, Killed = 2 };

inline constexpr int kNumStatuses = 3;

[[nodiscard]] constexpr std::string_view to_string(JobStatus s) noexcept {
  switch (s) {
    case JobStatus::Passed: return "Passed";
    case JobStatus::Failed: return "Failed";
    case JobStatus::Killed: return "Killed";
  }
  return "?";
}

/// What a "core" means for a job (Fig 1c plots GPUs for DL systems and CPUs
/// for HPC systems; Blue Waters carries both kinds).
enum class ResourceKind : std::uint8_t { Cpu = 0, Gpu = 1 };

[[nodiscard]] constexpr std::string_view to_string(ResourceKind k) noexcept {
  return k == ResourceKind::Cpu ? "CPU" : "GPU";
}

/// Sentinel for "this trace does not provide the field".
inline constexpr double kNoValue = -1.0;
inline constexpr std::int32_t kNoVirtualCluster = -1;

struct Job {
  std::uint64_t id = 0;           ///< unique within a trace
  std::uint32_t user = 0;         ///< anonymised submitting user id
  double submit_time = 0.0;       ///< seconds since trace epoch
  double wait_time = 0.0;         ///< queue wait recorded in the trace (s)
  double run_time = 0.0;          ///< actual execution time (s)
  double requested_time = kNoValue;  ///< user walltime estimate (s), if any
  std::uint32_t nodes = 1;        ///< allocated/requested nodes
  std::uint32_t cores = 1;        ///< allocated cores (CPUs or GPUs)
  ResourceKind kind = ResourceKind::Cpu;
  JobStatus status = JobStatus::Passed;
  std::int32_t virtual_cluster = kNoVirtualCluster;  ///< Philly-style VC id
  /// Straggler-free runtime a freshly launched duplicate of this job would
  /// achieve (seconds). The heavy-tail injector (synth::inject_heavy_tail)
  /// records the pre-inflation sample here; kNoValue means "no better
  /// estimate than run_time", so a hedged duplicate gains nothing.
  double hedge_run_time = kNoValue;
  /// Precedence edges: ids of jobs that must complete before this one may
  /// start (workflow DAGs). Empty for independent batch jobs. Validated by
  /// trace::validate_dependencies; remapped by Trace::sort_by_submit when
  /// ids are renumbered.
  std::vector<std::uint64_t> parents;

  /// Scheduler-visible start.
  [[nodiscard]] double start_time() const noexcept {
    return submit_time + wait_time;
  }
  /// End of execution.
  [[nodiscard]] double end_time() const noexcept {
    return start_time() + run_time;
  }
  /// Wait + run — the paper's turnaround (Fig 4b).
  [[nodiscard]] double turnaround() const noexcept {
    return wait_time + run_time;
  }
  /// Core-hours consumed (cores are CPUs or GPUs per `kind`).
  [[nodiscard]] double core_hours() const noexcept {
    return static_cast<double>(cores) * run_time / 3600.0;
  }
  /// Bounded slowdown with the Feitelson interactive threshold.
  [[nodiscard]] double bounded_slowdown(double bound = 10.0) const noexcept {
    const double denom = run_time > bound ? run_time : bound;
    const double bsld = (wait_time + run_time) / denom;
    return bsld > 1.0 ? bsld : 1.0;
  }
  /// True when the trace recorded a walltime request.
  [[nodiscard]] bool has_requested_time() const noexcept {
    return requested_time > 0.0;
  }
};

}  // namespace lumos::trace
