// Standard Workload Format (SWF) reader/writer.
//
// SWF is the lingua franca of scheduling research (Feitelson's Parallel
// Workloads Archive) and the input format of SchedGym, the simulator the
// paper evaluates with. Fields are the standard 18 whitespace-separated
// columns; `;` lines are header comments.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "trace/parse.hpp"
#include "trace/trace.hpp"

namespace lumos::trace {

/// One parsed SWF data row. `unknown_runtime` flags SWF's "unknown
/// runtime" sentinel (negative run time): batch readers drop such rows.
struct SwfRow {
  Job job;
  bool unknown_runtime = false;
};

/// Parses one non-comment, non-blank SWF data row (18 whitespace-separated
/// fields; caller has already trimmed and filtered `;` comment lines).
/// This is the single row-decoding routine shared by the batch reader
/// below and the incremental `stream::ingest` tailer, so both accept
/// exactly the same dialect. `kind` labels the job's cores (CPU vs GPU);
/// `opts`/`lineno` feed the lazy error context. Throws ParseError on a
/// malformed row.
[[nodiscard]] SwfRow parse_swf_row(std::string_view trimmed,
                                   ResourceKind kind,
                                   const ParseOptions& opts,
                                   std::size_t lineno);

/// Parses SWF from a stream. Jobs with negative run time (SWF's "unknown")
/// are dropped; negative wait times are clamped to zero. SWF status codes
/// map: 1 -> Passed, 0/3/4 -> Failed, 5 -> Killed (cancelled).
/// Throws ParseError on malformed records, unless `opts.bad_row_budget`
/// admits skipping them (skipped line numbers land in `audit`).
[[nodiscard]] Trace read_swf(std::istream& in, SystemSpec spec,
                             const ParseOptions& opts = {},
                             ParseAudit* audit = nullptr);

/// Convenience: read from a file path (the path becomes the error-context
/// origin unless `opts` already names one).
[[nodiscard]] Trace read_swf_file(const std::string& path, SystemSpec spec,
                                  const ParseOptions& opts = {},
                                  ParseAudit* audit = nullptr);

/// Writes a trace as SWF (with a minimal comment header carrying the
/// system name and capacity). Round-trips with read_swf.
void write_swf(std::ostream& out, const Trace& trace);

void write_swf_file(const std::string& path, const Trace& trace);

}  // namespace lumos::trace
