// Trace consistency validation.
//
// The paper dropped the MIT Supercloud trace because "many jobs with
// requested nodes exceeding [the cluster size were] successfully scheduled"
// (§II-A). This module codifies those checks so any ingested trace gets the
// same screening the authors applied by hand.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace lumos::trace {

enum class IssueSeverity { Warning, Fatal };

struct ValidationIssue {
  IssueSeverity severity = IssueSeverity::Warning;
  std::string check;       ///< machine-readable check id
  std::string message;     ///< human-readable description
  std::size_t job_count = 0;  ///< number of offending jobs
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;
  [[nodiscard]] bool consistent() const noexcept {
    for (const auto& i : issues) {
      if (i.severity == IssueSeverity::Fatal) return false;
    }
    return true;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Runs all checks:
///  * capacity: jobs requesting more than the system's primary capacity
///    that nevertheless ran (the Supercloud inconsistency) — Fatal.
///  * negative-geometry: negative run/wait/submit — Fatal.
///  * zero-cores: jobs with zero cores — Warning.
///  * unsorted: submit times out of order — Warning.
///  * walltime-underrun: runtime exceeding requested walltime by > 5%
///    (scheduler should have killed it) — Warning.
[[nodiscard]] ValidationReport validate(const Trace& trace);

}  // namespace lumos::trace
