// Trace consistency validation.
//
// The paper dropped the MIT Supercloud trace because "many jobs with
// requested nodes exceeding [the cluster size were] successfully scheduled"
// (§II-A). This module codifies those checks so any ingested trace gets the
// same screening the authors applied by hand.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace lumos::trace {

enum class IssueSeverity { Warning, Fatal };

struct ValidationIssue {
  IssueSeverity severity = IssueSeverity::Warning;
  std::string check;       ///< machine-readable check id
  std::string message;     ///< human-readable description
  std::size_t job_count = 0;  ///< number of offending jobs
};

class ValidationReport {
 public:
  /// Records an issue, maintaining the fatal-count cache.
  void add(ValidationIssue issue) {
    if (issue.severity == IssueSeverity::Fatal) ++fatal_count_;
    issues_.push_back(std::move(issue));
  }
  [[nodiscard]] const std::vector<ValidationIssue>& issues() const noexcept {
    return issues_;
  }
  [[nodiscard]] std::size_t fatal_count() const noexcept {
    return fatal_count_;
  }
  /// O(1): callers poll this in loops, so the fatal count is cached at
  /// add() time rather than recomputed by scanning the issues.
  [[nodiscard]] bool consistent() const noexcept { return fatal_count_ == 0; }
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<ValidationIssue> issues_;
  std::size_t fatal_count_ = 0;
};

/// Runs all checks:
///  * capacity: jobs requesting more than the system's primary capacity
///    that nevertheless ran (the Supercloud inconsistency) — Fatal.
///  * negative-geometry: negative run/wait/submit — Fatal.
///  * zero-cores: jobs with zero cores — Warning.
///  * unsorted: submit times out of order — Warning.
///  * walltime-underrun: runtime exceeding requested walltime by > 5%
///    (scheduler should have killed it) — Warning.
[[nodiscard]] ValidationReport validate(const Trace& trace);

/// What sanitize() repaired: per-check drop counts plus the quarantined
/// jobs themselves, so callers can report (or persist) exactly what was
/// removed instead of silently losing rows.
struct SanitizeReport {
  std::size_t dropped_capacity = 0;
  std::size_t dropped_negative_geometry = 0;
  std::size_t dropped_zero_cores = 0;
  bool resorted = false;
  std::vector<Job> quarantined;  ///< dropped jobs, original order
  [[nodiscard]] std::size_t dropped() const noexcept {
    return quarantined.size();
  }
  [[nodiscard]] std::string to_string() const;
};

/// Repair mode next to validate(): quarantines the jobs behind the
/// report's per-job issues (capacity violations, negative geometry, zero
/// cores) out of `trace` and re-sorts it when the report flagged disorder,
/// leaving a trace validate() finds consistent. Only checks present in
/// `report` are acted on, so a warnings-off caller keeps its rows. Job ids
/// are preserved unless a resort renumbers them.
[[nodiscard]] SanitizeReport sanitize(Trace& trace,
                                      const ValidationReport& report);

}  // namespace lumos::trace
