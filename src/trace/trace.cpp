#include "trace/trace.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace lumos::trace {

Trace::Trace(SystemSpec spec, std::vector<Job> jobs)
    : spec_(std::move(spec)), jobs_(std::move(jobs)) {}

void Trace::sort_by_submit() {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) {
                     return a.submit_time < b.submit_time;
                   });
  // Renumbering invalidates precedence edges expressed in the old id
  // space; remap them through old-id -> new-id so workflow DAGs survive
  // the sort. Unresolvable parents are left untouched for
  // validate_dependencies to reject with a proper diagnostic.
  const bool has_parents =
      std::any_of(jobs_.begin(), jobs_.end(),
                  [](const Job& j) { return !j.parents.empty(); });
  if (has_parents) {
    std::unordered_map<std::uint64_t, std::uint64_t> renumber;
    renumber.reserve(jobs_.size());
    for (std::size_t i = 0; i < jobs_.size(); ++i) renumber[jobs_[i].id] = i;
    for (Job& j : jobs_) {
      for (std::uint64_t& parent : j.parents) {
        const auto it = renumber.find(parent);
        if (it != renumber.end()) parent = it->second;
      }
    }
  }
  for (std::size_t i = 0; i < jobs_.size(); ++i) jobs_[i].id = i;
}

bool Trace::is_sorted_by_submit() const noexcept {
  return std::is_sorted(jobs_.begin(), jobs_.end(),
                        [](const Job& a, const Job& b) {
                          return a.submit_time < b.submit_time;
                        });
}

Trace Trace::window(double t_begin, double t_end) const {
  Trace out(spec_);
  out.spec_.epoch_unix += static_cast<std::int64_t>(t_begin);
  for (const Job& j : jobs_) {
    if (j.submit_time >= t_begin && j.submit_time < t_end) {
      Job copy = j;
      copy.submit_time -= t_begin;
      out.add(copy);
    }
  }
  out.sort_by_submit();
  return out;
}

double Trace::end_time() const noexcept {
  double t = 0.0;
  for (const Job& j : jobs_) t = std::max(t, j.end_time());
  return t;
}

double Trace::last_submit() const noexcept {
  double t = 0.0;
  for (const Job& j : jobs_) t = std::max(t, j.submit_time);
  return t;
}

std::vector<double> Trace::run_times() const {
  std::vector<double> v;
  v.reserve(jobs_.size());
  for (const Job& j : jobs_) v.push_back(j.run_time);
  return v;
}

std::vector<double> Trace::wait_times() const {
  std::vector<double> v;
  v.reserve(jobs_.size());
  for (const Job& j : jobs_) v.push_back(j.wait_time);
  return v;
}

std::vector<double> Trace::submit_times() const {
  std::vector<double> v;
  v.reserve(jobs_.size());
  for (const Job& j : jobs_) v.push_back(j.submit_time);
  return v;
}

std::vector<double> Trace::turnarounds() const {
  std::vector<double> v;
  v.reserve(jobs_.size());
  for (const Job& j : jobs_) v.push_back(j.turnaround());
  return v;
}

std::vector<double> Trace::cores_requested() const {
  std::vector<double> v;
  v.reserve(jobs_.size());
  for (const Job& j : jobs_) v.push_back(static_cast<double>(j.cores));
  return v;
}

std::vector<double> Trace::interarrival_times() const {
  std::vector<double> v;
  if (jobs_.size() < 2) return v;
  v.reserve(jobs_.size() - 1);
  for (std::size_t i = 1; i < jobs_.size(); ++i) {
    v.push_back(jobs_[i].submit_time - jobs_[i - 1].submit_time);
  }
  return v;
}

std::size_t Trace::user_count() const {
  std::unordered_set<std::uint32_t> users;
  users.reserve(jobs_.size() / 8 + 1);
  for (const Job& j : jobs_) users.insert(j.user);
  return users.size();
}

double Trace::total_core_hours() const noexcept {
  double total = 0.0;
  for (const Job& j : jobs_) total += j.core_hours();
  return total;
}

}  // namespace lumos::trace
