// Precedence-DAG helpers over a Trace.
//
// Workflow jobs carry `Job::parents` — ids of jobs that must complete
// before they may start. Everything that consumes those edges (the
// simulator's topological release, the critical-path policy, the workflow
// bench) goes through this module:
//
//   * has_dependencies   cheap scan: does any job carry a parent edge?
//   * validate_dependencies  rejects malformed DAG input with a typed
//     InvalidArgument naming the offending job: self-edges, duplicate
//     edges, parent ids that resolve to no job in the trace, and cycles
//     (Kahn's algorithm; the diagnostic names a job on the cycle).
//   * DagIndex           index-space adjacency (CSR children + parent
//     counts) plus the downstream critical-path length per job, the
//     precomputation the simulator's DAG lanes are built from.
//
// Ids vs indices: edges are expressed in `Job::id` space (stable across
// file round-trips); the index is built against the trace's current job
// order and maps ids through a hash lookup exactly once, at build time.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace lumos::trace {

/// True when any job in the trace carries a parent edge.
[[nodiscard]] bool has_dependencies(const Trace& trace);

/// Validates the precedence edges of `trace`; throws InvalidArgument
/// naming the offending job for self-edges, duplicate parent edges,
/// unresolvable parent ids, and cycles. No-op for edge-free traces.
void validate_dependencies(const Trace& trace);

/// Index-space view of the DAG: children in CSR layout, per-job parent
/// counts, and the downstream critical-path length. Build validates the
/// edges first (same exceptions as validate_dependencies).
struct DagIndex {
  /// children of job i are child_ids[child_offset[i] .. child_offset[i+1])
  std::vector<std::uint32_t> child_offset;  ///< size n+1
  std::vector<std::uint32_t> children;      ///< flat child index list
  std::vector<std::uint32_t> parent_count;  ///< in-degree per job
  /// Sum of `weight` along the longest chain from job i to a leaf,
  /// inclusive of i itself — the critical-path-first priority key.
  std::vector<double> critical_path;

  [[nodiscard]] std::size_t size() const noexcept {
    return parent_count.size();
  }
};

/// Builds the index for `trace` using `weight[i]` as job i's length on
/// critical paths (the simulator passes planned runtimes). `weight` must
/// have one entry per job. Throws InvalidArgument on malformed edges.
[[nodiscard]] DagIndex build_dag_index(const Trace& trace,
                                       const std::vector<double>& weight);

}  // namespace lumos::trace
