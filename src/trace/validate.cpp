#include "trace/validate.hpp"

#include <sstream>

#include "util/string_util.hpp"

namespace lumos::trace {

std::string ValidationReport::to_string() const {
  if (issues.empty()) return "trace OK: no issues\n";
  std::ostringstream os;
  for (const auto& i : issues) {
    os << (i.severity == IssueSeverity::Fatal ? "[FATAL] " : "[warn]  ")
       << i.check << ": " << i.message;
    if (i.job_count > 0) os << " (" << i.job_count << " jobs)";
    os << '\n';
  }
  return os.str();
}

ValidationReport validate(const Trace& trace) {
  ValidationReport report;
  const auto& spec = trace.spec();
  const double capacity = static_cast<double>(spec.primary_capacity());

  std::size_t over_capacity = 0;
  std::size_t negative_geometry = 0;
  std::size_t zero_cores = 0;
  std::size_t walltime_underrun = 0;
  for (const Job& j : trace.jobs()) {
    if (capacity > 0.0 && static_cast<double>(j.cores) > capacity) {
      ++over_capacity;
    }
    if (j.run_time < 0.0 || j.wait_time < 0.0 || j.submit_time < 0.0) {
      ++negative_geometry;
    }
    if (j.cores == 0) ++zero_cores;
    if (j.has_requested_time() && j.run_time > j.requested_time * 1.05) {
      ++walltime_underrun;
    }
  }

  if (over_capacity > 0) {
    report.issues.push_back(
        {IssueSeverity::Fatal, "capacity",
         util::format("jobs larger than the %s capacity of %u were scheduled "
                      "(Supercloud-style inconsistency)",
                      spec.name.c_str(), spec.primary_capacity()),
         over_capacity});
  }
  if (negative_geometry > 0) {
    report.issues.push_back({IssueSeverity::Fatal, "negative-geometry",
                             "negative submit/wait/run times",
                             negative_geometry});
  }
  if (zero_cores > 0) {
    report.issues.push_back({IssueSeverity::Warning, "zero-cores",
                             "jobs with zero allocated cores", zero_cores});
  }
  if (!trace.is_sorted_by_submit()) {
    report.issues.push_back({IssueSeverity::Warning, "unsorted",
                             "jobs are not sorted by submit time", 0});
  }
  if (walltime_underrun > 0) {
    report.issues.push_back(
        {IssueSeverity::Warning, "walltime-underrun",
         "jobs ran >5% past their requested walltime", walltime_underrun});
  }
  return report;
}

}  // namespace lumos::trace
