#include "trace/validate.hpp"

#include <sstream>

#include "util/string_util.hpp"

namespace lumos::trace {

std::string ValidationReport::to_string() const {
  if (issues_.empty()) return "trace OK: no issues\n";
  std::ostringstream os;
  for (const auto& i : issues_) {
    os << (i.severity == IssueSeverity::Fatal ? "[FATAL] " : "[warn]  ")
       << i.check << ": " << i.message;
    if (i.job_count > 0) os << " (" << i.job_count << " jobs)";
    os << '\n';
  }
  return os.str();
}

ValidationReport validate(const Trace& trace) {
  ValidationReport report;
  const auto& spec = trace.spec();
  const double capacity = static_cast<double>(spec.primary_capacity());

  std::size_t over_capacity = 0;
  std::size_t negative_geometry = 0;
  std::size_t zero_cores = 0;
  std::size_t walltime_underrun = 0;
  for (const Job& j : trace.jobs()) {
    if (capacity > 0.0 && static_cast<double>(j.cores) > capacity) {
      ++over_capacity;
    }
    if (j.run_time < 0.0 || j.wait_time < 0.0 || j.submit_time < 0.0) {
      ++negative_geometry;
    }
    if (j.cores == 0) ++zero_cores;
    if (j.has_requested_time() && j.run_time > j.requested_time * 1.05) {
      ++walltime_underrun;
    }
  }

  if (over_capacity > 0) {
    report.add(
        {IssueSeverity::Fatal, "capacity",
         util::format("jobs larger than the %s capacity of %u were scheduled "
                      "(Supercloud-style inconsistency)",
                      spec.name.c_str(), spec.primary_capacity()),
         over_capacity});
  }
  if (negative_geometry > 0) {
    report.add({IssueSeverity::Fatal, "negative-geometry",
                "negative submit/wait/run times", negative_geometry});
  }
  if (zero_cores > 0) {
    report.add({IssueSeverity::Warning, "zero-cores",
                "jobs with zero allocated cores", zero_cores});
  }
  if (!trace.is_sorted_by_submit()) {
    report.add({IssueSeverity::Warning, "unsorted",
                "jobs are not sorted by submit time", 0});
  }
  if (walltime_underrun > 0) {
    report.add({IssueSeverity::Warning, "walltime-underrun",
                "jobs ran >5% past their requested walltime",
                walltime_underrun});
  }
  return report;
}

std::string SanitizeReport::to_string() const {
  if (dropped() == 0 && !resorted) return "trace OK: nothing to repair\n";
  std::ostringstream os;
  os << "sanitized trace: dropped " << dropped() << " jobs";
  if (dropped_capacity > 0) os << ", " << dropped_capacity << " over-capacity";
  if (dropped_negative_geometry > 0) {
    os << ", " << dropped_negative_geometry << " negative-geometry";
  }
  if (dropped_zero_cores > 0) os << ", " << dropped_zero_cores << " zero-core";
  if (resorted) os << "; re-sorted by submit time";
  os << '\n';
  return os.str();
}

SanitizeReport sanitize(Trace& trace, const ValidationReport& report) {
  SanitizeReport out;
  bool capacity_flagged = false;
  bool geometry_flagged = false;
  bool zero_cores_flagged = false;
  bool unsorted_flagged = false;
  for (const auto& issue : report.issues()) {
    if (issue.check == "capacity") capacity_flagged = true;
    if (issue.check == "negative-geometry") geometry_flagged = true;
    if (issue.check == "zero-cores") zero_cores_flagged = true;
    if (issue.check == "unsorted") unsorted_flagged = true;
  }
  if (!capacity_flagged && !geometry_flagged && !zero_cores_flagged &&
      !unsorted_flagged) {
    return out;
  }

  const double capacity =
      static_cast<double>(trace.spec().primary_capacity());
  std::vector<Job> kept;
  kept.reserve(trace.size());
  for (const Job& j : trace.jobs()) {
    bool drop = false;
    if (capacity_flagged && capacity > 0.0 &&
        static_cast<double>(j.cores) > capacity) {
      ++out.dropped_capacity;
      drop = true;
    } else if (geometry_flagged && (j.run_time < 0.0 || j.wait_time < 0.0 ||
                                    j.submit_time < 0.0)) {
      ++out.dropped_negative_geometry;
      drop = true;
    } else if (zero_cores_flagged && j.cores == 0) {
      ++out.dropped_zero_cores;
      drop = true;
    }
    if (drop) {
      out.quarantined.push_back(j);
    } else {
      kept.push_back(j);
    }
  }
  if (out.dropped() > 0) {
    trace = Trace(trace.spec(), std::move(kept));
  }
  if (unsorted_flagged && !trace.is_sorted_by_submit()) {
    trace.sort_by_submit();
    out.resorted = true;
  }
  return out;
}

}  // namespace lumos::trace
