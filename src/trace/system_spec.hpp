// Static descriptions of the computing systems in the study.
//
// Table I of the paper, as code: capacity, resource kind, timezone, trace
// window, and the per-system job-size category thresholds from §III-A.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/job.hpp"

namespace lumos::trace {

/// Which of the paper's three workload classes a system belongs to.
enum class SystemClass : std::uint8_t { ClassicHpc, ClassicDl, Hybrid };

[[nodiscard]] constexpr std::string_view to_string(SystemClass c) noexcept {
  switch (c) {
    case SystemClass::ClassicHpc: return "HPC";
    case SystemClass::ClassicDl: return "DL";
    case SystemClass::Hybrid: return "Hybrid";
  }
  return "?";
}

/// Job size category per the paper's per-class thresholds (§III-A):
/// HPC/hybrid: small <10% of cores, middle 10-30%, large >30%;
/// DL: small = 1 GPU, middle 2-8 GPUs, large >8 GPUs.
enum class SizeCategory : std::uint8_t { Minimal = 0, Small, Middle, Large };
/// Length category (§III-A): short <1h, middle 1h-1d, long >1d; "minimal"
/// (<60s) only appears in the queue-behaviour analysis (Fig 10).
enum class LengthCategory : std::uint8_t { Minimal = 0, Short, Middle, Long };

[[nodiscard]] constexpr std::string_view to_string(SizeCategory c) noexcept {
  switch (c) {
    case SizeCategory::Minimal: return "Minimal";
    case SizeCategory::Small: return "Small";
    case SizeCategory::Middle: return "Middle";
    case SizeCategory::Large: return "Large";
  }
  return "?";
}
[[nodiscard]] constexpr std::string_view to_string(LengthCategory c) noexcept {
  switch (c) {
    case LengthCategory::Minimal: return "Minimal";
    case LengthCategory::Short: return "Short";
    case LengthCategory::Middle: return "Middle";
    case LengthCategory::Long: return "Long";
  }
  return "?";
}

struct SystemSpec {
  std::string name;
  std::string affiliation;
  SystemClass klass = SystemClass::ClassicHpc;
  std::uint32_t nodes = 0;           ///< total compute nodes
  std::uint32_t cores = 0;           ///< total CPU cores (0 if N/A)
  std::uint32_t gpus = 0;            ///< total GPUs (0 if none)
  ResourceKind primary_kind = ResourceKind::Cpu;  ///< what Fig 1c counts
  double utc_offset_hours = 0.0;     ///< for local hour-of-day analyses
  std::int64_t epoch_unix = 0;       ///< Unix time of trace t=0
  std::string trace_window;          ///< human-readable window (Table I)
  int virtual_clusters = 0;          ///< Philly-style VC partitions (0=none)
  bool has_walltime_estimates = false;  ///< needed for backfilling sims

  /// Capacity in the primary resource (cores for HPC, GPUs for DL,
  /// cores+... for the hybrid system we count CPU cores).
  [[nodiscard]] std::uint32_t primary_capacity() const noexcept {
    return primary_kind == ResourceKind::Gpu ? gpus : cores;
  }

  /// Classifies a job's size per the paper's per-class rule. `with_minimal`
  /// adds the 1-core "Minimal" bucket used by Fig 9.
  [[nodiscard]] SizeCategory size_category(std::uint32_t job_cores,
                                           bool with_minimal = false) const
      noexcept;

  /// Classifies runtime; `with_minimal` adds the <60 s bucket (Fig 10).
  [[nodiscard]] static LengthCategory length_category(
      double run_time_s, bool with_minimal = false) noexcept;
};

/// The five selected systems, calibrated from Table I.
[[nodiscard]] SystemSpec mira_spec();
[[nodiscard]] SystemSpec theta_spec();
[[nodiscard]] SystemSpec blue_waters_spec();
[[nodiscard]] SystemSpec philly_spec();
[[nodiscard]] SystemSpec helios_spec();

/// All five, in the paper's presentation order.
[[nodiscard]] std::vector<SystemSpec> all_system_specs();

/// Lookup by case-insensitive name; nullopt when unknown.
[[nodiscard]] std::optional<SystemSpec> find_system_spec(
    std::string_view name);

/// Candidate traces from Table I that were *excluded*, with the reason —
/// used by the Table I bench to reproduce the selection table.
struct CandidateTrace {
  std::string name;
  std::string affiliation;
  std::string years;
  std::string job_count;
  std::string nodes;
  std::string cores;
  std::string gpus;
  bool large_scale = true;
  bool user_info = true;
  bool job_status = true;
  bool info_consistent = true;
  bool selected = true;
  std::string exclusion_reason;  ///< empty when selected
};

[[nodiscard]] std::vector<CandidateTrace> table1_candidates();

}  // namespace lumos::trace
