// Deterministic node failure/recovery process for the simulator.
//
// Each partition is modelled as `nodes_per_partition` equal slices of its
// core capacity; every node alternates between up and down states with
// exponentially distributed sojourn times (Exp(MTBF) up, Exp(MTTR) down),
// the renewal model high-fidelity cluster simulators use for machine
// faults. Draw streams are per-node (seeded by mixing the config seed with
// the partition and node indices), so the event sequence for a given
// FaultConfig is bit-reproducible regardless of how far ahead the consumer
// peeks, and ties are broken by (time, partition, node).
//
// The process is lazy: it materialises only the next event per node and is
// therefore an infinite stream — the simulator stops pulling once its own
// work (arrivals, running jobs, retries) is exhausted.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace lumos::fault {

/// What the simulator does with a job interrupted by a node failure.
enum class RetryPolicy {
  Resubmit,      ///< Re-enter the queue after an exponential backoff.
  RequeueFront,  ///< Re-enter immediately at the head of its queue.
  Abandon,       ///< Give up: the job leaves the system as Failed.
};

[[nodiscard]] std::string to_string(RetryPolicy policy);
[[nodiscard]] RetryPolicy retry_policy_from_string(std::string_view name);

/// Fault-injection parameters. The default (node_mtbf_s == 0) disables the
/// process entirely, which the simulator treats as "fault-free world".
struct FaultConfig {
  /// Mean time between failures per node, seconds. 0 disables faults.
  double node_mtbf_s = 0.0;
  /// Mean time to repair per node, seconds.
  double node_mttr_s = 3600.0;
  /// Nodes each partition's capacity is sliced into.
  std::uint32_t nodes_per_partition = 16;
  RetryPolicy retry = RetryPolicy::Resubmit;
  /// Interruptions after which a job is abandoned (Resubmit/RequeueFront).
  std::uint32_t max_retries = 3;
  /// Base resubmission delay, doubled per attempt, seconds.
  double retry_backoff_s = 300.0;
  /// Checkpoint interval, seconds; 0 means no checkpoints (an interrupted
  /// job loses all elapsed work, otherwise only work since the last
  /// multiple of this interval).
  double checkpoint_interval_s = 0.0;
  std::uint64_t seed = 42;

  [[nodiscard]] bool enabled() const noexcept {
    return node_mtbf_s > 0.0 && nodes_per_partition > 0;
  }
};

/// One node state transition.
struct NodeEvent {
  double time = 0.0;
  std::uint32_t partition = 0;
  std::uint32_t node = 0;
  /// Cores this node contributes to its partition.
  std::uint64_t cores = 0;
  /// true = the node fails at `time`; false = it recovers.
  bool failure = true;
};

/// Lazy merged stream of NodeEvents across all nodes, ordered by
/// (time, partition, node).
class FaultProcess {
 public:
  /// `partition_capacities[p]` is partition p's core capacity; each is
  /// split into config.nodes_per_partition near-equal nodes (remainder
  /// cores go to the lowest-numbered nodes; zero-core nodes are skipped).
  /// Requires config.enabled().
  FaultProcess(const FaultConfig& config,
               std::span<const std::uint64_t> partition_capacities);

  /// Next event without consuming it. Never empty: the renewal process is
  /// infinite (nullopt only for a process over zero usable nodes).
  [[nodiscard]] std::optional<NodeEvent> peek() const;

  /// Consumes and returns the next event, scheduling that node's
  /// subsequent transition.
  NodeEvent pop();

 private:
  struct Node {
    std::uint32_t partition = 0;
    std::uint32_t node = 0;
    std::uint64_t cores = 0;
    util::Rng rng;
    double next_time = 0.0;
    bool next_is_failure = true;
  };
  struct HeapEntry {
    double time;
    std::uint32_t partition;
    std::uint32_t node;
    std::size_t slot;  // index into nodes_
    bool operator>(const HeapEntry& o) const noexcept {
      if (time != o.time) return time > o.time;
      if (partition != o.partition) return partition > o.partition;
      return node > o.node;
    }
  };

  FaultConfig config_;
  std::vector<Node> nodes_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
};

}  // namespace lumos::fault
