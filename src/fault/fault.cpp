#include "fault/fault.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lumos::fault {
namespace {

/// Sojourn draws are floored so a node never fails and recovers at the
/// same instant (which would make the failure unobservable) and the
/// stream always advances.
constexpr double kMinSojournS = 1e-3;

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t partition,
                       std::uint64_t node) {
  // splitmix64 over (seed, partition, node) gives every node an
  // independent stream whose identity does not depend on draw order.
  std::uint64_t state = seed;
  state ^= util::splitmix64(state) + partition;
  state ^= util::splitmix64(state) + (node << 32);
  return util::splitmix64(state);
}

}  // namespace

std::string to_string(RetryPolicy policy) {
  switch (policy) {
    case RetryPolicy::Resubmit:
      return "resubmit";
    case RetryPolicy::RequeueFront:
      return "requeue_front";
    case RetryPolicy::Abandon:
      return "abandon";
  }
  return "unknown";
}

RetryPolicy retry_policy_from_string(std::string_view name) {
  if (name == "resubmit") return RetryPolicy::Resubmit;
  if (name == "requeue_front") return RetryPolicy::RequeueFront;
  if (name == "abandon") return RetryPolicy::Abandon;
  throw InvalidArgument("unknown retry policy: " + std::string(name));
}

FaultProcess::FaultProcess(
    const FaultConfig& config,
    std::span<const std::uint64_t> partition_capacities)
    : config_(config) {
  LUMOS_REQUIRE(config.enabled(),
                "FaultProcess requires an enabled FaultConfig");
  LUMOS_REQUIRE(config.node_mttr_s > 0.0, "node_mttr_s must be positive");
  LUMOS_REQUIRE(!partition_capacities.empty(),
                "FaultProcess needs at least one partition");
  for (std::size_t p = 0; p < partition_capacities.size(); ++p) {
    const std::uint64_t capacity = partition_capacities[p];
    const std::uint64_t n = config.nodes_per_partition;
    const std::uint64_t base = capacity / n;
    const std::uint64_t rem = capacity % n;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t cores = base + (i < rem ? 1 : 0);
      if (cores == 0) continue;  // more nodes than cores: skip empty slices
      Node node{static_cast<std::uint32_t>(p),
                static_cast<std::uint32_t>(i), cores,
                util::Rng(mix_seed(config.seed, p, i)), 0.0, true};
      nodes_.push_back(std::move(node));
    }
  }
  for (std::size_t slot = 0; slot < nodes_.size(); ++slot) {
    // First transition: time-to-first-failure from an up node at t=0.
    Node& node = nodes_[slot];
    node.next_time = std::max(
        node.rng.exponential(1.0 / config_.node_mtbf_s), kMinSojournS);
    node.next_is_failure = true;
    heap_.push(HeapEntry{node.next_time, node.partition, node.node, slot});
  }
}

std::optional<NodeEvent> FaultProcess::peek() const {
  if (heap_.empty()) return std::nullopt;
  const HeapEntry& top = heap_.top();
  const Node& node = nodes_[top.slot];
  return NodeEvent{top.time, top.partition, top.node, node.cores,
                   node.next_is_failure};
}

NodeEvent FaultProcess::pop() {
  LUMOS_REQUIRE(!heap_.empty(), "pop() on an empty fault process");
  const HeapEntry top = heap_.top();
  heap_.pop();
  Node& node = nodes_[top.slot];
  const NodeEvent event{top.time, top.partition, top.node, node.cores,
                        node.next_is_failure};
  const double rate = node.next_is_failure ? 1.0 / config_.node_mttr_s
                                           : 1.0 / config_.node_mtbf_s;
  node.next_time =
      top.time + std::max(node.rng.exponential(rate), kMinSojournS);
  node.next_is_failure = !node.next_is_failure;
  heap_.push(HeapEntry{node.next_time, node.partition, node.node, top.slot});
  return event;
}

}  // namespace lumos::fault
