// Fig 3: system utilization over time, reconstructed from each job's
// recorded (start = submit + wait, runtime, cores).
//
// Because recorded waits come from the production scheduler (or, for
// synthetic traces, the calibrated wait model), instantaneous usage can
// marginally exceed capacity; per-bucket utilization is clamped to 1 and
// the clamped mass reported.
#pragma once

#include <string>
#include <vector>

#include "stats/descriptive.hpp"
#include "trace/trace.hpp"

namespace lumos::analysis {

struct UtilizationResult {
  std::string system;
  double bucket_seconds = 3600.0;
  /// Per-bucket utilization in [0,1].
  std::vector<double> series;
  double average = 0.0;
  double median = 0.0;
  /// Fraction of buckets above 80% utilization (the paper's Philly/Helios
  /// contrast: "most of the time, less than 80% of the GPUs are used").
  double frac_above_80 = 0.0;
  /// Share of busy core-seconds lost to clamping (diagnostic).
  double clamped_fraction = 0.0;
  /// Per-virtual-cluster average utilization (empty when no VCs) — shows
  /// the Philly fragmentation effect.
  std::vector<double> per_vc_average;
};

[[nodiscard]] UtilizationResult analyze_utilization(
    const trace::Trace& trace, double bucket_seconds = 3600.0);

}  // namespace lumos::analysis
