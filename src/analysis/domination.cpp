#include "analysis/domination.hpp"

namespace lumos::analysis {

DominationResult analyze_domination(const trace::Trace& trace) {
  DominationResult r;
  r.system = trace.spec().name;
  r.by_size = tally_by_size(trace);
  r.by_length = tally_by_length(trace);

  for (std::size_t c = 0; c < kNumSizeCats; ++c) {
    const auto cat = static_cast<trace::SizeCategory>(c);
    const double share = r.by_size.core_hour_fraction(cat);
    if (share > r.dominant_size_share) {
      r.dominant_size_share = share;
      r.dominant_size = cat;
    }
  }
  for (std::size_t c = 0; c < kNumLengthCats; ++c) {
    const auto cat = static_cast<trace::LengthCategory>(c);
    const double share = r.by_length.core_hour_fraction(cat);
    if (share > r.dominant_length_share) {
      r.dominant_length_share = share;
      r.dominant_length = cat;
    }
  }
  return r;
}

}  // namespace lumos::analysis
