#include "analysis/categories.hpp"

namespace lumos::analysis {

namespace {
template <typename T>
double frac(const T& arr_num, double denom, std::size_t i) noexcept {
  return denom > 0.0 ? static_cast<double>(arr_num[i]) / denom : 0.0;
}
}  // namespace

std::size_t SizeTally::total_jobs() const noexcept {
  std::size_t t = 0;
  for (auto v : jobs) t += v;
  return t;
}
double SizeTally::total_core_hours() const noexcept {
  double t = 0.0;
  for (auto v : core_hours) t += v;
  return t;
}
double SizeTally::job_fraction(trace::SizeCategory c) const noexcept {
  return frac(jobs, static_cast<double>(total_jobs()),
              static_cast<std::size_t>(c));
}
double SizeTally::core_hour_fraction(trace::SizeCategory c) const noexcept {
  return frac(core_hours, total_core_hours(), static_cast<std::size_t>(c));
}

std::size_t LengthTally::total_jobs() const noexcept {
  std::size_t t = 0;
  for (auto v : jobs) t += v;
  return t;
}
double LengthTally::total_core_hours() const noexcept {
  double t = 0.0;
  for (auto v : core_hours) t += v;
  return t;
}
double LengthTally::job_fraction(trace::LengthCategory c) const noexcept {
  return frac(jobs, static_cast<double>(total_jobs()),
              static_cast<std::size_t>(c));
}
double LengthTally::core_hour_fraction(trace::LengthCategory c) const
    noexcept {
  return frac(core_hours, total_core_hours(), static_cast<std::size_t>(c));
}

SizeTally tally_by_size(const trace::Trace& trace, bool with_minimal) {
  SizeTally t;
  const auto& spec = trace.spec();
  for (const auto& j : trace.jobs()) {
    const auto c =
        static_cast<std::size_t>(spec.size_category(j.cores, with_minimal));
    t.jobs[c] += 1;
    t.core_hours[c] += j.core_hours();
  }
  return t;
}

LengthTally tally_by_length(const trace::Trace& trace, bool with_minimal) {
  LengthTally t;
  for (const auto& j : trace.jobs()) {
    const auto c = static_cast<std::size_t>(
        trace::SystemSpec::length_category(j.run_time, with_minimal));
    t.jobs[c] += 1;
    t.core_hours[c] += j.core_hours();
  }
  return t;
}

}  // namespace lumos::analysis
