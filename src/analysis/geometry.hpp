// Fig 1(a)/(c): job runtime and resource-allocation geometry.
#pragma once

#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "stats/kde.hpp"
#include "trace/trace.hpp"

namespace lumos::analysis {

struct GeometryResult {
  std::string system;
  // Fig 1a: runtime CDF + log-space violin.
  stats::Ecdf runtime_cdf;
  stats::Summary runtime_summary;
  stats::ViolinSummary runtime_violin;
  // Fig 1c: requested cores CDF, absolute and as a fraction of capacity.
  stats::Ecdf cores_cdf;
  stats::Summary cores_summary;
  double frac_single_core = 0.0;     ///< P(cores == 1)
  double frac_over_1000 = 0.0;       ///< P(cores > 1000)
  double frac_over_10 = 0.0;         ///< P(cores > 10)
  /// Quantiles of cores / primary capacity (Fig 1c bottom).
  stats::Summary core_fraction_summary;
};

[[nodiscard]] GeometryResult analyze_geometry(const trace::Trace& trace);

}  // namespace lumos::analysis
