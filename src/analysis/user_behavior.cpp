#include "analysis/user_behavior.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "util/error.hpp"

namespace lumos::analysis {

// ---------------------------------------------------------------- Fig 8 --

std::vector<std::size_t> config_group_sizes(
    std::span<const trace::Job> user_jobs, double run_tolerance) {
  struct Group {
    std::uint32_t cores;
    double mean_run;
    std::size_t count;
  };
  std::vector<Group> groups;
  for (const auto& j : user_jobs) {
    bool placed = false;
    for (auto& g : groups) {
      if (g.cores != j.cores) continue;
      // §V-A rule: run times within 10% of the group's mean run time.
      if (std::fabs(j.run_time - g.mean_run) <=
          run_tolerance * std::max(g.mean_run, 1.0)) {
        g.mean_run = (g.mean_run * static_cast<double>(g.count) + j.run_time) /
                     static_cast<double>(g.count + 1);
        g.count += 1;
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({j.cores, j.run_time, 1});
  }
  std::vector<std::size_t> sizes;
  sizes.reserve(groups.size());
  for (const auto& g : groups) sizes.push_back(g.count);
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  return sizes;
}

RepetitionResult analyze_repetition(const trace::Trace& trace,
                                    std::size_t min_jobs_per_user,
                                    double run_tolerance) {
  RepetitionResult r;
  r.system = trace.spec().name;

  std::unordered_map<std::uint32_t, std::vector<trace::Job>> by_user;
  for (const auto& j : trace.jobs()) by_user[j.user].push_back(j);

  double groups_total = 0.0;
  std::array<double, 10> share_sum{};
  for (const auto& [user, jobs] : by_user) {
    if (jobs.size() < min_jobs_per_user) continue;
    const auto sizes = config_group_sizes(jobs, run_tolerance);
    const double total = static_cast<double>(jobs.size());
    double cum = 0.0;
    for (std::size_t k = 0; k < 10; ++k) {
      if (k < sizes.size()) cum += static_cast<double>(sizes[k]);
      share_sum[k] += cum / total;
    }
    groups_total += static_cast<double>(sizes.size());
    ++r.representative_users;
  }
  if (r.representative_users > 0) {
    for (std::size_t k = 0; k < 10; ++k) {
      r.cumulative_share[k] =
          share_sum[k] / static_cast<double>(r.representative_users);
    }
    r.mean_groups_per_user =
        groups_total / static_cast<double>(r.representative_users);
  }
  return r;
}

// ----------------------------------------------------------- Figs 9/10 --

std::vector<std::uint32_t> queue_length_at_submit(const trace::Trace& trace) {
  LUMOS_REQUIRE(trace.is_sorted_by_submit(),
                "queue computation needs a submit-sorted trace");
  std::vector<std::uint32_t> out;
  out.reserve(trace.size());
  std::priority_queue<double, std::vector<double>, std::greater<>> starts;
  for (const auto& j : trace.jobs()) {
    while (!starts.empty() && starts.top() <= j.submit_time) starts.pop();
    out.push_back(static_cast<std::uint32_t>(starts.size()));
    starts.push(j.start_time());
  }
  return out;
}

QueueBehaviorResult analyze_queue_behavior(const trace::Trace& trace) {
  QueueBehaviorResult r;
  r.system = trace.spec().name;
  const auto qlen = queue_length_at_submit(trace);
  for (auto q : qlen) r.max_queue = std::max(r.max_queue, q);
  const double third =
      std::max(1.0, static_cast<double>(r.max_queue) / 3.0);

  const auto& spec = trace.spec();
  std::array<std::array<std::size_t, kNumSizeCats>, kNumQueueBuckets>
      size_count{};
  std::array<std::array<std::size_t, kNumLengthCats>, kNumQueueBuckets>
      length_count{};
  std::array<double, kNumQueueBuckets> cores_sum{};
  std::array<std::vector<double>, kNumQueueBuckets> runs;

  const auto jobs = trace.jobs();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const double q = static_cast<double>(qlen[i]);
    const auto bucket = static_cast<std::size_t>(
        q < third ? QueueBucket::Short
                  : (q < 2.0 * third ? QueueBucket::Middle
                                     : QueueBucket::Long));
    r.jobs_per_bucket[bucket] += 1;
    const auto sc = static_cast<std::size_t>(
        spec.size_category(jobs[i].cores, /*with_minimal=*/true));
    const auto lc = static_cast<std::size_t>(trace::SystemSpec::length_category(
        jobs[i].run_time, /*with_minimal=*/true));
    size_count[bucket][sc] += 1;
    length_count[bucket][lc] += 1;
    cores_sum[bucket] += static_cast<double>(jobs[i].cores);
    runs[bucket].push_back(jobs[i].run_time);
  }
  for (std::size_t b = 0; b < kNumQueueBuckets; ++b) {
    const double n = static_cast<double>(r.jobs_per_bucket[b]);
    if (n == 0.0) continue;
    for (std::size_t c = 0; c < kNumSizeCats; ++c) {
      r.size_mix[b][c] = static_cast<double>(size_count[b][c]) / n;
    }
    for (std::size_t c = 0; c < kNumLengthCats; ++c) {
      r.length_mix[b][c] = static_cast<double>(length_count[b][c]) / n;
    }
    r.mean_cores[b] = cores_sum[b] / n;
    r.median_run[b] = stats::median(runs[b]);
  }
  return r;
}

// --------------------------------------------------------------- Fig 11 --

UserStatusResult analyze_user_status(const trace::Trace& trace,
                                     std::size_t top_k) {
  UserStatusResult r;
  r.system = trace.spec().name;

  std::unordered_map<std::uint32_t, std::size_t> counts;
  for (const auto& j : trace.jobs()) counts[j.user] += 1;
  std::vector<std::pair<std::uint32_t, std::size_t>> order(counts.begin(),
                                                           counts.end());
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (order.size() > top_k) order.resize(top_k);

  for (const auto& [user, n] : order) {
    UserStatusRuntime u;
    u.user = user;
    u.jobs = n;
    std::array<std::vector<double>, trace::kNumStatuses> runs;
    for (const auto& j : trace.jobs()) {
      if (j.user == user) {
        runs[static_cast<std::size_t>(j.status)].push_back(j.run_time);
      }
    }
    for (std::size_t s = 0; s < trace::kNumStatuses; ++s) {
      u.runtime[s] = stats::summarize(runs[s]);
      u.violin[s] = stats::violin_log(runs[s]);
    }
    r.top_users.push_back(std::move(u));
  }
  return r;
}

}  // namespace lumos::analysis
