#include "analysis/utilization.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace lumos::analysis {

namespace {

/// Accumulates one job's busy core-seconds into hourly buckets.
void accumulate(std::vector<double>& busy, double bucket, double start,
                double end, double cores) {
  if (end <= start) return;
  const auto first = static_cast<std::size_t>(std::max(0.0, start / bucket));
  const auto last = static_cast<std::size_t>(std::max(0.0, end / bucket));
  for (std::size_t b = first; b <= last && b < busy.size(); ++b) {
    const double b_lo = static_cast<double>(b) * bucket;
    const double b_hi = b_lo + bucket;
    const double overlap =
        std::min(end, b_hi) - std::max(start, b_lo);
    if (overlap > 0.0) busy[b] += cores * overlap;
  }
}

}  // namespace

UtilizationResult analyze_utilization(const trace::Trace& trace,
                                      double bucket_seconds) {
  LUMOS_REQUIRE(bucket_seconds > 0.0, "bucket must be positive");
  UtilizationResult r;
  r.system = trace.spec().name;
  r.bucket_seconds = bucket_seconds;
  if (trace.empty()) return r;

  // Measure over the trace's submission window (the paper plots Fig 3 over
  // the collection period); the drain-out tail after the last submission
  // would otherwise dilute the averages.
  const double horizon = std::max(trace.last_submit(), bucket_seconds);
  const auto buckets =
      static_cast<std::size_t>(std::ceil(horizon / bucket_seconds));
  if (buckets == 0) return r;

  const double capacity =
      static_cast<double>(trace.spec().primary_capacity());
  std::vector<double> busy(buckets, 0.0);
  const int vcs = trace.spec().virtual_clusters;
  std::vector<double> vc_busy(vcs > 1 ? static_cast<std::size_t>(vcs) : 0,
                              0.0);

  for (const auto& j : trace.jobs()) {
    accumulate(busy, bucket_seconds, j.start_time(), j.end_time(),
               static_cast<double>(j.cores));
    if (!vc_busy.empty() && j.virtual_cluster >= 0) {
      vc_busy[static_cast<std::size_t>(j.virtual_cluster) % vc_busy.size()] +=
          static_cast<double>(j.cores) * j.run_time;
    }
  }

  const double cap_per_bucket = capacity * bucket_seconds;
  double clamped = 0.0, total_busy = 0.0;
  r.series.resize(buckets);
  for (std::size_t b = 0; b < buckets; ++b) {
    total_busy += busy[b];
    double u = busy[b] / cap_per_bucket;
    if (u > 1.0) {
      clamped += busy[b] - cap_per_bucket;
      u = 1.0;
    }
    r.series[b] = u;
  }
  r.average = stats::mean(r.series);
  r.median = stats::median(r.series);
  std::size_t above = 0;
  for (double u : r.series) {
    if (u > 0.8) ++above;
  }
  r.frac_above_80 = static_cast<double>(above) / static_cast<double>(buckets);
  r.clamped_fraction = total_busy > 0.0 ? clamped / total_busy : 0.0;

  if (!vc_busy.empty()) {
    const double vc_capacity = capacity / static_cast<double>(vcs);
    r.per_vc_average.reserve(vc_busy.size());
    for (double vb : vc_busy) {
      r.per_vc_average.push_back(
          std::min(1.0, vb / (vc_capacity * horizon)));
    }
  }
  return r;
}

}  // namespace lumos::analysis
