#include "analysis/export.hpp"

#include <filesystem>
#include <fstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace lumos::analysis {

namespace {

std::ofstream open_csv(const std::string& dir, const std::string& name) {
  std::filesystem::create_directories(dir);
  const auto path = std::filesystem::path(dir) / name;
  std::ofstream out(path);
  if (!out) throw ParseError("cannot open for writing: " + path.string());
  return out;
}

std::string num(double v) { return util::format("%.6g", v); }

}  // namespace

void export_runtime_cdf(const std::string& dir,
                        const std::vector<GeometryResult>& results,
                        std::size_t points) {
  auto out = open_csv(dir, "fig1a_runtime_cdf.csv");
  util::CsvWriter w(out);
  w.write_row({"system", "quantile", "runtime_s"});
  for (const auto& r : results) {
    for (std::size_t i = 1; i <= points; ++i) {
      const double q = static_cast<double>(i) / (points + 1);
      w.write_row({r.system, num(q), num(r.runtime_cdf.quantile(q))});
    }
  }
}

void export_hourly(const std::string& dir,
                   const std::vector<ArrivalResult>& results) {
  auto out = open_csv(dir, "fig1b_hourly.csv");
  util::CsvWriter w(out);
  w.write_row({"system", "hour", "jobs"});
  for (const auto& r : results) {
    for (int h = 0; h < 24; ++h) {
      w.write_row({r.system, std::to_string(h), num(r.hourly[h])});
    }
  }
}

void export_cores_cdf(const std::string& dir,
                      const std::vector<GeometryResult>& results,
                      std::size_t points) {
  auto out = open_csv(dir, "fig1c_cores_cdf.csv");
  util::CsvWriter w(out);
  w.write_row({"system", "quantile", "cores"});
  for (const auto& r : results) {
    for (std::size_t i = 1; i <= points; ++i) {
      const double q = static_cast<double>(i) / (points + 1);
      w.write_row({r.system, num(q), num(r.cores_cdf.quantile(q))});
    }
  }
}

void export_domination(const std::string& dir,
                       const std::vector<DominationResult>& results) {
  auto out = open_csv(dir, "fig2_domination.csv");
  util::CsvWriter w(out);
  w.write_row({"system", "dimension", "category", "job_frac", "ch_frac"});
  for (const auto& r : results) {
    for (std::size_t c = 1; c < kNumSizeCats; ++c) {
      const auto cat = static_cast<trace::SizeCategory>(c);
      w.write_row({r.system, "size", std::string(to_string(cat)),
                   num(r.by_size.job_fraction(cat)),
                   num(r.by_size.core_hour_fraction(cat))});
    }
    for (std::size_t c = 1; c < kNumLengthCats; ++c) {
      const auto cat = static_cast<trace::LengthCategory>(c);
      w.write_row({r.system, "length", std::string(to_string(cat)),
                   num(r.by_length.job_fraction(cat)),
                   num(r.by_length.core_hour_fraction(cat))});
    }
  }
}

void export_utilization(const std::string& dir,
                        const std::vector<UtilizationResult>& results) {
  auto out = open_csv(dir, "fig3_utilization.csv");
  util::CsvWriter w(out);
  w.write_row({"system", "hour_index", "utilization"});
  for (const auto& r : results) {
    for (std::size_t b = 0; b < r.series.size(); ++b) {
      w.write_row({r.system, std::to_string(b), num(r.series[b])});
    }
  }
}

void export_wait_cdf(const std::string& dir,
                     const std::vector<WaitingResult>& results,
                     std::size_t points) {
  auto out = open_csv(dir, "fig4_wait_cdf.csv");
  util::CsvWriter w(out);
  w.write_row({"system", "quantile", "wait_s", "turnaround_s"});
  for (const auto& r : results) {
    for (std::size_t i = 1; i <= points; ++i) {
      const double q = static_cast<double>(i) / (points + 1);
      w.write_row({r.system, num(q), num(r.wait_cdf.quantile(q)),
                   num(r.turnaround_cdf.quantile(q))});
    }
  }
}

void export_status(const std::string& dir,
                   const std::vector<FailureResult>& results) {
  auto out = open_csv(dir, "fig6_status.csv");
  util::CsvWriter w(out);
  w.write_row({"system", "status", "job_frac", "core_hour_frac"});
  for (const auto& r : results) {
    for (int s = 0; s < trace::kNumStatuses; ++s) {
      const auto status = static_cast<trace::JobStatus>(s);
      w.write_row({r.system, std::string(to_string(status)),
                   num(r.overall.job_fraction(status)),
                   num(r.overall.core_hour_fraction(status))});
    }
  }
}

void export_repetition(const std::string& dir,
                       const std::vector<RepetitionResult>& results) {
  auto out = open_csv(dir, "fig8_repetition.csv");
  util::CsvWriter w(out);
  w.write_row({"system", "k", "cumulative_share"});
  for (const auto& r : results) {
    for (std::size_t k = 0; k < 10; ++k) {
      w.write_row({r.system, std::to_string(k + 1),
                   num(r.cumulative_share[k])});
    }
  }
}

void export_queue_mix(const std::string& dir,
                      const std::vector<QueueBehaviorResult>& results) {
  auto out = open_csv(dir, "fig9_10_queue_mix.csv");
  util::CsvWriter w(out);
  w.write_row({"system", "bucket", "dimension", "category", "fraction"});
  const char* buckets[] = {"short", "middle", "long"};
  const char* size_names[] = {"Minimal", "Small", "Middle", "Large"};
  const char* len_names[] = {"Minimal", "Short", "Middle", "Long"};
  for (const auto& r : results) {
    for (std::size_t b = 0; b < kNumQueueBuckets; ++b) {
      for (std::size_t c = 0; c < kNumSizeCats; ++c) {
        w.write_row({r.system, buckets[b], "size", size_names[c],
                     num(r.size_mix[b][c])});
      }
      for (std::size_t c = 0; c < kNumLengthCats; ++c) {
        w.write_row({r.system, buckets[b], "length", len_names[c],
                     num(r.length_mix[b][c])});
      }
    }
  }
}

}  // namespace lumos::analysis
