// Fig 1(b): job arrival patterns — inter-arrival CDF and the local-time
// hourly submission profile (with the max/min "peak" ratio the paper uses
// to contrast Helios's strong diurnality with Philly's flat profile).
#pragma once

#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "trace/trace.hpp"

namespace lumos::analysis {

struct ArrivalResult {
  std::string system;
  stats::Ecdf interarrival_cdf;
  stats::Summary interarrival_summary;
  double frac_within_10s = 0.0;   ///< P(gap <= 10 s)
  double frac_within_100s = 0.0;  ///< P(gap <= 100 s)
  /// Jobs per local hour-of-day (24 entries, counts).
  std::vector<double> hourly;
  double hourly_max = 0.0;
  double hourly_min = 0.0;
  double peak_ratio = 1.0;        ///< max/min over hours
  /// Fraction of jobs submitted in 8am-5pm local time.
  double business_hours_share = 0.0;
  /// Per-day submission rate ratio, weekend vs weekday (1 = no dip).
  double weekend_rate_ratio = 1.0;
};

[[nodiscard]] ArrivalResult analyze_arrivals(const trace::Trace& trace);

}  // namespace lumos::analysis
