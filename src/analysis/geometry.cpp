#include "analysis/geometry.hpp"

namespace lumos::analysis {

GeometryResult analyze_geometry(const trace::Trace& trace) {
  GeometryResult r;
  r.system = trace.spec().name;
  const auto runs = trace.run_times();
  r.runtime_cdf = stats::Ecdf(runs);
  r.runtime_summary = stats::summarize(runs);
  r.runtime_violin = stats::violin_log(runs);

  const auto cores = trace.cores_requested();
  r.cores_cdf = stats::Ecdf(cores);
  r.cores_summary = stats::summarize(cores);

  const double capacity =
      std::max<double>(1.0, trace.spec().primary_capacity());
  std::vector<double> fracs;
  fracs.reserve(cores.size());
  std::size_t single = 0, over1000 = 0, over10 = 0;
  for (double c : cores) {
    fracs.push_back(c / capacity);
    if (c <= 1.0) ++single;
    if (c > 1000.0) ++over1000;
    if (c > 10.0) ++over10;
  }
  const auto n = static_cast<double>(cores.empty() ? 1 : cores.size());
  r.frac_single_core = static_cast<double>(single) / n;
  r.frac_over_1000 = static_cast<double>(over1000) / n;
  r.frac_over_10 = static_cast<double>(over10) / n;
  r.core_fraction_summary = stats::summarize(fracs);
  return r;
}

}  // namespace lumos::analysis
