#include "analysis/failure.hpp"

namespace lumos::analysis {

std::size_t StatusTally::total_jobs() const noexcept {
  std::size_t t = 0;
  for (auto v : jobs) t += v;
  return t;
}
double StatusTally::total_core_hours() const noexcept {
  double t = 0.0;
  for (auto v : core_hours) t += v;
  return t;
}
double StatusTally::job_fraction(trace::JobStatus s) const noexcept {
  const auto total = total_jobs();
  return total > 0 ? static_cast<double>(jobs[static_cast<std::size_t>(s)]) /
                         static_cast<double>(total)
                   : 0.0;
}
double StatusTally::core_hour_fraction(trace::JobStatus s) const noexcept {
  const double total = total_core_hours();
  return total > 0.0 ? core_hours[static_cast<std::size_t>(s)] / total : 0.0;
}

namespace {

/// Least-squares slope of pass rate over category index (only categories
/// with jobs participate).
template <typename Tallies>
double pass_trend(const Tallies& tallies, std::size_t first,
                  std::size_t count) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (std::size_t c = first; c < first + count; ++c) {
    if (tallies[c].total_jobs() == 0) continue;
    const double x = static_cast<double>(c);
    const double y = tallies[c].job_fraction(trace::JobStatus::Passed);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0.0;
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  return denom != 0.0 ? (static_cast<double>(n) * sxy - sx * sy) / denom
                      : 0.0;
}

}  // namespace

FailureResult analyze_failures(const trace::Trace& trace) {
  FailureResult r;
  r.system = trace.spec().name;
  const auto& spec = trace.spec();
  for (const auto& j : trace.jobs()) {
    const auto s = static_cast<std::size_t>(j.status);
    const double ch = j.core_hours();
    r.overall.jobs[s] += 1;
    r.overall.core_hours[s] += ch;
    const auto sc = static_cast<std::size_t>(spec.size_category(j.cores));
    const auto lc = static_cast<std::size_t>(
        trace::SystemSpec::length_category(j.run_time));
    r.by_size[sc].jobs[s] += 1;
    r.by_size[sc].core_hours[s] += ch;
    r.by_length[lc].jobs[s] += 1;
    r.by_length[lc].core_hours[s] += ch;
  }
  // Trend over Small..Large (skip the unused Minimal slot 0).
  r.pass_rate_size_trend = pass_trend(r.by_size, 1, kNumSizeCats - 1);
  r.pass_rate_length_trend = pass_trend(r.by_length, 1, kNumLengthCats - 1);
  return r;
}

}  // namespace lumos::analysis
