#include "analysis/arrival.hpp"

#include <algorithm>

#include "stats/histogram.hpp"
#include "util/time_util.hpp"

namespace lumos::analysis {

ArrivalResult analyze_arrivals(const trace::Trace& trace) {
  ArrivalResult r;
  r.system = trace.spec().name;
  const auto gaps = trace.interarrival_times();
  r.interarrival_cdf = stats::Ecdf(gaps);
  r.interarrival_summary = stats::summarize(gaps);
  r.frac_within_10s = r.interarrival_cdf(10.0);
  r.frac_within_100s = r.interarrival_cdf(100.0);

  const auto& spec = trace.spec();
  r.hourly = stats::hourly_counts(trace.submit_times(), spec.epoch_unix,
                                  spec.utc_offset_hours);
  const auto [mn, mx] = std::minmax_element(r.hourly.begin(), r.hourly.end());
  r.hourly_min = *mn;
  r.hourly_max = *mx;
  r.peak_ratio = r.hourly_min > 0.0 ? r.hourly_max / r.hourly_min
                                    : r.hourly_max;
  double business = 0.0, total = 0.0;
  for (int h = 0; h < 24; ++h) {
    total += r.hourly[h];
    if (h >= 8 && h <= 17) business += r.hourly[h];
  }
  r.business_hours_share = total > 0.0 ? business / total : 0.0;

  double weekday = 0.0, weekend = 0.0;
  for (const auto& j : trace.jobs()) {
    const int dow = util::day_of_week(j.submit_time, spec.epoch_unix,
                                      spec.utc_offset_hours);
    (dow >= 5 ? weekend : weekday) += 1.0;
  }
  if (weekday > 0.0) {
    r.weekend_rate_ratio = (weekend / 2.0) / (weekday / 5.0);
  }
  return r;
}

}  // namespace lumos::analysis
