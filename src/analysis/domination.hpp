// Fig 2: which job group dominates core-hour consumption.
#pragma once

#include <string>

#include "analysis/categories.hpp"

namespace lumos::analysis {

struct DominationResult {
  std::string system;
  SizeTally by_size;
  LengthTally by_length;
  /// Category with the largest core-hour share.
  trace::SizeCategory dominant_size = trace::SizeCategory::Small;
  trace::LengthCategory dominant_length = trace::LengthCategory::Middle;
  /// Its share (the paper calls a group dominating when > 50%).
  double dominant_size_share = 0.0;
  double dominant_length_share = 0.0;
};

[[nodiscard]] DominationResult analyze_domination(const trace::Trace& trace);

}  // namespace lumos::analysis
