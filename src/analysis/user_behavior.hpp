// Figs 8-11: per-user behaviour analyses.
//
//  * Fig 8  — resource-configuration repetition: jobs grouped per user by
//    (exact cores, runtime within 10% of the group mean), cumulative share
//    of the top-k groups, averaged over representative (heavy) users.
//  * Fig 9  — requested-size mix vs queue length at submission.
//  * Fig 10 — runtime mix vs queue length at submission.
//  * Fig 11 — per-user runtime distribution split by job status.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/categories.hpp"
#include "stats/descriptive.hpp"
#include "stats/kde.hpp"
#include "trace/trace.hpp"

namespace lumos::analysis {

// ---------------------------------------------------------------- Fig 8 --

struct RepetitionResult {
  std::string system;
  /// cumulative_share[k] = average fraction of a representative user's jobs
  /// covered by their k+1 largest groups (k = 0..9).
  std::array<double, 10> cumulative_share{};
  std::size_t representative_users = 0;
  double mean_groups_per_user = 0.0;
};

/// `min_jobs_per_user`: users with fewer jobs are not representative.
/// `run_tolerance`: the 10% rule from §V-A.
[[nodiscard]] RepetitionResult analyze_repetition(
    const trace::Trace& trace, std::size_t min_jobs_per_user = 50,
    double run_tolerance = 0.10);

/// The §V-A grouping for a single user's jobs: returns group sizes,
/// descending. Exposed for tests and custom analyses.
[[nodiscard]] std::vector<std::size_t> config_group_sizes(
    std::span<const trace::Job> user_jobs, double run_tolerance = 0.10);

// ----------------------------------------------------------- Figs 9/10 --

/// Queue length (jobs submitted but not yet started) observed by each job
/// at its submit instant, computed from recorded waits. Index-aligned with
/// the trace.
[[nodiscard]] std::vector<std::uint32_t> queue_length_at_submit(
    const trace::Trace& trace);

enum class QueueBucket : std::uint8_t { Short = 0, Middle = 1, Long = 2 };
inline constexpr std::size_t kNumQueueBuckets = 3;

struct QueueBehaviorResult {
  std::string system;
  std::uint32_t max_queue = 0;
  std::array<std::size_t, kNumQueueBuckets> jobs_per_bucket{};
  /// size_mix[bucket][size category incl. Minimal] = job fraction (Fig 9).
  std::array<std::array<double, kNumSizeCats>, kNumQueueBuckets> size_mix{};
  /// length_mix[bucket][length category incl. Minimal] (Fig 10).
  std::array<std::array<double, kNumLengthCats>, kNumQueueBuckets>
      length_mix{};
  /// Mean requested cores / runtime per bucket (trend summaries).
  std::array<double, kNumQueueBuckets> mean_cores{};
  std::array<double, kNumQueueBuckets> median_run{};
};

[[nodiscard]] QueueBehaviorResult analyze_queue_behavior(
    const trace::Trace& trace);

// --------------------------------------------------------------- Fig 11 --

struct UserStatusRuntime {
  std::uint32_t user = 0;
  std::size_t jobs = 0;
  /// Per-status runtime summaries and log-space violins (index JobStatus).
  std::array<stats::Summary, trace::kNumStatuses> runtime;
  std::array<stats::ViolinSummary, trace::kNumStatuses> violin;
};

struct UserStatusResult {
  std::string system;
  /// Top users by submission count, descending.
  std::vector<UserStatusRuntime> top_users;
};

[[nodiscard]] UserStatusResult analyze_user_status(const trace::Trace& trace,
                                                   std::size_t top_k = 3);

}  // namespace lumos::analysis
