// Category bookkeeping shared by the figure analyses: per-size and
// per-length job/core-hour tallies using the paper's §III-A thresholds.
#pragma once

#include <array>
#include <cstddef>

#include "trace/trace.hpp"

namespace lumos::analysis {

inline constexpr std::size_t kNumSizeCats = 4;   // Minimal/Small/Middle/Large
inline constexpr std::size_t kNumLengthCats = 4; // Minimal/Short/Middle/Long

/// Job counts and core-hours per size category.
struct SizeTally {
  std::array<std::size_t, kNumSizeCats> jobs{};
  std::array<double, kNumSizeCats> core_hours{};
  [[nodiscard]] std::size_t total_jobs() const noexcept;
  [[nodiscard]] double total_core_hours() const noexcept;
  [[nodiscard]] double job_fraction(trace::SizeCategory c) const noexcept;
  [[nodiscard]] double core_hour_fraction(trace::SizeCategory c) const
      noexcept;
};

struct LengthTally {
  std::array<std::size_t, kNumLengthCats> jobs{};
  std::array<double, kNumLengthCats> core_hours{};
  [[nodiscard]] std::size_t total_jobs() const noexcept;
  [[nodiscard]] double total_core_hours() const noexcept;
  [[nodiscard]] double job_fraction(trace::LengthCategory c) const noexcept;
  [[nodiscard]] double core_hour_fraction(trace::LengthCategory c) const
      noexcept;
};

/// Tallies a trace. `with_minimal` enables the extra Minimal bucket used in
/// the queue-behaviour figures (Figs 9/10); otherwise minimal jobs merge
/// into Small/Short as in Figs 2/5/7.
[[nodiscard]] SizeTally tally_by_size(const trace::Trace& trace,
                                      bool with_minimal = false);
[[nodiscard]] LengthTally tally_by_length(const trace::Trace& trace,
                                          bool with_minimal = false);

}  // namespace lumos::analysis
