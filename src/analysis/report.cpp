#include "analysis/report.hpp"

#include <sstream>

#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/time_util.hpp"

namespace lumos::analysis {

using util::fixed;
using util::format;
using util::percent;
using util::TextTable;

std::string render_geometry(const std::vector<GeometryResult>& results) {
  TextTable t({"System", "run p50", "run mean", "run p99", "violin mode",
               "cores p50", "1-core", ">10 cores", ">1000 cores",
               "size-frac p50"});
  for (const auto& r : results) {
    t.add_row({r.system, util::format_duration(r.runtime_summary.median),
               util::format_duration(r.runtime_summary.mean),
               util::format_duration(r.runtime_summary.p99),
               util::format_duration(r.runtime_violin.mode),
               fixed(r.cores_summary.median, 0), percent(r.frac_single_core),
               percent(r.frac_over_10), percent(r.frac_over_1000),
               format("%.2e", r.core_fraction_summary.median)});
  }
  return t.render();
}

std::string render_runtime_cdf(const std::vector<GeometryResult>& results,
                               std::size_t points) {
  TextTable t([&] {
    std::vector<std::string> header{"P(run <= x)"};
    for (const auto& r : results) header.push_back(r.system);
    return header;
  }());
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i + 1) /
                     static_cast<double>(points + 1);
    std::vector<std::string> row{percent(q, 0)};
    for (const auto& r : results) {
      row.push_back(util::format_duration(r.runtime_cdf.quantile(q)));
    }
    t.add_row(row);
  }
  return t.render();
}

std::string render_arrivals(const std::vector<ArrivalResult>& results) {
  TextTable t({"System", "gap p50", "gap mean", "<=10s", "<=100s",
               "peak ratio", "8am-5pm share", "weekend rate"});
  for (const auto& r : results) {
    t.add_row({r.system, util::format_duration(r.interarrival_summary.median),
               util::format_duration(r.interarrival_summary.mean),
               percent(r.frac_within_10s), percent(r.frac_within_100s),
               fixed(r.peak_ratio, 1), percent(r.business_hours_share),
               fixed(r.weekend_rate_ratio, 2) + "x"});
  }
  return t.render();
}

std::string render_hourly(const std::vector<ArrivalResult>& results) {
  TextTable t([&] {
    std::vector<std::string> header{"Hour"};
    for (const auto& r : results) header.push_back(r.system);
    return header;
  }());
  for (int h = 0; h < 24; ++h) {
    std::vector<std::string> row{std::to_string(h)};
    for (const auto& r : results) {
      // Normalise to each system's own mean for comparability.
      double mean = 0.0;
      for (double v : r.hourly) mean += v;
      mean /= 24.0;
      row.push_back(mean > 0.0 ? fixed(r.hourly[h] / mean, 2) : "0");
    }
    t.add_row(row);
  }
  return t.render();
}

std::string render_domination(const std::vector<DominationResult>& results) {
  std::ostringstream os;
  TextTable size_t_({"System", "Small jobs%", "Small CH%", "Middle CH%",
                     "Large CH%", "dominant size"});
  for (const auto& r : results) {
    size_t_.add_row(
        {r.system, percent(r.by_size.job_fraction(trace::SizeCategory::Small)),
         percent(r.by_size.core_hour_fraction(trace::SizeCategory::Small)),
         percent(r.by_size.core_hour_fraction(trace::SizeCategory::Middle)),
         percent(r.by_size.core_hour_fraction(trace::SizeCategory::Large)),
         std::string(to_string(r.dominant_size)) + " (" +
             percent(r.dominant_size_share) + ")"});
  }
  os << "Core-hour share by job size:\n" << size_t_.render() << '\n';
  TextTable len({"System", "Short CH%", "Middle CH%", "Long CH%",
                 "dominant length"});
  for (const auto& r : results) {
    len.add_row(
        {r.system,
         percent(r.by_length.core_hour_fraction(trace::LengthCategory::Short)),
         percent(
             r.by_length.core_hour_fraction(trace::LengthCategory::Middle)),
         percent(r.by_length.core_hour_fraction(trace::LengthCategory::Long)),
         std::string(to_string(r.dominant_length)) + " (" +
             percent(r.dominant_length_share) + ")"});
  }
  os << "Core-hour share by job length:\n" << len.render();
  return os.str();
}

std::string render_utilization(const std::vector<UtilizationResult>& results) {
  TextTable t({"System", "avg util", "median util", ">80% of time",
               "clamped", "virtual clusters"});
  for (const auto& r : results) {
    std::string vc = "-";
    if (!r.per_vc_average.empty()) {
      double lo = 1.0, hi = 0.0;
      for (double v : r.per_vc_average) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      vc = format("%zu VCs, util %s..%s", r.per_vc_average.size(),
                  percent(lo).c_str(), percent(hi).c_str());
    }
    t.add_row({r.system, percent(r.average), percent(r.median),
               percent(r.frac_above_80), percent(r.clamped_fraction), vc});
  }
  return t.render();
}

std::string render_waiting(const std::vector<WaitingResult>& results) {
  TextTable t({"System", "wait p50", "wait mean", "<10s", ">10min",
               ">90min", "turnaround p50"});
  for (const auto& r : results) {
    t.add_row({r.system, util::format_duration(r.wait_summary.median),
               util::format_duration(r.wait_summary.mean),
               percent(r.frac_wait_under_10s), percent(r.frac_wait_over_10min),
               percent(r.frac_wait_over_90min),
               util::format_duration(r.turnaround_summary.median)});
  }
  return t.render();
}

std::string render_wait_by_geometry(const std::vector<WaitingResult>& results) {
  std::ostringstream os;
  TextTable size_t_({"System", "Small wait", "Middle wait", "Large wait",
                     "longest"});
  for (const auto& r : results) {
    size_t_.add_row(
        {r.system,
         util::format_duration(r.mean_wait_by_size[static_cast<std::size_t>(
             trace::SizeCategory::Small)]),
         util::format_duration(r.mean_wait_by_size[static_cast<std::size_t>(
             trace::SizeCategory::Middle)]),
         util::format_duration(r.mean_wait_by_size[static_cast<std::size_t>(
             trace::SizeCategory::Large)]),
         std::string(to_string(r.longest_wait_size))});
  }
  os << "Mean wait by job size:\n" << size_t_.render() << '\n';
  TextTable len({"System", "Short wait", "Middle wait", "Long wait",
                 "longest"});
  for (const auto& r : results) {
    len.add_row(
        {r.system,
         util::format_duration(r.mean_wait_by_length[static_cast<std::size_t>(
             trace::LengthCategory::Short)]),
         util::format_duration(r.mean_wait_by_length[static_cast<std::size_t>(
             trace::LengthCategory::Middle)]),
         util::format_duration(r.mean_wait_by_length[static_cast<std::size_t>(
             trace::LengthCategory::Long)]),
         std::string(to_string(r.longest_wait_length))});
  }
  os << "Mean wait by job length:\n" << len.render();
  return os.str();
}

std::string render_status_distribution(
    const std::vector<FailureResult>& results) {
  TextTable t({"System", "Passed%", "Failed%", "Killed%", "Passed CH%",
               "Failed CH%", "Killed CH%"});
  for (const auto& r : results) {
    t.add_row({r.system,
               percent(r.overall.job_fraction(trace::JobStatus::Passed)),
               percent(r.overall.job_fraction(trace::JobStatus::Failed)),
               percent(r.overall.job_fraction(trace::JobStatus::Killed)),
               percent(r.overall.core_hour_fraction(trace::JobStatus::Passed)),
               percent(r.overall.core_hour_fraction(trace::JobStatus::Failed)),
               percent(
                   r.overall.core_hour_fraction(trace::JobStatus::Killed))});
  }
  return t.render();
}

std::string render_failure_by_geometry(
    const std::vector<FailureResult>& results) {
  std::ostringstream os;
  TextTable size_t_({"System", "Small pass%", "Middle pass%", "Large pass%",
                     "size trend"});
  auto pass = [](const StatusTally& tally) {
    return tally.total_jobs() > 0
               ? percent(tally.job_fraction(trace::JobStatus::Passed))
               : std::string("-");
  };
  for (const auto& r : results) {
    size_t_.add_row(
        {r.system,
         pass(r.by_size[static_cast<std::size_t>(trace::SizeCategory::Small)]),
         pass(r.by_size[static_cast<std::size_t>(
             trace::SizeCategory::Middle)]),
         pass(r.by_size[static_cast<std::size_t>(trace::SizeCategory::Large)]),
         format("%+.3f/cat", r.pass_rate_size_trend)});
  }
  os << "Pass rate by job size:\n" << size_t_.render() << '\n';
  TextTable len({"System", "Short pass%", "Middle pass%", "Long pass%",
                 "Long killed%", "length trend"});
  for (const auto& r : results) {
    const auto& long_tally =
        r.by_length[static_cast<std::size_t>(trace::LengthCategory::Long)];
    len.add_row(
        {r.system,
         pass(r.by_length[static_cast<std::size_t>(
             trace::LengthCategory::Short)]),
         pass(r.by_length[static_cast<std::size_t>(
             trace::LengthCategory::Middle)]),
         pass(long_tally),
         long_tally.total_jobs() > 0
             ? percent(long_tally.job_fraction(trace::JobStatus::Killed))
             : "-",
         format("%+.3f/cat", r.pass_rate_length_trend)});
  }
  os << "Pass rate by job length:\n" << len.render();
  return os.str();
}

std::string render_repetition(const std::vector<RepetitionResult>& results) {
  TextTable t([&] {
    std::vector<std::string> header{"System", "users", "groups/user"};
    for (int k = 1; k <= 10; ++k) header.push_back("top-" + std::to_string(k));
    return header;
  }());
  for (const auto& r : results) {
    std::vector<std::string> row{r.system,
                                 std::to_string(r.representative_users),
                                 fixed(r.mean_groups_per_user, 1)};
    for (std::size_t k = 0; k < 10; ++k) {
      row.push_back(percent(r.cumulative_share[k], 0));
    }
    t.add_row(row);
  }
  return t.render();
}

namespace {
const char* bucket_name(std::size_t b) {
  switch (b) {
    case 0: return "Short";
    case 1: return "Middle";
    case 2: return "Long";
  }
  return "?";
}
}  // namespace

std::string render_queue_behavior_size(
    const std::vector<QueueBehaviorResult>& results) {
  TextTable t({"System", "queue", "jobs", "Minimal%", "Small%", "Middle%",
               "Large%", "mean cores"});
  for (const auto& r : results) {
    for (std::size_t b = 0; b < kNumQueueBuckets; ++b) {
      t.add_row({r.system, bucket_name(b),
                 std::to_string(r.jobs_per_bucket[b]),
                 percent(r.size_mix[b][0]), percent(r.size_mix[b][1]),
                 percent(r.size_mix[b][2]), percent(r.size_mix[b][3]),
                 fixed(r.mean_cores[b], 1)});
    }
  }
  return t.render();
}

std::string render_queue_behavior_runtime(
    const std::vector<QueueBehaviorResult>& results) {
  TextTable t({"System", "queue", "jobs", "Minimal%", "Short%", "Middle%",
               "Long%", "median run"});
  for (const auto& r : results) {
    for (std::size_t b = 0; b < kNumQueueBuckets; ++b) {
      t.add_row({r.system, bucket_name(b),
                 std::to_string(r.jobs_per_bucket[b]),
                 percent(r.length_mix[b][0]), percent(r.length_mix[b][1]),
                 percent(r.length_mix[b][2]), percent(r.length_mix[b][3]),
                 util::format_duration(r.median_run[b])});
    }
  }
  return t.render();
}

std::string render_user_status(const std::vector<UserStatusResult>& results) {
  TextTable t({"System", "user", "jobs", "Passed p50", "Failed p50",
               "Killed p50", "Killed/Passed"});
  for (const auto& r : results) {
    int rank = 1;
    for (const auto& u : r.top_users) {
      const auto& passed =
          u.runtime[static_cast<std::size_t>(trace::JobStatus::Passed)];
      const auto& failed =
          u.runtime[static_cast<std::size_t>(trace::JobStatus::Failed)];
      const auto& killed =
          u.runtime[static_cast<std::size_t>(trace::JobStatus::Killed)];
      t.add_row({r.system, format("U%d", rank++), std::to_string(u.jobs),
                 passed.count ? util::format_duration(passed.median) : "-",
                 failed.count ? util::format_duration(failed.median) : "-",
                 killed.count ? util::format_duration(killed.median) : "-",
                 passed.count && killed.count && passed.median > 0.0
                     ? fixed(killed.median / passed.median, 1) + "x"
                     : "-"});
    }
  }
  return t.render();
}

}  // namespace lumos::analysis
