// Figs 4 & 5: waiting time / turnaround CDFs, and average wait grouped by
// job size and runtime category.
#pragma once

#include <array>
#include <string>

#include "analysis/categories.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "trace/trace.hpp"

namespace lumos::analysis {

struct WaitingResult {
  std::string system;
  // Fig 4.
  stats::Ecdf wait_cdf;
  stats::Ecdf turnaround_cdf;
  stats::Summary wait_summary;
  stats::Summary turnaround_summary;
  double frac_wait_under_10s = 0.0;
  double frac_wait_over_10min = 0.0;
  double frac_wait_over_90min = 0.0;
  // Fig 5: mean wait per size / length category (seconds; 0 when empty).
  std::array<double, kNumSizeCats> mean_wait_by_size{};
  std::array<std::size_t, kNumSizeCats> jobs_by_size{};
  std::array<double, kNumLengthCats> mean_wait_by_length{};
  std::array<std::size_t, kNumLengthCats> jobs_by_length{};
  /// Which size category waits longest (the paper's middle-size surprise).
  trace::SizeCategory longest_wait_size = trace::SizeCategory::Small;
  trace::LengthCategory longest_wait_length = trace::LengthCategory::Short;
};

[[nodiscard]] WaitingResult analyze_waiting(const trace::Trace& trace);

}  // namespace lumos::analysis
