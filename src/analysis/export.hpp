// Machine-readable export of every figure's data series (CSV, one file per
// panel) — the hand-off point to plotting tools, mirroring the data files
// behind the paper's matplotlib figures.
#pragma once

#include <string>
#include <vector>

#include "analysis/arrival.hpp"
#include "analysis/domination.hpp"
#include "analysis/failure.hpp"
#include "analysis/geometry.hpp"
#include "analysis/user_behavior.hpp"
#include "analysis/utilization.hpp"
#include "analysis/waiting.hpp"

namespace lumos::analysis {

/// Writes fig1a_runtime_cdf.csv: system,quantile,runtime_s.
void export_runtime_cdf(const std::string& dir,
                        const std::vector<GeometryResult>& results,
                        std::size_t points = 99);

/// Writes fig1b_hourly.csv: system,hour,jobs.
void export_hourly(const std::string& dir,
                   const std::vector<ArrivalResult>& results);

/// Writes fig1c_cores_cdf.csv: system,quantile,cores.
void export_cores_cdf(const std::string& dir,
                      const std::vector<GeometryResult>& results,
                      std::size_t points = 99);

/// Writes fig2_domination.csv: system,dimension,category,job_frac,ch_frac.
void export_domination(const std::string& dir,
                       const std::vector<DominationResult>& results);

/// Writes fig3_utilization.csv: system,hour_index,utilization.
void export_utilization(const std::string& dir,
                        const std::vector<UtilizationResult>& results);

/// Writes fig4_wait_cdf.csv: system,quantile,wait_s,turnaround_s.
void export_wait_cdf(const std::string& dir,
                     const std::vector<WaitingResult>& results,
                     std::size_t points = 99);

/// Writes fig6_status.csv: system,status,job_frac,core_hour_frac.
void export_status(const std::string& dir,
                   const std::vector<FailureResult>& results);

/// Writes fig8_repetition.csv: system,k,cumulative_share.
void export_repetition(const std::string& dir,
                       const std::vector<RepetitionResult>& results);

/// Writes fig9_10_queue_mix.csv:
/// system,bucket,dimension,category,fraction.
void export_queue_mix(const std::string& dir,
                      const std::vector<QueueBehaviorResult>& results);

}  // namespace lumos::analysis
