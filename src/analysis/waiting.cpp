#include "analysis/waiting.hpp"

namespace lumos::analysis {

WaitingResult analyze_waiting(const trace::Trace& trace) {
  WaitingResult r;
  r.system = trace.spec().name;
  const auto waits = trace.wait_times();
  const auto turns = trace.turnarounds();
  r.wait_cdf = stats::Ecdf(waits);
  r.turnaround_cdf = stats::Ecdf(turns);
  r.wait_summary = stats::summarize(waits);
  r.turnaround_summary = stats::summarize(turns);
  r.frac_wait_under_10s = r.wait_cdf(10.0);
  r.frac_wait_over_10min = 1.0 - r.wait_cdf(600.0);
  r.frac_wait_over_90min = 1.0 - r.wait_cdf(5400.0);

  const auto& spec = trace.spec();
  std::array<double, kNumSizeCats> wait_sum_size{};
  std::array<double, kNumLengthCats> wait_sum_len{};
  for (const auto& j : trace.jobs()) {
    const auto sc = static_cast<std::size_t>(spec.size_category(j.cores));
    const auto lc = static_cast<std::size_t>(
        trace::SystemSpec::length_category(j.run_time));
    wait_sum_size[sc] += j.wait_time;
    r.jobs_by_size[sc] += 1;
    wait_sum_len[lc] += j.wait_time;
    r.jobs_by_length[lc] += 1;
  }
  double best_size = -1.0, best_len = -1.0;
  for (std::size_t c = 0; c < kNumSizeCats; ++c) {
    if (r.jobs_by_size[c] > 0) {
      r.mean_wait_by_size[c] =
          wait_sum_size[c] / static_cast<double>(r.jobs_by_size[c]);
      if (r.mean_wait_by_size[c] > best_size) {
        best_size = r.mean_wait_by_size[c];
        r.longest_wait_size = static_cast<trace::SizeCategory>(c);
      }
    }
  }
  for (std::size_t c = 0; c < kNumLengthCats; ++c) {
    if (r.jobs_by_length[c] > 0) {
      r.mean_wait_by_length[c] =
          wait_sum_len[c] / static_cast<double>(r.jobs_by_length[c]);
      if (r.mean_wait_by_length[c] > best_len) {
        best_len = r.mean_wait_by_length[c];
        r.longest_wait_length = static_cast<trace::LengthCategory>(c);
      }
    }
  }
  return r;
}

}  // namespace lumos::analysis
