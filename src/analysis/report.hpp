// Text rendering of the figure analyses — each function returns the
// cross-system comparison table a bench binary prints for its figure.
#pragma once

#include <string>
#include <vector>

#include "analysis/arrival.hpp"
#include "analysis/domination.hpp"
#include "analysis/failure.hpp"
#include "analysis/geometry.hpp"
#include "analysis/user_behavior.hpp"
#include "analysis/utilization.hpp"
#include "analysis/waiting.hpp"

namespace lumos::analysis {

[[nodiscard]] std::string render_geometry(
    const std::vector<GeometryResult>& results);
[[nodiscard]] std::string render_runtime_cdf(
    const std::vector<GeometryResult>& results, std::size_t points = 9);
[[nodiscard]] std::string render_arrivals(
    const std::vector<ArrivalResult>& results);
[[nodiscard]] std::string render_hourly(
    const std::vector<ArrivalResult>& results);
[[nodiscard]] std::string render_domination(
    const std::vector<DominationResult>& results);
[[nodiscard]] std::string render_utilization(
    const std::vector<UtilizationResult>& results);
[[nodiscard]] std::string render_waiting(
    const std::vector<WaitingResult>& results);
[[nodiscard]] std::string render_wait_by_geometry(
    const std::vector<WaitingResult>& results);
[[nodiscard]] std::string render_status_distribution(
    const std::vector<FailureResult>& results);
[[nodiscard]] std::string render_failure_by_geometry(
    const std::vector<FailureResult>& results);
[[nodiscard]] std::string render_repetition(
    const std::vector<RepetitionResult>& results);
[[nodiscard]] std::string render_queue_behavior_size(
    const std::vector<QueueBehaviorResult>& results);
[[nodiscard]] std::string render_queue_behavior_runtime(
    const std::vector<QueueBehaviorResult>& results);
[[nodiscard]] std::string render_user_status(
    const std::vector<UserStatusResult>& results);

}  // namespace lumos::analysis
