// Figs 6 & 7: job-status distribution (counts vs core-hours) and its
// correlation with job size and runtime.
#pragma once

#include <array>
#include <string>

#include "analysis/categories.hpp"
#include "trace/trace.hpp"

namespace lumos::analysis {

/// Per-status tallies (index by trace::JobStatus).
struct StatusTally {
  std::array<std::size_t, trace::kNumStatuses> jobs{};
  std::array<double, trace::kNumStatuses> core_hours{};
  [[nodiscard]] std::size_t total_jobs() const noexcept;
  [[nodiscard]] double total_core_hours() const noexcept;
  [[nodiscard]] double job_fraction(trace::JobStatus s) const noexcept;
  [[nodiscard]] double core_hour_fraction(trace::JobStatus s) const noexcept;
};

struct FailureResult {
  std::string system;
  StatusTally overall;                       // Fig 6
  /// Status mix within each size category (Fig 7a): fraction of jobs.
  std::array<StatusTally, kNumSizeCats> by_size;
  /// Status mix within each length category (Fig 7b).
  std::array<StatusTally, kNumLengthCats> by_length;
  /// Pass-rate trend across size categories Small->Large (negative =
  /// bigger jobs pass less often — the DL pattern in Fig 7a).
  double pass_rate_size_trend = 0.0;
  /// Same across Short->Long (negative everywhere in Fig 7b).
  double pass_rate_length_trend = 0.0;
};

[[nodiscard]] FailureResult analyze_failures(const trace::Trace& trace);

}  // namespace lumos::analysis
