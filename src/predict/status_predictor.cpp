#include "predict/status_predictor.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lumos::predict {

namespace {

double average_runtime(std::span<const JobFeatures> feats) {
  double avg = 0.0;
  for (const auto& f : feats) avg += f.run_time;
  return feats.empty() ? 0.0 : avg / static_cast<double>(feats.size());
}

bool doomed(const JobFeatures& f) noexcept {
  return f.status != trace::JobStatus::Passed;
}

/// Labels aligned with build_dataset's rows.
std::vector<double> labels_for(std::span<const JobFeatures> feats,
                               std::span<const std::uint32_t> row_jobs) {
  std::vector<double> y;
  y.reserve(row_jobs.size());
  for (auto fi : row_jobs) y.push_back(doomed(feats[fi]) ? 1.0 : 0.0);
  return y;
}

std::vector<double> elapsed_row(const JobFeatures& f, double elapsed_s) {
  std::vector<double> row = f.values;
  row.push_back(std::log1p(elapsed_s));
  return row;
}

}  // namespace

StatusStudyResult run_status_study(const trace::Trace& trace,
                                   const StatusStudyConfig& config) {
  LUMOS_REQUIRE(trace.size() >= 50, "status study needs >= 50 jobs");
  StatusStudyResult result;
  result.system = trace.spec().name;

  auto feats = extract_features(trace);
  if (config.max_jobs > 0 && feats.size() > config.max_jobs) {
    feats.resize(config.max_jobs);
  }
  const double avg = average_runtime(feats);
  result.avg_runtime_s = avg;

  const auto n_train = static_cast<std::size_t>(
      config.train_fraction * static_cast<double>(feats.size()));
  const std::span<const JobFeatures> train(feats.data(), n_train);
  const std::span<const JobFeatures> test(feats.data() + n_train,
                                          feats.size() - n_train);
  LUMOS_REQUIRE(!train.empty() && !test.empty(), "degenerate split");

  std::vector<double> thresholds;
  for (double f : config.elapsed_fractions) thresholds.push_back(f * avg);
  std::vector<double> grid{0.0};
  grid.insert(grid.end(), thresholds.begin(), thresholds.end());

  // Baseline classifier: no elapsed feature.
  std::vector<std::uint32_t> base_rows;
  const auto base_data = build_dataset(train, {}, nullptr, &base_rows);
  ml::LogisticRegression base_model;
  base_model.fit(base_data.x, labels_for(train, base_rows));

  // +elapsed classifier: trained across the elapsed grid.
  std::vector<std::uint32_t> el_rows;
  const auto el_data = build_dataset(train, grid, nullptr, &el_rows);
  ml::LogisticRegression el_model;
  el_model.fit(el_data.x, labels_for(train, el_rows));

  for (std::size_t ti = 0; ti < thresholds.size(); ++ti) {
    const double T = thresholds[ti];
    StatusStudyRow row;
    row.elapsed_fraction = config.elapsed_fractions[ti];
    row.elapsed_s = T;
    std::size_t base_hits = 0, el_hits = 0, doomed_count = 0;
    for (const auto& f : test) {
      if (f.run_time <= T) continue;
      ++row.test_jobs;
      const bool label = doomed(f);
      doomed_count += label;
      if (base_model.predict(f.values) == label) ++base_hits;
      if (el_model.predict(elapsed_row(f, T)) == label) ++el_hits;
    }
    if (row.test_jobs == 0) continue;
    const auto n = static_cast<double>(row.test_jobs);
    row.base_accuracy = static_cast<double>(base_hits) / n;
    row.accuracy = static_cast<double>(el_hits) / n;
    row.doomed_rate = static_cast<double>(doomed_count) / n;
    result.rows.push_back(row);
  }
  return result;
}

StatusPredictor::StatusPredictor(const trace::Trace& trace,
                                 double train_fraction,
                                 std::size_t max_jobs) {
  LUMOS_REQUIRE(trace.size() >= 50, "StatusPredictor needs >= 50 jobs");
  auto feats = extract_features(trace);
  if (max_jobs > 0 && feats.size() > max_jobs) feats.resize(max_jobs);
  avg_runtime_ = average_runtime(feats);
  const auto n_train = static_cast<std::size_t>(
      train_fraction * static_cast<double>(feats.size()));
  const std::span<const JobFeatures> train(feats.data(),
                                           std::max<std::size_t>(n_train, 1));
  const std::vector<double> grid{0.0, avg_runtime_ / 8.0, avg_runtime_ / 4.0,
                                 avg_runtime_ / 2.0, avg_runtime_};
  std::vector<std::uint32_t> rows;
  const auto data = build_dataset(train, grid, nullptr, &rows);
  model_.fit(data.x, labels_for(train, rows));
}

double StatusPredictor::doom_probability(const JobFeatures& job,
                                         double elapsed_s) const {
  return model_.predict_proba(elapsed_row(job, elapsed_s));
}

}  // namespace lumos::predict
