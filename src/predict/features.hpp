// Feature extraction for runtime prediction (use case 1, §VI-A).
//
// Features are built chronologically so every job only sees information
// available at its own submit time (user history = jobs that *completed*
// before this submit). The "elapsed time" feature is what the paper adds:
// the time a job has already been running when the prediction is made.
// Targets are ln(1 + runtime); predictions are transformed back.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "trace/trace.hpp"

namespace lumos::predict {

/// Per-job base features plus bookkeeping used by the harness.
struct JobFeatures {
  std::vector<double> values;  ///< base features, fixed order
  double run_time = 0.0;       ///< actual runtime (target source)
  std::uint32_t user = 0;
  trace::JobStatus status = trace::JobStatus::Passed;
  double last_run = 0.0;       ///< user's most recent completed runtime
  double last_run2 = 0.0;      ///< and the one before (for Last2)
  /// User's recent completed runtimes (most recent first, bounded) —
  /// Last2-with-elapsed needs "most recent two above the elapsed bound".
  std::vector<double> recent_runs;
};

/// Names of the base features, index-aligned with JobFeatures::values.
[[nodiscard]] std::vector<std::string> base_feature_names();

/// Extracts base features for every job, in submit order.
[[nodiscard]] std::vector<JobFeatures> extract_features(
    const trace::Trace& trace);

/// Builds an ml::Dataset from [begin, end) of `feats`.
/// When `elapsed_grid` is empty the dataset has no elapsed feature
/// (the paper's "Without Elapsed Time" baseline). Otherwise each job
/// contributes one row per grid value strictly below its runtime, with
/// ln(1+elapsed) appended as the final feature.
/// `censored` (optional) receives one flag per emitted row: true when the
/// source job was Killed (its runtime is a lower bound on the intended
/// one) — the Tobit model's censoring input.
/// `row_jobs` (optional) receives the index into `feats` each row came
/// from (classification harnesses need per-row labels).
[[nodiscard]] ml::Dataset build_dataset(
    std::span<const JobFeatures> feats, std::span<const double> elapsed_grid,
    std::vector<bool>* censored = nullptr,
    std::vector<std::uint32_t>* row_jobs = nullptr);

/// Target transform and its inverse.
[[nodiscard]] inline double target_of_runtime(double run) noexcept {
  return std::log1p(run > 0.0 ? run : 0.0);
}
[[nodiscard]] inline double runtime_of_target(double t) noexcept {
  return std::expm1(t) > 0.0 ? std::expm1(t) : 0.0;
}

}  // namespace lumos::predict
