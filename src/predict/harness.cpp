#include "predict/harness.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "ml/gbrt.hpp"
#include "ml/linear.hpp"
#include "ml/metrics.hpp"
#include "ml/mlp.hpp"
#include "ml/regressor.hpp"
#include "ml/tobit.hpp"
#include "obs/registry.hpp"
#include "predict/last2.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace lumos::predict {

std::string to_string(ElapsedMode m) {
  switch (m) {
    case ElapsedMode::FeatureAndClamp: return "feature+clamp";
    case ElapsedMode::FeatureOnly: return "feature-only";
    case ElapsedMode::ClampOnly: return "clamp-only";
  }
  return "?";
}

std::string to_string(ModelKind m) {
  switch (m) {
    case ModelKind::Last2: return "Last2";
    case ModelKind::Tobit: return "Tobit";
    case ModelKind::Xgboost: return "XGBoost";
    case ModelKind::LinearReg: return "LR";
    case ModelKind::Mlp: return "MLP";
  }
  return "?";
}

namespace {

std::unique_ptr<ml::Regressor> make_model(ModelKind kind) {
  switch (kind) {
    case ModelKind::Tobit:
      return std::make_unique<ml::TobitRegression>();
    case ModelKind::Xgboost: {
      ml::GbrtOptions opt;
      opt.n_trees = 60;
      return std::make_unique<ml::GradientBoosting>(opt);
    }
    case ModelKind::LinearReg:
      return std::make_unique<ml::LinearRegression>(1e-3);
    case ModelKind::Mlp: {
      ml::MlpOptions opt;
      opt.epochs = 30;
      return std::make_unique<ml::Mlp>(opt);
    }
    case ModelKind::Last2:
      break;  // handled without the Regressor interface
  }
  throw InvalidArgument("Last2 has no ml::Regressor adapter");
}

/// Appends the elapsed feature to a base row.
std::vector<double> with_elapsed_row(const std::vector<double>& base,
                                     double elapsed_s) {
  std::vector<double> row = base;
  row.push_back(std::log1p(elapsed_s));
  return row;
}

}  // namespace

const StudyRow& StudyResult::row(ModelKind model, bool with_elapsed,
                                 double elapsed_fraction) const {
  for (const auto& r : rows) {
    if (r.model == model && r.with_elapsed == with_elapsed &&
        std::fabs(r.elapsed_fraction - elapsed_fraction) < 1e-9) {
      return r;
    }
  }
  throw InvalidArgument("no such study row: " + to_string(model));
}

StudyResult run_prediction_study(const trace::Trace& trace,
                                 const StudyConfig& config) {
  LUMOS_REQUIRE(trace.size() >= 50, "prediction study needs >= 50 jobs");
  StudyResult result;
  result.system = trace.spec().name;

  auto feats = extract_features(trace);
  if (config.max_jobs > 0 && feats.size() > config.max_jobs) {
    feats.resize(config.max_jobs);
  }

  double avg = 0.0;
  for (const auto& f : feats) avg += f.run_time;
  avg /= static_cast<double>(feats.size());
  result.avg_runtime_s = avg;

  const auto n_train = static_cast<std::size_t>(
      config.train_fraction * static_cast<double>(feats.size()));
  const std::span<const JobFeatures> train_feats(feats.data(), n_train);
  const std::span<const JobFeatures> test_feats(feats.data() + n_train,
                                                feats.size() - n_train);
  LUMOS_REQUIRE(!train_feats.empty() && !test_feats.empty(),
                "train/test split degenerate");

  // Elapsed training grid: 0 plus the evaluation thresholds, so the
  // +elapsed model learns the conditional distribution across the sweep.
  std::vector<double> thresholds;
  for (double f : config.elapsed_fractions) thresholds.push_back(f * avg);
  std::vector<double> train_grid{0.0};
  train_grid.insert(train_grid.end(), thresholds.begin(), thresholds.end());

  const ml::Dataset base_train = build_dataset(train_feats, {});
  std::vector<bool> censored;
  const ml::Dataset elapsed_train =
      build_dataset(train_feats, train_grid, &censored);

  const Last2 last2;

  for (ModelKind kind : config.models) {
    std::unique_ptr<ml::Regressor> base_model;
    std::unique_ptr<ml::Regressor> elapsed_model;
    if (kind != ModelKind::Last2) {
      LUMOS_INFO << "training " << to_string(kind) << " on "
                 << base_train.size() << "+" << elapsed_train.size()
                 << " rows";
      base_model = make_model(kind);
      elapsed_model = make_model(kind);
      if (kind == ModelKind::Tobit) {
        std::vector<bool> base_censored;
        (void)build_dataset(train_feats, {}, &base_censored);
        static_cast<ml::TobitRegression*>(base_model.get())
            ->set_censoring(base_censored);
        static_cast<ml::TobitRegression*>(elapsed_model.get())
            ->set_censoring(censored);
      }
      obs::ScopedTimer fit_timer(obs::Registry::global().histogram(
          "predict.fit_seconds." + to_string(kind)));
      base_model->fit(base_train);
      elapsed_model->fit(elapsed_train);
    }

    obs::ScopedTimer predict_timer(obs::Registry::global().histogram(
        "predict.predict_seconds." + to_string(kind)));
    for (std::size_t ti = 0; ti < thresholds.size(); ++ti) {
      const double T = thresholds[ti];
      const double frac = config.elapsed_fractions[ti];
      std::vector<double> truth, base_pred, elapsed_pred;
      for (const auto& f : test_feats) {
        if (f.run_time <= T) continue;  // fairness filter (§VI-A)
        truth.push_back(f.run_time);
        if (kind == ModelKind::Last2) {
          base_pred.push_back(last2.predict(f));
          elapsed_pred.push_back(config.elapsed_mode == ElapsedMode::ClampOnly
                                     ? std::max(last2.predict(f), T)
                                     : last2.predict_with_elapsed(f, T));
        } else {
          const double base_p =
              runtime_of_target(base_model->predict(f.values));
          base_pred.push_back(base_p);
          double p;
          switch (config.elapsed_mode) {
            case ElapsedMode::ClampOnly:
              p = std::max(base_p, T);
              break;
            case ElapsedMode::FeatureOnly:
              p = runtime_of_target(
                  elapsed_model->predict(with_elapsed_row(f.values, T)));
              break;
            case ElapsedMode::FeatureAndClamp:
            default:
              p = std::max(runtime_of_target(elapsed_model->predict(
                               with_elapsed_row(f.values, T))),
                           T);  // survival clamp
              break;
          }
          elapsed_pred.push_back(p);
        }
      }
      if (truth.empty()) continue;

      StudyRow base_row;
      base_row.model = kind;
      base_row.with_elapsed = false;
      base_row.elapsed_fraction = frac;
      base_row.elapsed_s = T;
      base_row.accuracy = ml::prediction_accuracy(truth, base_pred);
      base_row.underestimate_rate = ml::underestimate_rate(truth, base_pred);
      base_row.test_jobs = truth.size();
      result.rows.push_back(base_row);

      StudyRow er = base_row;
      er.with_elapsed = true;
      er.accuracy = ml::prediction_accuracy(truth, elapsed_pred);
      er.underestimate_rate = ml::underestimate_rate(truth, elapsed_pred);
      result.rows.push_back(er);
    }
  }
  return result;
}

}  // namespace lumos::predict
