#include "predict/last2.hpp"

#include <algorithm>

namespace lumos::predict {

double Last2::predict(const JobFeatures& job) const {
  if (job.recent_runs.empty()) return options_.cold_start_s;
  if (job.recent_runs.size() == 1) return job.recent_runs[0];
  return 0.5 * (job.recent_runs[0] + job.recent_runs[1]);
}

double Last2::predict_with_elapsed(const JobFeatures& job,
                                   double elapsed_s) const {
  // Most recent runtimes that exceed the survival bound.
  double a = -1.0, b = -1.0;
  for (double r : job.recent_runs) {
    if (r > elapsed_s) {
      if (a < 0.0) {
        a = r;
      } else {
        b = r;
        break;
      }
    }
  }
  double prediction;
  if (a < 0.0) {
    prediction = std::max(elapsed_s * options_.fallback_multiplier,
                          job.recent_runs.empty() ? options_.cold_start_s
                                                  : 0.0);
  } else if (b < 0.0) {
    prediction = a;
  } else {
    prediction = 0.5 * (a + b);
  }
  return std::max(prediction, elapsed_s);
}

}  // namespace lumos::predict
