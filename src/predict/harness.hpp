// Use case 1 harness: runtime prediction with vs without elapsed time
// (reproduces Fig 12).
//
// Protocol (§VI-A): all methods predict only for jobs that have been
// running for at least the elapsed threshold T (fair comparison). The
// baseline uses the base features; the "+elapsed" variant additionally
// receives the elapsed time as a feature (trained on an elapsed grid) and
// clamps its prediction to at least T. T sweeps 1/8, 1/4, 1/2 of the
// trace's average runtime.
#pragma once

#include <string>
#include <vector>

#include "predict/features.hpp"
#include "trace/trace.hpp"

namespace lumos::predict {

enum class ModelKind { Last2, Tobit, Xgboost, LinearReg, Mlp };

[[nodiscard]] std::string to_string(ModelKind m);

/// How elapsed time is integrated (ablation, DESIGN.md §4.3):
///  * FeatureAndClamp — elapsed as an input feature AND a lower bound on
///    the prediction (the paper's approach; a job that survived T seconds
///    cannot finish before T).
///  * FeatureOnly — input feature without the survival clamp.
///  * ClampOnly — the baseline model's prediction clamped to >= T.
enum class ElapsedMode { FeatureAndClamp, FeatureOnly, ClampOnly };

[[nodiscard]] std::string to_string(ElapsedMode m);

struct StudyConfig {
  double train_fraction = 0.6;
  /// Elapsed thresholds as fractions of the average runtime.
  std::vector<double> elapsed_fractions{0.125, 0.25, 0.5};
  /// Cap on jobs considered (chronological prefix; 0 = all).
  std::size_t max_jobs = 20000;
  std::vector<ModelKind> models{ModelKind::Last2, ModelKind::Tobit,
                                ModelKind::Xgboost, ModelKind::LinearReg,
                                ModelKind::Mlp};
  ElapsedMode elapsed_mode = ElapsedMode::FeatureAndClamp;
};

struct StudyRow {
  ModelKind model;
  bool with_elapsed = false;
  double elapsed_fraction = 0.0;  ///< 0 for the baseline column
  double elapsed_s = 0.0;
  double accuracy = 0.0;          ///< mean min/max ratio (higher better)
  double underestimate_rate = 0.0;///< lower better
  std::size_t test_jobs = 0;
};

struct StudyResult {
  std::string system;
  double avg_runtime_s = 0.0;
  std::vector<StudyRow> rows;

  /// Row lookup (throws InvalidArgument when absent).
  [[nodiscard]] const StudyRow& row(ModelKind model, bool with_elapsed,
                                    double elapsed_fraction) const;
};

/// Runs the full study on one trace.
[[nodiscard]] StudyResult run_prediction_study(const trace::Trace& trace,
                                               const StudyConfig& config = {});

}  // namespace lumos::predict
