// Job-status prediction from elapsed time (extension of §V-C).
//
// Fig 11 shows per-user runtime distributions that separate cleanly by
// final status — the paper notes a scheduler "may reversely predict job
// status" from them. This module makes that concrete: a logistic model
// P(job will NOT pass | features, elapsed) trained per system, usable by
// fault-aware schedulers to stop feeding doomed jobs (Takeaway 7).
#pragma once

#include <vector>

#include "ml/logistic.hpp"
#include "predict/features.hpp"
#include "trace/trace.hpp"

namespace lumos::predict {

struct StatusStudyConfig {
  double train_fraction = 0.6;
  /// Elapsed fractions (of average runtime) at which predictions are made.
  std::vector<double> elapsed_fractions{0.125, 0.25, 0.5};
  std::size_t max_jobs = 20000;
};

struct StatusStudyRow {
  double elapsed_fraction = 0.0;
  double elapsed_s = 0.0;
  double accuracy = 0.0;        ///< with the elapsed feature
  double base_accuracy = 0.0;   ///< without it
  double doomed_rate = 0.0;     ///< base rate of non-Passed in the test set
  std::size_t test_jobs = 0;
};

struct StatusStudyResult {
  std::string system;
  double avg_runtime_s = 0.0;
  std::vector<StatusStudyRow> rows;
};

/// Binary target: 1 when the job ends Failed or Killed ("doomed").
/// For each elapsed threshold T, both classifiers are evaluated on jobs
/// still running at T (runtime > T); only the "+elapsed" variant receives
/// ln(1+T) as a feature (and is trained on an elapsed grid).
[[nodiscard]] StatusStudyResult run_status_study(
    const trace::Trace& trace, const StatusStudyConfig& config = {});

/// Standalone kill-probability model over (base features, elapsed).
class StatusPredictor {
 public:
  /// Trains on the chronological prefix of `trace` given by
  /// `train_fraction`, with elapsed-grid augmentation.
  StatusPredictor(const trace::Trace& trace, double train_fraction = 0.6,
                  std::size_t max_jobs = 20000);

  /// P(job will not pass | job features, it has run `elapsed_s`).
  [[nodiscard]] double doom_probability(const JobFeatures& job,
                                        double elapsed_s) const;

 private:
  ml::LogisticRegression model_;
  double avg_runtime_ = 0.0;
};

}  // namespace lumos::predict
