#include "predict/features.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <unordered_map>

#include "util/error.hpp"
#include "util/time_util.hpp"

namespace lumos::predict {

namespace {

constexpr std::size_t kHistoryDepth = 16;

struct UserState {
  std::deque<double> runs;   ///< most recent first, completed jobs only
  double sum_log_run = 0.0;  ///< over `runs`
  std::size_t jobs = 0;      ///< total completed
  std::size_t passed = 0;

  void add(double run, bool pass) {
    runs.push_front(run);
    sum_log_run += std::log1p(run);
    if (runs.size() > kHistoryDepth) {
      sum_log_run -= std::log1p(runs.back());
      runs.pop_back();
    }
    ++jobs;
    if (pass) ++passed;
  }
};

}  // namespace

std::vector<std::string> base_feature_names() {
  return {"log2_cores",    "log_walltime",  "log_last_run",
          "log_last_run2", "mean_log_run",  "log_user_jobs",
          "user_pass_rate", "submit_hour",  "log_size_frac"};
}

std::vector<JobFeatures> extract_features(const trace::Trace& trace) {
  LUMOS_REQUIRE(trace.is_sorted_by_submit(),
                "feature extraction needs a submit-sorted trace");
  const auto& spec = trace.spec();
  const double capacity =
      std::max<double>(1.0, spec.primary_capacity());

  std::vector<JobFeatures> out;
  out.reserve(trace.size());
  std::unordered_map<std::uint32_t, UserState> users;

  // Completion queue so user history only contains jobs finished before the
  // current submit.
  using Completion = std::pair<double, std::size_t>;  // (end time, index)
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions;

  const auto jobs = trace.jobs();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& j = jobs[i];
    while (!completions.empty() &&
           completions.top().first <= j.submit_time) {
      const auto& done = jobs[completions.top().second];
      completions.pop();
      users[done.user].add(done.run_time,
                           done.status == trace::JobStatus::Passed);
    }

    const UserState& u = users[j.user];  // default state for new users
    JobFeatures f;
    f.run_time = j.run_time;
    f.user = j.user;
    f.status = j.status;
    f.last_run = u.runs.empty() ? 0.0 : u.runs[0];
    f.last_run2 = u.runs.size() < 2 ? f.last_run : u.runs[1];
    f.recent_runs.assign(u.runs.begin(), u.runs.end());

    const double mean_log =
        u.runs.empty() ? 0.0
                       : u.sum_log_run / static_cast<double>(u.runs.size());
    const double pass_rate =
        u.jobs == 0 ? 0.5
                    : static_cast<double>(u.passed) /
                          static_cast<double>(u.jobs);
    const int hour = util::hour_of_day(j.submit_time, spec.epoch_unix,
                                       spec.utc_offset_hours);
    f.values = {
        std::log2(static_cast<double>(j.cores) + 1.0),
        j.has_requested_time() ? std::log1p(j.requested_time) : 0.0,
        std::log1p(f.last_run),
        std::log1p(f.last_run2),
        mean_log,
        std::log1p(static_cast<double>(u.jobs)),
        pass_rate,
        static_cast<double>(hour),
        std::log(static_cast<double>(j.cores) / capacity + 1e-9),
    };
    out.push_back(std::move(f));
    completions.emplace(j.end_time(), i);
  }
  return out;
}

ml::Dataset build_dataset(std::span<const JobFeatures> feats,
                          std::span<const double> elapsed_grid,
                          std::vector<bool>* censored,
                          std::vector<std::uint32_t>* row_jobs) {
  if (censored) censored->clear();
  if (row_jobs) row_jobs->clear();
  ml::Dataset data;
  data.feature_names = base_feature_names();
  const bool with_elapsed = !elapsed_grid.empty();
  if (with_elapsed) data.feature_names.push_back("log_elapsed");
  const std::size_t d = data.feature_names.size();

  std::size_t rows = 0;
  if (with_elapsed) {
    for (const auto& f : feats) {
      for (double e : elapsed_grid) {
        if (f.run_time > e) ++rows;
      }
    }
  } else {
    rows = feats.size();
  }
  data.x = ml::Matrix(rows, d);
  data.y.reserve(rows);

  std::size_t r = 0;
  for (std::size_t fi = 0; fi < feats.size(); ++fi) {
    const auto& f = feats[fi];
    if (with_elapsed) {
      for (double e : elapsed_grid) {
        if (f.run_time <= e) continue;
        for (std::size_t c = 0; c < f.values.size(); ++c) {
          data.x(r, c) = f.values[c];
        }
        data.x(r, d - 1) = std::log1p(e);
        data.y.push_back(target_of_runtime(f.run_time));
        if (censored) {
          censored->push_back(f.status == trace::JobStatus::Killed);
        }
        if (row_jobs) row_jobs->push_back(static_cast<std::uint32_t>(fi));
        ++r;
      }
    } else {
      for (std::size_t c = 0; c < f.values.size(); ++c) {
        data.x(r, c) = f.values[c];
      }
      data.y.push_back(target_of_runtime(f.run_time));
      if (censored) {
        censored->push_back(f.status == trace::JobStatus::Killed);
      }
      if (row_jobs) row_jobs->push_back(static_cast<std::uint32_t>(fi));
      ++r;
    }
  }
  return data;
}

}  // namespace lumos::predict
