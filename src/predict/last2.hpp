// Last2 runtime predictor (Tsafrir et al., TPDS'07).
//
// Baseline: the prediction for a user's next job is the mean of their last
// two completed runtimes. With elapsed time e, the paper's thresholding
// insight (§VI-A) applies: having survived past e, the job will likely
// reach the user's next-larger typical runtime — so Last2 averages the
// most recent two runtimes *greater than e*, falling back to a multiple of
// e when the user has none.
#pragma once

#include <span>

#include "predict/features.hpp"

namespace lumos::predict {

struct Last2Options {
  /// Fallback prediction when no history exceeds the elapsed bound.
  double fallback_multiplier = 2.0;
  /// Prediction when a user has no history at all (seconds).
  double cold_start_s = 3600.0;
};

class Last2 {
 public:
  explicit Last2(Last2Options options = {}) : options_(options) {}

  /// Baseline prediction (no elapsed knowledge).
  [[nodiscard]] double predict(const JobFeatures& job) const;

  /// Prediction knowing the job has already run `elapsed_s` seconds.
  [[nodiscard]] double predict_with_elapsed(const JobFeatures& job,
                                            double elapsed_s) const;

 private:
  Last2Options options_;
};

}  // namespace lumos::predict
