file(REMOVE_RECURSE
  "CMakeFiles/subsystems_test.dir/subsystems_test.cpp.o"
  "CMakeFiles/subsystems_test.dir/subsystems_test.cpp.o.d"
  "subsystems_test"
  "subsystems_test.pdb"
  "subsystems_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subsystems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
