# Empty compiler generated dependencies file for subsystems_test.
# This may be replaced when dependencies are built.
