
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/backfill.cpp" "src/sim/CMakeFiles/lumos_sim.dir/backfill.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/backfill.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/lumos_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/lumos_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/node_cluster.cpp" "src/sim/CMakeFiles/lumos_sim.dir/node_cluster.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/node_cluster.cpp.o.d"
  "/root/repo/src/sim/policy.cpp" "src/sim/CMakeFiles/lumos_sim.dir/policy.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/policy.cpp.o.d"
  "/root/repo/src/sim/profile.cpp" "src/sim/CMakeFiles/lumos_sim.dir/profile.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/profile.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/lumos_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/lumos_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/lumos_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lumos_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lumos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
