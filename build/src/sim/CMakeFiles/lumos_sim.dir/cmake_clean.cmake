file(REMOVE_RECURSE
  "CMakeFiles/lumos_sim.dir/backfill.cpp.o"
  "CMakeFiles/lumos_sim.dir/backfill.cpp.o.d"
  "CMakeFiles/lumos_sim.dir/cluster.cpp.o"
  "CMakeFiles/lumos_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/lumos_sim.dir/metrics.cpp.o"
  "CMakeFiles/lumos_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/lumos_sim.dir/node_cluster.cpp.o"
  "CMakeFiles/lumos_sim.dir/node_cluster.cpp.o.d"
  "CMakeFiles/lumos_sim.dir/policy.cpp.o"
  "CMakeFiles/lumos_sim.dir/policy.cpp.o.d"
  "CMakeFiles/lumos_sim.dir/profile.cpp.o"
  "CMakeFiles/lumos_sim.dir/profile.cpp.o.d"
  "CMakeFiles/lumos_sim.dir/simulator.cpp.o"
  "CMakeFiles/lumos_sim.dir/simulator.cpp.o.d"
  "liblumos_sim.a"
  "liblumos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
