file(REMOVE_RECURSE
  "CMakeFiles/lumos_analysis.dir/arrival.cpp.o"
  "CMakeFiles/lumos_analysis.dir/arrival.cpp.o.d"
  "CMakeFiles/lumos_analysis.dir/categories.cpp.o"
  "CMakeFiles/lumos_analysis.dir/categories.cpp.o.d"
  "CMakeFiles/lumos_analysis.dir/domination.cpp.o"
  "CMakeFiles/lumos_analysis.dir/domination.cpp.o.d"
  "CMakeFiles/lumos_analysis.dir/export.cpp.o"
  "CMakeFiles/lumos_analysis.dir/export.cpp.o.d"
  "CMakeFiles/lumos_analysis.dir/failure.cpp.o"
  "CMakeFiles/lumos_analysis.dir/failure.cpp.o.d"
  "CMakeFiles/lumos_analysis.dir/geometry.cpp.o"
  "CMakeFiles/lumos_analysis.dir/geometry.cpp.o.d"
  "CMakeFiles/lumos_analysis.dir/report.cpp.o"
  "CMakeFiles/lumos_analysis.dir/report.cpp.o.d"
  "CMakeFiles/lumos_analysis.dir/user_behavior.cpp.o"
  "CMakeFiles/lumos_analysis.dir/user_behavior.cpp.o.d"
  "CMakeFiles/lumos_analysis.dir/utilization.cpp.o"
  "CMakeFiles/lumos_analysis.dir/utilization.cpp.o.d"
  "CMakeFiles/lumos_analysis.dir/waiting.cpp.o"
  "CMakeFiles/lumos_analysis.dir/waiting.cpp.o.d"
  "liblumos_analysis.a"
  "liblumos_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
