
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/arrival.cpp" "src/analysis/CMakeFiles/lumos_analysis.dir/arrival.cpp.o" "gcc" "src/analysis/CMakeFiles/lumos_analysis.dir/arrival.cpp.o.d"
  "/root/repo/src/analysis/categories.cpp" "src/analysis/CMakeFiles/lumos_analysis.dir/categories.cpp.o" "gcc" "src/analysis/CMakeFiles/lumos_analysis.dir/categories.cpp.o.d"
  "/root/repo/src/analysis/domination.cpp" "src/analysis/CMakeFiles/lumos_analysis.dir/domination.cpp.o" "gcc" "src/analysis/CMakeFiles/lumos_analysis.dir/domination.cpp.o.d"
  "/root/repo/src/analysis/export.cpp" "src/analysis/CMakeFiles/lumos_analysis.dir/export.cpp.o" "gcc" "src/analysis/CMakeFiles/lumos_analysis.dir/export.cpp.o.d"
  "/root/repo/src/analysis/failure.cpp" "src/analysis/CMakeFiles/lumos_analysis.dir/failure.cpp.o" "gcc" "src/analysis/CMakeFiles/lumos_analysis.dir/failure.cpp.o.d"
  "/root/repo/src/analysis/geometry.cpp" "src/analysis/CMakeFiles/lumos_analysis.dir/geometry.cpp.o" "gcc" "src/analysis/CMakeFiles/lumos_analysis.dir/geometry.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/lumos_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/lumos_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/user_behavior.cpp" "src/analysis/CMakeFiles/lumos_analysis.dir/user_behavior.cpp.o" "gcc" "src/analysis/CMakeFiles/lumos_analysis.dir/user_behavior.cpp.o.d"
  "/root/repo/src/analysis/utilization.cpp" "src/analysis/CMakeFiles/lumos_analysis.dir/utilization.cpp.o" "gcc" "src/analysis/CMakeFiles/lumos_analysis.dir/utilization.cpp.o.d"
  "/root/repo/src/analysis/waiting.cpp" "src/analysis/CMakeFiles/lumos_analysis.dir/waiting.cpp.o" "gcc" "src/analysis/CMakeFiles/lumos_analysis.dir/waiting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/lumos_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lumos_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lumos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
