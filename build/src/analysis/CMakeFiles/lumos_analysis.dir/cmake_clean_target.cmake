file(REMOVE_RECURSE
  "liblumos_analysis.a"
)
