# Empty compiler generated dependencies file for lumos_analysis.
# This may be replaced when dependencies are built.
