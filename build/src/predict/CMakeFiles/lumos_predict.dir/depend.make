# Empty dependencies file for lumos_predict.
# This may be replaced when dependencies are built.
