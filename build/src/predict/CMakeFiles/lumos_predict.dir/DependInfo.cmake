
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/features.cpp" "src/predict/CMakeFiles/lumos_predict.dir/features.cpp.o" "gcc" "src/predict/CMakeFiles/lumos_predict.dir/features.cpp.o.d"
  "/root/repo/src/predict/harness.cpp" "src/predict/CMakeFiles/lumos_predict.dir/harness.cpp.o" "gcc" "src/predict/CMakeFiles/lumos_predict.dir/harness.cpp.o.d"
  "/root/repo/src/predict/last2.cpp" "src/predict/CMakeFiles/lumos_predict.dir/last2.cpp.o" "gcc" "src/predict/CMakeFiles/lumos_predict.dir/last2.cpp.o.d"
  "/root/repo/src/predict/status_predictor.cpp" "src/predict/CMakeFiles/lumos_predict.dir/status_predictor.cpp.o" "gcc" "src/predict/CMakeFiles/lumos_predict.dir/status_predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/lumos_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lumos_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lumos_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lumos_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
