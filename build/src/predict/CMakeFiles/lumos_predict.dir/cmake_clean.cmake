file(REMOVE_RECURSE
  "CMakeFiles/lumos_predict.dir/features.cpp.o"
  "CMakeFiles/lumos_predict.dir/features.cpp.o.d"
  "CMakeFiles/lumos_predict.dir/harness.cpp.o"
  "CMakeFiles/lumos_predict.dir/harness.cpp.o.d"
  "CMakeFiles/lumos_predict.dir/last2.cpp.o"
  "CMakeFiles/lumos_predict.dir/last2.cpp.o.d"
  "CMakeFiles/lumos_predict.dir/status_predictor.cpp.o"
  "CMakeFiles/lumos_predict.dir/status_predictor.cpp.o.d"
  "liblumos_predict.a"
  "liblumos_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
