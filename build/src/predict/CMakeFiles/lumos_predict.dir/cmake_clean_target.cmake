file(REMOVE_RECURSE
  "liblumos_predict.a"
)
