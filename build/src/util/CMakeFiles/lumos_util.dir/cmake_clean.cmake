file(REMOVE_RECURSE
  "CMakeFiles/lumos_util.dir/csv.cpp.o"
  "CMakeFiles/lumos_util.dir/csv.cpp.o.d"
  "CMakeFiles/lumos_util.dir/logging.cpp.o"
  "CMakeFiles/lumos_util.dir/logging.cpp.o.d"
  "CMakeFiles/lumos_util.dir/rng.cpp.o"
  "CMakeFiles/lumos_util.dir/rng.cpp.o.d"
  "CMakeFiles/lumos_util.dir/string_util.cpp.o"
  "CMakeFiles/lumos_util.dir/string_util.cpp.o.d"
  "CMakeFiles/lumos_util.dir/table.cpp.o"
  "CMakeFiles/lumos_util.dir/table.cpp.o.d"
  "CMakeFiles/lumos_util.dir/thread_pool.cpp.o"
  "CMakeFiles/lumos_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/lumos_util.dir/time_util.cpp.o"
  "CMakeFiles/lumos_util.dir/time_util.cpp.o.d"
  "liblumos_util.a"
  "liblumos_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
