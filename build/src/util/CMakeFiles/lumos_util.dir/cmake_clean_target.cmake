file(REMOVE_RECURSE
  "liblumos_util.a"
)
