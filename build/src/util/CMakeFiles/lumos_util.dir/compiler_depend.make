# Empty compiler generated dependencies file for lumos_util.
# This may be replaced when dependencies are built.
