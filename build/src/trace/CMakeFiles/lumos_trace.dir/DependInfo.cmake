
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/csv_formats.cpp" "src/trace/CMakeFiles/lumos_trace.dir/csv_formats.cpp.o" "gcc" "src/trace/CMakeFiles/lumos_trace.dir/csv_formats.cpp.o.d"
  "/root/repo/src/trace/swf.cpp" "src/trace/CMakeFiles/lumos_trace.dir/swf.cpp.o" "gcc" "src/trace/CMakeFiles/lumos_trace.dir/swf.cpp.o.d"
  "/root/repo/src/trace/system_spec.cpp" "src/trace/CMakeFiles/lumos_trace.dir/system_spec.cpp.o" "gcc" "src/trace/CMakeFiles/lumos_trace.dir/system_spec.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/lumos_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/lumos_trace.dir/trace.cpp.o.d"
  "/root/repo/src/trace/transform.cpp" "src/trace/CMakeFiles/lumos_trace.dir/transform.cpp.o" "gcc" "src/trace/CMakeFiles/lumos_trace.dir/transform.cpp.o.d"
  "/root/repo/src/trace/validate.cpp" "src/trace/CMakeFiles/lumos_trace.dir/validate.cpp.o" "gcc" "src/trace/CMakeFiles/lumos_trace.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lumos_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lumos_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
