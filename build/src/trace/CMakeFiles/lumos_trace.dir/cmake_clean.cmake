file(REMOVE_RECURSE
  "CMakeFiles/lumos_trace.dir/csv_formats.cpp.o"
  "CMakeFiles/lumos_trace.dir/csv_formats.cpp.o.d"
  "CMakeFiles/lumos_trace.dir/swf.cpp.o"
  "CMakeFiles/lumos_trace.dir/swf.cpp.o.d"
  "CMakeFiles/lumos_trace.dir/system_spec.cpp.o"
  "CMakeFiles/lumos_trace.dir/system_spec.cpp.o.d"
  "CMakeFiles/lumos_trace.dir/trace.cpp.o"
  "CMakeFiles/lumos_trace.dir/trace.cpp.o.d"
  "CMakeFiles/lumos_trace.dir/transform.cpp.o"
  "CMakeFiles/lumos_trace.dir/transform.cpp.o.d"
  "CMakeFiles/lumos_trace.dir/validate.cpp.o"
  "CMakeFiles/lumos_trace.dir/validate.cpp.o.d"
  "liblumos_trace.a"
  "liblumos_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
