# Empty dependencies file for lumos_trace.
# This may be replaced when dependencies are built.
