file(REMOVE_RECURSE
  "liblumos_trace.a"
)
