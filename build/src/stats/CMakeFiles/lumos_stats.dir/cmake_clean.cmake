file(REMOVE_RECURSE
  "CMakeFiles/lumos_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/lumos_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/lumos_stats.dir/correlation.cpp.o"
  "CMakeFiles/lumos_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/lumos_stats.dir/descriptive.cpp.o"
  "CMakeFiles/lumos_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/lumos_stats.dir/ecdf.cpp.o"
  "CMakeFiles/lumos_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/lumos_stats.dir/histogram.cpp.o"
  "CMakeFiles/lumos_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/lumos_stats.dir/kde.cpp.o"
  "CMakeFiles/lumos_stats.dir/kde.cpp.o.d"
  "liblumos_stats.a"
  "liblumos_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
