file(REMOVE_RECURSE
  "liblumos_stats.a"
)
