file(REMOVE_RECURSE
  "liblumos_synth.a"
)
