file(REMOVE_RECURSE
  "CMakeFiles/lumos_synth.dir/arrival.cpp.o"
  "CMakeFiles/lumos_synth.dir/arrival.cpp.o.d"
  "CMakeFiles/lumos_synth.dir/calibration.cpp.o"
  "CMakeFiles/lumos_synth.dir/calibration.cpp.o.d"
  "CMakeFiles/lumos_synth.dir/failure_model.cpp.o"
  "CMakeFiles/lumos_synth.dir/failure_model.cpp.o.d"
  "CMakeFiles/lumos_synth.dir/fit.cpp.o"
  "CMakeFiles/lumos_synth.dir/fit.cpp.o.d"
  "CMakeFiles/lumos_synth.dir/generator.cpp.o"
  "CMakeFiles/lumos_synth.dir/generator.cpp.o.d"
  "CMakeFiles/lumos_synth.dir/lublin.cpp.o"
  "CMakeFiles/lumos_synth.dir/lublin.cpp.o.d"
  "CMakeFiles/lumos_synth.dir/user_model.cpp.o"
  "CMakeFiles/lumos_synth.dir/user_model.cpp.o.d"
  "CMakeFiles/lumos_synth.dir/wait_model.cpp.o"
  "CMakeFiles/lumos_synth.dir/wait_model.cpp.o.d"
  "liblumos_synth.a"
  "liblumos_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
