
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/arrival.cpp" "src/synth/CMakeFiles/lumos_synth.dir/arrival.cpp.o" "gcc" "src/synth/CMakeFiles/lumos_synth.dir/arrival.cpp.o.d"
  "/root/repo/src/synth/calibration.cpp" "src/synth/CMakeFiles/lumos_synth.dir/calibration.cpp.o" "gcc" "src/synth/CMakeFiles/lumos_synth.dir/calibration.cpp.o.d"
  "/root/repo/src/synth/failure_model.cpp" "src/synth/CMakeFiles/lumos_synth.dir/failure_model.cpp.o" "gcc" "src/synth/CMakeFiles/lumos_synth.dir/failure_model.cpp.o.d"
  "/root/repo/src/synth/fit.cpp" "src/synth/CMakeFiles/lumos_synth.dir/fit.cpp.o" "gcc" "src/synth/CMakeFiles/lumos_synth.dir/fit.cpp.o.d"
  "/root/repo/src/synth/generator.cpp" "src/synth/CMakeFiles/lumos_synth.dir/generator.cpp.o" "gcc" "src/synth/CMakeFiles/lumos_synth.dir/generator.cpp.o.d"
  "/root/repo/src/synth/lublin.cpp" "src/synth/CMakeFiles/lumos_synth.dir/lublin.cpp.o" "gcc" "src/synth/CMakeFiles/lumos_synth.dir/lublin.cpp.o.d"
  "/root/repo/src/synth/user_model.cpp" "src/synth/CMakeFiles/lumos_synth.dir/user_model.cpp.o" "gcc" "src/synth/CMakeFiles/lumos_synth.dir/user_model.cpp.o.d"
  "/root/repo/src/synth/wait_model.cpp" "src/synth/CMakeFiles/lumos_synth.dir/wait_model.cpp.o" "gcc" "src/synth/CMakeFiles/lumos_synth.dir/wait_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/lumos_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lumos_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lumos_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lumos_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
