# Empty dependencies file for lumos_synth.
# This may be replaced when dependencies are built.
