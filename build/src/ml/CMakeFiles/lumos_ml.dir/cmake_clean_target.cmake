file(REMOVE_RECURSE
  "liblumos_ml.a"
)
