
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/lumos_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/lumos_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/gbrt.cpp" "src/ml/CMakeFiles/lumos_ml.dir/gbrt.cpp.o" "gcc" "src/ml/CMakeFiles/lumos_ml.dir/gbrt.cpp.o.d"
  "/root/repo/src/ml/linear.cpp" "src/ml/CMakeFiles/lumos_ml.dir/linear.cpp.o" "gcc" "src/ml/CMakeFiles/lumos_ml.dir/linear.cpp.o.d"
  "/root/repo/src/ml/logistic.cpp" "src/ml/CMakeFiles/lumos_ml.dir/logistic.cpp.o" "gcc" "src/ml/CMakeFiles/lumos_ml.dir/logistic.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/lumos_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/lumos_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/lumos_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/lumos_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/lumos_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/lumos_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/tobit.cpp" "src/ml/CMakeFiles/lumos_ml.dir/tobit.cpp.o" "gcc" "src/ml/CMakeFiles/lumos_ml.dir/tobit.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/lumos_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/lumos_ml.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lumos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
