file(REMOVE_RECURSE
  "CMakeFiles/lumos_ml.dir/dataset.cpp.o"
  "CMakeFiles/lumos_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/lumos_ml.dir/gbrt.cpp.o"
  "CMakeFiles/lumos_ml.dir/gbrt.cpp.o.d"
  "CMakeFiles/lumos_ml.dir/linear.cpp.o"
  "CMakeFiles/lumos_ml.dir/linear.cpp.o.d"
  "CMakeFiles/lumos_ml.dir/logistic.cpp.o"
  "CMakeFiles/lumos_ml.dir/logistic.cpp.o.d"
  "CMakeFiles/lumos_ml.dir/matrix.cpp.o"
  "CMakeFiles/lumos_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/lumos_ml.dir/metrics.cpp.o"
  "CMakeFiles/lumos_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/lumos_ml.dir/mlp.cpp.o"
  "CMakeFiles/lumos_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/lumos_ml.dir/tobit.cpp.o"
  "CMakeFiles/lumos_ml.dir/tobit.cpp.o.d"
  "CMakeFiles/lumos_ml.dir/tree.cpp.o"
  "CMakeFiles/lumos_ml.dir/tree.cpp.o.d"
  "liblumos_ml.a"
  "liblumos_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
