file(REMOVE_RECURSE
  "liblumos_core.a"
)
