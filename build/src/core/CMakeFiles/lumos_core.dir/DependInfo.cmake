
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backfill_study.cpp" "src/core/CMakeFiles/lumos_core.dir/backfill_study.cpp.o" "gcc" "src/core/CMakeFiles/lumos_core.dir/backfill_study.cpp.o.d"
  "/root/repo/src/core/estimate_study.cpp" "src/core/CMakeFiles/lumos_core.dir/estimate_study.cpp.o" "gcc" "src/core/CMakeFiles/lumos_core.dir/estimate_study.cpp.o.d"
  "/root/repo/src/core/fault_aware_study.cpp" "src/core/CMakeFiles/lumos_core.dir/fault_aware_study.cpp.o" "gcc" "src/core/CMakeFiles/lumos_core.dir/fault_aware_study.cpp.o.d"
  "/root/repo/src/core/study.cpp" "src/core/CMakeFiles/lumos_core.dir/study.cpp.o" "gcc" "src/core/CMakeFiles/lumos_core.dir/study.cpp.o.d"
  "/root/repo/src/core/takeaways.cpp" "src/core/CMakeFiles/lumos_core.dir/takeaways.cpp.o" "gcc" "src/core/CMakeFiles/lumos_core.dir/takeaways.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/lumos_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/lumos_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lumos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/lumos_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lumos_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lumos_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lumos_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lumos_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
