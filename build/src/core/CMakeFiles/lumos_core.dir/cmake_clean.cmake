file(REMOVE_RECURSE
  "CMakeFiles/lumos_core.dir/backfill_study.cpp.o"
  "CMakeFiles/lumos_core.dir/backfill_study.cpp.o.d"
  "CMakeFiles/lumos_core.dir/estimate_study.cpp.o"
  "CMakeFiles/lumos_core.dir/estimate_study.cpp.o.d"
  "CMakeFiles/lumos_core.dir/fault_aware_study.cpp.o"
  "CMakeFiles/lumos_core.dir/fault_aware_study.cpp.o.d"
  "CMakeFiles/lumos_core.dir/study.cpp.o"
  "CMakeFiles/lumos_core.dir/study.cpp.o.d"
  "CMakeFiles/lumos_core.dir/takeaways.cpp.o"
  "CMakeFiles/lumos_core.dir/takeaways.cpp.o.d"
  "liblumos_core.a"
  "liblumos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
