# Empty compiler generated dependencies file for lumos.
# This may be replaced when dependencies are built.
