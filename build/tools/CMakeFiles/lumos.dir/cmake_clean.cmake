file(REMOVE_RECURSE
  "CMakeFiles/lumos.dir/lumos_cli.cpp.o"
  "CMakeFiles/lumos.dir/lumos_cli.cpp.o.d"
  "lumos"
  "lumos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
