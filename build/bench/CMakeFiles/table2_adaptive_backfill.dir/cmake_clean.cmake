file(REMOVE_RECURSE
  "CMakeFiles/table2_adaptive_backfill.dir/table2_adaptive_backfill.cpp.o"
  "CMakeFiles/table2_adaptive_backfill.dir/table2_adaptive_backfill.cpp.o.d"
  "table2_adaptive_backfill"
  "table2_adaptive_backfill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_adaptive_backfill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
