# Empty dependencies file for table2_adaptive_backfill.
# This may be replaced when dependencies are built.
