file(REMOVE_RECURSE
  "CMakeFiles/fig7_failure_geometry.dir/fig7_failure_geometry.cpp.o"
  "CMakeFiles/fig7_failure_geometry.dir/fig7_failure_geometry.cpp.o.d"
  "fig7_failure_geometry"
  "fig7_failure_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_failure_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
