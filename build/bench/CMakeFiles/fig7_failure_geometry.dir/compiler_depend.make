# Empty compiler generated dependencies file for fig7_failure_geometry.
# This may be replaced when dependencies are built.
