file(REMOVE_RECURSE
  "CMakeFiles/fig5_wait_geometry.dir/fig5_wait_geometry.cpp.o"
  "CMakeFiles/fig5_wait_geometry.dir/fig5_wait_geometry.cpp.o.d"
  "fig5_wait_geometry"
  "fig5_wait_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_wait_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
