
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_wait_geometry.cpp" "bench/CMakeFiles/fig5_wait_geometry.dir/fig5_wait_geometry.cpp.o" "gcc" "bench/CMakeFiles/fig5_wait_geometry.dir/fig5_wait_geometry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lumos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lumos_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/lumos_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lumos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/lumos_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lumos_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lumos_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lumos_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lumos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
