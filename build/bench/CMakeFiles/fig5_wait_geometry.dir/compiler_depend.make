# Empty compiler generated dependencies file for fig5_wait_geometry.
# This may be replaced when dependencies are built.
