file(REMOVE_RECURSE
  "CMakeFiles/ext_fragmentation.dir/ext_fragmentation.cpp.o"
  "CMakeFiles/ext_fragmentation.dir/ext_fragmentation.cpp.o.d"
  "ext_fragmentation"
  "ext_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
