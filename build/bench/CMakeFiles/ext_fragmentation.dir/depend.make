# Empty dependencies file for ext_fragmentation.
# This may be replaced when dependencies are built.
