file(REMOVE_RECURSE
  "CMakeFiles/fig2_corehours.dir/fig2_corehours.cpp.o"
  "CMakeFiles/fig2_corehours.dir/fig2_corehours.cpp.o.d"
  "fig2_corehours"
  "fig2_corehours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_corehours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
