# Empty dependencies file for fig2_corehours.
# This may be replaced when dependencies are built.
