# Empty compiler generated dependencies file for ext_status_prediction.
# This may be replaced when dependencies are built.
