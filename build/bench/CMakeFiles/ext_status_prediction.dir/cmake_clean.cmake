file(REMOVE_RECURSE
  "CMakeFiles/ext_status_prediction.dir/ext_status_prediction.cpp.o"
  "CMakeFiles/ext_status_prediction.dir/ext_status_prediction.cpp.o.d"
  "ext_status_prediction"
  "ext_status_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_status_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
