# Empty dependencies file for fig6_status.
# This may be replaced when dependencies are built.
