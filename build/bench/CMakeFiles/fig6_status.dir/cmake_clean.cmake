file(REMOVE_RECURSE
  "CMakeFiles/fig6_status.dir/fig6_status.cpp.o"
  "CMakeFiles/fig6_status.dir/fig6_status.cpp.o.d"
  "fig6_status"
  "fig6_status.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_status.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
