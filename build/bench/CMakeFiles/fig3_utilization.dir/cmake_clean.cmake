file(REMOVE_RECURSE
  "CMakeFiles/fig3_utilization.dir/fig3_utilization.cpp.o"
  "CMakeFiles/fig3_utilization.dir/fig3_utilization.cpp.o.d"
  "fig3_utilization"
  "fig3_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
