file(REMOVE_RECURSE
  "CMakeFiles/fig11_user_status.dir/fig11_user_status.cpp.o"
  "CMakeFiles/fig11_user_status.dir/fig11_user_status.cpp.o.d"
  "fig11_user_status"
  "fig11_user_status.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_user_status.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
