# Empty dependencies file for fig11_user_status.
# This may be replaced when dependencies are built.
