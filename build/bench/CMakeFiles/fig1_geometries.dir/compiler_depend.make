# Empty compiler generated dependencies file for fig1_geometries.
# This may be replaced when dependencies are built.
