file(REMOVE_RECURSE
  "CMakeFiles/fig1_geometries.dir/fig1_geometries.cpp.o"
  "CMakeFiles/fig1_geometries.dir/fig1_geometries.cpp.o.d"
  "fig1_geometries"
  "fig1_geometries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_geometries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
