# Empty dependencies file for fig8_user_repetition.
# This may be replaced when dependencies are built.
