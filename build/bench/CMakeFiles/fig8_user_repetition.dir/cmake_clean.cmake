file(REMOVE_RECURSE
  "CMakeFiles/fig8_user_repetition.dir/fig8_user_repetition.cpp.o"
  "CMakeFiles/fig8_user_repetition.dir/fig8_user_repetition.cpp.o.d"
  "fig8_user_repetition"
  "fig8_user_repetition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_user_repetition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
