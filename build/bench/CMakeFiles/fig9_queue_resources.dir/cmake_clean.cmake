file(REMOVE_RECURSE
  "CMakeFiles/fig9_queue_resources.dir/fig9_queue_resources.cpp.o"
  "CMakeFiles/fig9_queue_resources.dir/fig9_queue_resources.cpp.o.d"
  "fig9_queue_resources"
  "fig9_queue_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_queue_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
