# Empty compiler generated dependencies file for fig9_queue_resources.
# This may be replaced when dependencies are built.
