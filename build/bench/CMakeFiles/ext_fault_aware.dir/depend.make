# Empty dependencies file for ext_fault_aware.
# This may be replaced when dependencies are built.
