file(REMOVE_RECURSE
  "CMakeFiles/ext_fault_aware.dir/ext_fault_aware.cpp.o"
  "CMakeFiles/ext_fault_aware.dir/ext_fault_aware.cpp.o.d"
  "ext_fault_aware"
  "ext_fault_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fault_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
