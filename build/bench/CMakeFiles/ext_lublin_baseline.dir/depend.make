# Empty dependencies file for ext_lublin_baseline.
# This may be replaced when dependencies are built.
