file(REMOVE_RECURSE
  "CMakeFiles/ext_lublin_baseline.dir/ext_lublin_baseline.cpp.o"
  "CMakeFiles/ext_lublin_baseline.dir/ext_lublin_baseline.cpp.o.d"
  "ext_lublin_baseline"
  "ext_lublin_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_lublin_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
