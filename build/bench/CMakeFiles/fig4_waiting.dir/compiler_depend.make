# Empty compiler generated dependencies file for fig4_waiting.
# This may be replaced when dependencies are built.
