file(REMOVE_RECURSE
  "CMakeFiles/fig4_waiting.dir/fig4_waiting.cpp.o"
  "CMakeFiles/fig4_waiting.dir/fig4_waiting.cpp.o.d"
  "fig4_waiting"
  "fig4_waiting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_waiting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
