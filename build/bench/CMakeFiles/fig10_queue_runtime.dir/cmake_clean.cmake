file(REMOVE_RECURSE
  "CMakeFiles/fig10_queue_runtime.dir/fig10_queue_runtime.cpp.o"
  "CMakeFiles/fig10_queue_runtime.dir/fig10_queue_runtime.cpp.o.d"
  "fig10_queue_runtime"
  "fig10_queue_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_queue_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
