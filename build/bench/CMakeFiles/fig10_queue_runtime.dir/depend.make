# Empty dependencies file for fig10_queue_runtime.
# This may be replaced when dependencies are built.
