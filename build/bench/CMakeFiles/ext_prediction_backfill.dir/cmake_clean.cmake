file(REMOVE_RECURSE
  "CMakeFiles/ext_prediction_backfill.dir/ext_prediction_backfill.cpp.o"
  "CMakeFiles/ext_prediction_backfill.dir/ext_prediction_backfill.cpp.o.d"
  "ext_prediction_backfill"
  "ext_prediction_backfill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_prediction_backfill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
