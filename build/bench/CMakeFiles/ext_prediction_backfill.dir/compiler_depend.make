# Empty compiler generated dependencies file for ext_prediction_backfill.
# This may be replaced when dependencies are built.
