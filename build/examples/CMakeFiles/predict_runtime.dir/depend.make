# Empty dependencies file for predict_runtime.
# This may be replaced when dependencies are built.
