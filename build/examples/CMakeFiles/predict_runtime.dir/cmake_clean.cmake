file(REMOVE_RECURSE
  "CMakeFiles/predict_runtime.dir/predict_runtime.cpp.o"
  "CMakeFiles/predict_runtime.dir/predict_runtime.cpp.o.d"
  "predict_runtime"
  "predict_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
