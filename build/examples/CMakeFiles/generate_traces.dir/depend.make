# Empty dependencies file for generate_traces.
# This may be replaced when dependencies are built.
