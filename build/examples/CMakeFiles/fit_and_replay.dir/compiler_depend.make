# Empty compiler generated dependencies file for fit_and_replay.
# This may be replaced when dependencies are built.
