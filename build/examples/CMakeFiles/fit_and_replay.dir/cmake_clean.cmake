file(REMOVE_RECURSE
  "CMakeFiles/fit_and_replay.dir/fit_and_replay.cpp.o"
  "CMakeFiles/fit_and_replay.dir/fit_and_replay.cpp.o.d"
  "fit_and_replay"
  "fit_and_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fit_and_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
