// google-benchmark micro benchmarks: prediction-model training/inference
// throughput on realistic feature extracts.
#include <benchmark/benchmark.h>

#include "core/lumos.hpp"
#include "ml/gbrt.hpp"
#include "ml/linear.hpp"
#include "ml/mlp.hpp"
#include "ml/tobit.hpp"
#include "predict/features.hpp"

namespace {

lumos::ml::Dataset make_dataset(std::size_t max_jobs) {
  lumos::synth::GeneratorOptions options;
  options.duration_days = 7.0;
  options.max_jobs = max_jobs;
  const auto trace = lumos::synth::generate_system("Philly", options);
  const auto feats = lumos::predict::extract_features(trace);
  return lumos::predict::build_dataset(feats, {});
}

void BM_FitLinear(benchmark::State& state) {
  const auto data = make_dataset(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    lumos::ml::LinearRegression model;
    model.fit(data);
    benchmark::DoNotOptimize(model.weights().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(data.size()) *
                          state.iterations());
}
BENCHMARK(BM_FitLinear)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_FitGbrt(benchmark::State& state) {
  const auto data = make_dataset(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    lumos::ml::GbrtOptions options;
    options.n_trees = 30;
    lumos::ml::GradientBoosting model(options);
    model.fit(data);
    benchmark::DoNotOptimize(model.tree_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(data.size()) *
                          state.iterations());
}
BENCHMARK(BM_FitGbrt)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_FitMlp(benchmark::State& state) {
  const auto data = make_dataset(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    lumos::ml::MlpOptions options;
    options.epochs = 5;
    lumos::ml::Mlp model(options);
    model.fit(data);
    benchmark::DoNotOptimize(&model);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(data.size()) *
                          state.iterations());
}
BENCHMARK(BM_FitMlp)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_PredictGbrt(benchmark::State& state) {
  const auto data = make_dataset(4000);
  lumos::ml::GbrtOptions options;
  options.n_trees = 30;
  lumos::ml::GradientBoosting model(options);
  model.fit(data);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(data.x.row(i % data.size())));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictGbrt);

}  // namespace

BENCHMARK_MAIN();
