// Extension harness: scheduling under node failures (lumos::fault) — how
// EASY vs adaptive relaxed backfilling degrade as nodes get flakier, and
// how much interrupted work each retry policy salvages. MTBF points are
// scales of the calibrated per-node MTBF (synth::fault_config_for):
// "inf" = fault-free baseline, "1x" = calibrated, "0.25x" = 4x flakier.
#include <ostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "fault/fault.hpp"
#include "harnesses.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "synth/calibration.hpp"
#include "synth/failure_model.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace lumos::bench {

namespace {

struct MtbfPoint {
  const char* label;
  double scale;  ///< multiplier on the calibrated MTBF; 0 = fault-free
};

std::string short_backfill(sim::BackfillKind kind) {
  return kind == sim::BackfillKind::Easy ? "easy" : "adaptive";
}

}  // namespace

obs::Report run_ext_node_failures(const Args& args_in, std::ostream& out) {
  Args args = args_in;
  if (args.study.systems.empty()) args.study.systems = {"Theta"};
  if (!args.study.duration_days) args.study.duration_days = 14.0;
  banner(out, "Extension: scheduling under node failures (lumos::fault)",
         "flakier nodes push waits up and goodput down; adaptive relaxed "
         "backfilling keeps its wait advantage under faults, and "
         "resubmit-with-backoff salvages work that Abandon writes off");

  obs::Report report;
  report.harness = "ext_node_failures";
  report.figure = "Extension: node failures";

  const auto study = make_study(args);
  util::TextTable t({"System", "Backfill", "MTBF", "Retry", "wait (s)",
                     "util", "fails", "interrupts", "abandoned",
                     "goodput share", "wasted core-h"});
  for (const auto& trace : study.traces()) {
    const auto cal = synth::calibration_for(trace.spec().name);
    const fault::FaultConfig calibrated = synth::fault_config_for(cal);
    const MtbfPoint points[] = {{"inf", 0.0}, {"1x", 1.0}, {"0.25x", 0.25}};
    for (auto kind : {sim::BackfillKind::Easy,
                      sim::BackfillKind::AdaptiveRelaxed}) {
      for (const auto& point : points) {
        const bool faulty = point.scale > 0.0;
        std::vector<fault::RetryPolicy> policies{
            fault::RetryPolicy::Resubmit};
        if (faulty) {
          policies.push_back(fault::RetryPolicy::RequeueFront);
          policies.push_back(fault::RetryPolicy::Abandon);
        }
        for (const auto policy : policies) {
          sim::SimConfig config;
          config.backfill.kind = kind;
          if (faulty) {
            config.fault = calibrated;
            config.fault.node_mtbf_s = calibrated.node_mtbf_s * point.scale;
            config.fault.retry = policy;
            config.fault.seed = args.study.seed;
          }
          const auto result = sim::simulate(trace, config);
          const auto metrics = sim::compute_metrics(trace, result);
          const double goodput = result.goodput_core_hours;
          const double wasted = result.wasted_core_hours;
          const double share =
              goodput + wasted > 0.0 ? goodput / (goodput + wasted) : 1.0;
          const std::string retry_label =
              faulty ? fault::to_string(policy) : std::string("none");
          const std::string key = trace.spec().name + "." +
                                  short_backfill(kind) + "." + point.label +
                                  "." + retry_label;
          report.set("goodput_share." + key, share);
          report.set("wasted_core_hours." + key, wasted);
          report.set("wait_s." + key, metrics.avg_wait);
          t.add_row({trace.spec().name, std::string(to_string(kind)),
                     point.label, retry_label,
                     util::fixed(metrics.avg_wait, 1),
                     util::fixed(metrics.utilization, 4),
                     std::to_string(result.counters.node_failures),
                     std::to_string(result.counters.jobs_interrupted),
                     std::to_string(result.abandoned_jobs),
                     util::fixed(share, 4), util::fixed(wasted, 1)});
        }
      }
    }
  }
  out << t.render();
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_ext_node_failures)
