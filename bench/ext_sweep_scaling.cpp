// Extension harness: sharded sweep scaling (sim::sweep_shards).
//
// Runs a (system × policy × backfill) sweep grid twice — serially
// (threads=1) and sharded over 8 ThreadPool workers — and checks the
// sharded results are bit-identical to the serial ones, point for point
// and metric for metric (the determinism contract of DESIGN.md §4f).
// Publishes the throughput/speedup gauges the bench:perf stage gates on:
//   sim.jobs_per_sec / sim.events_per_sec  (sharded run)
//   sweep.speedup                          (serial wall / sharded wall)
// Rates are gauges, not metrics: the deterministic `metrics` section
// carries the per-point scheduling results and the identity verdict.
#include <algorithm>
#include <cctype>
#include <ostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "harnesses.hpp"
#include "obs/registry.hpp"
#include "sim/sweep.hpp"
#include "synth/generator.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace lumos::bench {

namespace {

constexpr std::size_t kShardThreads = 8;

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

obs::Report run_ext_sweep_scaling(const Args& args_in, std::ostream& out) {
  Args args = args_in;
  if (args.study.systems.empty()) args.study.systems = {"Theta", "Philly"};
  banner(out, "Extension: sharded sweep scaling (sim::sweep_shards)",
         "sharding independent sweep points over the thread pool scales "
         "near-linearly while every point stays bit-identical to the "
         "serial run (private per-shard registries, index-ordered merge)");

  obs::Report report;
  report.harness = "ext_sweep_scaling";
  report.figure = "Extension: sweep scaling";

  std::vector<trace::Trace> traces;
  traces.reserve(args.study.systems.size());
  std::size_t jobs_per_round = 0;
  for (const auto& system : args.study.systems) {
    synth::GeneratorOptions options;
    options.seed = args.study.seed;
    options.duration_days = args.days_or(7.0);
    traces.push_back(synth::generate_system(system, options));
  }

  std::vector<sim::SweepPoint> points;
  for (std::size_t ti = 0; ti < traces.size(); ++ti) {
    for (auto policy : {sim::PolicyKind::Fcfs, sim::PolicyKind::Sjf}) {
      for (auto kind : {sim::BackfillKind::Easy,
                        sim::BackfillKind::AdaptiveRelaxed}) {
        sim::SweepPoint point;
        point.trace_index = ti;
        point.config.policy = policy;
        point.config.backfill.kind = kind;
        point.label = lower(args.study.systems[ti]) + "." +
                      std::string(to_string(policy)) + "." +
                      std::string(to_string(kind));
        points.push_back(point);
        jobs_per_round += traces[ti].size();
      }
    }
  }

  // Deterministic repeat count: size the grid to ~200k simulated jobs so
  // smoke traces (~200 jobs/system) still yield stable wall times and
  // enough parallel slack for 8 workers to show their speedup.
  const std::size_t repeats = std::max<std::size_t>(
      1, 200000 / std::max<std::size_t>(std::size_t{1}, jobs_per_round));

  auto& registry = obs::Registry::global();
  sim::SweepOptions serial_options;
  serial_options.threads = 1;
  serial_options.repeats = repeats;
  double serial_seconds = 0.0;
  sim::SweepOutcome serial;
  {
    obs::ScopedTimer timer(registry.histogram("sweep.serial_seconds"));
    serial = sim::sweep_shards(traces, points, serial_options);
    serial_seconds = timer.elapsed_seconds();
  }

  sim::SweepOptions sharded_options = serial_options;
  sharded_options.threads = kShardThreads;
  double sharded_seconds = 0.0;
  sim::SweepOutcome sharded;
  {
    obs::ScopedTimer timer(registry.histogram("sweep.sharded_seconds"));
    sharded = sim::sweep_shards(traces, points, sharded_options);
    sharded_seconds = timer.elapsed_seconds();
  }

  // Golden bit-identity: every sharded point equals the serial run,
  // result- and metric-for-metric, and the index-ordered merges agree.
  std::size_t identical = 0;
  util::TextTable t({"point", "wait (s)", "util", "events", "identical"});
  std::uint64_t events_per_round = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& s = serial.shards[i];
    const auto& p = sharded.shards[i];
    const bool same = s.result == p.result && s.metrics == p.metrics;
    if (same) ++identical;
    events_per_round += s.result.counters.events;
    report.set("wait_s." + points[i].label, s.metrics.avg_wait);
    report.set("util." + points[i].label, s.metrics.utilization);
    t.add_row({points[i].label, util::fixed(s.metrics.avg_wait, 1),
               util::fixed(s.metrics.utilization, 4),
               std::to_string(s.result.counters.events),
               same ? "yes" : "NO"});
  }
  const bool merged_same = serial.merged.counters == sharded.merged.counters;
  report.set("sweep.points", static_cast<double>(points.size()));
  report.set("sweep.points_identical", static_cast<double>(identical));
  report.set("sweep.merged_counters_identical", merged_same ? 1.0 : 0.0);
  if (identical != points.size() || !merged_same) {
    throw InternalError(
        "sharded sweep diverged from the serial reference (" +
        std::to_string(identical) + "/" + std::to_string(points.size()) +
        " points identical)");
  }

  const double speedup =
      sharded_seconds > 0.0 ? serial_seconds / sharded_seconds : 0.0;
  const double total_jobs = static_cast<double>(jobs_per_round) *
                            static_cast<double>(repeats);
  registry.gauge("sweep.speedup").set(speedup);
  registry.gauge("sweep.threads").set(static_cast<double>(kShardThreads));
  registry.gauge("sweep.repeats").set(static_cast<double>(repeats));
  registry.gauge("sim.jobs_per_sec")
      .set(sharded_seconds > 0.0 ? total_jobs / sharded_seconds : 0.0);
  registry.gauge("sim.events_per_sec")
      .set(sharded_seconds > 0.0
               ? static_cast<double>(events_per_round) *
                     static_cast<double>(repeats) / sharded_seconds
               : 0.0);
  // The sharded run's merged counters become this harness's sim.* section.
  registry.merge(sharded.merged);

  out << t.render();
  out << points.size() << " points x " << repeats << " repeats: serial "
      << util::fixed(serial_seconds, 3) << " s, sharded ("
      << kShardThreads << " threads) " << util::fixed(sharded_seconds, 3)
      << " s, speedup " << util::fixed(speedup, 2) << "x\n";
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_ext_sweep_scaling)
