// In-process entry points for every bench harness, plus the registry the
// unified bench_runner iterates. Each figure/table .cpp defines its
// `run_<name>` here-declared function and also compiles standalone via
// LUMOS_BENCH_MAIN (common.hpp documents the two-build scheme). The
// micro-benchmark equivalents (run_micro_sim / run_micro_ml) live in
// harnesses.cpp: the google-benchmark binaries cannot run in-process, so
// the runner executes lightweight single-shot versions instead.
#pragma once

#include <iosfwd>
#include <string_view>
#include <vector>

#include "common.hpp"

namespace lumos::bench {

obs::Report run_table1_traces(const Args& args, std::ostream& out);
obs::Report run_fig1_geometries(const Args& args, std::ostream& out);
obs::Report run_fig2_corehours(const Args& args, std::ostream& out);
obs::Report run_fig3_utilization(const Args& args, std::ostream& out);
obs::Report run_fig4_waiting(const Args& args, std::ostream& out);
obs::Report run_fig5_wait_geometry(const Args& args, std::ostream& out);
obs::Report run_fig6_status(const Args& args, std::ostream& out);
obs::Report run_fig7_failure_geometry(const Args& args, std::ostream& out);
obs::Report run_fig8_user_repetition(const Args& args, std::ostream& out);
obs::Report run_fig9_queue_resources(const Args& args, std::ostream& out);
obs::Report run_fig10_queue_runtime(const Args& args, std::ostream& out);
obs::Report run_fig11_user_status(const Args& args, std::ostream& out);
obs::Report run_fig12_prediction(const Args& args, std::ostream& out);
obs::Report run_table2_adaptive_backfill(const Args& args, std::ostream& out);
obs::Report run_ext_prediction_backfill(const Args& args, std::ostream& out);
obs::Report run_ext_status_prediction(const Args& args, std::ostream& out);
obs::Report run_ext_fragmentation(const Args& args, std::ostream& out);
obs::Report run_ext_fault_aware(const Args& args, std::ostream& out);
obs::Report run_ext_lublin_baseline(const Args& args, std::ostream& out);
obs::Report run_ext_node_failures(const Args& args, std::ostream& out);
obs::Report run_ext_dag_hedging(const Args& args, std::ostream& out);
obs::Report run_ext_sweep_scaling(const Args& args, std::ostream& out);
obs::Report run_ext_stream_ingest(const Args& args, std::ostream& out);
obs::Report run_ext_serve_chaos(const Args& args, std::ostream& out);
obs::Report run_micro_sim(const Args& args, std::ostream& out);
obs::Report run_micro_ml(const Args& args, std::ostream& out);

struct HarnessInfo {
  std::string_view name;    ///< binary / JSON-entry name
  std::string_view figure;  ///< paper artefact ("Figure 4", "Table 2", ...)
  obs::Report (*run)(const Args& args, std::ostream& out);
  /// Metric-key prefixes that must match at least one emitted metric —
  /// the contract docs/FIGURES.md documents and bench_runner validates.
  std::vector<std::string_view> required_metrics;
};

/// Every harness, in paper order (figures, tables, extensions, micro).
const std::vector<HarnessInfo>& all_harnesses();

}  // namespace lumos::bench
