// Fig 9: requested resources vs queue length at submission.
#include <iostream>

#include "analysis/report.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  const auto args = lumos::bench::parse_args(argc, argv);
  lumos::bench::banner(
      "Fig 9: requested size mix vs queue length",
      "as the queue grows users request smaller jobs on every system; under "
      "the longest Philly queues nearly all submissions are 1 GPU");
  const auto study = lumos::bench::make_study(args);
  std::cout << lumos::analysis::render_queue_behavior_size(
      study.queue_behaviors());
  return 0;
}
