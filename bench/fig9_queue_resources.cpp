// Fig 9: requested resources vs queue length at submission.
#include <ostream>

#include "analysis/report.hpp"
#include "common.hpp"
#include "harnesses.hpp"

namespace lumos::bench {

obs::Report run_fig9_queue_resources(const Args& args, std::ostream& out) {
  banner(out, "Fig 9: requested size mix vs queue length",
         "as the queue grows users request smaller jobs on every system; "
         "under the longest Philly queues nearly all submissions are 1 GPU");
  const auto study = make_study(args);
  const auto qbs = study.queue_behaviors();
  out << analysis::render_queue_behavior_size(qbs);

  obs::Report report;
  report.harness = "fig9_queue_resources";
  report.figure = "Figure 9";
  for (const auto& q : qbs) {
    report.set("mean_cores_calm." + q.system, q.mean_cores[0]);
    report.set("mean_cores_congested." + q.system,
               q.mean_cores[analysis::kNumQueueBuckets - 1]);
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_fig9_queue_resources)
