// Table I: overview of candidate job traces and the selection outcome,
// plus the realized statistics of the five synthesised stand-ins.
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto args = lumos::bench::parse_args(argc, argv);
  lumos::bench::banner(
      "Table I: public job traces, selection flags, and synthetic stand-ins",
      "five selected systems (Mira, Theta, Blue Waters, Philly, Helios); "
      "others excluded for size/count/consistency");

  lumos::util::TextTable t({"Dataset", "Affiliation", "Years", "Jobs",
                            "Nodes", "Cores", "GPUs", "Large", "User",
                            "Status", "Consistent", "Selected"});
  for (const auto& c : lumos::trace::table1_candidates()) {
    t.add_row({c.name, c.affiliation, c.years, c.job_count, c.nodes, c.cores,
               c.gpus, c.large_scale ? "yes" : "NO", c.user_info ? "yes" : "NO",
               c.job_status ? "yes" : "NO", c.info_consistent ? "yes" : "NO",
               c.selected ? "yes" : ("NO: " + c.exclusion_reason)});
  }
  std::cout << t.render() << '\n';

  std::cout << "Synthetic stand-ins actually generated:\n";
  const auto study = lumos::bench::make_study(args);
  lumos::util::TextTable s({"System", "Window", "Jobs", "Users", "Capacity",
                            "Kind", "VCs", "Validation"});
  for (const auto& trace : study.traces()) {
    const auto& spec = trace.spec();
    const auto report = lumos::trace::validate(trace);
    s.add_row({spec.name, spec.trace_window,
               lumos::util::with_commas(static_cast<long long>(trace.size())),
               std::to_string(trace.user_count()),
               lumos::util::with_commas(spec.primary_capacity()),
               std::string(to_string(spec.primary_kind)),
               std::to_string(spec.virtual_clusters),
               report.consistent() ? "OK" : "FAIL"});
  }
  std::cout << s.render();
  return 0;
}
