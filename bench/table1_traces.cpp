// Table I: overview of candidate job traces and the selection outcome,
// plus the realized statistics of the five synthesised stand-ins.
#include <cstddef>
#include <ostream>

#include "common.hpp"
#include "harnesses.hpp"
#include "trace/validate.hpp"
#include "util/table.hpp"

namespace lumos::bench {

obs::Report run_table1_traces(const Args& args, std::ostream& out) {
  banner(out,
         "Table I: public job traces, selection flags, and synthetic "
         "stand-ins",
         "five selected systems (Mira, Theta, Blue Waters, Philly, Helios); "
         "others excluded for size/count/consistency");

  util::TextTable t({"Dataset", "Affiliation", "Years", "Jobs", "Nodes",
                     "Cores", "GPUs", "Large", "User", "Status", "Consistent",
                     "Selected"});
  for (const auto& c : trace::table1_candidates()) {
    t.add_row({c.name, c.affiliation, c.years, c.job_count, c.nodes, c.cores,
               c.gpus, c.large_scale ? "yes" : "NO", c.user_info ? "yes" : "NO",
               c.job_status ? "yes" : "NO", c.info_consistent ? "yes" : "NO",
               c.selected ? "yes" : ("NO: " + c.exclusion_reason)});
  }
  out << t.render() << '\n';

  out << "Synthetic stand-ins actually generated:\n";
  const auto study = make_study(args);
  obs::Report report;
  report.harness = "table1_traces";
  report.figure = "Table 1";
  double validation_failures = 0.0;
  std::size_t quarantined = 0;
  util::TextTable s({"System", "Window", "Jobs", "Users", "Capacity", "Kind",
                     "VCs", "Validation"});
  for (const auto& trace : study.traces()) {
    const auto& spec = trace.spec();
    const auto vreport = trace::validate(trace);
    if (!vreport.consistent()) validation_failures += 1.0;
    // Repair path: quarantine offending jobs instead of aborting the run.
    // Synthetic stand-ins are expected to come through untouched.
    trace::Trace repaired = trace;
    const auto sreport = trace::sanitize(repaired, vreport);
    quarantined += sreport.dropped();
    report.set("jobs." + spec.name, static_cast<double>(trace.size()));
    report.set("users." + spec.name, static_cast<double>(trace.user_count()));
    s.add_row({spec.name, spec.trace_window,
               util::with_commas(static_cast<long long>(trace.size())),
               std::to_string(trace.user_count()),
               util::with_commas(spec.primary_capacity()),
               std::string(to_string(spec.primary_kind)),
               std::to_string(spec.virtual_clusters),
               vreport.consistent() ? "OK"
                                    : "FAIL (" + sreport.to_string() + ")"});
  }
  report.set("validation_failures", validation_failures);
  out << s.render();
  if (quarantined > 0) {
    out << "sanitize: quarantined " << quarantined
        << " jobs across all systems\n";
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_table1_traces)
