// Fig 8: per-user resource-configuration repetition.
#include <iostream>

#include "analysis/report.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  const auto args = lumos::bench::parse_args(argc, argv);
  lumos::bench::banner(
      "Fig 8: cumulative share of a user's top-k resource-config groups",
      "top-10 groups cover ~90% of jobs on every system; at top-3 the HPC "
      "systems already pass 80% while DL (Philly/Helios) stay below ~60%");
  const auto study = lumos::bench::make_study(args);
  std::cout << lumos::analysis::render_repetition(study.repetitions());
  return 0;
}
