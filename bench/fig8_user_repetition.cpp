// Fig 8: per-user resource-configuration repetition.
#include <ostream>

#include "analysis/report.hpp"
#include "common.hpp"
#include "harnesses.hpp"

namespace lumos::bench {

obs::Report run_fig8_user_repetition(const Args& args, std::ostream& out) {
  banner(out,
         "Fig 8: cumulative share of a user's top-k resource-config groups",
         "top-10 groups cover ~90% of jobs on every system; at top-3 the "
         "HPC systems already pass 80% while DL (Philly/Helios) stay below "
         "~60%");
  const auto study = make_study(args);
  const auto reps = study.repetitions();
  out << analysis::render_repetition(reps);

  obs::Report report;
  report.harness = "fig8_user_repetition";
  report.figure = "Figure 8";
  for (const auto& r : reps) {
    report.set("top3_share." + r.system, r.cumulative_share[2]);
    report.set("top10_share." + r.system, r.cumulative_share[9]);
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_fig8_user_repetition)
