// Fig 5: waiting time correlated with job size and runtime categories.
#include <iostream>

#include "analysis/report.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  const auto args = lumos::bench::parse_args(argc, argv);
  lumos::bench::banner(
      "Fig 5: wait time vs job size / runtime",
      "middle-SIZE jobs wait longest everywhere except Theta (largest "
      "wait longest there); LONG jobs wait longest on every system "
      "(backfilling favours short jobs)");
  const auto study = lumos::bench::make_study(args);
  std::cout << lumos::analysis::render_wait_by_geometry(study.waitings());
  return 0;
}
