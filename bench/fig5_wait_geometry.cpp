// Fig 5: waiting time correlated with job size and runtime categories.
#include <ostream>

#include "analysis/report.hpp"
#include "common.hpp"
#include "harnesses.hpp"

namespace lumos::bench {

obs::Report run_fig5_wait_geometry(const Args& args, std::ostream& out) {
  banner(out, "Fig 5: wait time vs job size / runtime",
         "middle-SIZE jobs wait longest everywhere except Theta (largest "
         "wait longest there); LONG jobs wait longest on every system "
         "(backfilling favours short jobs)");
  const auto study = make_study(args);
  const auto waits = study.waitings();
  out << analysis::render_wait_by_geometry(waits);

  obs::Report report;
  report.harness = "fig5_wait_geometry";
  report.figure = "Figure 5";
  for (const auto& w : waits) {
    report.set("mean_wait_long_s." + w.system,
               w.mean_wait_by_length[static_cast<std::size_t>(
                   trace::LengthCategory::Long)]);
    report.set("longest_wait_size." + w.system,
               static_cast<double>(w.longest_wait_size));
    report.set("longest_wait_length." + w.system,
               static_cast<double>(w.longest_wait_length));
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_fig5_wait_geometry)
