// Table II: scheduling performance of fixed relaxed backfilling vs the
// paper's adaptive relaxed backfilling (Eq. 1) on the walltime-bearing
// systems. --ablation additionally sweeps the adaptive factor shape
// (DESIGN.md §4.2).
#include <ostream>

#include "common.hpp"
#include "core/backfill_study.hpp"
#include "harnesses.hpp"
#include "util/table.hpp"

namespace lumos::bench {

obs::Report run_table2_adaptive_backfill(const Args& args_in,
                                         std::ostream& out) {
  Args args = args_in;
  if (args.study.systems.empty()) {
    args.study.systems = {"BlueWaters", "Mira", "Theta"};
  }
  if (!args.study.duration_days) {
    args.study.duration_days = 45.0;  // keeps the full sweep minutes-fast
  }
  banner(out, "Table II: relaxed vs adaptive relaxed backfilling",
         "adaptive cuts the reservation-violation delay substantially "
         "(paper: 5% BW, 49% Mira, 13% Theta) while wait/bsld/util stay "
         "within a few percent");

  const auto study = make_study(args);
  const auto rows = core::run_backfill_study(study.traces());
  out << core::render_backfill_study(rows) << '\n';

  obs::Report report;
  report.harness = "table2_adaptive_backfill";
  report.figure = "Table 2";
  for (const auto& r : rows) {
    report.set("wait_improvement." + r.system, r.wait_improvement);
    report.set("bsld_improvement." + r.system, r.bsld_improvement);
    report.set("util_improvement." + r.system, r.util_improvement);
    report.set("violation_reduction." + r.system, r.violation_reduction);
  }

  if (args.ablation) {
    out << "Ablation: adaptive factor shape (Eq. 1 is linear):\n";
    util::TextTable t(
        {"System", "shape", "wait", "bsld", "util", "violation"});
    for (const auto& trace : study.traces()) {
      if (!trace.spec().has_walltime_estimates) continue;
      for (auto shape : {sim::AdaptiveShape::Linear,
                         sim::AdaptiveShape::Quadratic,
                         sim::AdaptiveShape::Sqrt}) {
        core::BackfillStudyConfig config;
        config.adaptive_shape = shape;
        const auto cmp = core::compare_backfill(trace, config);
        t.add_row({trace.spec().name, std::string(to_string(shape)),
                   util::fixed(cmp.adaptive.avg_wait, 1),
                   util::fixed(cmp.adaptive.avg_bounded_slowdown, 2),
                   util::fixed(cmp.adaptive.utilization, 4),
                   util::fixed(cmp.adaptive.violation, 1)});
      }
    }
    out << t.render();
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_table2_adaptive_backfill)
