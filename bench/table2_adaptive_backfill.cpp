// Table II: scheduling performance of fixed relaxed backfilling vs the
// paper's adaptive relaxed backfilling (Eq. 1) on the walltime-bearing
// systems. --ablation additionally sweeps the adaptive factor shape
// (DESIGN.md §4.2).
#include <iostream>

#include "common.hpp"
#include "core/backfill_study.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  auto args = lumos::bench::parse_args(argc, argv);
  if (args.study.systems.empty()) {
    args.study.systems = {"BlueWaters", "Mira", "Theta"};
  }
  if (!args.study.duration_days) {
    args.study.duration_days = 45.0;  // keeps the full sweep minutes-fast
  }
  lumos::bench::banner(
      "Table II: relaxed vs adaptive relaxed backfilling",
      "adaptive cuts the reservation-violation delay substantially (paper: "
      "5% BW, 49% Mira, 13% Theta) while wait/bsld/util stay within a few "
      "percent");

  const auto study = lumos::bench::make_study(args);
  const auto rows = lumos::core::run_backfill_study(study.traces());
  std::cout << lumos::core::render_backfill_study(rows) << '\n';

  if (args.ablation) {
    std::cout << "Ablation: adaptive factor shape (Eq. 1 is linear):\n";
    lumos::util::TextTable t({"System", "shape", "wait", "bsld", "util",
                              "violation"});
    for (const auto& trace : study.traces()) {
      if (!trace.spec().has_walltime_estimates) continue;
      for (auto shape : {lumos::sim::AdaptiveShape::Linear,
                         lumos::sim::AdaptiveShape::Quadratic,
                         lumos::sim::AdaptiveShape::Sqrt}) {
        lumos::core::BackfillStudyConfig config;
        config.adaptive_shape = shape;
        const auto cmp = lumos::core::compare_backfill(trace, config);
        t.add_row({trace.spec().name, std::string(to_string(shape)),
                   lumos::util::fixed(cmp.adaptive.avg_wait, 1),
                   lumos::util::fixed(cmp.adaptive.avg_bounded_slowdown, 2),
                   lumos::util::fixed(cmp.adaptive.utilization, 4),
                   lumos::util::fixed(cmp.adaptive.violation, 1)});
      }
    }
    std::cout << t.render();
  }
  return 0;
}
