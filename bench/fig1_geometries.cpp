// Fig 1: job geometries — runtime CDF/violin (a), arrival patterns (b),
// resource allocation (c).
#include <ostream>

#include "analysis/report.hpp"
#include "common.hpp"
#include "harnesses.hpp"

namespace lumos::bench {

obs::Report run_fig1_geometries(const Args& args, std::ostream& out) {
  banner(out, "Fig 1: job geometries across systems",
         "(a) median runtime Mira/BW ~1.5h >> Philly ~12min >> Helios ~90s, "
         "DL spreads widest; (b) DL/hybrid gaps ~5-10s vs HPC ~100s, Helios "
         "strongly diurnal, Philly flat/inverted; (c) ~80% of DL jobs use 1 "
         "GPU, >50% of Mira jobs >1000 cores, BW median ~512 cores");

  const auto study = make_study(args);
  const auto geo = study.geometries();
  const auto arr = study.arrivals();

  out << "--- Fig 1(a)/(c): geometry summaries ---\n"
      << analysis::render_geometry(geo) << '\n'
      << "--- Fig 1(a): runtime CDF (quantiles) ---\n"
      << analysis::render_runtime_cdf(geo) << '\n'
      << "--- Fig 1(b): inter-arrival + peak statistics ---\n"
      << analysis::render_arrivals(arr) << '\n'
      << "--- Fig 1(b) bottom: hourly submission profile (x of mean) ---\n"
      << analysis::render_hourly(arr);

  obs::Report report;
  report.harness = "fig1_geometries";
  report.figure = "Figure 1";
  for (const auto& g : geo) {
    report.set("median_runtime_s." + g.system, g.runtime_summary.median);
    report.set("p99_runtime_s." + g.system, g.runtime_summary.p99);
    report.set("frac_single_core." + g.system, g.frac_single_core);
  }
  for (const auto& a : arr) {
    report.set("median_interarrival_s." + a.system,
               a.interarrival_summary.median);
    report.set("peak_hour_ratio." + a.system, a.peak_ratio);
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_fig1_geometries)
