// Fig 1: job geometries — runtime CDF/violin (a), arrival patterns (b),
// resource allocation (c).
#include <iostream>

#include "analysis/report.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  const auto args = lumos::bench::parse_args(argc, argv);
  lumos::bench::banner(
      "Fig 1: job geometries across systems",
      "(a) median runtime Mira/BW ~1.5h >> Philly ~12min >> Helios ~90s, DL "
      "spreads widest; (b) DL/hybrid gaps ~5-10s vs HPC ~100s, Helios "
      "strongly diurnal, Philly flat/inverted; (c) ~80% of DL jobs use 1 "
      "GPU, >50% of Mira jobs >1000 cores, BW median ~512 cores");

  const auto study = lumos::bench::make_study(args);
  const auto geo = study.geometries();
  const auto arr = study.arrivals();

  std::cout << "--- Fig 1(a)/(c): geometry summaries ---\n"
            << lumos::analysis::render_geometry(geo) << '\n'
            << "--- Fig 1(a): runtime CDF (quantiles) ---\n"
            << lumos::analysis::render_runtime_cdf(geo) << '\n'
            << "--- Fig 1(b): inter-arrival + peak statistics ---\n"
            << lumos::analysis::render_arrivals(arr) << '\n'
            << "--- Fig 1(b) bottom: hourly submission profile (x of mean) "
               "---\n"
            << lumos::analysis::render_hourly(arr);
  return 0;
}
