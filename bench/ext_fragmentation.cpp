// Extension harness: GPU fragmentation under node-level placement — the
// mechanism behind Takeaway 5's low DL utilization (and the paper's
// ref [46], "beware of fragmentation"). Compares an idealised GPU pool
// against gang placement on 8-GPU nodes with three packing policies.
#include <iostream>

#include "common.hpp"
#include "sim/node_cluster.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  auto args = lumos::bench::parse_args(argc, argv);
  if (args.study.systems.empty()) {
    args.study.systems = {"Philly", "Helios"};
  }
  if (!args.study.duration_days) args.study.duration_days = 10.0;
  lumos::bench::banner(
      "Extension: node-level GPU fragmentation (FCFS, no backfilling)",
      "gang placement on 8-GPU nodes strands capacity that the pooled "
      "model would use: waits rise and utilization drops versus the pool, "
      "with best-fit packing recovering part of the gap");

  const auto study = lumos::bench::make_study(args);
  for (const auto& source : study.traces()) {
    // Replay onto a cluster with 40% of the GPUs: fragmentation only
    // matters when capacity is contended, and the DL systems run at
    // moderate average load.
    lumos::trace::Trace trace(source.spec(),
                              std::vector<lumos::trace::Job>(
                                  source.jobs().begin(),
                                  source.jobs().end()));
    trace.spec().gpus =
        std::max<std::uint32_t>(8, source.spec().gpus * 2 / 5);
    trace.spec().cores = std::max<std::uint32_t>(8, source.spec().cores * 2 / 5);
    lumos::util::TextTable t({"placement", "avg wait (s)", "util",
                              "blocked events", "mean stranded GPUs"});
    lumos::sim::PackingConfig pooled;
    pooled.pooled = true;
    const auto base = lumos::sim::simulate_packing(trace, pooled);
    t.add_row({"pooled (ideal)", lumos::util::fixed(base.avg_wait, 1),
               lumos::util::fixed(base.utilization, 4), "-", "-"});
    for (auto policy : {lumos::sim::PackingPolicy::FirstFit,
                        lumos::sim::PackingPolicy::BestFit,
                        lumos::sim::PackingPolicy::WorstFit}) {
      lumos::sim::PackingConfig config;
      config.policy = policy;
      const auto m = lumos::sim::simulate_packing(trace, config);
      t.add_row({std::string(to_string(policy)),
                 lumos::util::fixed(m.avg_wait, 1),
                 lumos::util::fixed(m.utilization, 4),
                 std::to_string(m.blocked_events),
                 lumos::util::fixed(m.mean_blocked_free_gpus, 1)});
    }
    std::cout << "System " << trace.spec().name << " at 40% capacity ("
              << trace.size()
              << " jobs):\n"
              << t.render() << '\n';
  }
  return 0;
}
