// Extension harness: GPU fragmentation under node-level placement — the
// mechanism behind Takeaway 5's low DL utilization (and the paper's
// ref [46], "beware of fragmentation"). Compares an idealised GPU pool
// against gang placement on 8-GPU nodes with three packing policies.
#include <algorithm>
#include <ostream>

#include "common.hpp"
#include "harnesses.hpp"
#include "sim/node_cluster.hpp"
#include "util/table.hpp"

namespace lumos::bench {

obs::Report run_ext_fragmentation(const Args& args_in, std::ostream& out) {
  Args args = args_in;
  if (args.study.systems.empty()) {
    args.study.systems = {"Philly", "Helios"};
  }
  if (!args.study.duration_days) args.study.duration_days = 10.0;
  banner(out, "Extension: node-level GPU fragmentation (FCFS, no "
              "backfilling)",
         "gang placement on 8-GPU nodes strands capacity that the pooled "
         "model would use: waits rise and utilization drops versus the "
         "pool, with best-fit packing recovering part of the gap");

  obs::Report report;
  report.harness = "ext_fragmentation";
  report.figure = "Extension: GPU fragmentation";

  const auto study = make_study(args);
  for (const auto& source : study.traces()) {
    // Replay onto a cluster with 40% of the GPUs: fragmentation only
    // matters when capacity is contended, and the DL systems run at
    // moderate average load.
    trace::Trace trace(source.spec(),
                       std::vector<trace::Job>(source.jobs().begin(),
                                               source.jobs().end()));
    trace.spec().gpus = std::max<std::uint32_t>(8, source.spec().gpus * 2 / 5);
    trace.spec().cores =
        std::max<std::uint32_t>(8, source.spec().cores * 2 / 5);
    util::TextTable t({"placement", "avg wait (s)", "util", "blocked events",
                       "mean stranded GPUs"});
    sim::PackingConfig pooled;
    pooled.pooled = true;
    const auto base = sim::simulate_packing(trace, pooled);
    t.add_row({"pooled (ideal)", util::fixed(base.avg_wait, 1),
               util::fixed(base.utilization, 4), "-", "-"});
    for (auto policy : {sim::PackingPolicy::FirstFit,
                        sim::PackingPolicy::BestFit,
                        sim::PackingPolicy::WorstFit}) {
      sim::PackingConfig config;
      config.policy = policy;
      const auto m = sim::simulate_packing(trace, config);
      const std::string key =
          trace.spec().name + "." + std::string(to_string(policy));
      report.set("wait_penalty." + key, m.avg_wait - base.avg_wait);
      report.set("util_drop." + key, base.utilization - m.utilization);
      t.add_row({std::string(to_string(policy)), util::fixed(m.avg_wait, 1),
                 util::fixed(m.utilization, 4),
                 std::to_string(m.blocked_events),
                 util::fixed(m.mean_blocked_free_gpus, 1)});
    }
    out << "System " << trace.spec().name << " at 40% capacity ("
        << trace.size() << " jobs):\n"
        << t.render() << '\n';
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_ext_fragmentation)
