// Fig 11: per-user runtime distribution split by job status (violin
// medians/modes for the top submitting users).
#include <ostream>

#include "analysis/report.hpp"
#include "common.hpp"
#include "harnesses.hpp"
#include "util/table.hpp"
#include "util/time_util.hpp"

namespace lumos::bench {

namespace {

/// Mean of the per-user median runtime for one status (users without jobs
/// in that status are skipped); 0 when no user qualifies.
double mean_median(const analysis::UserStatusResult& r,
                   trace::JobStatus status) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& u : r.top_users) {
    const auto& summary = u.runtime[static_cast<std::size_t>(status)];
    if (summary.count == 0) continue;
    sum += summary.median;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace

obs::Report run_fig11_user_status(const Args& args, std::ostream& out) {
  banner(out, "Fig 11: per-user runtime by status (top 3 users per system)",
         "per user, Failed jobs are much shorter than Passed (early "
         "crashes) and Killed jobs much longer — separable distributions "
         "that make elapsed-time-aware prediction possible");
  const auto study = make_study(args);
  const auto res = study.user_statuses();
  out << analysis::render_user_status(res) << '\n';

  out << "Violin modes (highest-density runtime) per status:\n";
  util::TextTable t(
      {"System", "user", "Passed mode", "Failed mode", "Killed mode"});
  for (const auto& r : res) {
    int rank = 1;
    for (const auto& u : r.top_users) {
      auto mode = [&](trace::JobStatus s) -> std::string {
        const auto& v = u.violin[static_cast<std::size_t>(s)];
        return v.count ? util::format_duration(v.mode) : "-";
      };
      t.add_row({r.system, "U" + std::to_string(rank++),
                 mode(trace::JobStatus::Passed), mode(trace::JobStatus::Failed),
                 mode(trace::JobStatus::Killed)});
    }
  }
  out << t.render();

  obs::Report report;
  report.harness = "fig11_user_status";
  report.figure = "Figure 11";
  for (const auto& r : res) {
    const double passed = mean_median(r, trace::JobStatus::Passed);
    const double failed = mean_median(r, trace::JobStatus::Failed);
    const double killed = mean_median(r, trace::JobStatus::Killed);
    report.set("failed_vs_passed_median." + r.system,
               passed > 0.0 ? failed / passed : 0.0);
    report.set("killed_vs_passed_median." + r.system,
               passed > 0.0 ? killed / passed : 0.0);
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_fig11_user_status)
