// Fig 11: per-user runtime distribution split by job status (violin
// medians/modes for the top submitting users).
#include <iostream>

#include "analysis/report.hpp"
#include "common.hpp"
#include "util/table.hpp"
#include "util/time_util.hpp"

int main(int argc, char** argv) {
  const auto args = lumos::bench::parse_args(argc, argv);
  lumos::bench::banner(
      "Fig 11: per-user runtime by status (top 3 users per system)",
      "per user, Failed jobs are much shorter than Passed (early crashes) "
      "and Killed jobs much longer — separable distributions that make "
      "elapsed-time-aware prediction possible");
  const auto study = lumos::bench::make_study(args);
  const auto res = study.user_statuses();
  std::cout << lumos::analysis::render_user_status(res) << '\n';

  std::cout << "Violin modes (highest-density runtime) per status:\n";
  lumos::util::TextTable t(
      {"System", "user", "Passed mode", "Failed mode", "Killed mode"});
  for (const auto& r : res) {
    int rank = 1;
    for (const auto& u : r.top_users) {
      auto mode = [&](lumos::trace::JobStatus s) -> std::string {
        const auto& v = u.violin[static_cast<std::size_t>(s)];
        return v.count ? lumos::util::format_duration(v.mode) : "-";
      };
      t.add_row({r.system, "U" + std::to_string(rank++),
                 mode(lumos::trace::JobStatus::Passed),
                 mode(lumos::trace::JobStatus::Failed),
                 mode(lumos::trace::JobStatus::Killed)});
    }
  }
  std::cout << t.render();
  return 0;
}
