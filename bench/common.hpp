// Shared plumbing for the figure/table bench harnesses: argument parsing
// and study construction. Every harness accepts:
//   --days D   override every system's synthesis window (default: each
//              system's calibrated window — 120 d, 14 d for Helios)
//   --seed S   RNG seed (default 42)
//   --systems a,b,c   restrict to a subset
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/lumos.hpp"
#include "util/string_util.hpp"

namespace lumos::bench {

struct Args {
  core::StudyOptions study;
  bool ablation = false;
  double days_or(double fallback) const {
    return study.duration_days.value_or(fallback);
  }
};

inline Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--days" && i + 1 < argc) {
      args.study.duration_days = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      args.study.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--systems" && i + 1 < argc) {
      for (auto part : util::split(argv[++i], ',')) {
        args.study.systems.emplace_back(part);
      }
    } else if (arg == "--ablation") {
      args.ablation = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--days D] [--seed S] [--systems a,b,c] [--ablation]\n";
      std::exit(2);
    }
  }
  return args;
}

inline core::CrossSystemStudy make_study(const Args& args) {
  return core::CrossSystemStudy(args.study);
}

/// Prints the standard harness banner.
inline void banner(const std::string& what, const std::string& expectation) {
  std::cout << "==================================================\n"
            << what << '\n'
            << "Paper expectation: " << expectation << '\n'
            << "==================================================\n";
}

}  // namespace lumos::bench
