// Shared plumbing for the figure/table bench harnesses: checked argument
// parsing, study construction, and the standalone-main adapter. Every
// harness accepts:
//   --days D          override every system's synthesis window (default:
//                     each system's calibrated window — 120 d, 14 d Helios)
//   --seed S          RNG seed (default 42)
//   --systems a,b,c   restrict to a subset (unknown names are an error)
//   --ablation        run the harness's extra ablation sweep, if any
//   --smoke           tiny-run mode: harnesses cap their job counts
//   --json PATH       also write the harness obs::Report as JSON ("-" =
//                     stdout)
//
// Each harness implements `obs::Report run_<name>(const Args&,
// std::ostream&)` and closes with LUMOS_BENCH_MAIN(run_<name>). The same
// source compiles twice: standalone (the macro emits main) and into the
// lumos_bench_harnesses library for bench_runner (compiled with
// -DLUMOS_BENCH_LIBRARY, where the macro emits nothing).
//
// All bench processes exit with the unified codes below (0 ok, 2 usage,
// 3 runtime error, 4 injected fault) and ignore SIGPIPE, so the
// supervisor (bench_runner --supervised) can classify every ending.
#pragma once

#include <charconv>
#include <csignal>
#include <iostream>
#include <ostream>
#include <string>
#include <vector>

#include "core/lumos.hpp"
#include "util/failpoint.hpp"
#include "obs/report.hpp"
#include "synth/calibration.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace lumos::bench {

// Unified bench process exit codes. Every bench main (standalone harness,
// bench_runner, and bench_runner's --child mode) maps errors onto these,
// and the supervisor maps them back onto journal statuses — notably
// kExitUsage is never retried (a malformed command line is not transient).
inline constexpr int kExitOk = 0;
inline constexpr int kExitCheckFailed = 1;  ///< bench_runner: harness failed
inline constexpr int kExitUsage = 2;        ///< bad flags / unknown names
inline constexpr int kExitRuntime = 3;      ///< lumos::Error at runtime
inline constexpr int kExitFault = 4;        ///< fault::InjectedFault

/// Benches write reports into pipes and files; a reader that disappears
/// must surface as a stream error at the write site, not kill the whole
/// harness with SIGPIPE mid-report. Call once at the top of every bench
/// main.
inline void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

/// The shared catch-ladder: maps an in-flight exception onto the unified
/// exit codes, printing the message (and usage for argument errors).
inline int map_bench_exception(const char* argv0) {
  try {
    throw;
  } catch (const InvalidArgument& e) {
    std::cerr << argv0 << ": " << e.what() << '\n';
    return kExitUsage;
  } catch (const fault::InjectedFault& e) {
    std::cerr << argv0 << ": " << e.what() << '\n';
    return kExitFault;
  } catch (const Error& e) {
    std::cerr << argv0 << ": " << e.what() << '\n';
    return kExitRuntime;
  } catch (const std::exception& e) {
    std::cerr << argv0 << ": " << e.what() << '\n';
    return kExitRuntime;
  }
}

struct Args {
  core::StudyOptions study;
  bool ablation = false;
  /// Tiny-run mode: harnesses cap max_jobs so the whole suite finishes in
  /// seconds (the bench_runner --smoke ctest path).
  bool smoke = false;
  /// When non-empty, the standalone main writes the Report here as JSON.
  std::string json_out;

  double days_or(double fallback) const {
    return study.duration_days.value_or(fallback);
  }
  /// Smoke-aware cap: `full` normally, at most `capped` under --smoke.
  std::size_t jobs_cap(std::size_t full, std::size_t capped) const {
    return smoke ? std::min(full, capped) : full;
  }
};

inline double parse_positive_double(const std::string& text,
                                    const char* flag) {
  double value = 0.0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end || !(value > 0.0)) {
    throw InvalidArgument(std::string(flag) + " expects a positive number, "
                          "got \"" + text + "\"");
  }
  return value;
}

inline std::uint64_t parse_u64(const std::string& text, const char* flag) {
  std::uint64_t value = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) {
    throw InvalidArgument(std::string(flag) + " expects a non-negative "
                          "integer, got \"" + text + "\"");
  }
  return value;
}

/// Canonical spec name for a --systems token; throws InvalidArgument (with
/// the calibration's message) for names no generator knows.
inline std::string canonical_system(std::string_view name) {
  return synth::calibration_for(name).spec.name;
}

inline const char* usage() {
  return "[--days D] [--seed S] [--systems a,b,c] [--ablation] [--smoke] "
         "[--json PATH]";
}

/// Parses the shared harness flags; throws InvalidArgument on malformed
/// values, unknown systems, or unknown flags.
inline Args parse_args(int argc, char** argv) {
  Args args;
  const auto value_of = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) {
      throw InvalidArgument(flag + " requires a value");
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--days") {
      args.study.duration_days = parse_positive_double(value_of(i, arg),
                                                       "--days");
    } else if (arg == "--seed") {
      args.study.seed = parse_u64(value_of(i, arg), "--seed");
    } else if (arg == "--systems") {
      const std::string list = value_of(i, arg);  // split views into this
      for (auto part : util::split(list, ',')) {
        args.study.systems.push_back(canonical_system(part));
      }
    } else if (arg == "--ablation") {
      args.ablation = true;
    } else if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--json") {
      args.json_out = value_of(i, arg);
    } else {
      throw InvalidArgument("unknown argument \"" + arg + "\"");
    }
  }
  return args;
}

inline core::CrossSystemStudy make_study(const Args& args) {
  return core::CrossSystemStudy(args.study);
}

/// Prints the standard harness banner.
inline void banner(std::ostream& out, const std::string& what,
                   const std::string& expectation) {
  out << "==================================================\n"
      << what << '\n'
      << "Paper expectation: " << expectation << '\n'
      << "==================================================\n";
}

/// The standalone-binary driver: parse flags, run the harness against
/// stdout, attach the registry snapshot, optionally export JSON.
/// Returns the unified exit codes (kExitOk/kExitUsage/kExitRuntime/
/// kExitFault) so a supervisor can classify any failure.
inline int harness_main(int argc, char** argv,
                        obs::Report (*run)(const Args&, std::ostream&)) {
  ignore_sigpipe();
  try {
    const Args args = parse_args(argc, argv);
    obs::ScopedTimer timer("bench.harness_seconds");
    obs::Report report = run(args, std::cout);
    report.wall_seconds = timer.elapsed_seconds();
    timer.cancel();
    report.observability = obs::Registry::global().snapshot();
    if (!args.json_out.empty()) {
      obs::write_json_atomic(report.to_json(), args.json_out);
    }
    return kExitOk;
  } catch (const InvalidArgument& e) {
    std::cerr << argv[0] << ": " << e.what() << "\nusage: " << argv[0] << ' '
              << usage() << '\n';
    return kExitUsage;
  } catch (const std::exception&) {
    // Re-throws inside and resolves the dynamic type to an exit code.
    return map_bench_exception(argv[0]);
  }
}

}  // namespace lumos::bench

#ifdef LUMOS_BENCH_LIBRARY
#define LUMOS_BENCH_MAIN(run_fn)
#else
#define LUMOS_BENCH_MAIN(run_fn)                     \
  int main(int argc, char** argv) {                  \
    return lumos::bench::harness_main(argc, argv, run_fn); \
  }
#endif
