// Shared plumbing for the figure/table bench harnesses: checked argument
// parsing, study construction, and the standalone-main adapter. Every
// harness accepts:
//   --days D          override every system's synthesis window (default:
//                     each system's calibrated window — 120 d, 14 d Helios)
//   --seed S          RNG seed (default 42)
//   --systems a,b,c   restrict to a subset (unknown names are an error)
//   --ablation        run the harness's extra ablation sweep, if any
//   --smoke           tiny-run mode: harnesses cap their job counts
//   --json PATH       also write the harness obs::Report as JSON ("-" =
//                     stdout)
//
// Each harness implements `obs::Report run_<name>(const Args&,
// std::ostream&)` and closes with LUMOS_BENCH_MAIN(run_<name>). The same
// source compiles twice: standalone (the macro emits main) and into the
// lumos_bench_harnesses library for bench_runner (compiled with
// -DLUMOS_BENCH_LIBRARY, where the macro emits nothing).
#pragma once

#include <charconv>
#include <iostream>
#include <ostream>
#include <string>
#include <vector>

#include "core/lumos.hpp"
#include "obs/report.hpp"
#include "synth/calibration.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace lumos::bench {

struct Args {
  core::StudyOptions study;
  bool ablation = false;
  /// Tiny-run mode: harnesses cap max_jobs so the whole suite finishes in
  /// seconds (the bench_runner --smoke ctest path).
  bool smoke = false;
  /// When non-empty, the standalone main writes the Report here as JSON.
  std::string json_out;

  double days_or(double fallback) const {
    return study.duration_days.value_or(fallback);
  }
  /// Smoke-aware cap: `full` normally, at most `capped` under --smoke.
  std::size_t jobs_cap(std::size_t full, std::size_t capped) const {
    return smoke ? std::min(full, capped) : full;
  }
};

inline double parse_positive_double(const std::string& text,
                                    const char* flag) {
  double value = 0.0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end || !(value > 0.0)) {
    throw InvalidArgument(std::string(flag) + " expects a positive number, "
                          "got \"" + text + "\"");
  }
  return value;
}

inline std::uint64_t parse_u64(const std::string& text, const char* flag) {
  std::uint64_t value = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) {
    throw InvalidArgument(std::string(flag) + " expects a non-negative "
                          "integer, got \"" + text + "\"");
  }
  return value;
}

/// Canonical spec name for a --systems token; throws InvalidArgument (with
/// the calibration's message) for names no generator knows.
inline std::string canonical_system(std::string_view name) {
  return synth::calibration_for(name).spec.name;
}

inline const char* usage() {
  return "[--days D] [--seed S] [--systems a,b,c] [--ablation] [--smoke] "
         "[--json PATH]";
}

/// Parses the shared harness flags; throws InvalidArgument on malformed
/// values, unknown systems, or unknown flags.
inline Args parse_args(int argc, char** argv) {
  Args args;
  const auto value_of = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) {
      throw InvalidArgument(flag + " requires a value");
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--days") {
      args.study.duration_days = parse_positive_double(value_of(i, arg),
                                                       "--days");
    } else if (arg == "--seed") {
      args.study.seed = parse_u64(value_of(i, arg), "--seed");
    } else if (arg == "--systems") {
      const std::string list = value_of(i, arg);  // split views into this
      for (auto part : util::split(list, ',')) {
        args.study.systems.push_back(canonical_system(part));
      }
    } else if (arg == "--ablation") {
      args.ablation = true;
    } else if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--json") {
      args.json_out = value_of(i, arg);
    } else {
      throw InvalidArgument("unknown argument \"" + arg + "\"");
    }
  }
  return args;
}

inline core::CrossSystemStudy make_study(const Args& args) {
  return core::CrossSystemStudy(args.study);
}

/// Prints the standard harness banner.
inline void banner(std::ostream& out, const std::string& what,
                   const std::string& expectation) {
  out << "==================================================\n"
      << what << '\n'
      << "Paper expectation: " << expectation << '\n'
      << "==================================================\n";
}

/// The standalone-binary driver: parse flags, run the harness against
/// stdout, attach the registry snapshot, optionally export JSON.
inline int harness_main(int argc, char** argv,
                        obs::Report (*run)(const Args&, std::ostream&)) {
  try {
    const Args args = parse_args(argc, argv);
    obs::ScopedTimer timer("bench.harness_seconds");
    obs::Report report = run(args, std::cout);
    report.wall_seconds = timer.elapsed_seconds();
    timer.cancel();
    report.observability = obs::Registry::global().snapshot();
    if (!args.json_out.empty()) {
      obs::write_json(report.to_json(), args.json_out);
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << argv[0] << ": " << e.what() << "\nusage: " << argv[0] << ' '
              << usage() << '\n';
    return 2;
  }
}

}  // namespace lumos::bench

#ifdef LUMOS_BENCH_LIBRARY
#define LUMOS_BENCH_MAIN(run_fn)
#else
#define LUMOS_BENCH_MAIN(run_fn)                     \
  int main(int argc, char** argv) {                  \
    return lumos::bench::harness_main(argc, argv, run_fn); \
  }
#endif
