// Extension harness (beyond the paper's figures): backfilling quality when
// walltime estimates come from the system's own runtime predictors instead
// of users — closing the loop between use case 1 and the scheduler.
#include <iostream>

#include "common.hpp"
#include "core/estimate_study.hpp"

int main(int argc, char** argv) {
  auto args = lumos::bench::parse_args(argc, argv);
  if (args.study.systems.empty()) {
    args.study.systems = {"Theta", "Philly"};
  }
  if (!args.study.duration_days) args.study.duration_days = 30.0;
  lumos::bench::banner(
      "Extension: EASY backfilling on system-generated runtime estimates",
      "tighter estimates (oracle > gbrt/last2 > user requests) should "
      "reduce waits via better backfilling, while *underestimates* kill "
      "jobs at their predicted limit — the cost the paper's Underestimate "
      "Rate metric guards against");

  const auto study = lumos::bench::make_study(args);
  for (const auto& trace : study.traces()) {
    const auto result = lumos::core::run_estimate_study(trace);
    std::cout << lumos::core::render_estimate_study(result) << '\n';
  }
  return 0;
}
